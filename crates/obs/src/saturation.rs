//! Saturation sampling: a ring of periodic gauge snapshots.
//!
//! Gauges (queue depth, in-flight count, pool occupancy) are instantaneous —
//! a stats page shows only the value *now*, which for a bursty system is
//! usually zero. The saturation ring samples every registered gauge on a
//! fixed period into a bounded ring, so "was the PL queue deep during that
//! slow window?" has an answer after the fact. The sampler is one named
//! background thread, stoppable (and joined) on drop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// One periodic snapshot of every registered gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Microseconds since the process epoch.
    pub at_us: u64,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
}

/// Bounded ring of [`GaugeSample`]s, oldest evicted first.
pub struct SaturationRing {
    inner: Mutex<VecDeque<GaugeSample>>,
    capacity: usize,
}

impl SaturationRing {
    pub fn with_capacity(capacity: usize) -> SaturationRing {
        SaturationRing {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Append a sample, evicting the oldest at capacity.
    pub fn push(&self, sample: GaugeSample) {
        let mut buf = self.inner.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(sample);
    }

    /// The most recent `n` samples, newest first.
    pub fn recent(&self, n: usize) -> Vec<GaugeSample> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .rev()
            .take(n)
            .cloned()
            .collect()
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<GaugeSample> {
        self.inner.lock().unwrap().back().cloned()
    }

    /// Peak value of one gauge across the retained window.
    pub fn peak(&self, gauge: &str) -> Option<i64> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .flat_map(|s| s.gauges.iter())
            .filter(|(name, _)| name == gauge)
            .map(|(_, v)| *v)
            .max()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

/// The process-wide saturation ring (capacity 256 — at the default 200ms
/// period that is ~51s of history).
pub fn ring() -> &'static SaturationRing {
    static RING: OnceLock<SaturationRing> = OnceLock::new();
    RING.get_or_init(|| SaturationRing::with_capacity(256))
}

/// Snapshot every gauge in the global registry into the global ring.
pub fn sample_now() {
    let snap = crate::metrics::global().snapshot();
    ring().push(GaugeSample {
        at_us: crate::now_us(),
        gauges: snap.gauges,
    });
}

/// Handle on the background sampling thread; stops and joins on drop.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Ask the thread to stop and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a background thread sampling the global registry into the global
/// ring every `period`. Sleeps in small slices so stop latency stays low
/// even with long periods.
pub fn start_sampler(period: Duration) -> Sampler {
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("hedc-saturation".into())
        .spawn(move || {
            let slice = Duration::from_millis(10).min(period);
            let mut elapsed = Duration::ZERO;
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                elapsed += slice;
                if elapsed >= period {
                    elapsed = Duration::ZERO;
                    sample_now();
                }
            }
        })
        .expect("spawn saturation sampler");
    Sampler {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let ring = SaturationRing::with_capacity(3);
        for i in 0..5i64 {
            ring.push(GaugeSample {
                at_us: i as u64,
                gauges: vec![("q.depth".into(), i)],
            });
        }
        assert_eq!(ring.len(), 3);
        let recent = ring.recent(10);
        assert_eq!(recent[0].at_us, 4);
        assert_eq!(recent[2].at_us, 2);
        assert_eq!(ring.latest().unwrap().at_us, 4);
        assert_eq!(ring.peak("q.depth"), Some(4));
        assert_eq!(ring.peak("absent"), None);
    }

    #[test]
    fn sampler_collects_and_stops() {
        crate::metrics::global().gauge("sat.test.depth").set(7);
        let sampler = start_sampler(Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            if ring().peak("sat.test.depth") == Some(7) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "sampler never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        // After stop, pushes cease: the ring length stabilizes.
        let n = ring().len();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ring().len(), n);
    }
}
