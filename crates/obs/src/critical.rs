//! Critical-path analysis of finished span trees.
//!
//! Walks a trace's spans and partitions the root's wall-clock time into
//! exclusive *self time* per span: each instant of the root interval is
//! attributed to exactly one span (the deepest one covering it, earlier
//! siblings winning overlaps), so the per-span self times always sum to the
//! root duration — the breakdown cannot silently lose or double-count
//! milliseconds. Self time is then rolled up two ways: by *category*
//! (queue wait / lock-or-pool acquire / wire / execute) and by *tier* (the
//! dotted-name prefix: `web`, `pl`, `dm`, `db`, `metadb`, `net`, `fs`,
//! `ingest`), which is exactly the decomposition the §7.3 fig4 collapse
//! needs before anyone optimizes it.

use crate::export::json_string;
use crate::trace::FinishedSpan;
use std::collections::HashMap;

/// Where a span's self time goes in the breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Waiting in a queue (PL frontend, ingest stage handoffs).
    Queue,
    /// Waiting for a lock or pooled resource (`db.pool.acquire`).
    Pool,
    /// On the wire: client-side RPC self time (request/response framing,
    /// kernel, loopback). When the server runs in the same process its
    /// spans join the trace and subtract out; for a remote server the wire
    /// share includes the peer's processing.
    Wire,
    /// Everything else: actually executing.
    Execute,
}

impl Category {
    /// All categories, breakdown display order.
    pub const ALL: [Category; 4] = [
        Category::Queue,
        Category::Pool,
        Category::Wire,
        Category::Execute,
    ];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Queue => "queue",
            Category::Pool => "pool",
            Category::Wire => "wire",
            Category::Execute => "execute",
        }
    }
}

/// Classify a span name. Matches the repo's metric-name conventions:
/// `*queue*` → queue wait, `*pool*`/`*lock*` → pool, `net.rpc.client` →
/// wire, rest → execute.
pub fn category_of(name: &str) -> Category {
    if name.contains("queue") {
        Category::Queue
    } else if name.contains("pool") || name.contains("lock") {
        Category::Pool
    } else if name.starts_with("net.rpc.client") {
        Category::Wire
    } else {
        Category::Execute
    }
}

/// The tier a span belongs to: its dotted-name prefix.
pub fn tier_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// One span in the waterfall, depth-first order.
#[derive(Debug, Clone)]
pub struct WaterfallRow {
    pub span_id: u64,
    pub name: String,
    /// Nesting depth (root = 0).
    pub depth: usize,
    /// Start offset from the root start, microseconds.
    pub offset_us: u64,
    pub duration_us: u64,
    /// Exclusive self time within the partition.
    pub self_us: u64,
    pub category: Category,
}

/// Per-tier, per-category self-time rollup.
#[derive(Debug, Clone)]
pub struct TierSlice {
    pub tier: String,
    pub category: Category,
    pub self_us: u64,
}

/// The full analysis of one trace.
#[derive(Debug, Clone)]
pub struct Breakdown {
    pub trace_id: u64,
    pub root_name: String,
    pub root_us: u64,
    /// Self time per category; all four present, display order.
    pub by_category: Vec<(Category, u64)>,
    /// Nonzero tier/category slices, largest first.
    pub by_tier: Vec<TierSlice>,
    /// Depth-first waterfall rows.
    pub waterfall: Vec<WaterfallRow>,
    /// Spans whose recorded parent was already evicted; they were attached
    /// to the root so their time still attributes.
    pub orphans: usize,
}

impl Breakdown {
    /// Self time of one category, microseconds.
    pub fn category_us(&self, c: Category) -> u64 {
        self.by_category
            .iter()
            .find(|(cat, _)| *cat == c)
            .map(|(_, us)| *us)
            .unwrap_or(0)
    }

    /// Total attributed time — equals `root_us` by construction (the
    /// partition property; the analyzer's tests assert it).
    pub fn attributed_us(&self) -> u64 {
        self.by_category.iter().map(|(_, us)| *us).sum()
    }

    /// Compact JSON rendering (the `/hedc/trace/<id>.json` payload and the
    /// bench attribution rows).
    pub fn to_json(&self) -> String {
        let cats: Vec<String> = self
            .by_category
            .iter()
            .map(|(c, us)| format!("\"{}_us\":{us}", c.label()))
            .collect();
        let tiers: Vec<String> = self
            .by_tier
            .iter()
            .map(|t| {
                format!(
                    "{{\"tier\":{},\"category\":\"{}\",\"self_us\":{}}}",
                    json_string(&t.tier),
                    t.category.label(),
                    t.self_us
                )
            })
            .collect();
        let rows: Vec<String> = self
            .waterfall
            .iter()
            .map(|r| {
                format!(
                    "{{\"span_id\":{},\"name\":{},\"depth\":{},\"offset_us\":{},\"duration_us\":{},\"self_us\":{},\"category\":\"{}\"}}",
                    r.span_id,
                    json_string(&r.name),
                    r.depth,
                    r.offset_us,
                    r.duration_us,
                    r.self_us,
                    r.category.label()
                )
            })
            .collect();
        format!(
            "{{\"trace_id\":{},\"root\":{},\"root_us\":{},\"attributed_us\":{},\"orphans\":{},\"breakdown\":{{{}}},\"tiers\":[{}],\"spans\":[{}]}}",
            self.trace_id,
            json_string(&self.root_name),
            self.root_us,
            self.attributed_us(),
            self.orphans,
            cats.join(","),
            tiers.join(","),
            rows.join(",")
        )
    }
}

// -- interval-set helpers (disjoint, sorted (start, end) pairs) -------------

type Ivls = Vec<(u64, u64)>;

fn ivls_len(v: &Ivls) -> u64 {
    v.iter().map(|(a, b)| b - a).sum()
}

/// `v ∩ [lo, hi)`.
fn ivls_clip(v: &Ivls, lo: u64, hi: u64) -> Ivls {
    v.iter()
        .filter_map(|&(a, b)| {
            let (a, b) = (a.max(lo), b.min(hi));
            (a < b).then_some((a, b))
        })
        .collect()
}

/// `a \ b`, both disjoint-sorted.
fn ivls_subtract(a: &Ivls, b: &Ivls) -> Ivls {
    let mut out = Vec::new();
    for &(mut lo, hi) in a {
        for &(blo, bhi) in b {
            if bhi <= lo || blo >= hi {
                continue;
            }
            if blo > lo {
                out.push((lo, blo));
            }
            lo = lo.max(bhi);
            if lo >= hi {
                break;
            }
        }
        if lo < hi {
            out.push((lo, hi));
        }
    }
    out
}

/// Merge `add` into `acc`, keeping it disjoint-sorted.
fn ivls_union(acc: &Ivls, add: &Ivls) -> Ivls {
    let mut all: Ivls = acc.iter().chain(add.iter()).copied().collect();
    all.sort_unstable();
    let mut out: Ivls = Vec::with_capacity(all.len());
    for (a, b) in all {
        match out.last_mut() {
            Some((_, pb)) if a <= *pb => *pb = (*pb).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Analyze one trace's spans. Returns `None` when no root span is present
/// (fully evicted or still running).
pub fn analyze(spans: &[FinishedSpan]) -> Option<Breakdown> {
    let root = spans
        .iter()
        .filter(|s| s.parent_id == 0)
        .max_by_key(|s| s.duration_us)?;
    let ids: HashMap<u64, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span_id, i))
        .collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut orphans = 0usize;
    for (i, s) in spans.iter().enumerate() {
        if s.span_id == root.span_id {
            continue;
        }
        let parent = if s.parent_id != 0 && ids.contains_key(&s.parent_id) {
            s.parent_id
        } else {
            // Evicted parent (or a sibling root — a concurrently-minted
            // trace can't share a trace_id, so siblings here are rare):
            // hang it off the root so its time still attributes.
            orphans += 1;
            root.span_id
        };
        children.entry(parent).or_default().push(i);
    }
    // Earlier-start siblings win overlap ties: sort each child list.
    for list in children.values_mut() {
        list.sort_by_key(|&i| (spans[i].start_us, spans[i].span_id));
    }

    let mut waterfall = Vec::with_capacity(spans.len());
    // Iterative DFS carrying (index, depth, allocated interval set).
    let root_idx = ids[&root.span_id];
    let root_alloc: Ivls = vec![(root.start_us, root.start_us + root.duration_us)];
    let mut stack = vec![(root_idx, 0usize, root_alloc)];
    let mut visited = vec![false; spans.len()];
    while let Some((idx, depth, alloc)) = stack.pop() {
        if visited[idx] {
            continue;
        }
        visited[idx] = true;
        let span = &spans[idx];
        let kids = children.get(&span.span_id).cloned().unwrap_or_default();
        let mut granted: Ivls = Vec::new();
        let mut kid_allocs = Vec::with_capacity(kids.len());
        for &k in &kids {
            let kspan = &spans[k];
            let kiv = ivls_clip(&alloc, kspan.start_us, kspan.start_us + kspan.duration_us);
            let kiv = ivls_subtract(&kiv, &granted);
            granted = ivls_union(&granted, &kiv);
            kid_allocs.push((k, kiv));
        }
        let self_us = ivls_len(&alloc) - ivls_len(&granted);
        waterfall.push(WaterfallRow {
            span_id: span.span_id,
            name: span.name.clone(),
            depth,
            offset_us: span.start_us.saturating_sub(root.start_us),
            duration_us: span.duration_us,
            self_us,
            category: category_of(&span.name),
        });
        // Reverse push so DFS visits children in start order.
        for (k, kiv) in kid_allocs.into_iter().rev() {
            stack.push((k, depth + 1, kiv));
        }
    }

    let mut by_category: Vec<(Category, u64)> = Category::ALL.iter().map(|&c| (c, 0u64)).collect();
    let mut tier_map: HashMap<(String, Category), u64> = HashMap::new();
    for row in &waterfall {
        if let Some(slot) = by_category.iter_mut().find(|(c, _)| *c == row.category) {
            slot.1 += row.self_us;
        }
        *tier_map
            .entry((tier_of(&row.name).to_string(), row.category))
            .or_insert(0) += row.self_us;
    }
    let mut by_tier: Vec<TierSlice> = tier_map
        .into_iter()
        .filter(|(_, us)| *us > 0)
        .map(|((tier, category), self_us)| TierSlice {
            tier,
            category,
            self_us,
        })
        .collect();
    by_tier.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.tier.cmp(&b.tier)));

    Some(Breakdown {
        trace_id: root.trace_id,
        root_name: root.name.clone(),
        root_us: root.duration_us,
        by_category,
        by_tier,
        waterfall,
        orphans,
    })
}

/// Analyze a trace by ID: the flight recorder's copy if retained (pinned
/// traces survive span-store churn), else whatever the span store still
/// holds.
pub fn analyze_trace(trace_id: u64) -> Option<Breakdown> {
    let spans = match crate::flight::recorder().get(trace_id) {
        Some(record) => record.spans,
        None => crate::trace::span_store().spans_for(trace_id),
    };
    analyze(&spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        name: &str,
        start_us: u64,
        duration_us: u64,
    ) -> FinishedSpan {
        FinishedSpan {
            trace_id,
            span_id,
            parent_id,
            name: name.into(),
            start_us,
            duration_us,
        }
    }

    #[test]
    fn nested_spans_partition_exactly() {
        // root [0,100) -> db [10,40) -> pool [10,20); queue [50,80)
        let spans = vec![
            span(7, 1, 0, "web.request", 0, 100),
            span(7, 2, 1, "metadb.query", 10, 30),
            span(7, 3, 2, "db.pool.acquire", 10, 10),
            span(7, 4, 1, "pl.queue_wait", 50, 30),
        ];
        let b = analyze(&spans).unwrap();
        assert_eq!(b.root_us, 100);
        assert_eq!(b.attributed_us(), 100, "partition must be exact");
        assert_eq!(b.category_us(Category::Pool), 10);
        assert_eq!(b.category_us(Category::Queue), 30);
        assert_eq!(b.category_us(Category::Execute), 60); // 40 root + 20 db
        assert_eq!(b.category_us(Category::Wire), 0);
        assert_eq!(b.orphans, 0);
        // Waterfall is DFS: root, db, pool, queue.
        let names: Vec<&str> = b.waterfall.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "web.request",
                "metadb.query",
                "db.pool.acquire",
                "pl.queue_wait"
            ]
        );
        assert_eq!(b.waterfall[1].depth, 1);
        assert_eq!(b.waterfall[2].depth, 2);
        assert_eq!(b.waterfall[3].offset_us, 50);
    }

    #[test]
    fn overlapping_siblings_do_not_double_count() {
        // Two parallel children covering [0,60) and [40,100) of a 100us root:
        // overlap [40,60) goes to the earlier sibling once.
        let spans = vec![
            span(8, 1, 0, "web.request", 0, 100),
            span(8, 2, 1, "dm.io.query", 0, 60),
            span(8, 3, 1, "dm.io.query", 40, 60),
        ];
        let b = analyze(&spans).unwrap();
        assert_eq!(b.attributed_us(), 100);
        let rows: Vec<u64> = b.waterfall.iter().map(|r| r.self_us).collect();
        assert_eq!(rows, vec![0, 60, 40]);
    }

    #[test]
    fn orphaned_spans_attach_to_root() {
        let spans = vec![
            span(9, 1, 0, "web.request", 0, 100),
            // Parent span 99 was evicted from the ring.
            span(9, 5, 99, "fs.read", 20, 10),
        ];
        let b = analyze(&spans).unwrap();
        assert_eq!(b.orphans, 1);
        assert_eq!(b.attributed_us(), 100);
        assert_eq!(b.waterfall[1].name, "fs.read");
        assert_eq!(b.waterfall[1].self_us, 10);
    }

    #[test]
    fn child_overflowing_root_is_clipped() {
        let spans = vec![
            span(10, 1, 0, "web.request", 0, 50),
            span(10, 2, 1, "net.rpc.client", 40, 30), // runs past the root
        ];
        let b = analyze(&spans).unwrap();
        assert_eq!(b.attributed_us(), 50);
        assert_eq!(
            b.category_us(Category::Wire),
            10,
            "clipped to the root window"
        );
    }

    #[test]
    fn no_root_no_breakdown() {
        assert!(analyze(&[]).is_none());
        assert!(analyze(&[span(11, 2, 1, "dm.io.query", 0, 10)]).is_none());
    }

    #[test]
    fn tier_rollup_and_json() {
        let spans = vec![
            span(12, 1, 0, "web.request", 0, 100),
            span(12, 2, 1, "db.pool.acquire", 10, 20),
        ];
        let b = analyze(&spans).unwrap();
        assert_eq!(b.by_tier[0].tier, "web");
        assert_eq!(b.by_tier[0].self_us, 80);
        assert_eq!(b.by_tier[1].tier, "db");
        let json = b.to_json();
        assert!(json.contains("\"pool_us\":20"), "{json}");
        assert!(json.contains("\"execute_us\":80"), "{json}");
        assert!(json.contains("\"attributed_us\":100"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn category_classification() {
        assert_eq!(category_of("pl.queue_wait"), Category::Queue);
        assert_eq!(category_of("ingest.queue_wait.write"), Category::Queue);
        assert_eq!(category_of("db.pool.acquire"), Category::Pool);
        assert_eq!(category_of("net.rpc.client"), Category::Wire);
        assert_eq!(category_of("net.rpc.server"), Category::Execute);
        assert_eq!(category_of("metadb.query"), Category::Execute);
        assert_eq!(tier_of("db.pool.acquire"), "db");
        assert_eq!(tier_of("web"), "web");
    }
}
