//! Observability substrate for HEDC (§4.1 "operational metadata").
//!
//! The paper reserves a slice of the metadata schema for "monitoring
//! information such as usage statistics"; its evaluation (§7) reasons almost
//! exclusively in response times and queries/second. This crate is the
//! runtime half of that story: a process-wide, lock-free-on-the-hot-path
//! metrics registry (counters, gauges, fixed-bucket latency histograms with
//! p50/p95/p99 extraction), lightweight span tracing with a request-scoped
//! trace ID that survives the web → PL → DM → metadb/filestore descent, and
//! a bounded structured event log for the conditions worth keeping verbatim
//! (slow queries, pool stalls, analysis-server restarts, cross-node
//! redirects).
//!
//! On top of that substrate sits the tail-latency toolkit: histogram
//! **exemplars** (each bucket remembers the trace IDs of its slowest recent
//! samples), a **saturation ring** of periodic gauge snapshots, a **flight
//! recorder** (bounded ring of complete recent traces, with slow traces
//! pinned past a configurable threshold), and a **critical-path analyzer**
//! that partitions a root span's wall-clock time into per-tier queue /
//! pool / wire / execute self time.
//!
//! Everything here is `std`-only by design: every tier links it, so it must
//! not widen the dependency graph.
//!
//! # Metric name conventions
//!
//! Dotted lowercase paths, coarse-to-fine: `metadb.query`, `metadb.compile`,
//! `metadb.execute`, `dm.name_map`, `db.pool.acquire`, `pl.queue_wait`,
//! `pl.analysis`, `fs.read`, `fs.read_bytes`, `web.request`,
//! `net.rpc.client`, `net.rpc.server`. Histogram values are microseconds
//! unless the name says otherwise.

pub mod critical;
pub mod events;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod saturation;
pub mod trace;

pub use critical::{analyze, analyze_trace, category_of, tier_of, Breakdown, Category};
pub use events::{emit, emit_in_trace, event_log, kind, Event, EventLog};
pub use export::{snapshot, Snapshot};
pub use flight::{recorder, FlightRecorder, TraceRecord};
pub use metrics::{
    global, Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    RegistrySnapshot,
};
pub use saturation::{ring, sample_now, start_sampler, GaugeSample, Sampler, SaturationRing};
pub use trace::{
    adopt, current, record_interval, span_store, ContextGuard, FinishedSpan, PendingRoot, Span,
    SpanContext, SpanStore,
};

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide epoch for relative timestamps. Spans and events carry
/// `start_us` offsets from this instant so they sort and diff cheaply.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process epoch.
pub(crate) fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

#[cfg(test)]
mod smoke {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// Counters and histograms must tolerate concurrent writers without
    /// losing updates — the registry sits under every tier's hot path.
    #[test]
    fn multithreaded_counter_and_histogram() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("smoke.count");
        let h = reg.histogram("smoke.lat");
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record_us(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.min_us, 0);
        assert_eq!(snap.max_us, 7999);
        assert!(snap.p50_us > 0 && snap.p50_us <= snap.p99_us);
        assert!(snap.p99_us <= snap.max_us.max(1));
    }

    /// Trace context must hand off across threads explicitly (the PL
    /// dispatcher pattern: submit on one thread, process on another).
    #[test]
    fn cross_thread_trace_handoff() {
        let root = Span::root("smoke.root");
        let ctx = root.context();
        let handle = thread::spawn(move || {
            let _g = adopt(Some(ctx));
            let child = Span::child("smoke.worker");
            let got = child.context().trace_id;
            drop(child);
            got
        });
        let worker_trace = handle.join().unwrap();
        assert_eq!(worker_trace, ctx.trace_id);
        drop(root);
        let spans = span_store().spans_for(ctx.trace_id);
        assert_eq!(spans.len(), 2);
        let worker = spans.iter().find(|s| s.name == "smoke.worker").unwrap();
        assert_eq!(worker.parent_id, ctx.span_id);
    }
}
