//! Snapshot assembly and export, as human-readable text and as JSON.
//!
//! JSON is emitted by hand (this crate is dependency-free); the encoder
//! covers exactly what the snapshot needs: objects, arrays, strings with
//! escaping, and integers.

use crate::events::Event;
use crate::metrics::{Exemplar, HistogramSnapshot, RegistrySnapshot};
use crate::saturation::GaugeSample;

/// Escape a string for inclusion in a JSON document (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        h.count, h.sum_us, h.min_us, h.max_us, h.p50_us, h.p95_us, h.p99_us
    )
}

fn exemplar_json(e: &Exemplar) -> String {
    let bucket = if e.bucket_us == u64::MAX {
        "\"+inf\"".to_string()
    } else {
        e.bucket_us.to_string()
    };
    format!(
        "{{\"trace_id\":{},\"value_us\":{},\"at_us\":{},\"bucket_us\":{}}}",
        e.trace_id, e.value_us, e.at_us, bucket
    )
}

fn sample_json(s: &GaugeSample) -> String {
    let gauges: Vec<String> = s
        .gauges
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), v))
        .collect();
    format!(
        "{{\"at_us\":{},\"gauges\":{{{}}}}}",
        s.at_us,
        gauges.join(",")
    )
}

/// Everything the process knows about itself at one instant: the global
/// metrics registry, the tail of the event log, the recent saturation
/// samples, and the flight-recorder occupancy.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub metrics: RegistrySnapshot,
    pub events: Vec<Event>,
    /// Recent gauge samples from the saturation ring, newest first.
    pub saturation: Vec<GaugeSample>,
    /// Flight-recorder occupancy: (recent traces, pinned traces).
    pub flight_depths: (usize, usize),
    /// Current flight-recorder pin threshold, microseconds.
    pub pin_threshold_us: u64,
}

impl Snapshot {
    /// Render as aligned plain text, for the synoptic stats page and logs.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, v) in &self.metrics.counters {
            out.push_str(&format!("{name:<32} {v}\n"));
        }
        if !self.metrics.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            for (name, v) in &self.metrics.gauges {
                out.push_str(&format!("{name:<32} {v}\n"));
            }
        }
        out.push_str("== histograms (us) ==\n");
        out.push_str(&format!(
            "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "name", "count", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &self.metrics.histograms {
            out.push_str(&format!(
                "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                name, h.count, h.p50_us, h.p95_us, h.p99_us, h.max_us
            ));
        }
        if !self.metrics.exemplars.is_empty() {
            out.push_str("== exemplars (slowest traced samples) ==\n");
            for (name, exemplars) in &self.metrics.exemplars {
                for e in exemplars.iter().take(3) {
                    out.push_str(&format!(
                        "{:<32} trace={:<20} {:>10}us\n",
                        name, e.trace_id, e.value_us
                    ));
                }
            }
        }
        if let Some(latest) = self.saturation.first() {
            out.push_str(&format!(
                "== saturation (ring depth {}, latest @{}us) ==\n",
                self.saturation.len(),
                latest.at_us
            ));
            for (name, v) in &latest.gauges {
                out.push_str(&format!("{name:<32} {v}\n"));
            }
        }
        let (recent, pinned) = self.flight_depths;
        out.push_str(&format!(
            "== flight recorder == recent={recent} pinned={pinned} threshold_us={}\n",
            self.pin_threshold_us
        ));
        out.push_str(&format!("== events ({}) ==\n", self.events.len()));
        for e in &self.events {
            out.push_str(&format!(
                "[{:>10}us] trace={} {} {}\n",
                e.at_us, e.trace_id, e.kind, e.detail
            ));
        }
        out
    }

    /// Render as a JSON document.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .metrics
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), v))
            .collect();
        let gauges: Vec<String> = self
            .metrics
            .gauges
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), v))
            .collect();
        let histograms: Vec<String> = self
            .metrics
            .histograms
            .iter()
            .map(|(k, h)| format!("{}:{}", json_string(k), histogram_json(h)))
            .collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"seq\":{},\"at_us\":{},\"trace_id\":{},\"kind\":{},\"detail\":{}}}",
                    e.seq,
                    e.at_us,
                    e.trace_id,
                    json_string(&e.kind),
                    json_string(&e.detail)
                )
            })
            .collect();
        let exemplars: Vec<String> = self
            .metrics
            .exemplars
            .iter()
            .map(|(k, list)| {
                let items: Vec<String> = list.iter().map(exemplar_json).collect();
                format!("{}:[{}]", json_string(k), items.join(","))
            })
            .collect();
        let saturation: Vec<String> = self.saturation.iter().map(sample_json).collect();
        let (recent, pinned) = self.flight_depths;
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\"exemplars\":{{{}}},\"saturation\":[{}],\"flight\":{{\"recent\":{recent},\"pinned\":{pinned},\"pin_threshold_us\":{}}},\"events\":[{}]}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(","),
            exemplars.join(","),
            saturation.join(","),
            self.pin_threshold_us,
            events.join(",")
        )
    }
}

/// Snapshot the global registry, event log, saturation ring, and flight
/// recorder.
pub fn snapshot() -> Snapshot {
    Snapshot {
        metrics: crate::metrics::global().snapshot(),
        events: crate::events::event_log().events(),
        saturation: crate::saturation::ring().recent(8),
        flight_depths: crate::flight::recorder().depths(),
        pin_threshold_us: crate::flight::recorder().pin_threshold_us(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b\nc"), "\"a\\\\b\\nc\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn snapshot_renders_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("metadb.queries").add(7);
        reg.histogram("metadb.query").record_us(120);
        let snap = Snapshot {
            metrics: reg.snapshot(),
            events: vec![Event {
                seq: 0,
                at_us: 5,
                trace_id: 3,
                kind: "slow_query".into(),
                detail: "SELECT \"x\"".into(),
            }],
            saturation: vec![GaugeSample {
                at_us: 9,
                gauges: vec![("pl.queue.depth".into(), 4)],
            }],
            flight_depths: (2, 1),
            pin_threshold_us: 1_000_000,
        };
        let text = snap.to_text();
        assert!(text.contains("metadb.queries"));
        assert!(text.contains("slow_query"));
        assert!(text.contains("pl.queue.depth"));
        assert!(text.contains("pinned=1"));
        let json = snap.to_json();
        assert!(json.contains("\"metadb.queries\":7"));
        assert!(json.contains("\"p50_us\":120"));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"exemplars\":{"));
        assert!(json.contains("\"saturation\":[{\"at_us\":9"));
        assert!(json.contains("\"flight\":{\"recent\":2,\"pinned\":1"));
        // Must be parseable by any JSON parser: balanced braces, no stray
        // trailing commas. Cheap structural check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
    }
}
