//! The tail-latency flight recorder.
//!
//! Every finished root span deposits its complete trace (the span tree as
//! retained by the [`SpanStore`]) into a bounded ring of recent traces. A
//! configurable threshold additionally *pins* any trace whose root exceeded
//! it: pinned traces survive until explicitly drained, and when the pinned
//! ring fills it keeps the slowest offenders rather than the newest — the
//! record of the worst tail is never displaced by a merely-bad request.
//!
//! Collection is cheap for the common case: the span store tracks per-trace
//! span counts, so a single-span trace (an instrumented call outside any
//! request) skips the store scan entirely.

use crate::trace::{span_store, FinishedSpan};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One complete recorded trace.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace ID (links exemplars, events, and `/hedc/trace/<id>`).
    pub trace_id: u64,
    /// Name of the root span.
    pub root_name: String,
    /// Root start, microseconds since the process epoch.
    pub start_us: u64,
    /// Root duration in microseconds.
    pub duration_us: u64,
    /// Every span of the trace still retained when the root finished.
    pub spans: Vec<FinishedSpan>,
    /// Whether the root exceeded the pin threshold.
    pub pinned: bool,
}

/// Bounded recent-trace ring plus the pinned slow-trace set.
pub struct FlightRecorder {
    recent: Mutex<VecDeque<TraceRecord>>,
    pinned: Mutex<Vec<TraceRecord>>,
    pin_threshold_us: AtomicU64,
    pins_total: AtomicU64,
    pins_dropped: AtomicU64,
    recent_capacity: usize,
    pinned_capacity: usize,
}

/// Default pin threshold: one second of root latency.
pub const DEFAULT_PIN_THRESHOLD_US: u64 = 1_000_000;

impl FlightRecorder {
    /// Build with explicit capacities (the global instance uses 256/64).
    pub fn with_capacity(recent_capacity: usize, pinned_capacity: usize) -> FlightRecorder {
        FlightRecorder {
            recent: Mutex::new(VecDeque::with_capacity(recent_capacity)),
            pinned: Mutex::new(Vec::new()),
            pin_threshold_us: AtomicU64::new(DEFAULT_PIN_THRESHOLD_US),
            pins_total: AtomicU64::new(0),
            pins_dropped: AtomicU64::new(0),
            recent_capacity,
            pinned_capacity,
        }
    }

    /// Root latency above which a trace is pinned. `u64::MAX` disables.
    pub fn set_pin_threshold_us(&self, us: u64) {
        self.pin_threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current pin threshold in microseconds.
    pub fn pin_threshold_us(&self) -> u64 {
        self.pin_threshold_us.load(Ordering::Relaxed)
    }

    /// Called by the trace layer whenever a root span finishes: append to
    /// the recent ring, and pin if over threshold.
    ///
    /// Only pinned traces pay for span collection here — the recent ring
    /// stores root-only records and [`FlightRecorder::get`] hydrates them
    /// from the span store on demand, so finishing a root stays O(1) on the
    /// request hot path.
    pub fn on_root_finished(&self, root: &FinishedSpan) {
        let pinned = root.duration_us >= self.pin_threshold_us();
        let spans = if pinned && span_store().trace_span_count(root.trace_id) > 1 {
            span_store().spans_for(root.trace_id)
        } else {
            vec![root.clone()]
        };
        let record = TraceRecord {
            trace_id: root.trace_id,
            root_name: root.name.clone(),
            start_us: root.start_us,
            duration_us: root.duration_us,
            spans,
            pinned,
        };
        if pinned {
            self.pin(record.clone());
            crate::events::emit_in_trace(
                root.trace_id,
                crate::events::kind::SLOW_TRACE,
                format!(
                    "root={} duration_us={} spans={}",
                    record.root_name,
                    record.duration_us,
                    record.spans.len()
                ),
            );
        }
        let mut recent = self.recent.lock().unwrap();
        if recent.len() == self.recent_capacity {
            recent.pop_front();
        }
        recent.push_back(record);
    }

    /// Keep-slowest admission into the pinned set.
    fn pin(&self, record: TraceRecord) {
        self.pins_total.fetch_add(1, Ordering::Relaxed);
        crate::metrics::global().counter("trace.pinned").inc();
        let mut pinned = self.pinned.lock().unwrap();
        if pinned.len() < self.pinned_capacity {
            pinned.push(record);
            return;
        }
        // Full: displace the fastest pinned trace if this one is slower.
        if let Some((idx, fastest)) = pinned
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.duration_us)
            .map(|(i, r)| (i, r.duration_us))
        {
            if record.duration_us > fastest {
                pinned[idx] = record;
                self.pins_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.pins_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent `n` traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        self.recent
            .lock()
            .unwrap()
            .iter()
            .rev()
            .take(n)
            .cloned()
            .collect()
    }

    /// Pinned traces, slowest first.
    pub fn pinned(&self) -> Vec<TraceRecord> {
        let mut out = self.pinned.lock().unwrap().clone();
        out.sort_by(|a, b| b.duration_us.cmp(&a.duration_us));
        out
    }

    /// Remove and return all pinned traces (slowest first).
    pub fn drain_pinned(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self.pinned.lock().unwrap().drain(..).collect();
        out.sort_by(|a, b| b.duration_us.cmp(&a.duration_us));
        out
    }

    /// Look a trace up by ID: pinned first, then the recent ring. Root-only
    /// records from the ring are hydrated with whatever spans the span
    /// store still retains for the trace.
    pub fn get(&self, trace_id: u64) -> Option<TraceRecord> {
        let record = self
            .pinned
            .lock()
            .unwrap()
            .iter()
            .find(|r| r.trace_id == trace_id)
            .cloned()
            .or_else(|| {
                self.recent
                    .lock()
                    .unwrap()
                    .iter()
                    .rev()
                    .find(|r| r.trace_id == trace_id)
                    .cloned()
            });
        record.map(|mut r| {
            if r.spans.len() <= 1 {
                let live = span_store().spans_for(trace_id);
                if live.len() > r.spans.len() {
                    r.spans = live;
                }
            }
            r
        })
    }

    /// The `n` slowest retained traces (pinned and recent, deduped), slowest
    /// first.
    pub fn slowest(&self, n: usize) -> Vec<TraceRecord> {
        let mut all = self.pinned();
        for r in self.recent.lock().unwrap().iter() {
            if !all.iter().any(|p| p.trace_id == r.trace_id) {
                all.push(r.clone());
            }
        }
        all.sort_by(|a, b| b.duration_us.cmp(&a.duration_us));
        all.truncate(n);
        all
    }

    /// Traces pinned since the process started (including displaced ones).
    pub fn pins_total(&self) -> u64 {
        self.pins_total.load(Ordering::Relaxed)
    }

    /// Pins that could not be (or no longer are) retained because the
    /// pinned set was full of slower traces.
    pub fn pins_dropped(&self) -> u64 {
        self.pins_dropped.load(Ordering::Relaxed)
    }

    /// Retained counts: (recent, pinned).
    pub fn depths(&self) -> (usize, usize) {
        (
            self.recent.lock().unwrap().len(),
            self.pinned.lock().unwrap().len(),
        )
    }

    /// Forget everything (benches isolate runs with this).
    pub fn clear(&self) {
        self.recent.lock().unwrap().clear();
        self.pinned.lock().unwrap().clear();
    }
}

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::with_capacity(256, 64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(trace_id: u64, duration_us: u64) -> FinishedSpan {
        FinishedSpan {
            trace_id,
            span_id: trace_id * 10,
            parent_id: 0,
            name: "f.root".into(),
            start_us: 0,
            duration_us,
        }
    }

    #[test]
    fn recent_ring_is_bounded_and_newest_first() {
        let fr = FlightRecorder::with_capacity(3, 2);
        fr.set_pin_threshold_us(u64::MAX);
        for i in 1..=5 {
            fr.on_root_finished(&root(i, 10));
        }
        let recent = fr.recent(10);
        let ids: Vec<u64> = recent.iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![5, 4, 3]);
        assert_eq!(fr.depths(), (3, 0));
        assert!(fr.get(5).is_some());
        assert!(fr.get(1).is_none(), "evicted from the ring");
    }

    #[test]
    fn slow_roots_pin_and_survive_ring_eviction() {
        let fr = FlightRecorder::with_capacity(2, 4);
        fr.set_pin_threshold_us(1_000);
        fr.on_root_finished(&root(1, 5_000)); // pinned
        for i in 2..=10 {
            fr.on_root_finished(&root(i, 10)); // fast, churns the ring
        }
        assert!(fr.get(1).is_some(), "pinned trace outlives the ring");
        let pinned = fr.pinned();
        assert_eq!(pinned.len(), 1);
        assert!(pinned[0].pinned);
        assert_eq!(fr.pins_total(), 1);
        let drained = fr.drain_pinned();
        assert_eq!(drained.len(), 1);
        assert_eq!(fr.depths().1, 0, "drain empties the pinned set");
        assert!(fr.get(1).is_none(), "drained and ring-evicted");
    }

    #[test]
    fn full_pinned_set_keeps_the_slowest() {
        let fr = FlightRecorder::with_capacity(16, 2);
        fr.set_pin_threshold_us(1);
        fr.on_root_finished(&root(1, 100));
        fr.on_root_finished(&root(2, 300));
        fr.on_root_finished(&root(3, 200)); // displaces 1 (the fastest)
        fr.on_root_finished(&root(4, 50)); // too fast to displace anything
        let ids: Vec<u64> = fr.pinned().iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![2, 3], "slowest first, fastest displaced");
        assert_eq!(fr.pins_total(), 4);
        assert_eq!(fr.pins_dropped(), 2);
    }

    #[test]
    fn slowest_merges_pinned_and_recent() {
        let fr = FlightRecorder::with_capacity(8, 2);
        fr.set_pin_threshold_us(1_000);
        fr.on_root_finished(&root(1, 2_000)); // pinned + recent
        fr.on_root_finished(&root(2, 500));
        fr.on_root_finished(&root(3, 700));
        let ids: Vec<u64> = fr.slowest(2).iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![1, 3]);
    }
}
