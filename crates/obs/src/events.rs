//! Bounded structured event log.
//!
//! For conditions worth keeping verbatim rather than as a bucket increment:
//! slow queries (with their SQL), pool-acquire stalls, analysis-server
//! timeouts and restarts, cross-node redirects. Events carry the ambient
//! trace ID so they join up with the span tree of the request that caused
//! them. The log is a fixed-capacity ring buffer: old events fall off, the
//! system never grows without bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Well-known event kinds (callers may also use ad-hoc strings).
pub mod kind {
    pub const SLOW_QUERY: &str = "slow_query";
    pub const POOL_STALL: &str = "pool_stall";
    pub const ANALYSIS_TIMEOUT: &str = "analysis_timeout";
    pub const ANALYSIS_RESTART: &str = "analysis_restart";
    pub const DM_REDIRECT: &str = "dm_redirect";
    pub const NET_TIMEOUT: &str = "net_timeout";
    pub const NET_RECONNECT: &str = "net_reconnect";
    pub const CACHE_DEGRADED: &str = "cache_degraded";
    pub const FAULT_INJECT: &str = "fault_inject";
    pub const INGEST_RESUME: &str = "ingest_resume";
    pub const INGEST_COMPENSATE: &str = "ingest_compensate";
    pub const SLOW_TRACE: &str = "slow_trace";
    pub const SLOW_REQUEST: &str = "slow_request";
    pub const OVERLOAD_SHED: &str = "overload_shed";
}

/// One logged occurrence. `trace_id == 0` means "outside any request";
/// `at_us` is microseconds since the process epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub at_us: u64,
    pub trace_id: u64,
    pub kind: String,
    pub detail: String,
}

/// Fixed-capacity ring buffer of [`Event`]s.
pub struct EventLog {
    inner: Mutex<VecDeque<Event>>,
    capacity: usize,
    seq: AtomicU64,
}

impl EventLog {
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            seq: AtomicU64::new(0),
        }
    }

    /// Append an event under an explicit trace ID.
    pub fn record_in_trace(&self, trace_id: u64, kind: &str, detail: impl Into<String>) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at_us: crate::now_us(),
            trace_id,
            kind: kind.to_string(),
            detail: detail.into(),
        };
        let mut buf = self.inner.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event);
    }

    /// Append an event under the ambient trace, if any.
    pub fn record(&self, kind: &str, detail: impl Into<String>) {
        let trace_id = crate::trace::current().map(|c| c.trace_id).unwrap_or(0);
        self.record_in_trace(trace_id, kind, detail);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().iter().cloned().collect()
    }

    /// Retained events of one kind, oldest first.
    pub fn events_of_kind(&self, kind: &str) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide event log (capacity 1024).
pub fn event_log() -> &'static EventLog {
    static LOG: OnceLock<EventLog> = OnceLock::new();
    LOG.get_or_init(|| EventLog::with_capacity(1024))
}

/// Record into the global log under the ambient trace.
pub fn emit(kind: &str, detail: impl Into<String>) {
    event_log().record(kind, detail);
}

/// Record into the global log under an explicit trace ID (for events raised
/// off the request thread, e.g. by the analysis server manager).
pub fn emit_in_trace(trace_id: u64, kind: &str, detail: impl Into<String>) {
    event_log().record_in_trace(trace_id, kind, detail);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_bounded_and_ordered() {
        let log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.record_in_trace(9, kind::SLOW_QUERY, format!("q{i}"));
        }
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "q2");
        assert_eq!(events[2].detail, "q4");
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn events_pick_up_ambient_trace() {
        let log = EventLog::with_capacity(8);
        let span = crate::trace::Span::root("e.root");
        let trace_id = span.context().trace_id;
        log.record(kind::POOL_STALL, "waited");
        drop(span);
        log.record(kind::POOL_STALL, "no trace");
        let events = log.events_of_kind(kind::POOL_STALL);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trace_id, trace_id);
        assert_eq!(events[1].trace_id, 0);
    }
}
