//! Request-scoped span tracing.
//!
//! A trace is minted at the system edge (the web thin client or the PL
//! frontend) and flows down through the DM session into metadb query
//! execution and filestore reads. Propagation is ambient: each thread keeps
//! a current [`SpanContext`] in a thread-local, child spans pick it up
//! automatically, and cross-thread handoff (the PL dispatcher pattern) is an
//! explicit capture-then-[`adopt`]. Finished spans land in a bounded global
//! ring buffer ([`SpanStore`]) from which a request can be reconstructed as
//! a tree keyed by its trace ID.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The (trace, span) coordinates a piece of work runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub trace_id: u64,
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The ambient context on this thread, if any.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.get())
}

/// Install `ctx` as this thread's ambient context until the guard drops.
/// Used to carry a trace across a thread boundary: capture [`current`] on
/// the submitting thread, ship it with the job, `adopt` it in the worker.
pub fn adopt(ctx: Option<SpanContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev }
}

/// Restores the previous ambient context on drop.
pub struct ContextGuard {
    prev: Option<SpanContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// An in-flight timed operation. Created at scope entry, finished (recorded
/// into the global [`SpanStore`]) on drop. While alive it is the ambient
/// context on its thread, so nested spans become its children.
pub struct Span {
    ctx: SpanContext,
    parent_id: u64,
    prev: Option<SpanContext>,
    name: String,
    start: Instant,
    start_us: u64,
}

impl Span {
    fn begin(name: &str, trace_id: u64, parent_id: u64) -> Span {
        let ctx = SpanContext {
            trace_id,
            span_id: next_id(),
        };
        let prev = CURRENT.with(|c| c.replace(Some(ctx)));
        Span {
            ctx,
            parent_id,
            prev,
            name: name.to_string(),
            start: Instant::now(),
            start_us: crate::now_us(),
        }
    }

    /// Start a new trace. Called at the system edge, once per request.
    pub fn root(name: &str) -> Span {
        Span::begin(name, next_id(), 0)
    }

    /// Start a child of the ambient context, or a fresh root if there is
    /// none (so instrumented code also works when called outside a request).
    pub fn child(name: &str) -> Span {
        match current() {
            Some(parent) => Span::begin(name, parent.trace_id, parent.span_id),
            None => Span::root(name),
        }
    }

    /// This span's coordinates, for handing to another thread.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        span_store().record(FinishedSpan {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.parent_id,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            duration_us: (self.start.elapsed().as_micros() as u64).max(1),
        });
    }
}

/// A completed span. `parent_id == 0` marks a trace root; `start_us` is
/// microseconds since the process epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
    pub name: String,
    pub start_us: u64,
    pub duration_us: u64,
}

/// Bounded ring buffer of finished spans; oldest entries fall off.
pub struct SpanStore {
    inner: Mutex<VecDeque<FinishedSpan>>,
    capacity: usize,
}

impl SpanStore {
    pub fn with_capacity(capacity: usize) -> Self {
        SpanStore {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    pub fn record(&self, span: FinishedSpan) {
        let mut buf = self.inner.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(span);
    }

    /// All retained spans of one trace, in completion order.
    pub fn spans_for(&self, trace_id: u64) -> Vec<FinishedSpan> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// The most recently completed `n` spans, newest last.
    pub fn recent(&self, n: usize) -> Vec<FinishedSpan> {
        let buf = self.inner.lock().unwrap();
        buf.iter()
            .skip(buf.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Trace ID of the most recently completed root span, if any.
    pub fn last_root_trace(&self) -> Option<u64> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|s| s.parent_id == 0)
            .map(|s| s.trace_id)
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide span ring buffer (capacity 4096).
pub fn span_store() -> &'static SpanStore {
    static STORE: OnceLock<SpanStore> = OnceLock::new();
    STORE.get_or_init(|| SpanStore::with_capacity(4096))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_share_trace_and_link_parents() {
        let root = Span::root("t.root");
        let rctx = root.context();
        {
            let child = Span::child("t.child");
            assert_eq!(child.context().trace_id, rctx.trace_id);
            {
                let grand = Span::child("t.grand");
                assert_eq!(grand.context().trace_id, rctx.trace_id);
            }
        }
        drop(root);
        let spans = span_store().spans_for(rctx.trace_id);
        assert_eq!(spans.len(), 3);
        let child = spans.iter().find(|s| s.name == "t.child").unwrap();
        let grand = spans.iter().find(|s| s.name == "t.grand").unwrap();
        assert_eq!(child.parent_id, rctx.span_id);
        assert_eq!(grand.parent_id, child.span_id);
        let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn child_without_ambient_context_starts_a_root() {
        let _g = adopt(None); // shield from any ambient context
        let orphan = Span::child("t.orphan");
        let ctx = orphan.context();
        drop(orphan);
        let spans = span_store().spans_for(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_id, 0);
    }

    #[test]
    fn context_restored_after_drop() {
        let _g = adopt(None);
        assert_eq!(current(), None);
        let a = Span::root("t.a");
        let actx = a.context();
        {
            let b = Span::child("t.b");
            assert_eq!(current(), Some(b.context()));
        }
        assert_eq!(current(), Some(actx));
        drop(a);
        assert_eq!(current(), None);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let store = SpanStore::with_capacity(4);
        for i in 0..10 {
            store.record(FinishedSpan {
                trace_id: 1,
                span_id: i,
                parent_id: 0,
                name: "x".into(),
                start_us: i,
                duration_us: 1,
            });
        }
        assert_eq!(store.len(), 4);
        let spans = store.spans_for(1);
        assert_eq!(spans[0].span_id, 6);
        assert_eq!(store.last_root_trace(), Some(1));
    }
}
