//! Request-scoped span tracing.
//!
//! A trace is minted at the system edge (the web thin client or the PL
//! frontend) and flows down through the DM session into metadb query
//! execution and filestore reads. Propagation is ambient: each thread keeps
//! a current [`SpanContext`] in a thread-local, child spans pick it up
//! automatically, and cross-thread handoff (the PL dispatcher pattern) is an
//! explicit capture-then-[`adopt`]. Finished spans land in a bounded global
//! ring buffer ([`SpanStore`]) from which a request can be reconstructed as
//! a tree keyed by its trace ID.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The (trace, span) coordinates a piece of work runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub trace_id: u64,
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The ambient context on this thread, if any.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.get())
}

/// Install `ctx` as this thread's ambient context until the guard drops.
/// Used to carry a trace across a thread boundary: capture [`current`] on
/// the submitting thread, ship it with the job, `adopt` it in the worker.
pub fn adopt(ctx: Option<SpanContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev }
}

/// Restores the previous ambient context on drop.
pub struct ContextGuard {
    prev: Option<SpanContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// An in-flight timed operation. Created at scope entry, finished (recorded
/// into the global [`SpanStore`]) on drop. While alive it is the ambient
/// context on its thread, so nested spans become its children.
pub struct Span {
    ctx: SpanContext,
    parent_id: u64,
    prev: Option<SpanContext>,
    name: String,
    start: Instant,
    start_us: u64,
}

impl Span {
    fn begin(name: &str, trace_id: u64, parent_id: u64) -> Span {
        let ctx = SpanContext {
            trace_id,
            span_id: next_id(),
        };
        let prev = CURRENT.with(|c| c.replace(Some(ctx)));
        Span {
            ctx,
            parent_id,
            prev,
            name: name.to_string(),
            start: Instant::now(),
            start_us: crate::now_us(),
        }
    }

    /// Start a new trace. Called at the system edge, once per request.
    pub fn root(name: &str) -> Span {
        Span::begin(name, next_id(), 0)
    }

    /// Start a child of the ambient context, or a fresh root if there is
    /// none (so instrumented code also works when called outside a request).
    pub fn child(name: &str) -> Span {
        match current() {
            Some(parent) => Span::begin(name, parent.trace_id, parent.span_id),
            None => Span::root(name),
        }
    }

    /// This span's coordinates, for handing to another thread.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        let finished = FinishedSpan {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.parent_id,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            duration_us: (self.start.elapsed().as_micros() as u64).max(1),
        };
        finish_into_store(finished);
    }
}

/// Record a finished span into the global store; a root additionally lands
/// the completed trace in the flight recorder.
fn finish_into_store(finished: FinishedSpan) {
    let is_root = finished.parent_id == 0;
    if is_root {
        span_store().record(finished.clone());
        crate::flight::recorder().on_root_finished(&finished);
    } else {
        span_store().record(finished);
    }
}

/// Record a span for an interval that already elapsed, as a child of the
/// ambient context. No-op outside a trace: retroactive intervals (queue
/// wait, pool acquire) only matter as part of a request's tree, and minting
/// roots here would flood the store from untraced call sites.
pub fn record_interval(name: &str, start: Instant) {
    let Some(parent) = current() else { return };
    let duration_us = (start.elapsed().as_micros() as u64).max(1);
    span_store().record(FinishedSpan {
        trace_id: parent.trace_id,
        span_id: next_id(),
        parent_id: parent.span_id,
        name: name.to_string(),
        start_us: crate::now_us().saturating_sub(duration_us),
        duration_us,
    });
}

/// A root span whose lifetime is not a lexical scope: minted where a unit of
/// work enters a pipeline, carried (or just its [`SpanContext`]) alongside
/// the work through stages and threads, and finished explicitly when the
/// unit completes. Unlike [`Span`] it never touches the thread-local ambient
/// context — stages adopt its context explicitly.
#[derive(Debug)]
pub struct PendingRoot {
    ctx: SpanContext,
    name: String,
    start: Instant,
    start_us: u64,
}

impl PendingRoot {
    /// Mint a new trace for a unit of pipelined work.
    pub fn begin(name: &str) -> PendingRoot {
        PendingRoot {
            ctx: SpanContext {
                trace_id: next_id(),
                span_id: next_id(),
            },
            name: name.to_string(),
            start: Instant::now(),
            start_us: crate::now_us(),
        }
    }

    /// Coordinates for stages to [`adopt`].
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Record the root span (and hand the completed trace to the flight
    /// recorder). Dropping without calling this abandons the trace.
    pub fn finish(self) {
        finish_into_store(FinishedSpan {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: 0,
            name: self.name,
            start_us: self.start_us,
            duration_us: (self.start.elapsed().as_micros() as u64).max(1),
        });
    }
}

/// A completed span. `parent_id == 0` marks a trace root; `start_us` is
/// microseconds since the process epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
    pub name: String,
    pub start_us: u64,
    pub duration_us: u64,
}

/// Bounded ring buffer of finished spans; oldest entries fall off. A
/// per-trace span count rides along so "does this trace have more than its
/// root?" is O(1) — the flight recorder asks on every root finish.
pub struct SpanStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
}

struct StoreInner {
    buf: VecDeque<FinishedSpan>,
    counts: HashMap<u64, usize>,
}

impl SpanStore {
    pub fn with_capacity(capacity: usize) -> Self {
        SpanStore {
            inner: Mutex::new(StoreInner {
                buf: VecDeque::with_capacity(capacity),
                counts: HashMap::new(),
            }),
            capacity,
        }
    }

    pub fn record(&self, span: FinishedSpan) {
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.capacity {
            if let Some(old) = inner.buf.pop_front() {
                if let Some(n) = inner.counts.get_mut(&old.trace_id) {
                    *n -= 1;
                    if *n == 0 {
                        inner.counts.remove(&old.trace_id);
                    }
                }
            }
        }
        *inner.counts.entry(span.trace_id).or_insert(0) += 1;
        inner.buf.push_back(span);
    }

    /// All retained spans of one trace, in completion order.
    pub fn spans_for(&self, trace_id: u64) -> Vec<FinishedSpan> {
        self.inner
            .lock()
            .unwrap()
            .buf
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Retained span count of one trace (0 when fully evicted).
    pub fn trace_span_count(&self, trace_id: u64) -> usize {
        self.inner
            .lock()
            .unwrap()
            .counts
            .get(&trace_id)
            .copied()
            .unwrap_or(0)
    }

    /// The most recently completed `n` spans, newest last.
    pub fn recent(&self, n: usize) -> Vec<FinishedSpan> {
        let inner = self.inner.lock().unwrap();
        inner
            .buf
            .iter()
            .skip(inner.buf.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Trace ID of the most recently completed root span, if any.
    pub fn last_root_trace(&self) -> Option<u64> {
        self.inner
            .lock()
            .unwrap()
            .buf
            .iter()
            .rev()
            .find(|s| s.parent_id == 0)
            .map(|s| s.trace_id)
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide span ring buffer. Sized so ~100 concurrent requests of
/// a few dozen spans each stay fully reconstructable (the fig4 collapse
/// runs 96 clients).
pub fn span_store() -> &'static SpanStore {
    static STORE: OnceLock<SpanStore> = OnceLock::new();
    STORE.get_or_init(|| SpanStore::with_capacity(8192))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_share_trace_and_link_parents() {
        let root = Span::root("t.root");
        let rctx = root.context();
        {
            let child = Span::child("t.child");
            assert_eq!(child.context().trace_id, rctx.trace_id);
            {
                let grand = Span::child("t.grand");
                assert_eq!(grand.context().trace_id, rctx.trace_id);
            }
        }
        drop(root);
        let spans = span_store().spans_for(rctx.trace_id);
        assert_eq!(spans.len(), 3);
        let child = spans.iter().find(|s| s.name == "t.child").unwrap();
        let grand = spans.iter().find(|s| s.name == "t.grand").unwrap();
        assert_eq!(child.parent_id, rctx.span_id);
        assert_eq!(grand.parent_id, child.span_id);
        let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn child_without_ambient_context_starts_a_root() {
        let _g = adopt(None); // shield from any ambient context
        let orphan = Span::child("t.orphan");
        let ctx = orphan.context();
        drop(orphan);
        let spans = span_store().spans_for(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_id, 0);
    }

    #[test]
    fn context_restored_after_drop() {
        let _g = adopt(None);
        assert_eq!(current(), None);
        let a = Span::root("t.a");
        let actx = a.context();
        {
            let b = Span::child("t.b");
            assert_eq!(current(), Some(b.context()));
        }
        assert_eq!(current(), Some(actx));
        drop(a);
        assert_eq!(current(), None);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let store = SpanStore::with_capacity(4);
        for i in 0..10 {
            store.record(FinishedSpan {
                trace_id: 1,
                span_id: i,
                parent_id: 0,
                name: "x".into(),
                start_us: i,
                duration_us: 1,
            });
        }
        assert_eq!(store.len(), 4);
        let spans = store.spans_for(1);
        assert_eq!(spans[0].span_id, 6);
        assert_eq!(store.last_root_trace(), Some(1));
    }

    #[test]
    fn trace_span_counts_track_eviction() {
        let store = SpanStore::with_capacity(3);
        let span = |trace_id: u64, span_id: u64| FinishedSpan {
            trace_id,
            span_id,
            parent_id: 0,
            name: "x".into(),
            start_us: 0,
            duration_us: 1,
        };
        store.record(span(1, 1));
        store.record(span(1, 2));
        store.record(span(2, 3));
        assert_eq!(store.trace_span_count(1), 2);
        assert_eq!(store.trace_span_count(2), 1);
        store.record(span(2, 4)); // evicts (1,1)
        store.record(span(2, 5)); // evicts (1,2)
        assert_eq!(store.trace_span_count(1), 0);
        assert_eq!(store.trace_span_count(2), 3);
    }

    #[test]
    fn record_interval_parents_to_ambient_and_noops_outside() {
        let _shield = adopt(None);
        record_interval("t.queue_wait", Instant::now());
        // Nothing recorded: no ambient context.
        let root = Span::root("t.iroot");
        let ctx = root.context();
        let t0 = Instant::now() - std::time::Duration::from_millis(2);
        record_interval("t.queue_wait", t0);
        drop(root);
        let spans = span_store().spans_for(ctx.trace_id);
        assert_eq!(spans.len(), 2);
        let wait = spans.iter().find(|s| s.name == "t.queue_wait").unwrap();
        assert_eq!(wait.parent_id, ctx.span_id);
        assert!(wait.duration_us >= 2_000, "{}", wait.duration_us);
        let r = spans.iter().find(|s| s.name == "t.iroot").unwrap();
        // The retroactive interval sits inside the root's window.
        assert!(wait.start_us + wait.duration_us <= r.start_us + r.duration_us + 1_000);
    }

    #[test]
    fn pending_root_finishes_off_thread() {
        let pending = PendingRoot::begin("t.unit");
        let ctx = pending.context();
        std::thread::spawn(move || {
            let _g = adopt(Some(ctx));
            let _child = Span::child("t.stage");
        })
        .join()
        .unwrap();
        pending.finish();
        let spans = span_store().spans_for(ctx.trace_id);
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.parent_id == 0).unwrap();
        assert_eq!(root.name, "t.unit");
        assert_eq!(root.span_id, ctx.span_id);
        let stage = spans.iter().find(|s| s.name == "t.stage").unwrap();
        assert_eq!(stage.parent_id, ctx.span_id);
    }
}
