//! Weighted-fair overload scheduling: a greedy session flooding the queue
//! cannot starve a light session. Completion order is observed through ana
//! id allocation (ids are minted at commit), which makes the assertion
//! timing-free; a wall-clock bound rides along as the p99 claim. Seeded
//! (`HEDC_TEST_SEED` replays the window jitter).

mod common;

use common::{any_hle, base_seed, dm_with_data, WINDOW};
use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
use hedc_dm::{splitmix64, Rights, SessionKind};
use hedc_pl::{PlConfig, ProcessingLogic, RequestSpec};
use std::sync::Arc;
use std::time::Instant;

#[test]
fn greedy_session_cannot_starve_a_light_one() {
    let dm = dm_with_data();
    let import = dm.import_session();
    let hle = any_hle(&dm, &import);

    // Two real users, two sessions: fairness domains are per user.
    dm.create_user("greedy", "pw", "sci", Rights::SCIENTIST)
        .unwrap();
    dm.create_user("light", "pw", "sci", Rights::SCIENTIST)
        .unwrap();
    let g_cookie = dm.login("greedy", "pw", "10.0.0.1").unwrap();
    let l_cookie = dm.login("light", "pw", "10.0.0.2").unwrap();
    let greedy = dm
        .session("10.0.0.1", g_cookie, SessionKind::Analysis)
        .unwrap();
    let light = dm
        .session("10.0.0.2", l_cookie, SessionKind::Analysis)
        .unwrap();

    // One dispatcher serializes completions so ana ids record the schedule.
    let pl = ProcessingLogic::start(
        Arc::clone(&dm),
        Arc::new(AlgorithmRegistry::with_builtins()),
        PlConfig {
            servers: 1,
            dispatchers: 1,
            ..PlConfig::default()
        },
    );

    let mut seed = base_seed();
    let mut jitter = || splitmix64(&mut seed) % 500;
    // Occupy the dispatcher so every later submit enqueues behind it.
    let blocker = RequestSpec::new(
        "imaging",
        AnalysisParams::window(WINDOW.0, WINDOW.1).with("grid", 32.0),
        hle,
    );
    let (_, rx_blocker) = pl.submit_async(Arc::clone(&greedy), blocker);

    // The greedy session floods 20 distinct-window jobs...
    const GREEDY_JOBS: usize = 20;
    const LIGHT_JOBS: usize = 4;
    let mut greedy_rx = Vec::new();
    for i in 0..GREEDY_JOBS as u64 {
        let off = WINDOW.0 + i * 2_000 + jitter();
        let spec = RequestSpec::new("histogram", AnalysisParams::window(off, off + 30_000), hle);
        greedy_rx.push(pl.submit_async(Arc::clone(&greedy), spec).1);
    }
    // ...then the light session asks for a handful.
    let started = Instant::now();
    let mut light_rx = Vec::new();
    for i in 0..LIGHT_JOBS as u64 {
        let off = WINDOW.0 + 300_000 + i * 2_000 + jitter();
        let spec = RequestSpec::new("histogram", AnalysisParams::window(off, off + 30_000), hle);
        light_rx.push(pl.submit_async(Arc::clone(&light), spec).1);
    }

    let light_ids: Vec<i64> = light_rx
        .into_iter()
        .map(|rx| rx.recv().unwrap().unwrap().ana_id())
        .collect();
    let light_done = started.elapsed();
    let greedy_ids: Vec<i64> = greedy_rx
        .into_iter()
        .map(|rx| rx.recv().unwrap().unwrap().ana_id())
        .collect();
    let greedy_done = started.elapsed();
    let _ = rx_blocker.recv().unwrap().unwrap();

    // Fair queueing alternates lanes: every light job completes within the
    // first few pops after the blocker, regardless of the 20-deep greedy
    // backlog. Bound: at most 8 greedy completions may precede the last
    // light completion (strict alternation would allow ~4).
    let last_light = *light_ids.iter().max().unwrap();
    let greedy_before = greedy_ids.iter().filter(|&&id| id < last_light).count();
    assert!(
        greedy_before <= 8,
        "light session starved: {greedy_before}/{GREEDY_JOBS} greedy jobs \
         completed before its last job (light {light_ids:?}, greedy {greedy_ids:?})"
    );
    // The p99 view of the same fact: the light session's worst-case wait is
    // well under the greedy session's (which must drain its own backlog).
    assert!(
        light_done < greedy_done,
        "light p99 {light_done:?} not better than greedy drain {greedy_done:?}"
    );
    pl.shutdown();
}
