//! Versioned result reuse: a recalibration (§3.1) must invalidate cached
//! analyses. The old `find_existing_analysis` path silently served results
//! computed under a superseded calibration; the versioned store recomputes
//! instead. This is the seeded regression for that wrong-answer bug.

mod common;

use common::{any_hle, dm_with_data, WINDOW};
use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
use hedc_events::Calibration;
use hedc_pl::{PlConfig, ProcessingLogic, RequestSpec};
use std::sync::Arc;

#[test]
fn recalibration_invalidates_cached_results() {
    let dm = dm_with_data();
    let session = dm.import_session();
    let hle = any_hle(&dm, &session);
    let pl = ProcessingLogic::start(
        Arc::clone(&dm),
        Arc::new(AlgorithmRegistry::with_builtins()),
        PlConfig {
            servers: 2,
            dispatchers: 2,
            ..PlConfig::default()
        },
    );
    let obs = hedc_obs::global();
    let spec = || {
        RequestSpec::new(
            "histogram",
            AnalysisParams::window(WINDOW.0, WINDOW.0 + 120_000).with("bins", 32.0),
            hle,
        )
    };

    // First submit computes; identical second submit is a warm hit.
    let first = pl.submit_sync(Arc::clone(&session), spec()).unwrap();
    assert!(!first.was_reused(), "first submit must compute");
    let ana_v1 = first.ana_id();
    let hits_before = obs.counter_value("pl.reuse.hit");
    let warm = pl.submit_sync(Arc::clone(&session), spec()).unwrap();
    assert!(warm.was_reused(), "identical resubmit reuses");
    assert_eq!(warm.ana_id(), ana_v1);
    assert!(obs.counter_value("pl.reuse.hit") > hits_before);

    // Recalibrate the mission (launch gain drifted): every v1 unit is
    // re-packaged at v2 and the lineage version bumps.
    let v1 = Calibration::launch();
    let v2 = v1.recalibrated(0.05, 0.0);
    let report = dm.versioning().apply_recalibration(&v1, &v2).unwrap();
    assert!(report.units_recalibrated > 0, "fixture has v1 units");

    // The cached entry is now stale: the same submit must recompute
    // against the v2 photons instead of serving the v1 answer.
    let stale_before = obs.counter_value("pl.reuse.stale");
    let recomputed = pl.submit_sync(Arc::clone(&session), spec()).unwrap();
    assert!(
        !recomputed.was_reused(),
        "post-recalibration submit served a stale cached result"
    );
    let ana_v2 = recomputed.ana_id();
    assert_ne!(ana_v2, ana_v1, "recompute mints a new analysis");
    assert!(
        obs.counter_value("pl.reuse.stale") > stale_before,
        "staleness eviction was recorded"
    );

    // And the store re-warms at the new lineage.
    let warm2 = pl.submit_sync(Arc::clone(&session), spec()).unwrap();
    assert!(warm2.was_reused(), "v2 result is reusable");
    assert_eq!(warm2.ana_id(), ana_v2);
    pl.shutdown();
}
