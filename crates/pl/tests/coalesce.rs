//! Single-flight coalescing (§3.5): concurrent identical submits execute
//! the analysis exactly once, and cancellation promotes a waiter to leader
//! instead of killing the group. Seeded (`HEDC_TEST_SEED` replays the
//! submit jitter).

mod common;

use common::{any_hle, base_seed, dm_with_data, SlowCount, WINDOW};
use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
use hedc_dm::splitmix64;
use hedc_pl::{PlConfig, PlError, ProcessingLogic, RequestSpec};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn concurrent_identical_submits_execute_exactly_once() {
    let dm = dm_with_data();
    let session = dm.import_session();
    let hle = any_hle(&dm, &session);
    let (alg, runs) = SlowCount::new(Duration::from_millis(150));
    let registry = Arc::new(AlgorithmRegistry::with_builtins());
    registry.register(alg);
    let pl = ProcessingLogic::start(
        Arc::clone(&dm),
        registry,
        PlConfig {
            servers: 2,
            dispatchers: 4,
            ..PlConfig::default()
        },
    );

    // N identical submits racing the leader's 150 ms execution. The jitter
    // between submits is seeded so a failing interleaving replays.
    let mut seed = base_seed();
    const N: usize = 8;
    let mut receivers = Vec::with_capacity(N);
    for _ in 0..N {
        let spec = RequestSpec::new("slowcount", AnalysisParams::window(WINDOW.0, WINDOW.1), hle);
        receivers.push(pl.submit_async(Arc::clone(&session), spec).1);
        std::thread::sleep(Duration::from_micros(splitmix64(&mut seed) % 2_000));
    }
    let outcomes: Vec<_> = receivers
        .into_iter()
        .map(|rx| rx.recv().unwrap().unwrap())
        .collect();

    // Exactly one execution, one computed outcome, one shared ana_id.
    assert_eq!(runs.load(Ordering::SeqCst), 1, "duplicates recomputed");
    let computed = outcomes.iter().filter(|o| !o.was_reused()).count();
    assert_eq!(computed, 1, "exactly one member sees the computed outcome");
    let ana = outcomes[0].ana_id();
    for o in &outcomes {
        assert_eq!(o.ana_id(), ana, "all members share one ana tuple");
    }
    assert!(
        hedc_obs::global().counter_value("pl.coalesce.attached") > 0,
        "duplicates attached rather than enqueueing"
    );
    pl.shutdown();
}

#[test]
fn cancelling_the_leader_promotes_a_waiter() {
    let dm = dm_with_data();
    let session = dm.import_session();
    let hle = any_hle(&dm, &session);
    let (alg, runs) = SlowCount::new(Duration::from_millis(400));
    let registry = Arc::new(AlgorithmRegistry::with_builtins());
    registry.register(alg);
    let pl = ProcessingLogic::start(
        Arc::clone(&dm),
        registry,
        PlConfig {
            servers: 1,
            dispatchers: 1,
            ..PlConfig::default()
        },
    );
    let promotions_before = hedc_obs::global().counter_value("pl.coalesce.promotions");

    let spec = || {
        RequestSpec::new(
            "slowcount",
            AnalysisParams::window(WINDOW.0, WINDOW.0 + 60_000),
            hle,
        )
    };
    let (leader_state, leader_rx) = pl.submit_async(Arc::clone(&session), spec());
    let (_waiter_state, waiter_rx) = pl.submit_async(Arc::clone(&session), spec());

    // Cancel the leader mid-execution; the waiter's work must survive.
    std::thread::sleep(Duration::from_millis(100));
    leader_state.cancel();

    let leader_result = leader_rx.recv().unwrap();
    assert!(
        matches!(leader_result, Err(PlError::Cancelled)),
        "cancelled leader gets Cancelled, got {leader_result:?}"
    );
    let waiter_outcome = waiter_rx.recv().unwrap().unwrap();
    assert!(
        !waiter_outcome.was_reused(),
        "promoted waiter inherits the computed outcome"
    );
    assert_eq!(runs.load(Ordering::SeqCst), 1, "the group executed once");
    assert!(
        hedc_obs::global().counter_value("pl.coalesce.promotions") > promotions_before,
        "leader promotion was recorded"
    );
    pl.shutdown();
}
