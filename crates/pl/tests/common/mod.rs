//! Shared fixture for the PL integration suites: a bootstrapped DM with 20
//! minutes of synthetic telemetry, plus a deliberately slow in-process
//! algorithm whose execution count makes "exactly once" assertable.

#![allow(dead_code)] // each test binary uses a subset of this fixture

use hedc_analysis::{Algorithm, AnalysisError, AnalysisParams, AnalysisProduct};
use hedc_dm::{Dm, DmConfig, IngestConfig, Session};
use hedc_events::{generate, package, GenConfig};
use hedc_filestore::{Archive, ArchiveTier, FileStore, PhotonList};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The loaded telemetry window, mission ms.
pub const WINDOW: (u64, u64) = (0, 20 * 60 * 1000);

/// Deterministic replay: `HEDC_TEST_SEED` pins every seeded choice.
pub fn base_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_C0DE)
}

/// Bootstrapped DM with telemetry ingested at launch calibration (v1).
pub fn dm_with_data() -> Arc<Dm> {
    let files = Arc::new(FileStore::new());
    files.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    files.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    let dm = Dm::bootstrap(files, DmConfig::default()).unwrap();
    let t = generate(&GenConfig {
        duration_ms: WINDOW.1,
        flares_per_hour: 6.0,
        background_rate: 15.0,
        seed: 4242,
        ..GenConfig::default()
    });
    let session = dm.import_session();
    let cfg = IngestConfig::new(1, 2, dm.extended_catalog);
    for unit in package(&t, 200_000, 1) {
        dm.processes().ingest_unit(&session, &unit, &cfg).unwrap();
    }
    dm
}

/// Any HLE id to attach analyses to.
pub fn any_hle(dm: &Dm, session: &Session) -> i64 {
    let r = dm
        .services()
        .query(session, hedc_metadb::Query::table("hle").limit(1))
        .unwrap();
    r.rows[0][0].as_int().unwrap()
}

/// An in-process algorithm that sleeps for a configured delay and counts
/// its executions — slow enough that concurrent duplicates overlap its
/// run, countable enough to prove single-flight executed exactly once.
pub struct SlowCount {
    pub delay: Duration,
    pub runs: Arc<AtomicUsize>,
}

impl SlowCount {
    pub fn new(delay: Duration) -> (Arc<SlowCount>, Arc<AtomicUsize>) {
        let runs = Arc::new(AtomicUsize::new(0));
        (
            Arc::new(SlowCount {
                delay,
                runs: Arc::clone(&runs),
            }),
            runs,
        )
    }
}

impl Algorithm for SlowCount {
    fn name(&self) -> &str {
        "slowcount"
    }

    fn run(
        &self,
        photons: &PhotonList,
        _params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        Ok(AnalysisProduct::Histogram {
            edges: vec![0.0, 1.0],
            counts: vec![photons.times_ms.len() as u64],
        })
    }

    fn cost_flops(&self, photons: u64, _p: &AnalysisParams) -> f64 {
        photons as f64
    }
}
