//! The PL's observability contract: reuse and coalescing metrics are
//! registered in the **global** `hedc_obs` registry — the same registry
//! `/hedc/stats` and `/hedc/stats.json` render under `== processing ==` —
//! so redundancy elimination is visible operationally with no extra wiring.

mod common;

use common::{any_hle, dm_with_data, SlowCount, WINDOW};
use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
use hedc_pl::{PlConfig, ProcessingLogic, RequestSpec};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn pl_metrics_surface_in_the_global_registry() {
    let dm = dm_with_data();
    let session = dm.import_session();
    let hle = any_hle(&dm, &session);
    let (alg, _runs) = SlowCount::new(Duration::from_millis(120));
    let registry = Arc::new(AlgorithmRegistry::with_builtins());
    registry.register(alg);
    let pl = ProcessingLogic::start(
        Arc::clone(&dm),
        registry,
        PlConfig {
            servers: 2,
            dispatchers: 2,
            ..PlConfig::default()
        },
    );

    // One miss (computes), one hit (warm store), one coalesced pair.
    let spec = || {
        RequestSpec::new(
            "histogram",
            AnalysisParams::window(WINDOW.0, WINDOW.0 + 60_000),
            hle,
        )
    };
    assert!(!pl
        .submit_sync(Arc::clone(&session), spec())
        .unwrap()
        .was_reused());
    assert!(pl
        .submit_sync(Arc::clone(&session), spec())
        .unwrap()
        .was_reused());
    let slow = || RequestSpec::new("slowcount", AnalysisParams::window(WINDOW.0, WINDOW.1), hle);
    let (_, rx_a) = pl.submit_async(Arc::clone(&session), slow());
    let (_, rx_b) = pl.submit_async(Arc::clone(&session), slow());
    rx_a.recv().unwrap().unwrap();
    rx_b.recv().unwrap().unwrap();

    let names: Vec<String> = {
        let s = hedc_obs::global().snapshot();
        s.counters
            .iter()
            .map(|(n, _)| n.clone())
            .chain(s.gauges.iter().map(|(n, _)| n.clone()))
            .chain(s.histograms.iter().map(|(n, _)| n.clone()))
            .collect()
    };
    for metric in [
        "pl.reuse.hit",
        "pl.reuse.miss",
        "pl.reuse.stale",
        "pl.reuse.coalesced",
        "pl.coalesce.attached",
        "pl.coalesce.promotions",
        "pl.inflight_groups",
        "pl.queue.depth",
        "pl.queue.sessions",
    ] {
        assert!(
            names.iter().any(|n| n == metric),
            "{metric} missing from the global obs registry"
        );
    }
    // Activity actually flowed through the registered handles.
    let obs = hedc_obs::global();
    assert!(obs.counter_value("pl.reuse.hit") > 0);
    assert!(obs.counter_value("pl.reuse.miss") > 0);
    assert!(obs.counter_value("pl.coalesce.attached") > 0);
    assert!(obs.counter_value("pl.reuse.coalesced") > 0);
    pl.shutdown();
}
