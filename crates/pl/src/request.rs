//! The abstract request model (§5.1).
//!
//! "Regardless of the interface, an analysis follows an abstract model that
//! describes the workflow of an individual request along 4 phases:
//! Estimation, Execution, Delivery, Commit. Phases must be executed in
//! order, and not all phases are mandatory. Requests can be canceled at any
//! time and induce the cleanup for the current phase."

use hedc_analysis::AnalysisParams;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Request priority. Interactive browsing work preempts batch recomputation
/// ("the execution of requests ... is launched according to a priority
/// scheduling", §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Background recomputation (e.g. post-recalibration sweeps).
    Batch = 0,
    /// Standard user request.
    Normal = 1,
    /// Interactive request from a waiting user.
    Interactive = 2,
}

/// The request phases, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Created, not yet estimated/queued.
    Submitted = 0,
    /// Estimation produced an execution plan.
    Estimated = 1,
    /// Executing on an analysis server.
    Executing = 2,
    /// Result produced, available for delivery.
    Delivered = 3,
    /// Result written back through the DM.
    Committed = 4,
    /// Cancelled (terminal).
    Cancelled = 5,
    /// Failed (terminal).
    Failed = 6,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Submitted,
            1 => Phase::Estimated,
            2 => Phase::Executing,
            3 => Phase::Delivered,
            4 => Phase::Committed,
            5 => Phase::Cancelled,
            _ => Phase::Failed,
        }
    }

    /// Whether the phase is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Committed | Phase::Cancelled | Phase::Failed)
    }
}

/// What a caller asks the PL to do.
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// Algorithm name (resolved through the registry).
    pub kind: String,
    /// Analysis parameters.
    pub params: AnalysisParams,
    /// The HLE the result will attach to.
    pub hle_id: i64,
    /// Scheduling priority.
    pub priority: Priority,
    /// Skip the §3.5 redundancy check (force recomputation).
    pub force: bool,
    /// Reject if the estimate exceeds this many ms (None = no limit).
    pub cost_limit_ms: Option<u64>,
}

impl RequestSpec {
    /// A normal-priority request.
    pub fn new(kind: &str, params: AnalysisParams, hle_id: i64) -> Self {
        RequestSpec {
            kind: kind.to_string(),
            params,
            hle_id,
            priority: Priority::Normal,
            force: false,
            cost_limit_ms: None,
        }
    }

    /// Set the priority.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Force recomputation even when an identical result exists.
    pub fn force(mut self) -> Self {
        self.force = true;
        self
    }

    /// Reject when estimated beyond a limit.
    pub fn cost_limit_ms(mut self, limit: u64) -> Self {
        self.cost_limit_ms = Some(limit);
        self
    }
}

/// Shared, observable request state: phase + cancellation flag. Handed to
/// the caller on async submission so progress can be watched and the
/// request cancelled mid-flight.
#[derive(Debug, Default)]
pub struct RequestState {
    phase: AtomicU8,
    cancelled: AtomicBool,
}

impl RequestState {
    /// Current phase.
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.phase.load(Ordering::SeqCst))
    }

    /// Advance to a phase. Enforces forward-only ordering except for the
    /// terminal Cancelled/Failed transitions.
    pub fn advance(&self, to: Phase) -> bool {
        let cur = self.phase();
        if cur.is_terminal() {
            return false;
        }
        if !to.is_terminal() && (to as u8) <= (cur as u8) {
            return false;
        }
        self.phase.store(to as u8, Ordering::SeqCst);
        true
    }

    /// Request cancellation ("requests can be canceled at any time").
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_advance_forward_only() {
        let s = RequestState::default();
        assert_eq!(s.phase(), Phase::Submitted);
        assert!(s.advance(Phase::Estimated));
        assert!(s.advance(Phase::Executing));
        assert!(!s.advance(Phase::Estimated), "no going back");
        assert!(s.advance(Phase::Committed));
        assert!(!s.advance(Phase::Executing), "terminal is final");
    }

    #[test]
    fn cancellation_is_terminal() {
        let s = RequestState::default();
        s.advance(Phase::Executing);
        s.cancel();
        assert!(s.is_cancelled());
        assert!(s.advance(Phase::Cancelled));
        assert!(!s.advance(Phase::Delivered));
        assert_eq!(s.phase(), Phase::Cancelled);
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::Interactive > Priority::Normal);
        assert!(Priority::Normal > Priority::Batch);
    }

    #[test]
    fn spec_builder() {
        let spec = RequestSpec::new("imaging", AnalysisParams::window(0, 100), 7)
            .priority(Priority::Interactive)
            .force()
            .cost_limit_ms(5000);
        assert_eq!(spec.priority, Priority::Interactive);
        assert!(spec.force);
        assert_eq!(spec.cost_limit_ms, Some(5000));
    }
}
