//! The PL frontend (§5.1).
//!
//! "Primary controller of sessions and requests, dispatch and scheduling of
//! requests to processing subsystems. There is one instance of this
//! service." The frontend accepts requests through any interface, runs the
//! 4-phase workflow (estimation → execution → delivery → commit), schedules
//! across sessions with weighted fair queueing, eliminates redundant work
//! (§3.5) through single-flight coalescing and a calibration-versioned
//! result store, stages input data through the DM, and writes results back
//! through the DM's semantic layer.
//!
//! Redundancy elimination happens at three horizons, checked in order of
//! cost:
//!
//! 1. **In-flight** — a submit whose fingerprint matches a queued or
//!    executing request attaches to that group ([`crate::singleflight`])
//!    and never enqueues; O(1) on the submit path.
//! 2. **Result store** — an in-memory fingerprint → `(ana_id,
//!    calib_version)` map serves repeat requests without a metadata query,
//!    but only when the entry's calibration version is current: a
//!    recalibration (§3.1) bumps the DM's lineage and stale entries are
//!    dropped instead of served.
//! 3. **Committed results** — the session-scoped `ana` lookup, now also
//!    filtered by calibration lineage, so a post-recalibration submit
//!    recomputes instead of silently returning a product derived from
//!    superseded calibrations.

use crate::error::{PlError, PlResult};
use crate::estimate::{estimate, ExecTarget, ExecutionPlan};
use crate::request::{Phase, Priority, RequestSpec, RequestState};
use crate::sched::{FairQueue, Weighted};
use crate::server_mgr::ServerManager;
use crate::singleflight::{Admission, Group, Inflight, Member, Prune};
use crossbeam::channel::{bounded, Receiver};
use hedc_analysis::{select_photons, AlgorithmRegistry, AnalysisKind, AnalysisProduct};
use hedc_dm::{AnaSpec, Dm, FilePayload, NameType, Session};
use hedc_events::TelemetryUnit;
use hedc_filestore::{FitsFile, Header, PhotonList};
use hedc_metadb::{Expr, Query};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// PL configuration.
#[derive(Debug, Clone)]
pub struct PlConfig {
    /// Number of analysis servers to manage.
    pub servers: usize,
    /// Number of dispatcher threads draining the queue.
    pub dispatchers: usize,
    /// Per-job execution timeout.
    pub job_timeout: Duration,
    /// Recovery attempts per job.
    pub max_retries: u32,
    /// Archive receiving result files.
    pub derived_archive: u32,
    /// Coalesce identical in-flight requests onto one execution (§3.5).
    pub coalesce: bool,
    /// Max concurrently-executing jobs per session (0 = one per
    /// dispatcher); bounds how much of the dispatcher pool one session can
    /// occupy.
    pub session_quota: usize,
}

impl Default for PlConfig {
    fn default() -> Self {
        PlConfig {
            servers: 2,
            dispatchers: 2,
            job_timeout: Duration::from_secs(120),
            max_retries: 2,
            derived_archive: 2,
            coalesce: true,
            session_quota: 0,
        }
    }
}

/// The result of a completed request.
#[derive(Debug)]
pub enum Outcome {
    /// §3.5: an identical analysis already existed (committed, or computed
    /// by an in-flight request this one coalesced onto); no computation
    /// spent on this request.
    Reused {
        /// The existing ANA tuple.
        ana_id: i64,
    },
    /// Computed, delivered, committed.
    Computed {
        /// New ANA tuple id.
        ana_id: i64,
        /// Item holding the result files (None when no files were written).
        item_id: Option<i64>,
        /// The product itself (delivery phase output).
        product: AnalysisProduct,
        /// Wall-clock execution time, ms.
        duration_ms: u64,
        /// The estimation-phase plan, for predictor-quality accounting.
        plan: ExecutionPlan,
    },
}

impl Outcome {
    /// The ANA tuple id in either case.
    pub fn ana_id(&self) -> i64 {
        match self {
            Outcome::Reused { ana_id } | Outcome::Computed { ana_id, .. } => *ana_id,
        }
    }

    /// Whether the result was reused rather than computed.
    pub fn was_reused(&self) -> bool {
        matches!(self, Outcome::Reused { .. })
    }
}

struct Queued {
    priority: Priority,
    seq: u64,
    user: i64,
    session: Arc<Session>,
    spec: RequestSpec,
    /// Canonical parameter fingerprint (computed once at submit).
    fingerprint: String,
    /// User-scoped reuse key: `user_id/fingerprint`.
    key: String,
    /// The single-flight group this execution serves (leader + any waiters
    /// that attached while it was queued or executing).
    group: Arc<Group>,
    /// Trace context captured at submit time, re-adopted by the dispatcher
    /// thread so the request keeps one trace ID across the thread hop.
    trace: Option<hedc_obs::SpanContext>,
    /// Submit instant, for the `pl.queue_wait` histogram.
    enqueued: Instant,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Within one session's lane: higher priority first, then FIFO.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl Weighted for Queued {
    fn fairness_key(&self) -> i64 {
        self.user
    }
    fn weight(&self) -> u64 {
        match self.priority {
            Priority::Interactive => 4,
            Priority::Normal => 2,
            Priority::Batch => 1,
        }
    }
}

struct QueueState {
    queue: FairQueue<Queued>,
}

/// The Processing Logic component: one frontend instance.
pub struct ProcessingLogic {
    dm: Arc<Dm>,
    /// The server manager (public for directory/status access).
    pub manager: Arc<ServerManager>,
    registry: Arc<AlgorithmRegistry>,
    config: PlConfig,
    queue: Arc<(Mutex<QueueState>, Condvar)>,
    /// In-flight single-flight groups, keyed by user-scoped fingerprint.
    inflight: Inflight,
    /// Versioned result store: key → (ana_id, calib_version). Entries are
    /// only served while their calibration version matches the DM lineage.
    results: Mutex<HashMap<String, (i64, u32)>>,
    /// EWMA of recent execution wall time, µs (0 = no sample yet); feeds
    /// the queue-depth-aware wait prediction in [`Self::estimate_only`].
    ewma_exec_us: AtomicU64,
    /// Jobs currently being processed by dispatchers.
    executing: AtomicUsize,
    shutdown: Arc<AtomicBool>,
    seq: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ProcessingLogic {
    /// Start the frontend, its dispatchers, and its analysis servers.
    pub fn start(dm: Arc<Dm>, registry: Arc<AlgorithmRegistry>, config: PlConfig) -> Arc<Self> {
        // Register the processing metrics up front so they surface on
        // /hedc/stats as zeros rather than appearing on first use.
        let g = hedc_obs::global();
        for c in [
            "pl.reuse.hit",
            "pl.reuse.miss",
            "pl.reuse.stale",
            "pl.reuse.coalesced",
            "pl.coalesce.attached",
            "pl.coalesce.promotions",
        ] {
            g.counter(c);
        }
        for ga in ["pl.inflight_groups", "pl.queue.depth", "pl.queue.sessions"] {
            g.gauge(ga);
        }
        let manager = Arc::new(ServerManager::start(
            config.servers,
            config.job_timeout,
            config.max_retries,
        ));
        let pl = Arc::new(ProcessingLogic {
            dm,
            manager,
            registry,
            config: config.clone(),
            queue: Arc::new((
                Mutex::new(QueueState {
                    queue: FairQueue::new(),
                }),
                Condvar::new(),
            )),
            inflight: Inflight::default(),
            results: Mutex::new(HashMap::new()),
            ewma_exec_us: AtomicU64::new(0),
            executing: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            seq: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        for i in 0..config.dispatchers.max(1) {
            let me = Arc::clone(&pl);
            let handle = std::thread::Builder::new()
                .name(format!("pl-dispatch-{i}"))
                .spawn(move || me.dispatch_loop())
                .expect("spawn dispatcher");
            pl.workers.lock().push(handle);
        }
        pl
    }

    fn session_quota(&self) -> usize {
        if self.config.session_quota > 0 {
            self.config.session_quota
        } else {
            self.config.dispatchers.max(1)
        }
    }

    /// Stop the dispatchers (in-queue requests are failed with
    /// [`PlError::ShuttingDown`]).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cvar) = &*self.queue;
        let drained = lock.lock().queue.drain();
        for q in drained {
            self.inflight.deregister(&q.key, &q.group);
            q.group.complete(Err(PlError::ShuttingDown));
        }
        cvar.notify_all();
        let mut workers = self.workers.lock();
        for h in workers.drain(..) {
            let _ = h.join();
        }
        // A submit racing the drain above may have queued after it; fail
        // those too so no caller blocks on a reply that will never come.
        let drained = lock.lock().queue.drain();
        for q in drained {
            self.inflight.deregister(&q.key, &q.group);
            q.group.complete(Err(PlError::ShuttingDown));
        }
        // And any group a racing submit registered but never enqueued.
        for group in self.inflight.drain() {
            group.complete(Err(PlError::ShuttingDown));
        }
    }

    /// Submit asynchronously. Returns the observable request state and the
    /// channel delivering the outcome.
    ///
    /// Admission is O(1): one map probe either attaches this request to an
    /// identical in-flight execution (no queue entry at all) or registers
    /// it as the leader of a new group and enqueues it on its session's
    /// lane.
    pub fn submit_async(
        &self,
        session: Arc<Session>,
        spec: RequestSpec,
    ) -> (Arc<RequestState>, Receiver<PlResult<Outcome>>) {
        let state = Arc::new(RequestState::default());
        let (tx, rx) = bounded(1);
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = tx.send(Err(PlError::ShuttingDown));
            return (state, rx);
        }
        let fingerprint = spec.params.fingerprint_with(&spec.kind);
        let key = format!("{}/{}", session.user_id, fingerprint);
        let member = Member {
            state: Arc::clone(&state),
            reply: tx,
        };
        // `force` requests must execute, and must not absorb followers that
        // would then silently share the forced recomputation's identity.
        // Attach also requires the analyze right up front: waiters never
        // pass through the leader's rights check.
        let register = self.config.coalesce
            && !spec.force
            && session.require(hedc_dm::Rights::ANALYZE, "analyze").is_ok();
        let group = match self.inflight.admit(&key, member, register) {
            Admission::Attached => {
                hedc_obs::global().counter("pl.coalesce.attached").inc();
                return (state, rx);
            }
            Admission::Leader(group) => group,
        };
        let q = Queued {
            priority: spec.priority,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            user: session.user_id,
            session,
            spec,
            fingerprint,
            key,
            group,
            trace: hedc_obs::current(),
            enqueued: Instant::now(),
        };
        let (lock, cvar) = &*self.queue;
        {
            let mut qs = lock.lock();
            qs.queue.push(q);
            let g = hedc_obs::global();
            g.gauge("pl.queue.depth").set(qs.queue.len() as i64);
            g.gauge("pl.queue.sessions").set(qs.queue.sessions() as i64);
        }
        cvar.notify_one();
        (state, rx)
    }

    /// Submit and wait for the outcome.
    pub fn submit_sync(&self, session: Arc<Session>, spec: RequestSpec) -> PlResult<Outcome> {
        let (_, rx) = self.submit_async(session, spec);
        rx.recv().map_err(|_| PlError::ShuttingDown)?
    }

    /// Estimation only (the "returns immediately" phase): metadata-based
    /// photon-count estimate, no data staged. The plan's
    /// `predicted_wait_ms` reflects the actual backlog — queued plus
    /// executing jobs times the recent per-job execution EWMA, divided
    /// across the dispatcher pool — so overload degrades predictably
    /// instead of promising idle-system latencies.
    pub fn estimate_only(&self, spec: &RequestSpec, target: ExecTarget) -> PlResult<ExecutionPlan> {
        let alg = self.registry.get(&spec.kind)?;
        let count = self.estimate_photon_count(spec)?;
        let mut plan = estimate(alg.as_ref(), count, &spec.params, target);
        let backlog = self.queue.0.lock().queue.len() + self.executing.load(Ordering::Relaxed);
        let ewma_ms = self.ewma_exec_us.load(Ordering::Relaxed) / 1000;
        plan.predicted_wait_ms = backlog as u64 * ewma_ms / self.config.dispatchers.max(1) as u64;
        Ok(plan)
    }

    fn dispatch_loop(&self) {
        let (lock, cvar) = &*self.queue;
        let quota = self.session_quota();
        loop {
            let job = {
                let mut qs = lock.lock();
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(job) = qs.queue.pop(quota) {
                        let g = hedc_obs::global();
                        g.gauge("pl.queue.depth").set(qs.queue.len() as i64);
                        g.gauge("pl.queue.sessions").set(qs.queue.sessions() as i64);
                        break job;
                    }
                    cvar.wait(&mut qs);
                }
            };
            hedc_obs::global()
                .histogram("pl.queue_wait")
                .record(job.enqueued.elapsed());
            let inflight = hedc_obs::global().gauge("pl.inflight");
            inflight.add(1);
            self.executing.fetch_add(1, Ordering::Relaxed);
            let result = {
                // Continue the submitter's trace on this dispatcher thread;
                // a request submitted outside any trace starts its own here.
                let _trace = hedc_obs::adopt(job.trace);
                // The queue wait becomes a span too, parented to the
                // submitter's root (not pl.process, which starts only now —
                // the wait lies entirely before its window).
                hedc_obs::record_interval("pl.queue_wait", job.enqueued);
                let _span = hedc_obs::Span::child("pl.process");
                self.process(&job)
            };
            inflight.add(-1);
            self.executing.fetch_sub(1, Ordering::Relaxed);
            self.finish(&job, result);
            {
                let mut qs = lock.lock();
                qs.queue.job_done(job.user);
                if qs.queue.len() > 0 {
                    // A lane held back by its quota may be eligible now.
                    cvar.notify_one();
                }
            }
        }
    }

    /// Deregister the job's group (atomically closing it to new waiters)
    /// and deliver the result to every member ([`Group::complete`] accounts
    /// coalesced waiters before it replies).
    fn finish(&self, job: &Queued, result: PlResult<Outcome>) {
        self.inflight.deregister(&job.key, &job.group);
        job.group.complete(result);
    }

    /// The 4-phase workflow, executed once on behalf of the whole group.
    fn process(&self, job: &Queued) -> PlResult<Outcome> {
        let session = &job.session;
        let spec = &job.spec;
        let obs = hedc_obs::global();
        // Cancellation points: prune cancelled members (each answered with
        // `Cancelled`); the execution survives as long as any member does —
        // cancelling the leader promotes a waiter instead of killing the
        // group.
        let check_cancel = || -> PlResult<()> {
            match job.group.prune_cancelled() {
                Prune::Abandoned => Err(PlError::Cancelled),
                Prune::Continue { promoted } => {
                    if promoted {
                        hedc_obs::global().counter("pl.coalesce.promotions").inc();
                    }
                    Ok(())
                }
            }
        };

        // ---- Phase 0: rights -----------------------------------------------
        // §5.5: running analyses on the server requires the analyze right;
        // reject before any estimation or staging work is spent.
        session
            .require(hedc_dm::Rights::ANALYZE, "analyze")
            .map_err(PlError::Dm)?;

        // ---- Phase 1: estimation -----------------------------------------
        check_cancel()?;
        let alg = self.registry.get(&spec.kind)?;
        let photon_estimate = self.estimate_photon_count(spec)?;
        let plan = estimate(
            alg.as_ref(),
            photon_estimate,
            &spec.params,
            ExecTarget::Server,
        );
        if let Some(limit) = spec.cost_limit_ms {
            if plan.estimated_ms > limit {
                return Err(PlError::TooExpensive {
                    estimated_ms: plan.estimated_ms,
                    limit_ms: limit,
                });
            }
        }
        job.group.advance(Phase::Estimated);

        // ---- Redundancy check (§3.5), before any expensive work ----------
        // Served from the in-memory result store when its entry is at the
        // current calibration lineage, falling back to the session-scoped
        // committed-result lookup (also lineage-filtered). Concurrent
        // identical requests never reach here twice: the second submit
        // attaches to the first's in-flight group instead of enqueueing.
        let lineage = self.dm.io.calib_lineage();
        if !spec.force {
            let cached = self.results.lock().get(&job.key).copied();
            if let Some((ana_id, calib)) = cached {
                if calib >= lineage {
                    obs.counter("pl.reuse.hit").inc();
                    return Ok(Outcome::Reused { ana_id });
                }
                // Recalibration outran this entry: drop it and recompute.
                self.results.lock().remove(&job.key);
                obs.counter("pl.reuse.stale").inc();
            }
            if let Some((ana_id, calib)) = self.dm.services().find_existing_analysis_versioned(
                session,
                &job.fingerprint,
                lineage,
            )? {
                self.results.lock().insert(job.key.clone(), (ana_id, calib));
                obs.counter("pl.reuse.hit").inc();
                return Ok(Outcome::Reused { ana_id });
            }
            obs.counter("pl.reuse.miss").inc();
        }

        // ---- Phase 2: execution -------------------------------------------
        check_cancel()?;
        job.group.advance(Phase::Executing);
        let started = Instant::now();
        let (staged, calib_version) = self.stage_photons(spec)?;
        let photons = Arc::new(staged);
        let kind_enum = AnalysisKind::parse(&spec.kind);
        let product = match kind_enum {
            // Built-in kinds run on the managed interpreter pool.
            Some(kind) => self
                .manager
                .run(kind, Arc::clone(&photons), spec.params.clone())?,
            // User-registered algorithms run in-process (they are native
            // strategy objects, not interpreter scripts).
            None => alg.run(&photons, &spec.params)?,
        };
        let duration_ms = started.elapsed().as_millis() as u64;
        hedc_obs::global()
            .histogram("pl.analysis")
            .record(started.elapsed());
        let us = started.elapsed().as_micros() as u64;
        let prev = self.ewma_exec_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            us
        } else {
            prev - prev / 8 + us / 8
        };
        self.ewma_exec_us.store(next, Ordering::Relaxed);
        self.dm.io.clock.advance(plan.estimated_ms.max(1));

        // ---- Phase 3: delivery ---------------------------------------------
        check_cancel()?;
        job.group.advance(Phase::Delivered);
        let files = self.deliver(&job.fingerprint, job.seq, spec, &product)?;

        // ---- Phase 4: commit ------------------------------------------------
        check_cancel()?;
        let output_bytes: i64 = files.iter().map(|f| f.data.len() as i64).sum();
        let ana_spec = AnaSpec {
            hle_id: spec.hle_id,
            kind: spec.kind.clone(),
            fingerprint: job.fingerprint.clone(),
            t_start: spec.params.t_start_ms,
            t_end: spec.params.t_end_ms,
            energy_lo: spec.params.energy_lo_kev,
            energy_hi: spec.params.energy_hi_kev,
            param_grid: spec.params.extra.get("grid").copied(),
            param_bins: spec.params.extra.get("bins").copied(),
            param_bin_ms: spec.params.extra.get("bin_ms").copied(),
            duration_ms: duration_ms as i64,
            cpu_ms: plan.estimated_ms as i64,
            output_bytes,
            product_type: product.type_label().to_string(),
            calib_version,
        };
        let (ana_id, item_id) = self
            .dm
            .services()
            .import_analysis(session, &ana_spec, &files)?;
        // Feed the result store so the next identical request is O(1).
        self.results
            .lock()
            .insert(job.key.clone(), (ana_id, calib_version));
        self.dm.io.audit(
            session.user_id,
            &format!("analysis:{}", spec.kind),
            Some(duration_ms as i64),
        )?;
        Ok(Outcome::Computed {
            ana_id,
            item_id,
            product,
            duration_ms,
            plan,
        })
    }

    /// Metadata-only photon-count estimate: sum raw-unit counts scaled by
    /// window overlap.
    fn estimate_photon_count(&self, spec: &RequestSpec) -> PlResult<u64> {
        let q = Query::table("raw_unit").filter(
            Expr::cmp(
                "t_start",
                hedc_metadb::CmpOp::Lt,
                spec.params.t_end_ms as i64,
            )
            .and(Expr::cmp(
                "t_end",
                hedc_metadb::CmpOp::Gt,
                spec.params.t_start_ms as i64,
            )),
        );
        let r = self.dm.io.query(&q)?;
        let mut total = 0f64;
        for row in &r.rows {
            let t0 = row[2].as_int().unwrap_or(0) as u64;
            let t1 = row[3].as_int().unwrap_or(0) as u64;
            let n = row[4].as_int().unwrap_or(0) as f64;
            let lo = t0.max(spec.params.t_start_ms);
            let hi = t1.min(spec.params.t_end_ms);
            if hi > lo && t1 > t0 {
                total += n * ((hi - lo) as f64 / (t1 - t0) as f64);
            }
        }
        Ok(total.round() as u64)
    }

    /// Stage the input photons: locate overlapping raw units through the
    /// name mapping, parse, concatenate, and cut to the window. This is the
    /// "coordinates necessary data transformations" role of §2.3.
    fn stage_photons(&self, spec: &RequestSpec) -> PlResult<(PhotonList, u32)> {
        let q = Query::table("raw_unit")
            .filter(
                Expr::cmp(
                    "t_start",
                    hedc_metadb::CmpOp::Lt,
                    spec.params.t_end_ms as i64,
                )
                .and(Expr::cmp(
                    "t_end",
                    hedc_metadb::CmpOp::Gt,
                    spec.params.t_start_ms as i64,
                )),
            )
            .order_by("t_start", hedc_metadb::OrderDir::Asc);
        let r = self.dm.io.query(&q)?;
        let names = self.dm.names();
        let mut merged = PhotonList::default();
        // Provenance: the analysis is computed under the calibration of its
        // inputs (§3.1); staging across mixed versions records the newest.
        let mut calib_version = 1u32;
        for row in &r.rows {
            let item_id = row[6].as_int().ok_or(PlError::BadPhase("raw item"))?;
            let bytes = names.fetch_data(item_id)?;
            let unit = TelemetryUnit::from_fits(
                &FitsFile::from_bytes(&bytes).map_err(hedc_dm::DmError::Fs)?,
            )
            .map_err(hedc_dm::DmError::Fs)?;
            calib_version = calib_version.max(unit.calib_version);
            let cut = select_photons(&unit.photons, &spec.params);
            merged.times_ms.extend_from_slice(&cut.times_ms);
            merged.energies_kev.extend_from_slice(&cut.energies_kev);
            merged.detectors.extend_from_slice(&cut.detectors);
        }
        Ok((merged, calib_version))
    }

    /// Delivery: serialize the product into result files (image/grid as
    /// FITS, series/histogram as JSON) plus the parameter and log files the
    /// paper lists (§4.1).
    fn deliver(
        &self,
        fingerprint: &str,
        seq: u64,
        spec: &RequestSpec,
        product: &AnalysisProduct,
    ) -> PlResult<Vec<FilePayload>> {
        let dir = format!("ana/req{seq:08}");
        let mut files = Vec::with_capacity(3);
        match product {
            AnalysisProduct::Image(img) | AnalysisProduct::Grid(img) => {
                let fits = img.to_fits(Header::new());
                files.push(FilePayload {
                    archive_id: self.config.derived_archive,
                    path: format!("{dir}/result.fits"),
                    role: "image".to_string(),
                    data: fits.to_bytes(),
                });
            }
            AnalysisProduct::Series { bin_ms, bands } => {
                let json = serde_json::json!({
                    "bin_ms": bin_ms,
                    "bands": bands.iter().map(|(l, c)| serde_json::json!({
                        "label": l, "counts": c,
                    })).collect::<Vec<_>>(),
                });
                files.push(FilePayload {
                    archive_id: self.config.derived_archive,
                    path: format!("{dir}/result.json"),
                    role: "data".to_string(),
                    data: serde_json::to_vec(&json).expect("serialize series"),
                });
            }
            AnalysisProduct::Histogram { edges, counts } => {
                let json = serde_json::json!({ "edges": edges, "counts": counts });
                files.push(FilePayload {
                    archive_id: self.config.derived_archive,
                    path: format!("{dir}/result.json"),
                    role: "data".to_string(),
                    data: serde_json::to_vec(&json).expect("serialize histogram"),
                });
            }
        }
        // Parameter file (exact reproduction recipe).
        let params_json = serde_json::json!({
            "kind": spec.kind,
            "fingerprint": fingerprint,
            "params": {
                "t_start_ms": spec.params.t_start_ms,
                "t_end_ms": spec.params.t_end_ms,
                "energy_lo_kev": spec.params.energy_lo_kev,
                "energy_hi_kev": spec.params.energy_hi_kev,
                "extra": spec.params.extra.clone(),
            },
        });
        files.push(FilePayload {
            archive_id: self.config.derived_archive,
            path: format!("{dir}/params.json"),
            role: "params".to_string(),
            data: serde_json::to_vec(&params_json).expect("serialize params"),
        });
        // Process log.
        files.push(FilePayload {
            archive_id: self.config.derived_archive,
            path: format!("{dir}/run.log"),
            role: "log".to_string(),
            data: format!(
                "kind={} window=[{},{}) product={}\n",
                spec.kind,
                spec.params.t_start_ms,
                spec.params.t_end_ms,
                product.type_label()
            )
            .into_bytes(),
        });
        Ok(files)
    }

    /// Resolve a committed analysis's files (delivery for later readers).
    pub fn result_files(&self, session: &Session, ana_id: i64) -> PlResult<Vec<String>> {
        let r = self
            .dm
            .services()
            .query(session, Query::table("ana").filter(Expr::eq("id", ana_id)))?;
        let row = r.rows.first().ok_or(hedc_dm::DmError::NotFound {
            entity: "ana",
            id: ana_id,
        })?;
        let Some(item_id) = row[3].as_int() else {
            return Ok(Vec::new());
        };
        let names = self.dm.names();
        Ok(names
            .resolve(item_id, NameType::File)?
            .into_iter()
            .map(|n| n.full_name)
            .collect())
    }
}

impl Drop for ProcessingLogic {
    fn drop(&mut self) {
        if !self.shutdown.load(Ordering::SeqCst) {
            self.shutdown.store(true, Ordering::SeqCst);
            self.queue.1.notify_all();
        }
    }
}
