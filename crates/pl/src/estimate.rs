//! The estimation phase (§5.1).
//!
//! "This is an optional phase that determines the feasibility and
//! availability of resources for a request. We use a simple predictor to
//! inform the user about the duration of the subsequent execution phase.
//! The result of this phase is an execution plan. This phase returns
//! immediately."
//!
//! The predictor converts an algorithm's flop estimate into wall time on a
//! target machine. Machine speeds are calibrated from the paper's §8
//! measurements: imaging takes ~60 s on the 2×177 MHz SPARC server and
//! ~20 s on the 400 MHz Linux client for the same input, a 3× ratio.

use hedc_analysis::{Algorithm, AnalysisParams};

/// Where an analysis may execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecTarget {
    /// On the HEDC server's IDL servers.
    Server,
    /// On the requesting client (StreamCorder local processing).
    Client,
}

/// Calibrated effective throughput, Mflops, per target (§8.2: ~26 Mflop/s
/// effective on the server for back projection, 3× that on the client).
pub const SERVER_MFLOPS: f64 = 26.0;
/// Client effective throughput (§8.2 ratio).
pub const CLIENT_MFLOPS: f64 = 78.0;

/// An execution plan: the estimation phase's product.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExecutionPlan {
    /// Predicted execution wall time, ms.
    pub estimated_ms: u64,
    /// Input photon count the prediction was made for.
    pub photon_count: u64,
    /// Prediction target.
    pub target: ExecTarget,
    /// Estimated input bytes to stage (13 bytes per photon on the wire:
    /// 8 time + 4 energy + 1 detector).
    pub input_bytes: u64,
    /// Predicted queueing delay before execution starts, ms — backlog
    /// (queued + executing jobs) times the frontend's recent per-job
    /// execution EWMA, spread across its dispatchers. Zero from the bare
    /// [`estimate`] predictor; filled in by
    /// `ProcessingLogic::estimate_only`, which sees the live queue.
    #[serde(default)]
    pub predicted_wait_ms: u64,
}

/// Predict the execution time of `alg` over `photon_count` photons.
pub fn estimate(
    alg: &dyn Algorithm,
    photon_count: u64,
    params: &AnalysisParams,
    target: ExecTarget,
) -> ExecutionPlan {
    let flops = alg.cost_flops(photon_count, params);
    let mflops = match target {
        ExecTarget::Server => SERVER_MFLOPS,
        ExecTarget::Client => CLIENT_MFLOPS,
    };
    let ms = flops / (mflops * 1000.0);
    ExecutionPlan {
        estimated_ms: ms.ceil() as u64,
        photon_count,
        target,
        input_bytes: photon_count * 13,
        predicted_wait_ms: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_analysis::{Histogram, Imaging};

    #[test]
    fn imaging_matches_paper_scale() {
        // §8.2: an image over ~800 KB of input (~60k photons at 13 B each)
        // takes ~60 s on the server.
        let params = AnalysisParams::window(0, 1_000_000).with("grid", 64.0);
        let plan = estimate(&Imaging, 60_000, &params, ExecTarget::Server);
        assert!(
            (30_000..120_000).contains(&plan.estimated_ms),
            "{} ms",
            plan.estimated_ms
        );
        // And ~20 s on the client (3× faster).
        let client = estimate(&Imaging, 60_000, &params, ExecTarget::Client);
        assert_eq!(client.estimated_ms, plan.estimated_ms.div_ceil(3));
    }

    #[test]
    fn histogram_is_orders_cheaper() {
        let params = AnalysisParams::window(0, 1_000_000);
        let img = estimate(&Imaging, 20_000, &params, ExecTarget::Server);
        let hist = estimate(&Histogram, 20_000, &params, ExecTarget::Server);
        assert!(hist.estimated_ms * 100 < img.estimated_ms.max(1) * 10);
        assert_eq!(hist.input_bytes, 20_000 * 13);
    }

    #[test]
    fn estimate_scales_with_grid() {
        let small = AnalysisParams::window(0, 1000).with("grid", 32.0);
        let large = AnalysisParams::window(0, 1000).with("grid", 128.0);
        let a = estimate(&Imaging, 1000, &small, ExecTarget::Server);
        let b = estimate(&Imaging, 1000, &large, ExecTarget::Server);
        assert!(b.estimated_ms > a.estimated_ms * 10);
    }
}
