//! The IDL server manager (§5.1).
//!
//! "Multiple native IDL interpreters are managed (start, stop, restart). It
//! provides the possibility to invoke IDL routines synchronously and
//! asynchronously and implements error handling (timeout, resource drain)."
//! Servers "can be dynamically added and removed as needed without halting
//! the system", and interactions are "self-recovering and tolerate failure
//! and restart".

use crate::error::{PlError, PlResult};
use hedc_analysis::{
    AnalysisError, AnalysisKind, AnalysisParams, AnalysisProduct, AnalysisServer, ServerState,
};
use hedc_filestore::PhotonList;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Manager statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MgrStats {
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Timeouts observed (server killed + restarted).
    pub timeouts: u64,
    /// Server crashes recovered by restart.
    pub crashes_recovered: u64,
    /// Jobs that failed after all retries.
    pub exhausted: u64,
}

/// Manages a dynamic pool of [`AnalysisServer`]s.
pub struct ServerManager {
    servers: RwLock<Vec<Arc<AnalysisServer>>>,
    next_id: AtomicU32,
    timeout: Duration,
    max_retries: u32,
    completed: AtomicU64,
    timeouts: AtomicU64,
    crashes: AtomicU64,
    exhausted: AtomicU64,
}

impl ServerManager {
    /// Start a manager with `count` servers. `timeout` bounds each run;
    /// `max_retries` bounds recovery attempts per job.
    pub fn start(count: usize, timeout: Duration, max_retries: u32) -> Self {
        let mgr = ServerManager {
            servers: RwLock::new(Vec::new()),
            next_id: AtomicU32::new(0),
            timeout,
            max_retries,
            completed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        };
        for _ in 0..count {
            mgr.add_server();
        }
        mgr
    }

    /// Dynamically add a server (§5.1: "dynamically added ... without
    /// halting the system"). Returns its id.
    pub fn add_server(&self) -> u32 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.servers
            .write()
            .push(Arc::new(AnalysisServer::start(id)));
        id
    }

    /// Dynamically remove a server by id (kills its worker).
    pub fn remove_server(&self, id: u32) -> bool {
        let mut servers = self.servers.write();
        if let Some(pos) = servers.iter().position(|s| s.id == id) {
            let s = servers.remove(pos);
            s.kill();
            true
        } else {
            false
        }
    }

    /// Number of managed servers.
    pub fn server_count(&self) -> usize {
        self.servers.read().len()
    }

    /// Per-server states (for the global directory).
    pub fn states(&self) -> Vec<(u32, ServerState)> {
        self.servers
            .read()
            .iter()
            .map(|s| (s.id, s.state()))
            .collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MgrStats {
        MgrStats {
            completed: self.completed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            crashes_recovered: self.crashes.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }

    /// Fault-injection access (tests and failure benches): the faults of
    /// server `idx` in registration order.
    pub fn fault_plan(&self, idx: usize) -> Option<Arc<hedc_analysis::FaultPlan>> {
        self.servers.read().get(idx).map(|s| Arc::clone(&s.faults))
    }

    /// Run a job with full recovery: pick an idle server (restarting dead
    /// ones on the way), run with timeout; on timeout kill + restart and
    /// retry; on crash restart and retry; give up after `max_retries`.
    pub fn run(
        &self,
        kind: AnalysisKind,
        photons: Arc<PhotonList>,
        params: AnalysisParams,
    ) -> PlResult<AnalysisProduct> {
        let mut attempts = 0u32;
        loop {
            let server = self.acquire_server()?;
            match server.run_sync(kind, Arc::clone(&photons), params.clone(), self.timeout) {
                Ok(product) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    return Ok(product);
                }
                Err(AnalysisError::TimedOut) => {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    hedc_obs::emit(
                        hedc_obs::events::kind::ANALYSIS_TIMEOUT,
                        format!("server {} timed out after {:?}", server.id, self.timeout),
                    );
                    server.kill();
                    server.restart();
                    hedc_obs::emit(
                        hedc_obs::events::kind::ANALYSIS_RESTART,
                        format!("server {} restarted after timeout", server.id),
                    );
                }
                Err(AnalysisError::ServerDied) => {
                    self.crashes.fetch_add(1, Ordering::Relaxed);
                    server.restart();
                    hedc_obs::emit(
                        hedc_obs::events::kind::ANALYSIS_RESTART,
                        format!("server {} restarted after crash", server.id),
                    );
                }
                Err(AnalysisError::BadParams(msg)) if msg.starts_with("server busy") => {
                    // Lost a race for the server; try again without
                    // consuming a retry.
                    std::thread::yield_now();
                    continue;
                }
                // Real parameter errors are the caller's problem, no retry.
                Err(e) => return Err(PlError::Analysis(e)),
            }
            attempts += 1;
            if attempts > self.max_retries {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return Err(PlError::Analysis(AnalysisError::ServerDied));
            }
        }
    }

    /// Find an idle server, restarting any dead ones encountered.
    fn acquire_server(&self) -> PlResult<Arc<AnalysisServer>> {
        // Bounded wait: servers may all be momentarily busy.
        for _ in 0..10_000 {
            {
                let servers = self.servers.read();
                if servers.is_empty() {
                    return Err(PlError::NoCapacity);
                }
                for s in servers.iter() {
                    match s.state() {
                        ServerState::Idle => return Ok(Arc::clone(s)),
                        ServerState::Dead => {
                            s.restart();
                            return Ok(Arc::clone(s));
                        }
                        ServerState::Busy => {}
                    }
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        Err(PlError::NoCapacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering as AtomicOrdering;

    fn photons(n: usize) -> Arc<PhotonList> {
        let mut p = PhotonList::default();
        for i in 0..n {
            p.times_ms.push(i as u64);
            p.energies_kev.push(10.0);
            p.detectors.push((i % 9) as u8);
        }
        Arc::new(p)
    }

    #[test]
    fn runs_jobs_across_servers() {
        let mgr = ServerManager::start(2, Duration::from_secs(10), 2);
        for _ in 0..5 {
            let out = mgr
                .run(
                    AnalysisKind::Histogram,
                    photons(500),
                    AnalysisParams::window(0, 1000),
                )
                .unwrap();
            assert_eq!(out.type_label(), "histogram");
        }
        assert_eq!(mgr.stats().completed, 5);
    }

    #[test]
    fn recovers_from_crash() {
        let mgr = ServerManager::start(1, Duration::from_secs(10), 3);
        mgr.fault_plan(0)
            .unwrap()
            .crash_next
            .store(true, AtomicOrdering::SeqCst);
        let out = mgr.run(
            AnalysisKind::Histogram,
            photons(100),
            AnalysisParams::window(0, 1000),
        );
        assert!(out.is_ok(), "{out:?}");
        let s = mgr.stats();
        assert_eq!(s.crashes_recovered, 1);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn recovers_from_hang_via_timeout() {
        let mgr = ServerManager::start(1, Duration::from_millis(100), 3);
        mgr.fault_plan(0)
            .unwrap()
            .hang_next_ms
            .store(5_000, AtomicOrdering::SeqCst);
        let out = mgr.run(
            AnalysisKind::Histogram,
            photons(100),
            AnalysisParams::window(0, 1000),
        );
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(mgr.stats().timeouts, 1);
    }

    #[test]
    fn gives_up_after_retries() {
        let mgr = ServerManager::start(1, Duration::from_millis(50), 1);
        let faults = mgr.fault_plan(0).unwrap();
        // Two consecutive hangs exceed max_retries = 1... but the flag
        // resets per job, so re-arm after each failure via a crash loop:
        faults.crash_next.store(true, AtomicOrdering::SeqCst);
        // First attempt crashes; re-arm so the retry crashes too.
        // (Racy re-arm is fine: worst case the job succeeds and we assert
        // nothing; use a hang long enough to observe deterministically.)
        faults.hang_next_ms.store(10_000, AtomicOrdering::SeqCst);
        let out = mgr.run(
            AnalysisKind::Histogram,
            photons(10),
            AnalysisParams::window(0, 1000),
        );
        assert!(out.is_err());
        assert_eq!(mgr.stats().exhausted, 1);
    }

    #[test]
    fn parameter_errors_do_not_retry() {
        let mgr = ServerManager::start(1, Duration::from_secs(5), 3);
        let out = mgr.run(
            AnalysisKind::Imaging,
            photons(10),
            AnalysisParams::window(5, 5), // empty window
        );
        assert!(matches!(
            out,
            Err(PlError::Analysis(AnalysisError::BadParams(_)))
        ));
        assert_eq!(mgr.stats().exhausted, 0);
    }

    #[test]
    fn dynamic_add_remove() {
        let mgr = ServerManager::start(1, Duration::from_secs(5), 1);
        let id = mgr.add_server();
        assert_eq!(mgr.server_count(), 2);
        assert!(mgr.remove_server(id));
        assert!(!mgr.remove_server(id));
        assert_eq!(mgr.server_count(), 1);
        // Still functional.
        assert!(mgr
            .run(
                AnalysisKind::Histogram,
                photons(10),
                AnalysisParams::window(0, 100)
            )
            .is_ok());
    }

    #[test]
    fn no_servers_is_no_capacity() {
        let mgr = ServerManager::start(0, Duration::from_secs(1), 1);
        assert!(matches!(
            mgr.run(
                AnalysisKind::Histogram,
                photons(10),
                AnalysisParams::window(0, 100)
            ),
            Err(PlError::NoCapacity)
        ));
    }

    #[test]
    fn concurrent_jobs_share_the_pool() {
        let mgr = Arc::new(ServerManager::start(3, Duration::from_secs(10), 2));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    m.run(
                        AnalysisKind::Spectrum,
                        photons(200),
                        AnalysisParams::window(0, 1000),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.stats().completed, 20);
    }
}
