//! # hedc-pl — the Processing Logic component
//!
//! The second half of HEDC's middle tier (paper §5.1): "the goal of the
//! processing logic (PL) is to hide external processing environments behind
//! an interface that the rest of the system can use to request external
//! processing."
//!
//! Services, exactly as the paper lists them:
//!
//! * **Frontend** ([`ProcessingLogic`]) — session/request controller,
//!   weighted-fair scheduling across sessions (per-session lanes with
//!   in-flight quotas; priority classes weight each lane's share), and the
//!   4-phase request workflow: *estimation* ([`estimate`], returns
//!   immediately with an [`ExecutionPlan`] whose `predicted_wait_ms`
//!   reflects the live backlog), *execution* (on the managed interpreter
//!   pool, sync or async), *delivery* (product → result files), *commit*
//!   (write-back through the DM). Requests are cancellable at any phase.
//!   The §3.5 redundancy check runs before any CPU is spent: duplicate
//!   in-flight requests coalesce onto one execution (single-flight), and
//!   committed results are reused through a result store invalidated by
//!   calibration lineage (§3.1) — never served stale after recalibration.
//! * **IDL server manager** ([`ServerManager`]) — starts/stops/restarts the
//!   deliberately rudimentary interpreter servers from `hedc-analysis`,
//!   with timeout-kill-restart recovery and dynamic add/remove.
//! * **Global directory** ([`GlobalDirectory`]) — service registry with
//!   heartbeat-based liveness.
//!
//! ```no_run
//! use hedc_pl::{PlConfig, ProcessingLogic, RequestSpec, Priority};
//! use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
//! use hedc_dm::{Dm, DmConfig};
//! use hedc_filestore::{Archive, ArchiveTier, FileStore};
//! use std::sync::Arc;
//!
//! let files = Arc::new(FileStore::new());
//! files.register(Archive::in_memory(1, "raw", ArchiveTier::OnlineDisk, 1 << 30));
//! files.register(Archive::in_memory(2, "derived", ArchiveTier::OnlineRaid, 1 << 30));
//! let dm = Dm::bootstrap(files, DmConfig::default()).unwrap();
//! let registry = Arc::new(AlgorithmRegistry::with_builtins());
//! let pl = ProcessingLogic::start(Arc::clone(&dm), registry, PlConfig::default());
//!
//! let session = dm.import_session();
//! let spec = RequestSpec::new("lightcurve", AnalysisParams::window(0, 60_000), 1)
//!     .priority(Priority::Interactive);
//! let outcome = pl.submit_sync(session, spec).unwrap();
//! println!("analysis {} done", outcome.ana_id());
//! pl.shutdown();
//! ```

#![warn(missing_docs)]

mod directory;
mod error;
mod estimate;
mod frontend;
mod request;
mod sched;
mod server_mgr;
mod singleflight;

pub use directory::{GlobalDirectory, ServiceEntry};
pub use error::{PlError, PlResult};
pub use estimate::{estimate, ExecTarget, ExecutionPlan, CLIENT_MFLOPS, SERVER_MFLOPS};
pub use frontend::{Outcome, PlConfig, ProcessingLogic};
pub use request::{Phase, Priority, RequestSpec, RequestState};
pub use server_mgr::{MgrStats, ServerManager};

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
    use hedc_dm::{Dm, DmConfig, IngestConfig, Session};
    use hedc_events::{generate, package, GenConfig};
    use hedc_filestore::{Archive, ArchiveTier, FileStore};
    use std::sync::Arc;

    struct Fx {
        dm: Arc<Dm>,
        pl: Arc<ProcessingLogic>,
        session: Arc<Session>,
        window: (u64, u64),
    }

    fn fixture() -> Fx {
        let files = Arc::new(FileStore::new());
        files.register(Archive::in_memory(
            1,
            "raw",
            ArchiveTier::OnlineDisk,
            1 << 30,
        ));
        files.register(Archive::in_memory(
            2,
            "derived",
            ArchiveTier::OnlineRaid,
            1 << 30,
        ));
        let dm = Dm::bootstrap(files, DmConfig::default()).unwrap();
        // Load 20 minutes of telemetry.
        let t = generate(&GenConfig {
            duration_ms: 20 * 60 * 1000,
            flares_per_hour: 6.0,
            background_rate: 15.0,
            seed: 4242,
            ..GenConfig::default()
        });
        let session = dm.import_session();
        let cfg = IngestConfig::new(1, 2, dm.extended_catalog);
        for unit in package(&t, 200_000, 1) {
            dm.processes().ingest_unit(&session, &unit, &cfg).unwrap();
        }
        let registry = Arc::new(AlgorithmRegistry::with_builtins());
        let pl = ProcessingLogic::start(
            Arc::clone(&dm),
            registry,
            PlConfig {
                servers: 2,
                dispatchers: 2,
                ..PlConfig::default()
            },
        );
        Fx {
            dm,
            pl,
            session,
            window: (0, 20 * 60 * 1000),
        }
    }

    fn any_hle(fx: &Fx) -> i64 {
        let r = fx
            .dm
            .services()
            .query(&fx.session, hedc_metadb::Query::table("hle").limit(1))
            .unwrap();
        r.rows[0][0].as_int().unwrap()
    }

    #[test]
    fn end_to_end_lightcurve_request() {
        let fx = fixture();
        let hle = any_hle(&fx);
        let spec = RequestSpec::new(
            "lightcurve",
            AnalysisParams::window(fx.window.0, fx.window.1).with("bin_ms", 4000.0),
            hle,
        );
        let outcome = fx.pl.submit_sync(Arc::clone(&fx.session), spec).unwrap();
        assert!(!outcome.was_reused());
        let Outcome::Computed { product, plan, .. } = &outcome else {
            panic!()
        };
        assert_eq!(product.type_label(), "series");
        assert!(plan.photon_count > 0);
        // Result files resolvable by name.
        let files = fx.pl.result_files(&fx.session, outcome.ana_id()).unwrap();
        assert_eq!(files.len(), 3, "{files:?}"); // result + params + log
        fx.pl.shutdown();
    }

    #[test]
    fn redundant_request_is_reused() {
        let fx = fixture();
        let hle = any_hle(&fx);
        let params = AnalysisParams::window(fx.window.0, fx.window.0 + 120_000);
        let spec = RequestSpec::new("histogram", params.clone(), hle);
        let first = fx.pl.submit_sync(Arc::clone(&fx.session), spec).unwrap();
        let second = fx
            .pl
            .submit_sync(
                Arc::clone(&fx.session),
                RequestSpec::new("histogram", params.clone(), hle),
            )
            .unwrap();
        assert!(second.was_reused());
        assert_eq!(second.ana_id(), first.ana_id());
        // Forced recomputation bypasses the cache.
        let third = fx
            .pl
            .submit_sync(
                Arc::clone(&fx.session),
                RequestSpec::new("histogram", params, hle).force(),
            )
            .unwrap();
        assert!(!third.was_reused());
        assert_ne!(third.ana_id(), first.ana_id());
        fx.pl.shutdown();
    }

    #[test]
    fn estimation_phase_and_cost_limit() {
        let fx = fixture();
        let hle = any_hle(&fx);
        let spec = RequestSpec::new(
            "imaging",
            AnalysisParams::window(fx.window.0, fx.window.1).with("grid", 128.0),
            hle,
        );
        let plan = fx.pl.estimate_only(&spec, ExecTarget::Server).unwrap();
        assert!(plan.estimated_ms > 0);
        assert!(plan.photon_count > 0);
        // A tight cost limit rejects in the estimation phase.
        let err = fx
            .pl
            .submit_sync(Arc::clone(&fx.session), spec.cost_limit_ms(1))
            .unwrap_err();
        assert!(matches!(err, PlError::TooExpensive { .. }));
        fx.pl.shutdown();
    }

    #[test]
    fn unknown_kind_rejected() {
        let fx = fixture();
        let err = fx
            .pl
            .submit_sync(
                Arc::clone(&fx.session),
                RequestSpec::new("warp-field", AnalysisParams::window(0, 100), 1),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            PlError::Analysis(hedc_analysis::AnalysisError::UnknownKind(_))
        ));
        fx.pl.shutdown();
    }

    #[test]
    fn priority_orders_queue() {
        // With one dispatcher and a slow first job, a later interactive
        // request overtakes earlier batch requests.
        let fx = fixture();
        let hle = any_hle(&fx);
        let pl = ProcessingLogic::start(
            Arc::clone(&fx.dm),
            Arc::new(AlgorithmRegistry::with_builtins()),
            PlConfig {
                servers: 1,
                dispatchers: 1,
                ..PlConfig::default()
            },
        );
        let blocker = RequestSpec::new(
            "spectrum",
            AnalysisParams::window(fx.window.0, fx.window.1),
            hle,
        );
        let (_, rx_block) = pl.submit_async(Arc::clone(&fx.session), blocker);
        // Queue three batch then one interactive request with distinct windows.
        let mut receivers = Vec::new();
        for i in 0..3u64 {
            let spec = RequestSpec::new(
                "histogram",
                AnalysisParams::window(fx.window.0 + i * 1000, fx.window.0 + 60_000 + i * 1000),
                hle,
            )
            .priority(Priority::Batch);
            receivers.push(pl.submit_async(Arc::clone(&fx.session), spec).1);
        }
        let interactive = RequestSpec::new(
            "histogram",
            AnalysisParams::window(fx.window.0 + 777, fx.window.0 + 90_000),
            hle,
        )
        .priority(Priority::Interactive);
        let (_, rx_int) = pl.submit_async(Arc::clone(&fx.session), interactive);

        // Collect completion order via ana creation times.
        let o_block = rx_block.recv().unwrap().unwrap();
        let o_int = rx_int.recv().unwrap().unwrap();
        let batch: Vec<_> = receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        // The interactive ana id must precede every batch ana id (ids are
        // allocated in completion order here).
        for b in &batch {
            assert!(
                o_int.ana_id() < b.ana_id(),
                "interactive {} should beat batch {}",
                o_int.ana_id(),
                b.ana_id()
            );
        }
        let _ = o_block;
        pl.shutdown();
        fx.pl.shutdown();
    }

    #[test]
    fn cancellation_before_execution() {
        let fx = fixture();
        let hle = any_hle(&fx);
        // Block the single dispatcher, then cancel a queued request.
        let pl = ProcessingLogic::start(
            Arc::clone(&fx.dm),
            Arc::new(AlgorithmRegistry::with_builtins()),
            PlConfig {
                servers: 1,
                dispatchers: 1,
                ..PlConfig::default()
            },
        );
        let blocker = RequestSpec::new(
            "imaging",
            AnalysisParams::window(fx.window.0, fx.window.0 + 300_000).with("grid", 64.0),
            hle,
        );
        let (_, rx_block) = pl.submit_async(Arc::clone(&fx.session), blocker);
        let victim = RequestSpec::new(
            "histogram",
            AnalysisParams::window(fx.window.0, fx.window.0 + 5_000),
            hle,
        );
        let (state, rx) = pl.submit_async(Arc::clone(&fx.session), victim);
        state.cancel();
        assert!(matches!(rx.recv().unwrap(), Err(PlError::Cancelled)));
        assert_eq!(state.phase(), Phase::Cancelled);
        let _ = rx_block.recv();
        pl.shutdown();
        fx.pl.shutdown();
    }

    #[test]
    fn user_registered_algorithm_runs_in_process() {
        use hedc_analysis::{Algorithm, AnalysisError, AnalysisProduct};
        struct CountAbove;
        impl Algorithm for CountAbove {
            fn name(&self) -> &str {
                "count-above"
            }
            fn run(
                &self,
                photons: &hedc_filestore::PhotonList,
                params: &AnalysisParams,
            ) -> Result<AnalysisProduct, AnalysisError> {
                let cut = params.get_or("cut_kev", 25.0) as f32;
                let n = photons.energies_kev.iter().filter(|&&e| e > cut).count();
                Ok(AnalysisProduct::Histogram {
                    edges: vec![0.0, 1.0],
                    counts: vec![n as u64],
                })
            }
            fn cost_flops(&self, photons: u64, _p: &AnalysisParams) -> f64 {
                photons as f64
            }
        }
        let fx = fixture();
        let registry = Arc::new(AlgorithmRegistry::with_builtins());
        registry.register(Arc::new(CountAbove));
        let pl = ProcessingLogic::start(Arc::clone(&fx.dm), registry, PlConfig::default());
        let hle = any_hle(&fx);
        let outcome = pl
            .submit_sync(
                Arc::clone(&fx.session),
                RequestSpec::new(
                    "count-above",
                    AnalysisParams::window(fx.window.0, fx.window.1).with("cut_kev", 25.0),
                    hle,
                ),
            )
            .unwrap();
        let Outcome::Computed { product, .. } = &outcome else {
            panic!()
        };
        let AnalysisProduct::Histogram { counts, .. } = product else {
            panic!()
        };
        assert!(counts[0] > 0, "an active window has hard photons");
        pl.shutdown();
        fx.pl.shutdown();
    }
}
