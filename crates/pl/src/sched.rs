//! Weighted-fair overload scheduling for the PL frontend.
//!
//! The original dispatcher drained one global priority max-heap. Under
//! overload that starves: a single greedy session that floods the queue at
//! `Interactive` priority pushes every other session's work behind its own,
//! unboundedly. The paper's §5.1 "priority scheduling" is about *request
//! classes*, not about letting one user monopolize the service.
//!
//! [`FairQueue`] keeps one lane per fairness domain (session/user id) and
//! serves lanes by virtual-time weighted fair queueing: each lane carries a
//! virtual finish time that advances by `SCALE / weight` per job served, and
//! the dispatcher always picks the eligible lane with the smallest virtual
//! time. Weights come from request priority, so interactive work still gets
//! a larger bandwidth *share* — but every backlogged lane makes progress at
//! a rate proportional to its weight, and a lane that was idle re-enters at
//! the current clock instead of inheriting an ancient (unfairly small)
//! virtual time. Per-lane in-flight quotas bound how many dispatchers one
//! session can occupy at once.
//!
//! Admission (push) is O(1); lane selection scans live lanes, which is
//! bounded by the number of *distinct backlogged sessions*, not queue depth,
//! and runs on the dispatcher thread — never on the submit path.

use std::collections::{BinaryHeap, HashMap};

/// Virtual-time advance for a weight-1 job; higher weights advance less.
const VTIME_SCALE: u64 = 1 << 16;

/// What the scheduler needs to know about a queued job.
pub(crate) trait Weighted {
    /// Fairness domain (one lane per distinct value; user/session id).
    fn fairness_key(&self) -> i64;
    /// Scheduling weight: share of service under contention (≥ 1).
    fn weight(&self) -> u64;
}

struct Lane<T> {
    /// Per-lane priority order (priority class, then FIFO) is preserved;
    /// fairness applies *between* lanes, priorities *within* one.
    heap: BinaryHeap<T>,
    vtime: u64,
    inflight: usize,
}

/// Per-session weighted-fair queue with in-flight quotas.
pub(crate) struct FairQueue<T> {
    lanes: HashMap<i64, Lane<T>>,
    /// Global virtual clock: the vtime of the most recently served lane.
    clock: u64,
    len: usize,
}

impl<T: Ord + Weighted> FairQueue<T> {
    pub fn new() -> Self {
        FairQueue {
            lanes: HashMap::new(),
            clock: 0,
            len: 0,
        }
    }

    /// Queued jobs (excluding in-flight ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Distinct sessions with queued or in-flight work.
    pub fn sessions(&self) -> usize {
        self.lanes.len()
    }

    pub fn push(&mut self, job: T) {
        let clock = self.clock;
        let lane = self
            .lanes
            .entry(job.fairness_key())
            .or_insert_with(|| Lane {
                heap: BinaryHeap::new(),
                vtime: clock,
                inflight: 0,
            });
        if lane.heap.is_empty() && lane.inflight == 0 {
            // A lane that went idle must not bank credit from its idle time.
            lane.vtime = lane.vtime.max(clock);
        }
        lane.heap.push(job);
        self.len += 1;
    }

    /// Pop the next job: the smallest-vtime lane with queued work and fewer
    /// than `quota` jobs in flight. Returns `None` when nothing is eligible
    /// (empty, or every backlogged lane is at quota).
    pub fn pop(&mut self, quota: usize) -> Option<T> {
        let mut best: Option<(u64, i64)> = None;
        for (&key, lane) in &self.lanes {
            if lane.heap.is_empty() || lane.inflight >= quota.max(1) {
                continue;
            }
            let cand = (lane.vtime, key);
            if best.map_or(true, |b| cand < b) {
                best = Some(cand);
            }
        }
        let (_, key) = best?;
        let lane = self.lanes.get_mut(&key).expect("chosen lane exists");
        let job = lane.heap.pop().expect("chosen lane non-empty");
        self.len -= 1;
        self.clock = self.clock.max(lane.vtime);
        lane.vtime += VTIME_SCALE / job.weight().max(1);
        lane.inflight += 1;
        Some(job)
    }

    /// Release a lane's quota slot after its job finished (or was aborted).
    pub fn job_done(&mut self, key: i64) {
        if let Some(lane) = self.lanes.get_mut(&key) {
            lane.inflight = lane.inflight.saturating_sub(1);
            if lane.heap.is_empty() && lane.inflight == 0 {
                self.lanes.remove(&key);
            }
        }
    }

    /// Remove and return every queued job (shutdown).
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for lane in self.lanes.values_mut() {
            out.extend(lane.heap.drain());
        }
        self.lanes.retain(|_, l| l.inflight > 0);
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(PartialEq, Eq)]
    struct J {
        user: i64,
        weight: u64,
        seq: u64,
    }
    impl Weighted for J {
        fn fairness_key(&self) -> i64 {
            self.user
        }
        fn weight(&self) -> u64 {
            self.weight
        }
    }
    impl PartialOrd for J {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for J {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.seq.cmp(&self.seq) // FIFO within a lane
        }
    }

    fn job(user: i64, weight: u64, seq: u64) -> J {
        J { user, weight, seq }
    }

    #[test]
    fn equal_weights_alternate() {
        let mut q = FairQueue::new();
        for i in 0..4 {
            q.push(job(1, 1, i));
        }
        for i in 0..4 {
            q.push(job(2, 1, 100 + i));
        }
        let mut users = Vec::new();
        while let Some(j) = q.pop(usize::MAX) {
            q.job_done(j.user);
            users.push(j.user);
        }
        // No user gets two turns ahead of the other while both are backlogged.
        for w in users.windows(2).take(6) {
            assert_ne!(w[0], w[1], "strict alternation expected: {users:?}");
        }
    }

    #[test]
    fn flood_cannot_starve_late_arrival() {
        let mut q = FairQueue::new();
        for i in 0..64 {
            q.push(job(1, 4, i)); // greedy, even at max weight
        }
        // Serve a few of the flood first, then a light session arrives.
        for _ in 0..8 {
            let j = q.pop(usize::MAX).unwrap();
            q.job_done(j.user);
        }
        q.push(job(2, 1, 1000));
        // The late arrival must be served within a weight-bounded number of
        // pops (weight ratio 4:1 ⇒ at most ~4 greedy jobs first), not after
        // the remaining 56.
        let mut pops_before = 0;
        loop {
            let j = q.pop(usize::MAX).unwrap();
            q.job_done(j.user);
            if j.user == 2 {
                break;
            }
            pops_before += 1;
            assert!(pops_before <= 5, "light session starved behind flood");
        }
    }

    #[test]
    fn quota_caps_in_flight_per_lane() {
        let mut q = FairQueue::new();
        for i in 0..4 {
            q.push(job(1, 1, i));
        }
        assert!(q.pop(2).is_some());
        assert!(q.pop(2).is_some());
        assert!(q.pop(2).is_none(), "lane at quota");
        assert_eq!(q.len(), 2);
        q.job_done(1);
        assert!(q.pop(2).is_some(), "slot freed");
    }

    #[test]
    fn priorities_hold_within_a_lane() {
        #[derive(PartialEq, Eq)]
        struct P(u64, u64); // (priority, seq)
        impl Weighted for P {
            fn fairness_key(&self) -> i64 {
                7
            }
            fn weight(&self) -> u64 {
                self.0.max(1)
            }
        }
        impl PartialOrd for P {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for P {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0).then(o.1.cmp(&self.1))
            }
        }
        let mut q = FairQueue::new();
        q.push(P(1, 0));
        q.push(P(1, 1));
        q.push(P(4, 2)); // later but higher priority
        let first = q.pop(8).unwrap();
        assert_eq!(first.1, 2, "high priority overtakes within its lane");
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = FairQueue::new();
        for i in 0..3 {
            q.push(job(i, 1, i as u64));
        }
        let all = q.drain();
        assert_eq!(all.len(), 3);
        assert_eq!(q.len(), 0);
        assert!(q.pop(1).is_none());
    }
}
