//! The global service directory (§5.1).
//!
//! "Provides a directory of all services related to the processing logic.
//! There is one instance of this service." Components (frontends, IDL
//! server managers, web servers) register themselves, heartbeat, and can be
//! looked up by kind. Entries whose heartbeat is stale are reported down —
//! the self-recovery hook for the PL's "tolerate failure and restart".

use parking_lot::RwLock;
use std::collections::HashMap;

/// One registered service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceEntry {
    /// Unique service name (e.g. `pl-frontend`, `idl-mgr-node2`).
    pub name: String,
    /// Service kind (`frontend`, `server-manager`, `web`, `dm`).
    pub kind: String,
    /// Location string (host/port or node label).
    pub location: String,
    /// Last heartbeat, mission ms.
    pub last_heartbeat_ms: u64,
}

/// The directory. Staleness is judged against a caller-provided "now"
/// (the DM's logical clock) so the directory itself stays clock-free.
#[derive(Debug, Default)]
pub struct GlobalDirectory {
    services: RwLock<HashMap<String, ServiceEntry>>,
    stale_after_ms: u64,
}

impl GlobalDirectory {
    /// Directory with a staleness threshold.
    pub fn new(stale_after_ms: u64) -> Self {
        GlobalDirectory {
            services: RwLock::new(HashMap::new()),
            stale_after_ms,
        }
    }

    /// Register (or re-register) a service.
    pub fn register(&self, name: &str, kind: &str, location: &str, now_ms: u64) {
        self.services.write().insert(
            name.to_string(),
            ServiceEntry {
                name: name.to_string(),
                kind: kind.to_string(),
                location: location.to_string(),
                last_heartbeat_ms: now_ms,
            },
        );
    }

    /// Heartbeat an existing service; false if unknown.
    pub fn heartbeat(&self, name: &str, now_ms: u64) -> bool {
        match self.services.write().get_mut(name) {
            Some(e) => {
                e.last_heartbeat_ms = now_ms;
                true
            }
            None => false,
        }
    }

    /// Remove a service.
    pub fn deregister(&self, name: &str) -> bool {
        self.services.write().remove(name).is_some()
    }

    /// Live services of a kind (heartbeat within threshold), sorted by name.
    pub fn live(&self, kind: &str, now_ms: u64) -> Vec<ServiceEntry> {
        let mut v: Vec<ServiceEntry> = self
            .services
            .read()
            .values()
            .filter(|e| {
                e.kind == kind && now_ms.saturating_sub(e.last_heartbeat_ms) <= self.stale_after_ms
            })
            .cloned()
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Services considered down (stale heartbeat), sorted by name.
    pub fn down(&self, now_ms: u64) -> Vec<ServiceEntry> {
        let mut v: Vec<ServiceEntry> = self
            .services
            .read()
            .values()
            .filter(|e| now_ms.saturating_sub(e.last_heartbeat_ms) > self.stale_after_ms)
            .cloned()
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Total registered services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.services.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_by_kind() {
        let dir = GlobalDirectory::new(10_000);
        dir.register("pl-1", "frontend", "node-0", 0);
        dir.register("idl-1", "server-manager", "node-0", 0);
        dir.register("idl-2", "server-manager", "node-1", 0);
        let live = dir.live("server-manager", 5_000);
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].name, "idl-1");
        assert_eq!(dir.live("frontend", 5_000).len(), 1);
        assert_eq!(dir.len(), 3);
    }

    #[test]
    fn stale_services_reported_down() {
        let dir = GlobalDirectory::new(1_000);
        dir.register("idl-1", "server-manager", "n", 0);
        dir.register("idl-2", "server-manager", "n", 0);
        dir.heartbeat("idl-2", 5_000);
        assert_eq!(dir.live("server-manager", 5_500).len(), 1);
        let down = dir.down(5_500);
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].name, "idl-1");
        // Recovery: heartbeat brings it back.
        assert!(dir.heartbeat("idl-1", 6_000));
        assert!(dir.heartbeat("idl-2", 6_000));
        assert_eq!(dir.live("server-manager", 6_100).len(), 2);
    }

    #[test]
    fn deregister_and_unknown_heartbeat() {
        let dir = GlobalDirectory::new(1_000);
        dir.register("x", "web", "n", 0);
        assert!(dir.deregister("x"));
        assert!(!dir.deregister("x"));
        assert!(!dir.heartbeat("x", 10));
        assert!(dir.is_empty());
    }

    #[test]
    fn reregistration_updates_location() {
        let dir = GlobalDirectory::new(1_000);
        dir.register("pl", "frontend", "node-0", 0);
        dir.register("pl", "frontend", "node-7", 100);
        let live = dir.live("frontend", 200);
        assert_eq!(live[0].location, "node-7");
        assert_eq!(dir.len(), 1);
    }
}
