//! Single-flight coalescing of identical in-flight analyses (§3.5).
//!
//! "Avoid redundant computation": when an analysis identical to one already
//! queued or executing is submitted, it must not enqueue a second execution.
//! Instead the duplicate *attaches* to the in-flight group as a waiter and
//! receives the leader's result when it commits. Groups are keyed by the
//! canonical parameter fingerprint, scoped per user so reuse never crosses a
//! visibility boundary the committed-result path (a session-scoped query)
//! would enforce.
//!
//! Cancellation semantics: cancelling one member never kills the group.
//! Cancelled members are pruned (each answered with [`PlError::Cancelled`])
//! at every cancellation point; if the *leader* (member 0) is pruned while
//! waiters remain, the next waiter is promoted to leader and the execution
//! simply continues on its behalf. Only when every member has cancelled is
//! the execution abandoned.

use crate::error::{PlError, PlResult};
use crate::frontend::Outcome;
use crate::request::{Phase, RequestState};
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One submitted request's observable half: its phase/cancel state and the
/// channel its outcome is delivered on.
pub(crate) struct Member {
    pub state: Arc<RequestState>,
    pub reply: Sender<PlResult<Outcome>>,
}

struct GroupInner {
    /// All live members; index 0 is the current leader.
    members: Vec<Member>,
    /// Set once the group completed (or was deregistered); attach fails.
    closed: bool,
}

/// An in-flight execution shared by one leader and any number of waiters.
pub(crate) struct Group {
    inner: Mutex<GroupInner>,
}

/// Result of pruning cancelled members.
pub(crate) enum Prune {
    /// Execution continues; `promoted` is true when the leader was pruned
    /// and a waiter took over.
    Continue { promoted: bool },
    /// Every member cancelled — abandon the execution.
    Abandoned,
}

impl Group {
    pub fn new(leader: Member) -> Arc<Group> {
        Arc::new(Group {
            inner: Mutex::new(GroupInner {
                members: vec![leader],
                closed: false,
            }),
        })
    }

    /// Attach a duplicate request as a waiter. Fails (returning the member)
    /// when the group already completed; the caller then enqueues normally
    /// and the committed-result path serves it.
    fn attach(&self, member: Member) -> Result<(), Member> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(member);
        }
        inner.members.push(member);
        Ok(())
    }

    /// Advance every live member's phase (waiters observe the leader's
    /// progress through their own `RequestState`).
    pub fn advance(&self, to: Phase) {
        for m in self.inner.lock().members.iter() {
            m.state.advance(to);
        }
    }

    /// Drop cancelled members, answering each with `Cancelled`.
    pub fn prune_cancelled(&self) -> Prune {
        let mut inner = self.inner.lock();
        let mut promoted = false;
        let mut i = 0;
        while i < inner.members.len() {
            if inner.members[i].state.is_cancelled() {
                let m = inner.members.remove(i);
                m.state.advance(Phase::Cancelled);
                let _ = m.reply.send(Err(PlError::Cancelled));
                if i == 0 && !inner.members.is_empty() {
                    promoted = true;
                }
            } else {
                i += 1;
            }
        }
        if inner.members.is_empty() {
            inner.closed = true;
            Prune::Abandoned
        } else {
            Prune::Continue { promoted }
        }
    }

    /// Deliver the result: the leader gets it verbatim, every waiter gets
    /// the coalesced [`Outcome::Reused`] view of the same `ana_id` (errors
    /// are broadcast). Returns the number of waiters served. Idempotent —
    /// an abandoned or already-completed group has no members left.
    ///
    /// `pl.reuse.coalesced` is bumped *before* any reply is sent: a caller
    /// unblocked by its waiter's result must already see the counter, so
    /// the increment cannot happen after delivery.
    pub fn complete(&self, result: PlResult<Outcome>) -> usize {
        let members = {
            let mut inner = self.inner.lock();
            inner.closed = true;
            std::mem::take(&mut inner.members)
        };
        if members.is_empty() {
            return 0;
        }
        let mut waiters = 0;
        match result {
            Ok(outcome) => {
                let coalesced = members.len() - 1;
                if coalesced > 0 {
                    hedc_obs::global()
                        .counter("pl.reuse.coalesced")
                        .add(coalesced as u64);
                }
                let ana_id = outcome.ana_id();
                let mut it = members.into_iter();
                let leader = it.next().expect("non-empty");
                leader.state.advance(Phase::Committed);
                let _ = leader.reply.send(Ok(outcome));
                for m in it {
                    m.state.advance(Phase::Committed);
                    let _ = m.reply.send(Ok(Outcome::Reused { ana_id }));
                    waiters += 1;
                }
            }
            Err(e) => {
                for m in members {
                    let to = if matches!(e, PlError::Cancelled) {
                        Phase::Cancelled
                    } else {
                        Phase::Failed
                    };
                    m.state.advance(to);
                    let _ = m.reply.send(Err(e.clone()));
                }
            }
        }
        waiters
    }
}

/// What happened to a submit under coalescing.
pub(crate) enum Admission {
    /// Joined an existing in-flight group; nothing to enqueue.
    Attached,
    /// First of its fingerprint: the caller enqueues this group's execution.
    Leader(Arc<Group>),
}

/// The in-flight table: fingerprint key → live group.
#[derive(Default)]
pub(crate) struct Inflight {
    groups: Mutex<HashMap<String, Arc<Group>>>,
}

impl Inflight {
    /// Attach to the live group for `key`, or register a new one led by
    /// `member`. When `register` is false (coalescing disabled, or a
    /// `force` request that must not absorb followers) a detached group is
    /// returned and the table is left untouched.
    pub fn admit(&self, key: &str, member: Member, register: bool) -> Admission {
        if !register {
            return Admission::Leader(Group::new(member));
        }
        let mut map = self.groups.lock();
        let member = match map.get(key) {
            Some(g) => match g.attach(member) {
                Ok(()) => return Admission::Attached,
                // Completed but not yet deregistered: replace it below.
                Err(m) => m,
            },
            None => member,
        };
        let g = Group::new(member);
        map.insert(key.to_string(), Arc::clone(&g));
        hedc_obs::global()
            .gauge("pl.inflight_groups")
            .set(map.len() as i64);
        Admission::Leader(g)
    }

    /// Deregister `group` (if it is still the one registered under `key`)
    /// and close it to further attaches. Runs under the table lock so no
    /// attach can slip between the close and the removal.
    pub fn deregister(&self, key: &str, group: &Arc<Group>) {
        let mut map = self.groups.lock();
        if map.get(key).is_some_and(|g| Arc::ptr_eq(g, group)) {
            map.remove(key);
            hedc_obs::global()
                .gauge("pl.inflight_groups")
                .set(map.len() as i64);
        }
        group.inner.lock().closed = true;
    }

    /// Drain every registered group (shutdown).
    pub fn drain(&self) -> Vec<Arc<Group>> {
        let mut map = self.groups.lock();
        let out = map.drain().map(|(_, g)| g).collect();
        hedc_obs::global().gauge("pl.inflight_groups").set(0);
        out
    }
}
