//! PL-level errors.

use hedc_analysis::AnalysisError;
use hedc_dm::DmError;
use std::fmt;

/// Errors surfaced by the Processing Logic component.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum PlError {
    /// Analysis-side failure (after retries were exhausted).
    Analysis(AnalysisError),
    /// DM-side failure (staging or commit).
    Dm(DmError),
    /// The request was cancelled.
    Cancelled,
    /// The estimation phase rejected the request (too expensive).
    TooExpensive { estimated_ms: u64, limit_ms: u64 },
    /// No processing capacity (all servers dead and unrestartable).
    NoCapacity,
    /// The PL is shutting down.
    ShuttingDown,
    /// Phase-ordering violation (e.g. commit before execution).
    BadPhase(&'static str),
}

impl fmt::Display for PlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlError::Analysis(e) => write!(f, "analysis: {e}"),
            PlError::Dm(e) => write!(f, "data management: {e}"),
            PlError::Cancelled => write!(f, "request cancelled"),
            PlError::TooExpensive {
                estimated_ms,
                limit_ms,
            } => write!(
                f,
                "estimated {estimated_ms} ms exceeds the {limit_ms} ms limit"
            ),
            PlError::NoCapacity => write!(f, "no processing capacity"),
            PlError::ShuttingDown => write!(f, "processing logic is shutting down"),
            PlError::BadPhase(p) => write!(f, "phase ordering violation: {p}"),
        }
    }
}

impl std::error::Error for PlError {}

impl From<AnalysisError> for PlError {
    fn from(e: AnalysisError) -> Self {
        PlError::Analysis(e)
    }
}

impl From<DmError> for PlError {
    fn from(e: DmError) -> Self {
        PlError::Dm(e)
    }
}

/// Crate-wide result alias.
pub type PlResult<T> = Result<T, PlError>;
