//! Shared types for analysis algorithms.
//!
//! "The analysis algorithms most frequently used in HEDC are imaging,
//! lightcurves and spectroscopy, all of which generate pictoral content"
//! (§2.2). Every algorithm consumes a photon window plus parameters and
//! produces a typed product; the PL treats both sides as opaque data
//! structures (§5.1: information "is exchanged in dynamic structures").

use hedc_filestore::{ImageData, PhotonList};
use std::collections::BTreeMap;
use std::fmt;

/// The analysis kinds HEDC ships with. User-registered algorithms extend
/// this via [`crate::Algorithm`] trait objects; the enum covers the standard
/// catalog set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AnalysisKind {
    /// Back-projection image over a sky grid.
    Imaging,
    /// Counts versus time, per energy band.
    Lightcurve,
    /// Counts versus energy (log-binned spectrum).
    Spectrum,
    /// Time × energy count grid.
    Spectrogram,
    /// Generic distribution histogram (the I/O-bound §8.3 workload).
    Histogram,
}

impl AnalysisKind {
    /// Catalog name, as stored in ANA tuples.
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Imaging => "imaging",
            AnalysisKind::Lightcurve => "lightcurve",
            AnalysisKind::Spectrum => "spectrum",
            AnalysisKind::Spectrogram => "spectrogram",
            AnalysisKind::Histogram => "histogram",
        }
    }

    /// Parse a catalog name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "imaging" => Some(AnalysisKind::Imaging),
            "lightcurve" => Some(AnalysisKind::Lightcurve),
            "spectrum" => Some(AnalysisKind::Spectrum),
            "spectrogram" => Some(AnalysisKind::Spectrogram),
            "histogram" => Some(AnalysisKind::Histogram),
            _ => None,
        }
    }
}

impl fmt::Display for AnalysisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one analysis invocation. The key/value map carries
/// algorithm-specific knobs (the "dynamic structures" of §5.1) without the
/// framework knowing their meaning; well-known keys have typed accessors.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalysisParams {
    /// Window start, mission-epoch ms.
    pub t_start_ms: u64,
    /// Window end (exclusive), mission-epoch ms.
    pub t_end_ms: u64,
    /// Lower energy cut, keV.
    pub energy_lo_kev: f64,
    /// Upper energy cut, keV.
    pub energy_hi_kev: f64,
    /// Algorithm-specific knobs.
    pub extra: BTreeMap<String, f64>,
}

impl AnalysisParams {
    /// A window over `[t_start, t_end)` with the full energy range.
    pub fn window(t_start_ms: u64, t_end_ms: u64) -> Self {
        AnalysisParams {
            t_start_ms,
            t_end_ms,
            energy_lo_kev: 3.0,
            energy_hi_kev: 20_000.0,
            extra: BTreeMap::new(),
        }
    }

    /// Restrict the energy band.
    pub fn energy(mut self, lo: f64, hi: f64) -> Self {
        self.energy_lo_kev = lo;
        self.energy_hi_kev = hi;
        self
    }

    /// Set an algorithm-specific knob.
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.extra.insert(key.to_string(), value);
        self
    }

    /// Read a knob with a default.
    pub fn get_or(&self, key: &str, default: f64) -> f64 {
        self.extra.get(key).copied().unwrap_or(default)
    }

    /// Window duration in ms.
    pub fn duration_ms(&self) -> u64 {
        self.t_end_ms.saturating_sub(self.t_start_ms)
    }

    /// Does a photon pass the time/energy cuts?
    pub fn selects(&self, t_ms: u64, energy_kev: f32) -> bool {
        t_ms >= self.t_start_ms
            && t_ms < self.t_end_ms
            && f64::from(energy_kev) >= self.energy_lo_kev
            && f64::from(energy_kev) < self.energy_hi_kev
    }

    /// A canonical string form of all parameters, used as the redundancy-
    /// detection key (§3.5: "HEDC can check whether this has already been
    /// done"). Two requests with equal fingerprints are the same analysis.
    pub fn fingerprint(&self, kind: AnalysisKind) -> String {
        self.fingerprint_with(kind.name())
    }

    /// [`AnalysisParams::fingerprint`] for user-registered algorithm names.
    pub fn fingerprint_with(&self, kind_name: &str) -> String {
        let mut s = format!(
            "{}|t{}..{}|e{:.3}..{:.3}",
            kind_name, self.t_start_ms, self.t_end_ms, self.energy_lo_kev, self.energy_hi_kev
        );
        for (k, v) in &self.extra {
            s.push_str(&format!("|{k}={v:.6}"));
        }
        s
    }
}

/// A typed analysis result.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisProduct {
    /// A reconstructed image.
    Image(ImageData),
    /// A per-band time series: (band label, counts per bin).
    Series {
        /// Bin width in ms.
        bin_ms: u64,
        /// One (label, counts) pair per energy band.
        bands: Vec<(String, Vec<u64>)>,
    },
    /// A 1-D histogram: (bin edges, counts). `edges.len() == counts.len()+1`.
    Histogram {
        /// Bin edges (monotone).
        edges: Vec<f64>,
        /// Counts per bin.
        counts: Vec<u64>,
    },
    /// A 2-D grid (time × energy for spectrograms).
    Grid(ImageData),
}

impl AnalysisProduct {
    /// Approximate product size in bytes (for transfer accounting; the
    /// paper's Tables 2–3 report output volumes).
    pub fn size_bytes(&self) -> usize {
        match self {
            AnalysisProduct::Image(img) | AnalysisProduct::Grid(img) => img.pixels.len() * 4,
            AnalysisProduct::Series { bands, .. } => {
                bands.iter().map(|(l, c)| l.len() + c.len() * 8).sum()
            }
            AnalysisProduct::Histogram { edges, counts } => edges.len() * 8 + counts.len() * 8,
        }
    }

    /// Short type label for catalogs.
    pub fn type_label(&self) -> &'static str {
        match self {
            AnalysisProduct::Image(_) => "image",
            AnalysisProduct::Series { .. } => "series",
            AnalysisProduct::Histogram { .. } => "histogram",
            AnalysisProduct::Grid(_) => "grid",
        }
    }
}

/// Errors from running an analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// Parameters fail validation (empty window, inverted ranges...).
    BadParams(String),
    /// The analysis server was killed or crashed mid-run.
    ServerDied,
    /// The run exceeded its deadline and was aborted.
    TimedOut,
    /// Unknown analysis kind requested.
    UnknownKind(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::BadParams(m) => write!(f, "bad analysis parameters: {m}"),
            AnalysisError::ServerDied => write!(f, "analysis server died"),
            AnalysisError::TimedOut => write!(f, "analysis timed out"),
            AnalysisError::UnknownKind(k) => write!(f, "unknown analysis kind `{k}`"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Select the photons passing a parameter window. Binary-searches the
/// time-sorted list, then filters by energy.
pub fn select_photons(photons: &PhotonList, params: &AnalysisParams) -> PhotonList {
    let lo = photons.times_ms.partition_point(|&t| t < params.t_start_ms);
    let hi = photons.times_ms.partition_point(|&t| t < params.t_end_ms);
    let mut out = PhotonList::default();
    for i in lo..hi {
        let e = photons.energies_kev[i];
        if f64::from(e) >= params.energy_lo_kev && f64::from(e) < params.energy_hi_kev {
            out.times_ms.push(photons.times_ms[i]);
            out.energies_kev.push(e);
            out.detectors.push(photons.detectors[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_name_roundtrip() {
        for k in [
            AnalysisKind::Imaging,
            AnalysisKind::Lightcurve,
            AnalysisKind::Spectrum,
            AnalysisKind::Spectrogram,
            AnalysisKind::Histogram,
        ] {
            assert_eq!(AnalysisKind::parse(k.name()), Some(k));
        }
        assert_eq!(AnalysisKind::parse("bogus"), None);
    }

    #[test]
    fn params_builder_and_selection() {
        let p = AnalysisParams::window(1000, 2000).energy(10.0, 100.0);
        assert!(p.selects(1500, 50.0));
        assert!(!p.selects(999, 50.0));
        assert!(!p.selects(2000, 50.0));
        assert!(!p.selects(1500, 5.0));
        assert!(!p.selects(1500, 100.0));
        assert_eq!(p.duration_ms(), 1000);
    }

    #[test]
    fn fingerprints_distinguish_params() {
        let a = AnalysisParams::window(0, 100).fingerprint(AnalysisKind::Imaging);
        let b = AnalysisParams::window(0, 101).fingerprint(AnalysisKind::Imaging);
        let c = AnalysisParams::window(0, 100).fingerprint(AnalysisKind::Spectrum);
        let d = AnalysisParams::window(0, 100)
            .with("grid", 64.0)
            .fingerprint(AnalysisKind::Imaging);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Deterministic: extra keys are sorted by the BTreeMap.
        let e = AnalysisParams::window(0, 100)
            .with("grid", 64.0)
            .fingerprint(AnalysisKind::Imaging);
        assert_eq!(d, e);
    }

    #[test]
    fn photon_selection_uses_sorted_times() {
        let photons = PhotonList {
            times_ms: vec![10, 20, 30, 40, 50],
            energies_kev: vec![5.0, 50.0, 500.0, 50.0, 5.0],
            detectors: vec![0, 1, 2, 3, 4],
        };
        let p = AnalysisParams::window(20, 50).energy(10.0, 100.0);
        let sel = select_photons(&photons, &p);
        assert_eq!(sel.times_ms, vec![20, 40]);
        assert_eq!(sel.detectors, vec![1, 3]);
    }

    #[test]
    fn product_sizes() {
        let img = AnalysisProduct::Image(ImageData::zeroed(10, 10));
        assert_eq!(img.size_bytes(), 400);
        assert_eq!(img.type_label(), "image");
        let h = AnalysisProduct::Histogram {
            edges: vec![0.0, 1.0, 2.0],
            counts: vec![5, 7],
        };
        assert_eq!(h.size_bytes(), 40);
    }
}
