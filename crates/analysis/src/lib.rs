//! # hedc-analysis — analysis algorithms and interpreter servers
//!
//! The stand-in for IDL + the Solar SoftWare tree (paper §2.1): native
//! implementations of HEDC's standard analyses — imaging, lightcurve,
//! spectrum, spectrogram, histogram — behind a single [`Algorithm`]
//! strategy trait, an [`AlgorithmRegistry`] for user-submitted routines
//! (§3.3), and [`AnalysisServer`]: a deliberately *rudimentary* single-job
//! interpreter (one job at a time, no queue, can crash or hang, killed and
//! restarted from outside) so that all the robustness lives where the paper
//! puts it — in the Processing Logic tier (`hedc-pl`).
//!
//! ```
//! use hedc_analysis::{AnalysisKind, AnalysisParams, AnalysisServer};
//! use hedc_filestore::PhotonList;
//! use std::{sync::Arc, time::Duration};
//!
//! let server = AnalysisServer::start(0);
//! let photons = Arc::new(PhotonList {
//!     times_ms: (0..1000u64).map(|i| i * 3).collect(),
//!     energies_kev: vec![12.0; 1000],
//!     detectors: vec![0; 1000],
//! });
//! let product = server.run_sync(
//!     AnalysisKind::Lightcurve,
//!     photons,
//!     AnalysisParams::window(0, 3000),
//!     Duration::from_secs(10),
//! ).unwrap();
//! assert_eq!(product.type_label(), "series");
//! ```

#![warn(missing_docs)]

mod algorithms;
mod registry;
mod server;
mod types;

pub use algorithms::{
    builtin, Algorithm, Histogram, Imaging, Lightcurve, Spectrogram, Spectrum, BANDS,
};
pub use registry::AlgorithmRegistry;
pub use server::{AnalysisServer, FaultPlan, Job, ServerState};
pub use types::{select_photons, AnalysisError, AnalysisKind, AnalysisParams, AnalysisProduct};
