//! Algorithm registry: user-submitted analysis routines.
//!
//! "There is also the possibility for users to submit analysis routines
//! that can be included into the system and made available to other users"
//! (§3.3). The registry maps names to [`Algorithm`] trait objects; the
//! built-in catalog set is pre-registered, and anything else can be added
//! at run time without touching the framework — the paper's core
//! extensibility claim.

use crate::algorithms::{builtin, Algorithm};
use crate::types::{AnalysisError, AnalysisKind, AnalysisParams, AnalysisProduct};
use hedc_filestore::PhotonList;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe registry of analysis algorithms.
pub struct AlgorithmRegistry {
    algorithms: RwLock<HashMap<String, Arc<dyn Algorithm>>>,
}

impl Default for AlgorithmRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl AlgorithmRegistry {
    /// Empty registry (no algorithms at all).
    pub fn empty() -> Self {
        AlgorithmRegistry {
            algorithms: RwLock::new(HashMap::new()),
        }
    }

    /// Registry pre-loaded with the standard catalog algorithms.
    pub fn with_builtins() -> Self {
        let reg = Self::empty();
        for kind in [
            AnalysisKind::Imaging,
            AnalysisKind::Lightcurve,
            AnalysisKind::Spectrum,
            AnalysisKind::Spectrogram,
            AnalysisKind::Histogram,
        ] {
            let alg: Arc<dyn Algorithm> = Arc::from(builtin(kind));
            reg.algorithms.write().insert(alg.name().to_string(), alg);
        }
        reg
    }

    /// Register (or replace) an algorithm under its own name. Replacement is
    /// deliberate: "designers optimize existing routines" (§3.1) and the new
    /// version takes over without a restart.
    pub fn register(&self, alg: Arc<dyn Algorithm>) {
        self.algorithms.write().insert(alg.name().to_string(), alg);
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Algorithm>, AnalysisError> {
        self.algorithms
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| AnalysisError::UnknownKind(name.to_string()))
    }

    /// Registered algorithm names, sorted (for the services table, §4.1).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.algorithms.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Convenience: look up and run.
    pub fn run(
        &self,
        name: &str,
        photons: &PhotonList,
        params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError> {
        self.get(name)?.run(photons, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Algorithm for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn run(
            &self,
            photons: &PhotonList,
            _params: &AnalysisParams,
        ) -> Result<AnalysisProduct, AnalysisError> {
            Ok(AnalysisProduct::Histogram {
                edges: vec![0.0, 1.0],
                counts: vec![photons.len() as u64 * 2],
            })
        }
        fn cost_flops(&self, photon_count: u64, _params: &AnalysisParams) -> f64 {
            photon_count as f64
        }
    }

    #[test]
    fn builtins_present() {
        let reg = AlgorithmRegistry::with_builtins();
        assert_eq!(
            reg.names(),
            vec![
                "histogram",
                "imaging",
                "lightcurve",
                "spectrogram",
                "spectrum"
            ]
        );
        assert!(reg.get("imaging").is_ok());
        assert!(matches!(
            reg.get("nope"),
            Err(AnalysisError::UnknownKind(_))
        ));
    }

    #[test]
    fn user_algorithm_registers_and_runs() {
        let reg = AlgorithmRegistry::with_builtins();
        reg.register(Arc::new(Doubler));
        let p = PhotonList {
            times_ms: vec![1, 2, 3],
            energies_kev: vec![1.0; 3],
            detectors: vec![0; 3],
        };
        let out = reg
            .run("doubler", &p, &AnalysisParams::window(0, 10))
            .unwrap();
        let AnalysisProduct::Histogram { counts, .. } = out else {
            panic!()
        };
        assert_eq!(counts, vec![6]);
    }

    #[test]
    fn replacement_takes_over() {
        struct V2;
        impl Algorithm for V2 {
            fn name(&self) -> &str {
                "doubler"
            }
            fn run(
                &self,
                _photons: &PhotonList,
                _params: &AnalysisParams,
            ) -> Result<AnalysisProduct, AnalysisError> {
                Ok(AnalysisProduct::Histogram {
                    edges: vec![0.0],
                    counts: vec![],
                })
            }
            fn cost_flops(&self, _p: u64, _params: &AnalysisParams) -> f64 {
                0.0
            }
        }
        let reg = AlgorithmRegistry::empty();
        reg.register(Arc::new(Doubler));
        reg.register(Arc::new(V2));
        assert_eq!(reg.names().len(), 1);
        let out = reg
            .run(
                "doubler",
                &PhotonList::default(),
                &AnalysisParams::window(0, 10),
            )
            .unwrap();
        let AnalysisProduct::Histogram { counts, .. } = out else {
            panic!()
        };
        assert!(counts.is_empty());
    }
}
