//! Analysis servers: the stand-in for HEDC's external IDL interpreters.
//!
//! The paper's PL manages "multiple native IDL interpreters" that "provide
//! only rudimentary job control, data management, and error recovery
//! functionality" (§2.3). An [`AnalysisServer`] reproduces exactly that
//! contract: a worker thread that accepts one job at a time, no queueing,
//! no retry, can hang (fault injection) and be killed and restarted from
//! outside. Everything smarter — scheduling, timeouts, restarts — is the
//! PL's job (`hedc-pl`), which is the point the paper makes.

use crate::algorithms::builtin;
use crate::types::{AnalysisError, AnalysisKind, AnalysisParams, AnalysisProduct};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use hedc_filestore::PhotonList;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A job handed to a server.
pub struct Job {
    /// Which algorithm to run.
    pub kind: AnalysisKind,
    /// Input photons (already staged by the DM).
    pub photons: Arc<PhotonList>,
    /// Parameters.
    pub params: AnalysisParams,
    /// Where to deliver the result.
    pub reply: Sender<Result<AnalysisProduct, AnalysisError>>,
}

/// Fault-injection knobs, used by tests and the PL's failure benches.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Crash (worker exits) before running the job when set.
    pub crash_next: AtomicBool,
    /// Hang (sleep this many ms, simulating a stuck interpreter) before
    /// running the job when non-zero.
    pub hang_next_ms: AtomicU64,
}

/// Server lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Accepting a job.
    Idle,
    /// Running a job.
    Busy,
    /// Worker thread has exited (crash or kill); must be restarted.
    Dead,
}

struct Inner {
    sender: Option<Sender<Job>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// One analysis interpreter process (modeled as a thread).
pub struct AnalysisServer {
    /// Server id, unique within its manager.
    pub id: u32,
    inner: Mutex<Inner>,
    busy: Arc<AtomicBool>,
    pending: Arc<AtomicBool>,
    alive: Arc<AtomicBool>,
    /// Fault-injection controls.
    pub faults: Arc<FaultPlan>,
    jobs_completed: Arc<AtomicU64>,
    generation: AtomicU64,
}

impl AnalysisServer {
    /// Start a server (spawns its worker thread).
    pub fn start(id: u32) -> Self {
        let server = AnalysisServer {
            id,
            inner: Mutex::new(Inner {
                sender: None,
                handle: None,
            }),
            busy: Arc::new(AtomicBool::new(false)),
            pending: Arc::new(AtomicBool::new(false)),
            alive: Arc::new(AtomicBool::new(false)),
            faults: Arc::new(FaultPlan::default()),
            jobs_completed: Arc::new(AtomicU64::new(0)),
            generation: AtomicU64::new(0),
        };
        server.restart();
        server
    }

    /// (Re)start the worker thread. Any in-flight job on a previous
    /// incarnation is lost — its reply channel is dropped, which the caller
    /// observes as a disconnected receive (≙ [`AnalysisError::ServerDied`]).
    pub fn restart(&self) {
        let mut inner = self.inner.lock();
        // Drop the old sender so a previous worker drains and exits.
        inner.sender = None;
        if let Some(h) = inner.handle.take() {
            // The old worker may be hung; don't join it, just detach.
            drop(h);
        }
        // One slot: a submitted job parks here until the worker picks it up.
        // Single-job semantics are enforced by the `pending` flag, not the
        // channel, so submission never races worker startup.
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(1);
        let busy = Arc::clone(&self.busy);
        let pending = Arc::clone(&self.pending);
        let alive = Arc::clone(&self.alive);
        let faults = Arc::clone(&self.faults);
        let done = Arc::clone(&self.jobs_completed);
        self.generation.fetch_add(1, Ordering::Relaxed);
        alive.store(true, Ordering::SeqCst);
        busy.store(false, Ordering::SeqCst);
        self.pending.store(false, Ordering::SeqCst);
        let handle = std::thread::Builder::new()
            .name(format!("analysis-server-{}", self.id))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    busy.store(true, Ordering::SeqCst);
                    if faults.crash_next.swap(false, Ordering::SeqCst) {
                        // Simulated interpreter crash: exit without reply.
                        alive.store(false, Ordering::SeqCst);
                        busy.store(false, Ordering::SeqCst);
                        return;
                    }
                    let hang = faults.hang_next_ms.swap(0, Ordering::SeqCst);
                    if hang > 0 {
                        std::thread::sleep(Duration::from_millis(hang));
                    }
                    let result = builtin(job.kind).run(&job.photons, &job.params);
                    let _ = job.reply.send(result);
                    done.fetch_add(1, Ordering::Relaxed);
                    busy.store(false, Ordering::SeqCst);
                    pending.store(false, Ordering::SeqCst);
                }
                alive.store(false, Ordering::SeqCst);
            })
            .expect("spawn analysis server");
        inner.sender = Some(tx);
        inner.handle = Some(handle);
    }

    /// Kill the worker (drops the job channel; a hung worker is abandoned).
    pub fn kill(&self) {
        let mut inner = self.inner.lock();
        inner.sender = None;
        inner.handle = None;
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Current state.
    pub fn state(&self) -> ServerState {
        if !self.alive.load(Ordering::SeqCst) {
            ServerState::Dead
        } else if self.pending.load(Ordering::SeqCst) || self.busy.load(Ordering::SeqCst) {
            ServerState::Busy
        } else {
            ServerState::Idle
        }
    }

    /// Jobs completed across all incarnations.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::Relaxed)
    }

    /// Number of times the worker was (re)started.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Submit a job without blocking. Errors if the server is busy or dead —
    /// rudimentary job control, exactly like a single-threaded interpreter.
    pub fn try_submit(
        &self,
        kind: AnalysisKind,
        photons: Arc<PhotonList>,
        params: AnalysisParams,
    ) -> Result<Receiver<Result<AnalysisProduct, AnalysisError>>, AnalysisError> {
        let inner = self.inner.lock();
        let sender = inner.sender.as_ref().ok_or(AnalysisError::ServerDied)?;
        if self.pending.swap(true, Ordering::SeqCst) {
            return Err(AnalysisError::BadParams(
                "server busy: single-job interpreter".into(),
            ));
        }
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            kind,
            photons,
            params,
            reply: reply_tx,
        };
        match sender.try_send(job) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.pending.store(false, Ordering::SeqCst);
                Err(AnalysisError::ServerDied)
            }
        }
    }

    /// Submit and wait with a deadline. On timeout the job is abandoned (the
    /// worker may still be grinding — the *caller* decides whether to kill
    /// and restart, mirroring the PL's role).
    pub fn run_sync(
        &self,
        kind: AnalysisKind,
        photons: Arc<PhotonList>,
        params: AnalysisParams,
        timeout: Duration,
    ) -> Result<AnalysisProduct, AnalysisError> {
        let rx = self.try_submit(kind, photons, params)?;
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(AnalysisError::TimedOut),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(AnalysisError::ServerDied)
            }
        }
    }
}

impl Drop for AnalysisServer {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photons(n: usize) -> Arc<PhotonList> {
        let mut p = PhotonList::default();
        for i in 0..n {
            p.times_ms.push(i as u64 * 5);
            p.energies_kev.push(10.0);
            p.detectors.push(0);
        }
        Arc::new(p)
    }

    #[test]
    fn runs_jobs_synchronously() {
        let s = AnalysisServer::start(1);
        let out = s
            .run_sync(
                AnalysisKind::Histogram,
                photons(100),
                AnalysisParams::window(0, 1000),
                Duration::from_secs(5),
            )
            .unwrap();
        assert!(matches!(out, AnalysisProduct::Histogram { .. }));
        assert_eq!(s.jobs_completed(), 1);
        assert_eq!(s.state(), ServerState::Idle);
    }

    #[test]
    fn busy_server_rejects_second_job() {
        let s = AnalysisServer::start(1);
        s.faults.hang_next_ms.store(300, Ordering::SeqCst);
        let _rx = s
            .try_submit(
                AnalysisKind::Histogram,
                photons(10),
                AnalysisParams::window(0, 1000),
            )
            .unwrap();
        // Give the worker a moment to pick the job up.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.state(), ServerState::Busy);
        let err = s.try_submit(
            AnalysisKind::Histogram,
            photons(10),
            AnalysisParams::window(0, 1000),
        );
        assert!(err.is_err(), "single-job interpreter must reject");
    }

    #[test]
    fn crash_fault_kills_server() {
        let s = AnalysisServer::start(1);
        s.faults.crash_next.store(true, Ordering::SeqCst);
        let err = s
            .run_sync(
                AnalysisKind::Histogram,
                photons(10),
                AnalysisParams::window(0, 1000),
                Duration::from_secs(5),
            )
            .unwrap_err();
        assert_eq!(err, AnalysisError::ServerDied);
        // Wait for the worker to finish dying.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.state(), ServerState::Dead);
        // Restart brings it back.
        s.restart();
        assert_eq!(s.state(), ServerState::Idle);
        let out = s.run_sync(
            AnalysisKind::Histogram,
            photons(10),
            AnalysisParams::window(0, 1000),
            Duration::from_secs(5),
        );
        assert!(out.is_ok());
        assert_eq!(s.generation(), 2);
    }

    #[test]
    fn timeout_on_hung_server() {
        let s = AnalysisServer::start(1);
        s.faults.hang_next_ms.store(2_000, Ordering::SeqCst);
        let err = s
            .run_sync(
                AnalysisKind::Histogram,
                photons(10),
                AnalysisParams::window(0, 1000),
                Duration::from_millis(100),
            )
            .unwrap_err();
        assert_eq!(err, AnalysisError::TimedOut);
        // The caller's recovery: kill + restart.
        s.kill();
        assert_eq!(s.state(), ServerState::Dead);
        s.restart();
        let out = s.run_sync(
            AnalysisKind::Histogram,
            photons(10),
            AnalysisParams::window(0, 1000),
            Duration::from_secs(5),
        );
        assert!(out.is_ok());
    }

    #[test]
    fn dead_server_rejects_jobs() {
        let s = AnalysisServer::start(1);
        s.kill();
        let err = s.try_submit(
            AnalysisKind::Spectrum,
            photons(10),
            AnalysisParams::window(0, 1000),
        );
        assert!(matches!(err, Err(AnalysisError::ServerDied)));
    }

    #[test]
    fn algorithm_errors_propagate() {
        let s = AnalysisServer::start(1);
        let err = s
            .run_sync(
                AnalysisKind::Imaging,
                photons(10),
                AnalysisParams::window(100, 100), // empty window
                Duration::from_secs(5),
            )
            .unwrap_err();
        assert!(matches!(err, AnalysisError::BadParams(_)));
        // Server survives bad requests.
        assert_eq!(s.state(), ServerState::Idle);
    }
}
