//! The standard analysis algorithms.
//!
//! These stand in for the IDL / Solar SoftWare routines (§2.1): native
//! implementations of imaging, lightcurve, spectrum, spectrogram, and
//! histogram analyses behind one [`Algorithm`] trait. The PL manages them as
//! opaque strategies; users can register additional implementations of the
//! trait (§3.3: users "may submit analysis routines that can be included
//! into the system").
//!
//! Fidelity note (documented in DESIGN.md): the imaging algorithm is a real
//! rotating-modulation-collimator back projection over the photon stream,
//! but the synthetic telemetry carries no true source geometry, so images
//! are statistically correct noise+fringe maps rather than sky
//! reconstructions. What the evaluation depends on — CPU cost scaling with
//! photons × grid size, output volume, determinism — is faithful.

use crate::types::{select_photons, AnalysisError, AnalysisKind, AnalysisParams, AnalysisProduct};
use hedc_filestore::{ImageData, PhotonList};

/// An analysis algorithm: the strategy interface the PL dispatches on.
pub trait Algorithm: Send + Sync {
    /// Catalog name (unique).
    fn name(&self) -> &str;

    /// Validate parameters and run, producing a typed product.
    fn run(
        &self,
        photons: &PhotonList,
        params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError>;

    /// Rough floating-point-operation count for the run, used by the PL's
    /// estimation phase (§5.1) to predict duration before executing.
    fn cost_flops(&self, photon_count: u64, params: &AnalysisParams) -> f64;
}

fn validate(params: &AnalysisParams) -> Result<(), AnalysisError> {
    if params.t_end_ms <= params.t_start_ms {
        return Err(AnalysisError::BadParams("empty time window".into()));
    }
    if params.energy_hi_kev <= params.energy_lo_kev {
        return Err(AnalysisError::BadParams("empty energy band".into()));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Imaging
// ---------------------------------------------------------------------------

/// Rotating-modulation-collimator back projection.
///
/// Each of RHESSI's 9 collimators imposes a sinusoidal spatial modulation
/// whose orientation rotates with the spacecraft (≈15 rpm). Back projection
/// accumulates, for every photon, the fringe pattern its detector/rotation
/// phase implies over the sky grid. Knobs: `grid` (pixels per side, default
/// 64), `fov` (field of view in arcsec, default 1024).
pub struct Imaging;

/// Spacecraft spin period, ms (≈15 rpm).
const SPIN_MS: f64 = 4000.0;

impl Algorithm for Imaging {
    fn name(&self) -> &str {
        "imaging"
    }

    fn run(
        &self,
        photons: &PhotonList,
        params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError> {
        validate(params)?;
        let grid = params.get_or("grid", 64.0) as usize;
        if grid == 0 || grid > 4096 {
            return Err(AnalysisError::BadParams(format!(
                "grid {grid} out of range"
            )));
        }
        let fov = params.get_or("fov", 1024.0);
        let sel = select_photons(photons, params);
        let mut img = ImageData::zeroed(grid as u32, grid as u32);
        let half = grid as f64 / 2.0;
        for i in 0..sel.len() {
            let t = sel.times_ms[i] as f64;
            let det = sel.detectors[i] as usize;
            // Collimator d has angular pitch 2^d × 2.3 arcsec (finest ≈ the
            // paper's "2 arcsec" figure); rotation phase from arrival time.
            let pitch = 2.3 * (1 << (det % 9)) as f64;
            let theta = (t % SPIN_MS) / SPIN_MS * std::f64::consts::TAU;
            let (sin_t, cos_t) = theta.sin_cos();
            let k = std::f64::consts::TAU / pitch;
            for y in 0..grid {
                let sy = (y as f64 - half) / half * fov / 2.0;
                for x in 0..grid {
                    let sx = (x as f64 - half) / half * fov / 2.0;
                    let phase = k * (sx * cos_t + sy * sin_t);
                    let w = (1.0 + phase.cos()) as f32;
                    img.set(x as u32, y as u32, img.get(x as u32, y as u32) + w);
                }
            }
        }
        Ok(AnalysisProduct::Image(img))
    }

    fn cost_flops(&self, photon_count: u64, params: &AnalysisParams) -> f64 {
        let grid = params.get_or("grid", 64.0);
        // ~8 flops per photon per pixel.
        photon_count as f64 * grid * grid * 8.0
    }
}

// ---------------------------------------------------------------------------
// Lightcurve
// ---------------------------------------------------------------------------

/// Counts versus time in standard energy bands. Knob: `bin_ms` (default
/// 4000 — one spacecraft rotation).
pub struct Lightcurve;

/// The standard RHESSI quick-look energy bands (keV).
pub const BANDS: [(f64, f64, &str); 4] = [
    (3.0, 12.0, "3-12 keV"),
    (12.0, 25.0, "12-25 keV"),
    (25.0, 100.0, "25-100 keV"),
    (100.0, 20_000.0, "100+ keV"),
];

impl Algorithm for Lightcurve {
    fn name(&self) -> &str {
        "lightcurve"
    }

    fn run(
        &self,
        photons: &PhotonList,
        params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError> {
        validate(params)?;
        let bin_ms = params.get_or("bin_ms", 4000.0) as u64;
        if bin_ms == 0 {
            return Err(AnalysisError::BadParams("bin_ms must be positive".into()));
        }
        let sel = select_photons(photons, params);
        let nbins = params.duration_ms().div_ceil(bin_ms) as usize;
        let mut bands: Vec<(String, Vec<u64>)> = BANDS
            .iter()
            .filter(|(lo, hi, _)| *hi > params.energy_lo_kev && *lo < params.energy_hi_kev)
            .map(|(_, _, label)| (label.to_string(), vec![0u64; nbins]))
            .collect();
        let active: Vec<(f64, f64)> = BANDS
            .iter()
            .filter(|(lo, hi, _)| *hi > params.energy_lo_kev && *lo < params.energy_hi_kev)
            .map(|(lo, hi, _)| (*lo, *hi))
            .collect();
        for i in 0..sel.len() {
            let bin = ((sel.times_ms[i] - params.t_start_ms) / bin_ms) as usize;
            let e = f64::from(sel.energies_kev[i]);
            for (b, (lo, hi)) in active.iter().enumerate() {
                if e >= *lo && e < *hi {
                    bands[b].1[bin.min(nbins - 1)] += 1;
                    break;
                }
            }
        }
        Ok(AnalysisProduct::Series { bin_ms, bands })
    }

    fn cost_flops(&self, photon_count: u64, _params: &AnalysisParams) -> f64 {
        photon_count as f64 * 12.0
    }
}

// ---------------------------------------------------------------------------
// Spectrum
// ---------------------------------------------------------------------------

/// Log-binned energy spectrum. Knob: `bins` (default 64).
pub struct Spectrum;

impl Algorithm for Spectrum {
    fn name(&self) -> &str {
        "spectrum"
    }

    fn run(
        &self,
        photons: &PhotonList,
        params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError> {
        validate(params)?;
        let bins = params.get_or("bins", 64.0) as usize;
        if bins == 0 {
            return Err(AnalysisError::BadParams("bins must be positive".into()));
        }
        let sel = select_photons(photons, params);
        let lo = params.energy_lo_kev.max(0.1).ln();
        let hi = params.energy_hi_kev.ln();
        let mut edges = Vec::with_capacity(bins + 1);
        for b in 0..=bins {
            edges.push((lo + (hi - lo) * b as f64 / bins as f64).exp());
        }
        let mut counts = vec![0u64; bins];
        for &e in &sel.energies_kev {
            let x = f64::from(e).max(0.1).ln();
            let t = (x - lo) / (hi - lo);
            if (0.0..1.0).contains(&t) {
                counts[((t * bins as f64) as usize).min(bins - 1)] += 1;
            }
        }
        Ok(AnalysisProduct::Histogram { edges, counts })
    }

    fn cost_flops(&self, photon_count: u64, _params: &AnalysisParams) -> f64 {
        photon_count as f64 * 30.0 // ln() per photon
    }
}

// ---------------------------------------------------------------------------
// Spectrogram
// ---------------------------------------------------------------------------

/// Time × energy count grid (what the Phoenix-2 catalog stores, §2.2).
/// Knobs: `time_bins` (default 128), `energy_bins` (default 64).
pub struct Spectrogram;

impl Algorithm for Spectrogram {
    fn name(&self) -> &str {
        "spectrogram"
    }

    fn run(
        &self,
        photons: &PhotonList,
        params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError> {
        validate(params)?;
        let tb = params.get_or("time_bins", 128.0) as usize;
        let eb = params.get_or("energy_bins", 64.0) as usize;
        if tb == 0 || eb == 0 {
            return Err(AnalysisError::BadParams("bins must be positive".into()));
        }
        let sel = select_photons(photons, params);
        let mut grid = ImageData::zeroed(tb as u32, eb as u32);
        let dur = params.duration_ms() as f64;
        let lo = params.energy_lo_kev.max(0.1).ln();
        let hi = params.energy_hi_kev.ln();
        for i in 0..sel.len() {
            let tx = (sel.times_ms[i] - params.t_start_ms) as f64 / dur;
            let ey = (f64::from(sel.energies_kev[i]).max(0.1).ln() - lo) / (hi - lo);
            if (0.0..1.0).contains(&tx) && (0.0..1.0).contains(&ey) {
                let x = ((tx * tb as f64) as u32).min(tb as u32 - 1);
                let y = ((ey * eb as f64) as u32).min(eb as u32 - 1);
                grid.set(x, y, grid.get(x, y) + 1.0);
            }
        }
        Ok(AnalysisProduct::Grid(grid))
    }

    fn cost_flops(&self, photon_count: u64, _params: &AnalysisParams) -> f64 {
        photon_count as f64 * 35.0
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Generic linear histogram over photon inter-arrival gaps — the cheap,
/// I/O-dominated analysis of the paper's §8.3 test series. Knob: `bins`
/// (default 100).
pub struct Histogram;

impl Algorithm for Histogram {
    fn name(&self) -> &str {
        "histogram"
    }

    fn run(
        &self,
        photons: &PhotonList,
        params: &AnalysisParams,
    ) -> Result<AnalysisProduct, AnalysisError> {
        validate(params)?;
        let bins = params.get_or("bins", 100.0) as usize;
        if bins == 0 {
            return Err(AnalysisError::BadParams("bins must be positive".into()));
        }
        let sel = select_photons(photons, params);
        let max_gap = params.get_or("max_gap_ms", 100.0);
        let mut edges = Vec::with_capacity(bins + 1);
        for b in 0..=bins {
            edges.push(max_gap * b as f64 / bins as f64);
        }
        let mut counts = vec![0u64; bins];
        for w in sel.times_ms.windows(2) {
            let gap = (w[1] - w[0]) as f64;
            let t = gap / max_gap;
            if t < 1.0 {
                counts[((t * bins as f64) as usize).min(bins - 1)] += 1;
            }
        }
        Ok(AnalysisProduct::Histogram { edges, counts })
    }

    fn cost_flops(&self, photon_count: u64, _params: &AnalysisParams) -> f64 {
        photon_count as f64 * 4.0
    }
}

/// Look up the built-in algorithm for a kind.
pub fn builtin(kind: AnalysisKind) -> Box<dyn Algorithm> {
    match kind {
        AnalysisKind::Imaging => Box::new(Imaging),
        AnalysisKind::Lightcurve => Box::new(Lightcurve),
        AnalysisKind::Spectrum => Box::new(Spectrum),
        AnalysisKind::Spectrogram => Box::new(Spectrogram),
        AnalysisKind::Histogram => Box::new(Histogram),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photons(n: usize) -> PhotonList {
        let mut p = PhotonList::default();
        for i in 0..n {
            p.times_ms.push((i as u64) * 10);
            p.energies_kev.push(3.0 + (i % 200) as f32);
            p.detectors.push((i % 9) as u8);
        }
        p
    }

    #[test]
    fn imaging_produces_grid_of_requested_size() {
        let p = photons(200);
        let params = AnalysisParams::window(0, 2000).with("grid", 16.0);
        let out = Imaging.run(&p, &params).unwrap();
        let AnalysisProduct::Image(img) = out else {
            panic!()
        };
        assert_eq!((img.width, img.height), (16, 16));
        assert!(img.total() > 0.0);
    }

    #[test]
    fn imaging_deterministic() {
        let p = photons(100);
        let params = AnalysisParams::window(0, 1000).with("grid", 8.0);
        let a = Imaging.run(&p, &params).unwrap();
        let b = Imaging.run(&p, &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn imaging_rejects_bad_grid() {
        let p = photons(10);
        let params = AnalysisParams::window(0, 1000).with("grid", 0.0);
        assert!(matches!(
            Imaging.run(&p, &params),
            Err(AnalysisError::BadParams(_))
        ));
    }

    #[test]
    fn lightcurve_total_equals_selected_photons() {
        let p = photons(1000);
        let params = AnalysisParams::window(0, 10_000).with("bin_ms", 1000.0);
        let out = Lightcurve.run(&p, &params).unwrap();
        let AnalysisProduct::Series { bands, bin_ms } = out else {
            panic!()
        };
        assert_eq!(bin_ms, 1000);
        let total: u64 = bands.iter().flat_map(|(_, c)| c.iter()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn lightcurve_band_filtering() {
        let p = photons(1000);
        let params = AnalysisParams::window(0, 10_000).energy(3.0, 12.0);
        let out = Lightcurve.run(&p, &params).unwrap();
        let AnalysisProduct::Series { bands, .. } = out else {
            panic!()
        };
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].0, "3-12 keV");
    }

    #[test]
    fn spectrum_counts_selected_photons() {
        let p = photons(500);
        let params = AnalysisParams::window(0, 5_000).energy(3.0, 300.0);
        let out = Spectrum.run(&p, &params).unwrap();
        let AnalysisProduct::Histogram { edges, counts } = out else {
            panic!()
        };
        assert_eq!(edges.len(), counts.len() + 1);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn spectrogram_grid_totals() {
        let p = photons(800);
        let params = AnalysisParams::window(0, 8_000)
            .with("time_bins", 32.0)
            .with("energy_bins", 16.0);
        let out = Spectrogram.run(&p, &params).unwrap();
        let AnalysisProduct::Grid(g) = out else {
            panic!()
        };
        assert_eq!((g.width, g.height), (32, 16));
        assert_eq!(g.total() as u64, 800);
    }

    #[test]
    fn histogram_gap_distribution() {
        let p = photons(1000); // constant 10 ms gaps
        let params = AnalysisParams::window(0, 10_000).with("max_gap_ms", 50.0);
        let out = Histogram.run(&p, &params).unwrap();
        let AnalysisProduct::Histogram { counts, .. } = out else {
            panic!()
        };
        // All gaps land in the bin containing 10 ms.
        let peak = counts.iter().copied().max().unwrap();
        assert_eq!(peak as usize, 999);
    }

    #[test]
    fn empty_window_rejected_by_all() {
        let p = photons(10);
        let params = AnalysisParams::window(100, 100);
        for kind in [
            AnalysisKind::Imaging,
            AnalysisKind::Lightcurve,
            AnalysisKind::Spectrum,
            AnalysisKind::Spectrogram,
            AnalysisKind::Histogram,
        ] {
            assert!(
                matches!(
                    builtin(kind).run(&p, &params),
                    Err(AnalysisError::BadParams(_))
                ),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn cost_estimates_scale_with_input() {
        let params = AnalysisParams::window(0, 1000);
        for kind in [AnalysisKind::Imaging, AnalysisKind::Histogram] {
            let alg = builtin(kind);
            assert!(alg.cost_flops(2000, &params) > alg.cost_flops(1000, &params));
        }
        // Imaging is far more expensive per photon than histogram (the §8
        // CPU-bound vs I/O-bound contrast).
        assert!(Imaging.cost_flops(1000, &params) > Histogram.cost_flops(1000, &params) * 100.0);
    }
}
