//! Property-based tests for the analysis algorithms: count-conservation
//! and selection invariants that must hold for any photon stream.

use hedc_analysis::{builtin, select_photons, AnalysisKind, AnalysisParams, AnalysisProduct};
use hedc_filestore::PhotonList;
use proptest::prelude::*;

fn arb_photons() -> impl Strategy<Value = PhotonList> {
    (0usize..400, any::<u64>()).prop_map(|(n, seed)| {
        let mut p = PhotonList::default();
        let mut x = seed | 1;
        let mut t = 0u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += x % 100;
            p.times_ms.push(t);
            p.energies_kev.push(3.0 + (x % 20_000) as f32 / 10.0);
            p.detectors.push((x % 9) as u8);
        }
        p
    })
}

proptest! {
    /// select_photons returns exactly the photons the params admit,
    /// in order.
    #[test]
    fn selection_is_exact(p in arb_photons(), a in 0u64..20_000, b in 0u64..20_000,
                          elo in 0f64..100.0, ehi in 0f64..2000.0) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let (elo, ehi) = if elo <= ehi { (elo, ehi) } else { (ehi, elo) };
        let params = AnalysisParams::window(a, b).energy(elo, ehi);
        let sel = select_photons(&p, &params);
        // Contains exactly the admissible photons.
        let expected: Vec<usize> = (0..p.len())
            .filter(|&i| params.selects(p.times_ms[i], p.energies_kev[i]))
            .collect();
        prop_assert_eq!(sel.len(), expected.len());
        for (k, &i) in expected.iter().enumerate() {
            prop_assert_eq!(sel.times_ms[k], p.times_ms[i]);
            prop_assert_eq!(sel.detectors[k], p.detectors[i]);
        }
    }

    /// Lightcurves conserve photons: the sum over bands and bins equals the
    /// selected photon count (every photon lands in exactly one band/bin).
    #[test]
    fn lightcurve_conserves_counts(p in arb_photons()) {
        let params = AnalysisParams::window(0, 50_000).with("bin_ms", 1000.0);
        let sel = select_photons(&p, &params);
        let out = builtin(AnalysisKind::Lightcurve).run(&p, &params).unwrap();
        let AnalysisProduct::Series { bands, .. } = out else { panic!() };
        let total: u64 = bands.iter().flat_map(|(_, c)| c.iter()).sum();
        prop_assert_eq!(total, sel.len() as u64);
    }

    /// Spectra conserve photons within the energy cut.
    #[test]
    fn spectrum_conserves_counts(p in arb_photons()) {
        let params = AnalysisParams::window(0, 50_000).energy(3.0, 2003.0);
        let sel = select_photons(&p, &params);
        let out = builtin(AnalysisKind::Spectrum).run(&p, &params).unwrap();
        let AnalysisProduct::Histogram { counts, .. } = out else { panic!() };
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total, sel.len() as u64);
    }

    /// Spectrogram grid total equals the selected count.
    #[test]
    fn spectrogram_conserves_counts(p in arb_photons()) {
        let params = AnalysisParams::window(0, 50_000)
            .with("time_bins", 16.0)
            .with("energy_bins", 8.0);
        let sel = select_photons(&p, &params);
        let out = builtin(AnalysisKind::Spectrogram).run(&p, &params).unwrap();
        let AnalysisProduct::Grid(g) = out else { panic!() };
        prop_assert_eq!(g.total().round() as u64, sel.len() as u64);
    }

    /// Imaging output is finite and deterministic for any input.
    #[test]
    fn imaging_total_is_finite(p in arb_photons()) {
        let params = AnalysisParams::window(0, 50_000).with("grid", 8.0);
        let out = builtin(AnalysisKind::Imaging).run(&p, &params).unwrap();
        let AnalysisProduct::Image(img) = out else { panic!() };
        prop_assert!(img.pixels.iter().all(|v| v.is_finite()));
        // Back projection deposits ~1 unit/pixel/photon on average
        // (1 + cos ≈ mean 1): total ≈ photons × pixels.
        let sel = select_photons(&p, &params);
        if sel.len() > 20 {
            let per_photon = img.total() / sel.len() as f64 / 64.0;
            prop_assert!((0.5..1.5).contains(&per_photon), "{per_photon}");
        }
    }

    /// Fingerprints are injective over the sampled parameter space.
    #[test]
    fn fingerprints_unique(a0 in 0u64..1000, a1 in 1001u64..2000,
                           b0 in 0u64..1000, b1 in 1001u64..2000) {
        let fa = AnalysisParams::window(a0, a1).fingerprint(AnalysisKind::Imaging);
        let fb = AnalysisParams::window(b0, b1).fingerprint(AnalysisKind::Imaging);
        prop_assert_eq!(fa == fb, a0 == b0 && a1 == b1);
    }
}
