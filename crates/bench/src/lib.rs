//! # hedc-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run --release -p hedc-bench --bin <name>`):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig4_browse_clients` | Figure 4: browse throughput vs clients, 1 node |
//! | `fig5_browse_nodes` | Figure 5: browse throughput vs middle-tier nodes |
//! | `table1_processing` | Table 1: imaging & histogram test series |
//! | `table23_characteristics` | Tables 2–3: workload characteristics, measured on the real stack |
//! | `pl_bench` | §3.5 redundant-work elimination: zipf duplicate-heavy load, coalesce on/off |
//!
//! Criterion benches (`cargo bench -p hedc-bench`) cover the ablations
//! A1–A7 from DESIGN.md. Reports are also written as JSON under
//! `results/` for EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod attribution;
pub mod cache_bench;
pub mod cluster;
pub mod schema;
pub mod shard_bench;

use std::path::{Path, PathBuf};

/// Where harness binaries drop their JSON reports: `HEDC_RESULTS_DIR` if
/// set, otherwise `results/` at the **workspace root** — anchored via this
/// crate's compile-time manifest path, not the working directory, so
/// `cargo run` from any subdirectory lands the report where the repo
/// commits it (a CWD-relative `results/` silently scattered reports and
/// left the committed trajectory empty).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HEDC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root above crates/bench")
                .join("results")
        });
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a JSON report.
pub fn write_report(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .expect("write report");
    println!("\n[report written to {}]", path.display());
}

/// Whether the harness runs in smoke mode (`HEDC_BENCH_SMOKE=1`): tiny
/// configurations that finish in seconds rather than minutes, used by
/// `scripts/check.sh --bench-smoke` so the harness binaries cannot rot
/// unnoticed. Smoke runs still exercise the full code path; only sweep
/// sizes and measurement windows shrink.
pub fn smoke() -> bool {
    std::env::var("HEDC_BENCH_SMOKE").map_or(false, |v| !v.is_empty() && v != "0")
}

/// Format a ratio of measured vs paper as a signed percentage string.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "-".to_string();
    }
    let pct = (measured - paper) / paper * 100.0;
    format!("{pct:+.0}%")
}
