//! Warm-vs-cold browse latency with the DM result cache enabled.
//!
//! The cold pass runs a set of distinct browse queries against an empty
//! cache — every query pays verify/compile/execute in the metadata
//! database. The warm passes repeat the same set, now answered from the
//! sharded result cache. `fig5_browse_nodes --cache` records both rows in
//! `results/BENCH_fig5_browse_nodes.json`; the interesting number is the
//! speedup, which is what the §6.3 materialized-view discussion buys at
//! the view granularity and this cache buys at the query granularity.

use hedc_cache::CacheConfig;
use hedc_dm::{Dm, DmConfig, IoConfig};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{AggFunc, Expr, Query};
use std::sync::Arc;
use std::time::Instant;

/// One warm-vs-cold cache run.
#[derive(Debug, Clone, Copy)]
pub struct CacheBenchConfig {
    /// Distinct browse queries in the working set.
    pub queries: usize,
    /// Warm repetitions of the working set after the cold pass.
    pub warm_passes: usize,
    /// Public HLE rows seeded before measuring.
    pub seed_rows: u64,
}

impl Default for CacheBenchConfig {
    fn default() -> Self {
        CacheBenchConfig {
            queries: 64,
            warm_passes: 8,
            seed_rows: 256,
        }
    }
}

/// Measured outcome of a cache run.
#[derive(Debug, Clone, Copy)]
pub struct CacheBenchResult {
    /// Mean per-query latency of the cold pass, microseconds.
    pub cold_avg_us: f64,
    /// Mean per-query latency across the warm passes, microseconds.
    pub warm_avg_us: f64,
    /// `cold_avg_us / warm_avg_us`.
    pub speedup: f64,
    /// Cache hits recorded during the run.
    pub hits: u64,
    /// Cache misses recorded during the run.
    pub misses: u64,
}

/// A working set of distinct browse queries: time-window scans over the
/// HLE table interleaved with catalog scans and an indexed count, so the
/// set exercises filters, projections and aggregates.
fn browse_set(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| match i % 3 {
            0 => Query::table("hle")
                .filter(Expr::eq("public", true).and(Expr::between(
                    "t_start",
                    (i as i64) * 50,
                    (i as i64) * 50 + 400,
                )))
                .limit(50),
            1 => Query::table("catalog")
                .filter(Expr::eq("public", true))
                .limit(10 + i),
            _ => Query::table("hle")
                .filter(Expr::eq("event_type", "flare"))
                .aggregate(AggFunc::CountStar)
                .group_by("event_type")
                .limit(i + 1),
        })
        .collect()
}

/// Boot a cache-enabled DM node, seed it, run cold + warm passes.
pub fn run_cache_bench(config: &CacheBenchConfig) -> CacheBenchResult {
    let fs = FileStore::new();
    fs.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    fs.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    let dm = Dm::bootstrap(
        Arc::new(fs),
        DmConfig {
            io: IoConfig {
                cache: Some(CacheConfig::default()),
                ..IoConfig::default()
            },
            ..DmConfig::default()
        },
    )
    .expect("bootstrap cache-bench node");

    let session = dm.import_session();
    let svc = dm.services();
    for k in 0..config.seed_rows {
        let id = svc
            .create_hle(
                &session,
                &hedc_dm::HleSpec::window(k * 100, k * 100 + 50, "flare"),
            )
            .expect("seed hle");
        svc.publish(&session, "hle", id).expect("publish hle");
    }

    let caches = dm.io.caches().expect("cache enabled");
    let stats_before = caches.queries.stats();
    let queries = browse_set(config.queries);

    let mut cold_us = Vec::with_capacity(queries.len());
    for q in &queries {
        let t0 = Instant::now();
        svc.query(&session, q.clone()).expect("cold browse query");
        cold_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    let mut warm_us = Vec::with_capacity(queries.len() * config.warm_passes);
    for _ in 0..config.warm_passes {
        for q in &queries {
            let t0 = Instant::now();
            svc.query(&session, q.clone()).expect("warm browse query");
            warm_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }

    let stats = caches.queries.stats();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let cold_avg_us = avg(&cold_us);
    let warm_avg_us = avg(&warm_us);
    CacheBenchResult {
        cold_avg_us,
        warm_avg_us,
        speedup: cold_avg_us / warm_avg_us.max(f64::EPSILON),
        hits: stats.hits - stats_before.hits,
        misses: stats.misses - stats_before.misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: warm passes hit the cache and are not slower than cold.
    /// (The ≥5× acceptance number is asserted by the release-mode harness,
    /// not here — debug-build timing is too noisy to pin.)
    #[test]
    fn warm_passes_hit_the_cache() {
        let r = run_cache_bench(&CacheBenchConfig {
            queries: 12,
            warm_passes: 2,
            seed_rows: 32,
        });
        assert_eq!(r.misses, 12, "{r:?}");
        assert_eq!(r.hits, 24, "{r:?}");
        assert!(r.speedup > 0.5, "warm dramatically slower than cold: {r:?}");
    }
}
