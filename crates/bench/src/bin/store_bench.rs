//! Storage-backend contention bench: does loading stop the readers?
//!
//! The paper's §6 complaint is operational: the repository must keep
//! answering browse queries while bulk loads run. This bench measures that
//! directly, as an A/B of the two metadata storage backends:
//!
//! 1. **contention** — one browse thread runs indexed range queries over a
//!    loaded table, first **idle** (no writer) and then **under_ingest**
//!    (a writer thread continuously inserting and updating). Both threads
//!    are lightly paced — the reader like an interactive client, the
//!    writer like an I/O-bound load running at background priority
//!    (`nice 10`, as a production bulk loader would) — so the comparison
//!    measures lock blocking, not CPU timeslicing on small machines. Each
//!    `(backend, phase)` cell reports the browse latency distribution. The
//!    figure of merit is `p99(under_ingest) / p99(idle)` per backend.
//!    Memory-backend readers wait behind the catalog write lock for the
//!    duration of every write statement; paged-backend readers run against
//!    published MVCC snapshots and never wait, so their ratio must stay
//!    near 1 (the schema gate enforces ≤ 2).
//! 2. **larger_than_cache** — a paged table is loaded to many times the
//!    page-cache budget, then fully scanned. The scan must return every
//!    row exactly (asserted before the report is written) with the cache's
//!    eviction counters proving the table never fit in memory.
//!
//! The report lands in `results/BENCH_store.json` and is validated by
//! `hedc_bench::schema`; `HEDC_BENCH_SMOKE=1` shrinks the workload for the
//! CI smoke gate.

use hedc_metadb::{
    ColumnDef, DataType, Database, DbOptions, Expr, Query, Schema, StorageBackend, StorageConfig,
    Value,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn schema() -> Schema {
    Schema::new(
        "events",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("t0", DataType::Timestamp).not_null(),
            ColumnDef::new("score", DataType::Float),
            ColumnDef::new("payload", DataType::Text),
        ],
    )
    .primary_key(&["id"])
}

fn open(backend: StorageBackend, cache_pages: usize) -> Arc<Database> {
    Database::open(
        "store-bench",
        DbOptions {
            storage: StorageConfig {
                backend,
                page_size: 4096,
                cache_pages,
                store_path: None,
            },
            ..DbOptions::default()
        },
    )
    .expect("open bench database")
}

fn load(db: &Arc<Database>, rows: i64) {
    let mut conn = db.connect();
    conn.create_table(schema()).expect("create table");
    conn.create_index("events", "events_t0", &["t0"], false)
        .expect("create index");
    for i in 0..rows {
        conn.insert(
            "events",
            vec![
                Value::Int(i),
                Value::Int(i % 100_000),
                Value::Float(i as f64 * 0.5),
                Value::Text(format!("payload-{i:08}")),
            ],
        )
        .expect("load row");
    }
}

struct Phase {
    phase: &'static str,
    queries: usize,
    secs: f64,
    avg_s: f64,
    p50_s: f64,
    p95_s: f64,
    p99_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run `queries` indexed browse queries, returning the latency profile.
/// Verifies every result (non-empty, correct band) so a backend cannot win
/// by returning garbage quickly.
fn browse(db: &Arc<Database>, queries: usize, phase: &'static str, rows: i64) -> Phase {
    let conn = db.connect();
    let mut lat = Vec::with_capacity(queries);
    let mut rng: u64 = 0x0570_BEE7 ^ queries as u64;
    let started = Instant::now();
    for _ in 0..queries {
        // Interactive-client pacing: sleeping between queries keeps the
        // browse thread an "interactive" task for the scheduler's wakeup
        // preemption, so the measured latency is lock blocking rather
        // than CPU timeslicing against the writer — essential on
        // single-core hosts, harmless on big ones.
        std::thread::sleep(std::time::Duration::from_micros(150));
        rng = rng
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x1405_7B7E_F767_814F);
        let lo = (rng % (rows.min(100_000) as u64).max(1)) as i64;
        let q = Query::table("events").filter(Expr::between("t0", lo, lo + 40));
        let t0 = Instant::now();
        let r = conn.query(&q).expect("browse query");
        lat.push(t0.elapsed().as_secs_f64());
        for row in &r.rows {
            let t = row[1].as_int().expect("t0");
            assert!((lo..=lo + 40).contains(&t), "row outside queried band");
        }
    }
    let secs = started.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.total_cmp(b));
    Phase {
        phase,
        queries,
        secs,
        avg_s: lat.iter().sum::<f64>() / lat.len() as f64,
        p50_s: percentile(&lat, 0.50),
        p95_s: percentile(&lat, 0.95),
        p99_s: percentile(&lat, 0.99),
    }
}

/// Run the calling thread at `nice 10`, like a production bulk loader
/// (`nice -n 10`). Browse must stay interactive while loads run; giving
/// the loader background priority is the deployment the paper's ops
/// story assumes, and it makes the measurement deterministic: any
/// remaining browse stall is lock blocking, not CPU competition.
fn denice_current_thread() {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    // SAFETY: setpriority(PRIO_PROCESS, 0, 10) only adjusts the calling
    // thread's nice value; no memory is touched.
    unsafe {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            in("rax") 141i64, // __NR_setpriority
            in("rdi") 0i64,   // PRIO_PROCESS
            in("rsi") 0i64,   // current thread
            in("rdx") 10i64,  // nice value
            out("rcx") _,
            out("r11") _,
            lateout("rax") ret,
        );
        let _ = ret;
    }
}

/// Browse latencies idle, then under a continuous ingest writer.
fn contention(backend: StorageBackend, rows: i64, queries: usize) -> (Vec<Phase>, f64) {
    // The cache is sized to hold the working set: this phase isolates
    // *lock* behavior under a concurrent writer. The eviction regime is
    // covered separately (and deliberately) by `larger_than_cache`.
    let db = open(backend, 16_384);
    load(&db, rows);

    let idle = browse(&db, queries, "idle", rows);

    let stop = AtomicBool::new(false);
    let loaded = std::thread::scope(|s| {
        let writer = {
            let (db, stop) = (Arc::clone(&db), &stop);
            s.spawn(move || {
                denice_current_thread();
                let mut conn = db.connect();
                let mut next = rows;
                let mut written = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    conn.insert(
                        "events",
                        vec![
                            Value::Int(next),
                            Value::Int(next % 100_000),
                            Value::Float(next as f64),
                            Value::Text(format!("ingest-{next:08}")),
                        ],
                    )
                    .expect("ingest insert");
                    if next % 16 == 0 {
                        conn.update_where(
                            "events",
                            &[("score".to_string(), Expr::Literal(Value::Float(1.5)))],
                            Some(Expr::between("t0", next % 1_000, next % 1_000 + 10)),
                        )
                        .expect("ingest update");
                    }
                    next += 1;
                    written += 1;
                    // Ingest pacing: real loads are I/O-bound, not a CPU
                    // spin. The short sleep keeps the writer from
                    // monopolizing small machines, so the A/B measures
                    // lock blocking rather than raw CPU starvation.
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                written
            })
        };
        let under = browse(&db, queries, "under_ingest", rows);
        stop.store(true, Ordering::Relaxed);
        let written = writer.join().expect("writer thread");
        assert!(written > 0, "writer must have run during the browse phase");
        (under, written)
    });
    let (under, written) = loaded;
    println!(
        "  {backend:?}: idle p50/p95/p99 {:.1}/{:.1}/{:.1} us, under-ingest {:.1}/{:.1}/{:.1} us \
         ({written} writes landed)",
        idle.p50_s * 1e6,
        idle.p95_s * 1e6,
        idle.p99_s * 1e6,
        under.p50_s * 1e6,
        under.p95_s * 1e6,
        under.p99_s * 1e6
    );
    let ratio = under.p99_s / idle.p99_s.max(f64::EPSILON);
    (vec![idle, under], ratio)
}

fn phase_json(backend: &str, p: &Phase) -> serde_json::Value {
    serde_json::json!({
        "backend": backend,
        "phase": p.phase,
        "queries": p.queries,
        "throughput_rps": p.queries as f64 / p.secs.max(f64::EPSILON),
        "latency_s": {
            "avg": p.avg_s, "p50": p.p50_s, "p95": p.p95_s, "p99": p.p99_s,
        },
    })
}

/// Load a paged table to many times the cache budget and scan it.
fn larger_than_cache(rows: i64) -> serde_json::Value {
    let cache_pages = 64usize; // 256 KiB of cache under a multi-MiB table
    let obs = hedc_obs::global();
    let evict_before = obs.counter_value("store.page_cache.evict");
    let miss_before = obs.counter_value("store.page_cache.miss");
    let db = open(StorageBackend::Paged, cache_pages);
    load(&db, rows);

    let conn = db.connect();
    let t0 = Instant::now();
    let all = conn.query(&Query::table("events")).expect("full scan");
    let scan_secs = t0.elapsed().as_secs_f64();
    assert_eq!(all.rows.len(), rows as usize, "scan must return every row");
    let mut ids: Vec<i64> = all
        .rows
        .iter()
        .map(|r| r[0].as_int().expect("id"))
        .collect();
    ids.sort_unstable();
    assert!(
        ids.iter().enumerate().all(|(i, id)| i as i64 == *id),
        "scan must return each row exactly once"
    );

    let evictions = obs.counter_value("store.page_cache.evict") - evict_before;
    let misses = obs.counter_value("store.page_cache.miss") - miss_before;
    assert!(
        evictions > cache_pages as u64,
        "table must not have fit in the {cache_pages}-page cache (evictions: {evictions})"
    );
    println!(
        "  larger-than-cache: {rows} rows through a {cache_pages}-page cache — scan {:.1} ms, \
         {evictions} evictions",
        scan_secs * 1e3
    );
    serde_json::json!({
        "rows": rows,
        "page_size": 4096,
        "cache_pages": cache_pages,
        "scan_rows": all.rows.len(),
        "scan_secs": scan_secs,
        "evictions": evictions,
        "cache_misses": misses,
        "scan_verified": true,
    })
}

fn main() {
    let smoke = hedc_bench::smoke();
    let (rows, queries) = if smoke {
        (20_000, 400)
    } else {
        (120_000, 2_000)
    };
    println!("store_bench: {rows} rows, {queries} browse queries per phase (smoke={smoke})");

    println!("contention:");
    let (mem_phases, mem_ratio) = contention(StorageBackend::Memory, rows, queries);
    let (paged_phases, paged_ratio) = contention(StorageBackend::Paged, rows, queries);
    println!("  p99 under-ingest/idle ratio: memory {mem_ratio:.2}x, paged {paged_ratio:.2}x");

    println!("larger than cache:");
    let ltc = larger_than_cache(rows.min(60_000));

    let mut rows_json: Vec<serde_json::Value> = Vec::new();
    for p in &mem_phases {
        rows_json.push(phase_json("memory", p));
    }
    for p in &paged_phases {
        rows_json.push(phase_json("paged", p));
    }
    hedc_bench::write_report(
        "BENCH_store",
        &serde_json::json!({
            "bench": "store",
            "workload": { "rows": rows, "queries_per_phase": queries, "smoke": smoke },
            "contention": rows_json,
            "contention_summary": {
                "memory_p99_ratio": mem_ratio,
                "paged_p99_ratio": paged_ratio,
            },
            "larger_than_cache": ltc,
        }),
    );
}
