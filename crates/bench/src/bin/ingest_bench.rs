//! The ingest pipeline, measured: staged parallelism, WAL group commit,
//! and the crash/resume cycle.
//!
//! Three sections:
//!
//! 1. **scale** — a simulated "downlink day" (§2.2: one telemetry dump per
//!    ≈96-minute orbit) packaged into distribution units and ingested on a
//!    fresh node per row: serial, then 2/4/8 workers per stage. Reports
//!    units/s and speedup over serial.
//! 2. **wal** — the same workload on a WAL-backed metadata database,
//!    group-commit window 1 (flush every commit) versus 16 (amortized),
//!    showing what the durability knob buys the load path.
//! 3. **crash-cycle** — a WAL + directory-archive node killed mid-ingest by
//!    an injected crash, reopened from the log, reseeded, and resumed.
//!    Verifies the resumed report accounts for every unit and measures the
//!    recovery + resume cost.
//!
//! The report lands in `results/BENCH_ingest.json`; `HEDC_BENCH_SMOKE=1`
//! shrinks the day to minutes of telemetry for the CI smoke gate.

use hedc_dm::{
    create_user, pipeline, schema, Clock, CrashPlan, CrashSite, DmIo, IngestConfig, IngestOptions,
    IoConfig, JournalStep, Names, Partitioning, Rights, Services, Session, SessionKind,
    SessionManager, UnitStatus,
};
use hedc_events::{generate, package, GenConfig, TelemetryUnit};
use hedc_filestore::{Archive, ArchiveTier, DirBackend, FileStore};
use hedc_metadb::{Database, Expr, Query, Value, WalOptions};
use hedc_sim::{downlink_day, DownlinkConfig};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Build one downlink day's distribution units. Each orbit segment maps onto
/// a telemetry generator config; unit sequence numbers are renumbered
/// globally so archive and view paths stay unique across orbits.
fn downlink_units(smoke: bool) -> Vec<TelemetryUnit> {
    let day = if smoke {
        DownlinkConfig {
            orbits: 2,
            orbit_ms: 5 * 60 * 1000,
            background_rate: 10.0,
            ..DownlinkConfig::default()
        }
    } else {
        DownlinkConfig::default()
    };
    let photons_per_unit = if smoke { 2_000 } else { 120_000 };
    let mut units = Vec::new();
    let mut seq = 0u32;
    for seg in downlink_day(&day) {
        let t = generate(&GenConfig {
            seed: seg.seed,
            start_ms: seg.start_ms,
            duration_ms: seg.duration_ms,
            background_rate: seg.background_rate,
            flares_per_hour: seg.flares_per_hour,
            grbs_per_day: 1.0,
            ..GenConfig::default()
        });
        for mut u in package(&t, photons_per_unit, 1) {
            u.seq = seq;
            seq += 1;
            units.push(u);
        }
    }
    units
}

/// Fresh in-memory node for one scale row.
fn memory_node() -> (Arc<hedc_dm::Dm>, IngestConfig) {
    let files = FileStore::new();
    files.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 32,
    ));
    files.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineDisk,
        1 << 32,
    ));
    let dm = hedc_dm::Dm::bootstrap(Arc::new(files), hedc_dm::DmConfig::default())
        .expect("bootstrap bench node");
    let cfg = IngestConfig::new(1, 2, dm.extended_catalog);
    (dm, cfg)
}

/// A hand-rolled node over a WAL-backed database and directory archives —
/// the pieces that survive a process death, so the fixture can be torn down
/// and reopened from the log.
struct WalNode {
    io: DmIo,
    #[allow(dead_code)]
    mgr: SessionManager,
    session: Arc<Session>,
    cfg: IngestConfig,
}

fn wal_node(dir: &Path, options: WalOptions) -> WalNode {
    let db = Database::with_wal_opts("ingest-bench", dir.join("wal.log"), options)
        .expect("open WAL database");
    let fresh = {
        let mut conn = db.connect();
        match schema::create_generic(&mut conn) {
            Ok(()) => {
                schema::create_domain(&mut conn).expect("create domain schema");
                true
            }
            // Tables already replayed from the log: this is a recovery open.
            Err(_) => false,
        }
    };
    let files = FileStore::new();
    for (id, name) in [(1u32, "raw"), (2u32, "derived")] {
        let backend = DirBackend::new(dir.join(name)).expect("archive dir");
        files.register(Archive::new(
            id,
            name,
            ArchiveTier::OnlineDisk,
            1 << 32,
            Box::new(backend),
        ));
    }
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(files),
        Clock::starting_at(0),
        &IoConfig::default(),
    );
    if fresh {
        let names = Names::new(&io);
        for status in io.files.statuses() {
            names
                .register_archive(status.id, &format!("{:?}", status.tier), "", None)
                .expect("register archive");
            io.insert(
                "op_archives",
                vec![
                    Value::Int(i64::from(status.id)),
                    Value::Text(status.name.clone()),
                    Value::Text(format!("{:?}", status.tier)),
                    Value::Text(format!("{:?}", status.state)),
                    Value::Int(status.capacity as i64),
                    Value::Int(status.used as i64),
                ],
            )
            .expect("op_archives row");
        }
        create_user(&io, "loader", "pw", "system", Rights::SCIENTIST).expect("create loader");
    } else {
        // Recovered counters must move past every replayed id/timestamp.
        io.reseed_after_recovery();
    }
    let mgr = SessionManager::new();
    let cookie = mgr
        .authenticate(&io, "loader", "pw", "bench")
        .expect("authenticate loader");
    let session = mgr
        .lookup("bench", cookie, SessionKind::Hle)
        .expect("session");
    let catalog = if fresh {
        let svc = Services::new(&io);
        let c = svc
            .create_catalog(&session, "extended", "system", None)
            .expect("create catalog");
        svc.publish(&session, "catalog", c)
            .expect("publish catalog");
        c
    } else {
        let r = io
            .query(&Query::table("catalog").filter(Expr::eq("name", "extended")))
            .expect("find catalog");
        r.rows[0][0].as_int().expect("catalog id")
    };
    let cfg = IngestConfig::new(1, 2, catalog);
    WalNode {
        io,
        mgr,
        session,
        cfg,
    }
}

struct ScaleRow {
    workers: usize,
    secs: f64,
    units_per_s: f64,
    speedup: f64,
}

fn attribution_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--attribution")
        || std::env::var("HEDC_ATTRIBUTION").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// `--attribution`: one more staged pass on a fresh node with the flight
/// recorder cleared, then partition every retained `ingest.unit` trace into
/// queue / pool / wire / execute self time — where a unit's wall clock goes
/// once the stages run concurrently.
fn run_attribution(units: &[TelemetryUnit], workers: usize) -> serde_json::Value {
    let recorder = hedc_obs::recorder();
    recorder.drain_pinned();
    recorder.clear();
    recorder.set_pin_threshold_us(u64::MAX);
    let (dm, cfg) = memory_node();
    let session = dm.import_session();
    let report = pipeline::ingest(
        &dm.io,
        &session,
        units,
        &cfg,
        &IngestOptions::with_workers(workers),
    )
    .expect("attribution ingest");
    assert_eq!(report.failed, 0);
    let totals = hedc_bench::attribution::analyze_retained_roots("ingest.unit");
    println!(
        "attribution ({workers} workers/stage): {} of {} unit traces analyzed",
        totals.traces,
        units.len()
    );
    let attributed = totals.attributed_us.max(1);
    for (cat, us) in &totals.by_category_us {
        println!(
            "{:>10}: {:>12} us self time ({:>5.1}%)",
            cat,
            us,
            *us as f64 / attributed as f64 * 100.0
        );
    }
    println!(
        "coverage {:.3} (attributed / unit wall clock)",
        totals.coverage()
    );
    serde_json::json!({
        "workers": workers,
        "sampled_traces": totals.traces,
        "measured_root_us": totals.measured_root_us,
        "attributed_us": totals.attributed_us,
        "coverage": totals.coverage(),
        "breakdown_us": totals.breakdown_json(),
        "tiers": totals.tiers_json(),
    })
}

fn main() {
    let smoke = hedc_bench::smoke();
    let units = downlink_units(smoke);
    let photons: usize = units.iter().map(|u| u.photons.len()).sum();
    println!(
        "ingest_bench — downlink day: {} units, {} photons{}",
        units.len(),
        photons,
        if smoke { " (smoke)" } else { "" }
    );
    println!("{:-<62}", "");

    // --- scale: serial vs N workers per stage ------------------------------
    println!(
        "{:>8} {:>10} {:>12} {:>9}",
        "workers", "secs", "units/s", "speedup"
    );
    let worker_counts: &[usize] = if smoke { &[1, 2, 8] } else { &[1, 2, 4, 8] };
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut serial_secs = 0.0f64;
    for &w in worker_counts {
        let (dm, cfg) = memory_node();
        let session = dm.import_session();
        let t0 = Instant::now();
        let report = pipeline::ingest(
            &dm.io,
            &session,
            &units,
            &cfg,
            &IngestOptions::with_workers(w),
        )
        .expect("ingest");
        let secs = t0.elapsed().as_secs_f64();
        assert!(
            report.fully_accounted(),
            "report must account for every unit"
        );
        assert_eq!(
            report.failed, 0,
            "no unit may fail on an unconstrained node"
        );
        assert_eq!(report.ingested, units.len());
        if w == 1 {
            serial_secs = secs;
        }
        let row = ScaleRow {
            workers: w,
            secs,
            units_per_s: units.len() as f64 / secs.max(f64::EPSILON),
            speedup: serial_secs / secs.max(f64::EPSILON),
        };
        println!(
            "{:>8} {:>10.2} {:>12.1} {:>8.2}x",
            row.workers, row.secs, row.units_per_s, row.speedup
        );
        rows.push(row);
    }

    // --- attribution: per-tier breakdown of the staged pipeline ------------
    let attribution = attribution_mode_enabled().then(|| {
        println!("{:-<62}", "");
        run_attribution(&units, 4)
    });

    // --- wal: group-commit window 1 vs 16 ----------------------------------
    let base = std::env::temp_dir().join(format!("hedc-ingest-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut wal_rows: Vec<serde_json::Value> = Vec::new();
    for group in [1usize, 16] {
        let dir = base.join(format!("wal-g{group}"));
        std::fs::create_dir_all(&dir).expect("bench dir");
        let node = wal_node(
            &dir,
            WalOptions {
                fsync: false,
                group_commit: group,
            },
        );
        let t0 = Instant::now();
        let report = pipeline::ingest(
            &node.io,
            &node.session,
            &units,
            &node.cfg,
            &IngestOptions::serial(),
        )
        .expect("wal ingest");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(report.failed, 0);
        println!(
            "wal group_commit={group:<3} {:>10.2}s {:>12.1} units/s",
            secs,
            units.len() as f64 / secs.max(f64::EPSILON)
        );
        wal_rows.push(serde_json::json!({
            "group_commit": group,
            "secs": secs,
            "units_per_s": units.len() as f64 / secs.max(f64::EPSILON),
        }));
    }

    // --- crash-cycle: kill, reopen from the log, resume --------------------
    let cycle_units: Vec<TelemetryUnit> = units.iter().take(6).cloned().collect();
    let victim = cycle_units[cycle_units.len() / 2].seq;
    let dir = base.join("crash-cycle");
    std::fs::create_dir_all(&dir).expect("bench dir");
    let node = wal_node(
        &dir,
        WalOptions {
            fsync: false,
            group_commit: 8,
        },
    );
    let crash = pipeline::ingest(
        &node.io,
        &node.session,
        &cycle_units,
        &node.cfg,
        &IngestOptions {
            crash: Some(CrashPlan {
                unit_seq: victim,
                site: CrashSite::Boundary(JournalStep::Events),
            }),
            ..IngestOptions::serial()
        },
    );
    assert!(crash.is_err(), "injected crash must kill the run");
    drop(node); // process death: only the WAL file and archive dirs survive

    let t0 = Instant::now();
    let node = wal_node(
        &dir,
        WalOptions {
            fsync: false,
            group_commit: 8,
        },
    );
    let recover_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let report = pipeline::ingest(
        &node.io,
        &node.session,
        &cycle_units,
        &node.cfg,
        &IngestOptions::serial(),
    )
    .expect("resume ingest");
    let resume_secs = t0.elapsed().as_secs_f64();
    assert!(report.fully_accounted());
    assert_eq!(report.failed, 0);
    let resumed = report
        .units
        .iter()
        .find(|u| u.seq == victim)
        .expect("victim accounted");
    assert!(
        matches!(resumed.status, UnitStatus::Resumed { .. }),
        "victim must resume from its journal trail, got {:?}",
        resumed.status
    );
    println!(
        "crash-cycle: recovery {:.3}s, resume {:.3}s ({} skipped, {} resumed, {} fresh)",
        recover_secs, resume_secs, report.skipped, report.resumed, report.ingested
    );
    let cycle = serde_json::json!({
        "units": cycle_units.len(),
        "crash_unit": victim,
        "crash_site": "boundary:events",
        "recovery_secs": recover_secs,
        "resume_secs": resume_secs,
        "skipped": report.skipped,
        "resumed": report.resumed,
        "ingested": report.ingested,
    });
    let _ = std::fs::remove_dir_all(&base);

    let mut bench_report = serde_json::json!({
        "bench": "ingest",
        "workload": {
            "units": units.len(),
            "photons": photons,
            "smoke": smoke,
        },
        "scale": rows
            .iter()
            .map(|r| serde_json::json!({
                "workers": r.workers,
                "secs": r.secs,
                "units_per_s": r.units_per_s,
                "speedup": r.speedup,
            }))
            .collect::<Vec<_>>(),
        "wal": wal_rows,
        "crash_cycle": cycle,
    });
    if let Some(attribution) = attribution {
        bench_report["attribution"] = attribution;
    }
    hedc_bench::write_report("BENCH_ingest", &bench_report);
}
