//! The batched hot path, measured: multi-item name mapping and top-k
//! pushdown.
//!
//! Three sections, each an A/B of the old per-item path against the new
//! batched one:
//!
//! 1. **resolve/local** — k-item dynamic name mapping (§4.3) on an
//!    in-process DM: k sequential `resolve` calls (2 indexed point queries
//!    each) versus one `resolve_batch` (2 `IN`-list queries total), for
//!    k ∈ {1, 8, 64, 512}.
//! 2. **resolve/net** (`--net` or `HEDC_NET=1`) — the same A/B over a
//!    loopback `DmServer`/`NetDm` pair: k request frames versus one
//!    `Request::Batch` frame (one round trip).
//! 3. **topk** — `ORDER BY … LIMIT 10` over an unindexed ≥100k-row sort
//!    column: full sort versus the bounded-heap top-k path, flipped via
//!    `hedc_metadb::tuning`.
//!
//! Every measurement pass resolves a **disjoint, never-seen** slice of
//! items so result caches cannot flatter either arm. The report lands in
//! `results/BENCH_batch_bench.json`; `HEDC_BENCH_SMOKE=1` shrinks the
//! sweep for the CI smoke gate.

use hedc_dm::{Dm, DmConfig, DmNode, NameType};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{tuning, ColumnDef, DataType, Database, OrderDir, Query, Schema, Value};
use hedc_net::{DmServer, NetConfig, NetDm, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

fn net_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--net")
        || std::env::var("HEDC_NET").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Repetitions per batch size: enough cold ids to smooth scheduler noise
/// on small batches without minutes of setup for large ones.
fn reps_for(batch_size: usize) -> usize {
    (256 / batch_size).clamp(1, 32)
}

/// Bootstrapped DM carrying `n` attached items; returns the item ids.
fn dm_with_items(n: usize) -> (Arc<Dm>, Vec<i64>) {
    let fs = FileStore::new();
    fs.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    let dm = Dm::bootstrap(Arc::new(fs), DmConfig::default()).expect("bootstrap bench DM");
    let names = dm.names();
    let items: Vec<i64> = (0..n)
        .map(|i| {
            let item = names.new_item().expect("new item");
            names
                .attach(
                    item,
                    NameType::File,
                    1,
                    &format!("raw/obs{i}.fits"),
                    1024,
                    None,
                    "data",
                )
                .expect("attach name");
            item
        })
        .collect();
    (dm, items)
}

/// Hand out the next `k` never-used item ids.
fn take(ids: &mut std::vec::IntoIter<i64>, k: usize) -> Vec<i64> {
    let slice: Vec<i64> = ids.by_ref().take(k).collect();
    assert_eq!(slice.len(), k, "item pool exhausted — size the pool up");
    slice
}

struct ResolveRow {
    mode: &'static str,
    batch_size: usize,
    reps: usize,
    seq_avg_us: f64,
    batch_avg_us: f64,
    speedup: f64,
}

/// One A/B pass: `seq` resolves k items one by one, `batch` in one call.
fn measure_resolve(
    mode: &'static str,
    batch_size: usize,
    ids: &mut std::vec::IntoIter<i64>,
    seq: &dyn Fn(&[i64]),
    batch: &dyn Fn(&[i64]),
) -> ResolveRow {
    let reps = reps_for(batch_size);
    let mut seq_total = 0.0f64;
    let mut batch_total = 0.0f64;
    for _ in 0..reps {
        let cold = take(ids, batch_size);
        let t0 = Instant::now();
        seq(&cold);
        seq_total += t0.elapsed().as_secs_f64();

        let cold = take(ids, batch_size);
        let t0 = Instant::now();
        batch(&cold);
        batch_total += t0.elapsed().as_secs_f64();
    }
    let seq_avg_us = seq_total / reps as f64 * 1e6;
    let batch_avg_us = batch_total / reps as f64 * 1e6;
    ResolveRow {
        mode,
        batch_size,
        reps,
        seq_avg_us,
        batch_avg_us,
        speedup: seq_avg_us / batch_avg_us.max(f64::EPSILON),
    }
}

fn print_row(r: &ResolveRow) {
    println!(
        "{:>6} {:>6} {:>6} {:>14.1} {:>14.1} {:>9.2}x",
        r.mode, r.batch_size, r.reps, r.seq_avg_us, r.batch_avg_us, r.speedup
    );
}

fn resolve_json(rows: &[ResolveRow]) -> Vec<serde_json::Value> {
    rows.iter()
        .map(|r| {
            serde_json::json!({
                "mode": r.mode,
                "batch_size": r.batch_size,
                "reps": r.reps,
                "sequential_avg_us": r.seq_avg_us,
                "batched_avg_us": r.batch_avg_us,
                "speedup": r.speedup,
            })
        })
        .collect()
}

fn main() {
    let smoke = hedc_bench::smoke();
    let sizes: &[usize] = if smoke { &[1, 8, 64] } else { &[1, 8, 64, 512] };
    let net = net_mode_enabled();

    // Pool enough cold items for every pass: both arms of both modes.
    let per_mode: usize = sizes.iter().map(|&k| 2 * k * reps_for(k)).sum();
    let modes = if net { 2 } else { 1 };
    let (dm, items) = dm_with_items(per_mode * modes);
    let mut ids = items.into_iter();

    println!("batch_bench — batched name mapping and top-k pushdown");
    println!("{:-<62}", "");
    println!(
        "{:>6} {:>6} {:>6} {:>14} {:>14} {:>10}",
        "mode", "k", "reps", "seq avg [us]", "batch avg [us]", "speedup"
    );

    let mut rows: Vec<ResolveRow> = Vec::new();
    for &k in sizes {
        let names = dm.names();
        let row = measure_resolve(
            "local",
            k,
            &mut ids,
            &|cold: &[i64]| {
                for &id in cold {
                    names.resolve(id, NameType::File).expect("resolve");
                }
            },
            &|cold: &[i64]| {
                for r in names.resolve_batch(cold, NameType::File) {
                    r.expect("batched resolve");
                }
            },
        );
        print_row(&row);
        rows.push(row);
    }

    if net {
        let server = DmServer::bind(
            "127.0.0.1:0",
            dm.clone() as Arc<dyn DmNode>,
            ServerConfig::default(),
        )
        .expect("bind loopback DM server");
        let client = NetDm::connect(server.local_addr(), "bench-net", NetConfig::default());
        for &k in sizes {
            let row = measure_resolve(
                "net",
                k,
                &mut ids,
                &|cold: &[i64]| {
                    for &id in cold {
                        client.resolve_names(id, NameType::File).expect("resolve");
                    }
                },
                &|cold: &[i64]| {
                    for r in client.resolve_batch(cold, NameType::File) {
                        r.expect("batched resolve");
                    }
                },
            );
            print_row(&row);
            rows.push(row);
        }
    }

    // --- top-k pushdown ---------------------------------------------------
    let topk_rows: i64 = if smoke { 20_000 } else { 150_000 };
    let limit = 10usize;
    let db = Database::in_memory("topk-bench");
    let mut conn = db.connect();
    conn.create_table(
        Schema::new(
            "ev",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("score", DataType::Float).not_null(),
            ],
        )
        .primary_key(&["id"]),
    )
    .expect("create table");
    for i in 0..topk_rows {
        // Scrambled, unindexed sort key: the executor cannot cheat.
        let score = (i.wrapping_mul(2_654_435_761) % 1_000_003) as f64;
        conn.insert("ev", vec![Value::Int(i), Value::Float(score)])
            .expect("insert");
    }
    let q = Query::table("ev")
        .order_by("score", OrderDir::Desc)
        .limit(limit);

    tuning::set_topk_enabled(false);
    let t0 = Instant::now();
    let full = conn.query(&q).expect("full-sort query");
    let full_us = t0.elapsed().as_secs_f64() * 1e6;

    tuning::set_topk_enabled(true);
    let t0 = Instant::now();
    let heap = conn.query(&q).expect("top-k query");
    let heap_us = t0.elapsed().as_secs_f64() * 1e6;

    assert_eq!(full.rows, heap.rows, "both paths must agree on the top k");
    let topk_speedup = full_us / heap_us.max(f64::EPSILON);
    println!("{:-<62}", "");
    println!(
        "topk: LIMIT {limit} over {topk_rows} unindexed rows — full sort {full_us:.0} us \
         (rows_sorted {}), bounded heap {heap_us:.0} us (rows_sorted {}), {topk_speedup:.2}x",
        full.stats.rows_sorted, heap.stats.rows_sorted
    );

    hedc_bench::write_report(
        "BENCH_batch_bench",
        &serde_json::json!({
            "bench": "batch_bench",
            "resolve": resolve_json(&rows),
            "topk": {
                "rows": topk_rows,
                "limit": limit,
                "full_sort_us": full_us,
                "full_sort_rows_sorted": full.stats.rows_sorted,
                "topk_us": heap_us,
                "topk_rows_sorted": heap.stats.rows_sorted,
                "speedup": topk_speedup,
            },
        }),
    );
}
