//! Tables 2 and 3: workload characteristics of the imaging and histogram
//! test series — measured on the *real* stack (DM + PL + analysis servers),
//! not the simulator. The paper's tables:
//!
//! | | imaging (Table 2) | histogram (Table 3) |
//! |---|---|---|
//! | requests | 100 | 150 |
//! | input | 50 MB, 2–3 files/analysis | 50 MB, ⅓ file/analysis |
//! | output | 5.5 MB (100 GIFs) | 1.2 MB (150 GIFs) |
//! | queries | 300 | 450 |
//! | edits | 200 | 300 |
//!
//! Our DM issues more metadata operations per analysis than the paper's 3
//! queries + 2 edits — the §3.5 redundancy check, the estimation phase, and
//! dynamic name construction each cost indexed queries — so the *measured*
//! counts are reported beside the paper's, with the per-analysis breakdown.

use hedc_analysis::AnalysisParams;
use hedc_core::{Hedc, HedcConfig};
use hedc_events::GenConfig;
use hedc_pl::{Outcome, RequestSpec};

struct SeriesResult {
    requests: usize,
    input_bytes: u64,
    output_bytes: u64,
    queries: u64,
    edits: u64,
}

fn run_series(
    hedc: &Hedc,
    kind: &str,
    n_requests: usize,
    window_ms: u64,
    span_ms: u64,
    extra: &[(&str, f64)],
) -> SeriesResult {
    let session = hedc.dm().import_session();
    let hle = {
        let r = hedc
            .dm()
            .services()
            .query(&session, hedc_metadb::Query::table("hle").limit(1))
            .expect("an ingested event");
        r.rows[0][0].as_int().unwrap()
    };
    let stats_before: Vec<_> = hedc.dm().io.databases().iter().map(|d| d.stats()).collect();
    let mut input_bytes = 0u64;
    let mut output_bytes = 0u64;
    for i in 0..n_requests {
        // Distinct windows stepped over the loaded span (each request is a
        // distinct analysis; no §3.5 reuse inside the series).
        let t0 = (i as u64 * 977) % (span_ms - window_ms);
        let mut params = AnalysisParams::window(t0, t0 + window_ms);
        for (k, v) in extra {
            params = params.with(k, *v);
        }
        let outcome = hedc
            .pl()
            .submit_sync(session.clone(), RequestSpec::new(kind, params, hle))
            .expect("analysis");
        if let Outcome::Computed { plan, product, .. } = &outcome {
            input_bytes += plan.input_bytes;
            output_bytes += product.size_bytes() as u64;
        }
    }
    let mut queries = 0u64;
    let mut edits = 0u64;
    for (db, before) in hedc.dm().io.databases().iter().zip(&stats_before) {
        let d = db.stats().since(before);
        queries += d.queries;
        edits += d.edits;
    }
    SeriesResult {
        requests: n_requests,
        input_bytes,
        output_bytes,
        queries,
        edits,
    }
}

fn print_series(
    name: &str,
    r: &SeriesResult,
    paper: &(u64, f64, f64, u64, u64),
) -> serde_json::Value {
    let (p_req, p_in_mb, p_out_mb, p_q, p_e) = *paper;
    println!(
        "\nTable {} — {name} test characteristics",
        if name == "imaging" { "2" } else { "3" }
    );
    println!("{:-<66}", "");
    println!("{:<22} {:>14} {:>14}", "", "measured", "paper");
    println!("{:<22} {:>14} {:>14}", "requests", r.requests, p_req);
    println!(
        "{:<22} {:>11.1} MB {:>11.1} MB",
        "input staged",
        r.input_bytes as f64 / 1048576.0,
        p_in_mb
    );
    println!(
        "{:<22} {:>11.2} MB {:>11.2} MB",
        "output products",
        r.output_bytes as f64 / 1048576.0,
        p_out_mb
    );
    println!(
        "{:<22} {:>14} {:>14}   ({:.1}/analysis vs {}/analysis)",
        "DM queries",
        r.queries,
        p_q,
        r.queries as f64 / r.requests as f64,
        p_q / p_req
    );
    println!(
        "{:<22} {:>14} {:>14}   ({:.1}/analysis vs {}/analysis)",
        "DM edits",
        r.edits,
        p_e,
        r.edits as f64 / r.requests as f64,
        p_e / p_req
    );
    serde_json::json!({
        "series": name,
        "requests": r.requests,
        "input_mb": r.input_bytes as f64 / 1048576.0,
        "output_mb": r.output_bytes as f64 / 1048576.0,
        "queries": r.queries,
        "edits": r.edits,
        "paper": {
            "requests": p_req, "input_mb": p_in_mb, "output_mb": p_out_mb,
            "queries": p_q, "edits": p_e,
        },
    })
}

fn main() {
    // 100 minutes of telemetry in 50 two-minute units: the analogue of the
    // paper's "50 MB of raw data partitioned into 50 files". Generation is
    // scaled (lower rate) so the series runs in seconds, not hours; the
    // *characteristics* — operation counts and per-analysis ratios — are
    // what the tables record.
    let span_ms: u64 = 100 * 60 * 1000;
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");
    // Rate tuned so the total staged volume lands near the paper's 50 MB
    // scale: ~90 photons/s background, rare small flares.
    let gen = GenConfig {
        duration_ms: span_ms,
        flares_per_hour: 0.5,
        grbs_per_day: 0.0,
        background_rate: 10.0,
        seed: 50,
        ..GenConfig::default()
    };
    let expected_photons = (gen.background_rate * 9.0 * span_ms as f64 / 1000.0) as usize;
    let report = hedc
        .load_telemetry(&gen, expected_photons / 50) // ≈50 units, as in §8.1
        .expect("ingest");
    println!(
        "loaded {} units / {} photons ({} detected events)",
        report.units, report.photons, report.events
    );

    // Imaging: 100 requests, each over a 4-minute window (2–3 units, as in
    // Table 2's "2-3 per analysis"); small grid keeps wall time sane.
    let imaging = run_series(
        &hedc,
        "imaging",
        100,
        4 * 60 * 1000,
        span_ms,
        &[("grid", 96.0)],
    );
    let t2 = print_series("imaging", &imaging, &(100, 50.0, 5.5, 300, 200));

    // Histogram: 150 requests over 40-second windows (⅓ of a unit each).
    let histogram = run_series(&hedc, "histogram", 150, 40_000, span_ms, &[]);
    let t3 = print_series("histogram", &histogram, &(150, 50.0, 1.2, 450, 300));

    println!("\nnote: our middleware spends extra indexed queries per analysis on the");
    println!("§3.5 redundancy check, the estimation phase, and §4.3 name construction;");
    println!("the paper's DM counted only the 3 queries + 2 edits of the commit path.");

    hedc_bench::write_report(
        "table23_characteristics",
        &serde_json::json!({ "table2": t2, "table3": t3 }),
    );
    hedc.shutdown();
}
