//! Validate `BENCH_*.json` reports against the documented row schema
//! (`hedc_bench::schema`).
//!
//! ```text
//! bench_schema [dir] [required-bench-name ...]
//! ```
//!
//! With no arguments, validates the repo `results/` directory. Any listed
//! bench names must be present as `BENCH_<name>.json`, so CI can require
//! that the committed tier of reports never silently disappears. Exits
//! non-zero with one line per violation.

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(hedc_bench::results_dir);
    let required: Vec<&str> = args.iter().skip(1).map(String::as_str).collect();
    match hedc_bench::schema::validate_dir(&dir, &required) {
        Ok(summary) => println!("bench_schema: {}: {summary}", dir.display()),
        Err(errs) => {
            for e in &errs {
                eprintln!("bench_schema: {e}");
            }
            eprintln!(
                "bench_schema: {} violation(s) in {}",
                errs.len(),
                dir.display()
            );
            std::process::exit(1);
        }
    }
}
