//! Table 1: the §8 processing test series — imaging (CPU-bound, 100
//! requests) and histograms (I/O-bound, 150 requests) over the
//! configurations S(1), S(2), C, C/Cached, S+C.
//!
//! Usage: `table1_processing [imaging|histogram|all]` (default: all).

use hedc_sim::{table1, Workload};

/// Paper Table 1 values: (config, duration s, turnover GB/day).
const PAPER_IMAGING: [(&str, f64, f64); 4] = [
    ("S(1)", 6027.0, 0.8),
    ("S(2)", 3117.0, 1.5),
    ("C", 2059.0, 2.3),
    ("S+C", 1380.0, 3.5),
];
const PAPER_HISTOGRAM: [(&str, f64, f64); 5] = [
    ("S(1)", 960.0, 4.6),
    ("S(2)", 655.0, 6.8),
    ("C", 841.0, 5.3),
    ("C/Cached", 821.0, 5.4),
    ("S+C", 438.0, 10.0),
];

fn run(
    workload: Workload,
    paper: &[(&str, f64, f64)],
) -> (Vec<serde_json::Value>, Vec<serde_json::Value>) {
    println!(
        "\nTable 1 — {} test ({} requests)",
        workload.name(),
        workload.requests()
    );
    println!("{:-<100}", "");
    println!(
        "{:<10} {:>5} {:>10} {:>10} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "config",
        "conc",
        "dur [s]",
        "paper",
        "delta",
        "GB/day",
        "paperGB",
        "srv sys",
        "srv usr",
        "cli sys",
        "cli usr"
    );
    let rows = table1(workload);
    let mut out = Vec::new();
    let mut bench = Vec::new();
    for (r, (label, p_dur, p_turn)) in rows.iter().zip(paper.iter()) {
        assert_eq!(&r.config, label, "config order must match the paper");
        println!(
            "{:<10} {:>5} {:>10.0} {:>10.0} {:>7} {:>9.1} {:>9.1} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}%",
            r.config,
            r.concurrent,
            r.duration_s,
            p_dur,
            hedc_bench::vs_paper(r.duration_s, *p_dur),
            r.turnover_gb_day,
            p_turn,
            r.server_sys_pct,
            r.server_usr_pct,
            r.client_sys_pct,
            r.client_usr_pct
        );
        out.push(serde_json::json!({
            "workload": r.workload,
            "config": r.config,
            "concurrent": r.concurrent,
            "duration_s": r.duration_s,
            "paper_duration_s": p_dur,
            "turnover_gb_day": r.turnover_gb_day,
            "paper_turnover_gb_day": p_turn,
            "avg_sojourn_s": r.avg_sojourn_s,
            "p50_sojourn_s": r.p50_sojourn_s,
            "p95_sojourn_s": r.p95_sojourn_s,
            "p99_sojourn_s": r.p99_sojourn_s,
            "server_sys_pct": r.server_sys_pct,
            "server_usr_pct": r.server_usr_pct,
            "client_sys_pct": r.client_sys_pct,
            "client_usr_pct": r.client_usr_pct,
        }));
        bench.push(serde_json::json!({
            "workload": r.workload,
            "config": r.config,
            "throughput_rps": workload.requests() as f64 / r.duration_s,
            "latency_s": {
                "avg": r.avg_sojourn_s,
                "p50": r.p50_sojourn_s,
                "p95": r.p95_sojourn_s,
                "p99": r.p99_sojourn_s,
            },
        }));
    }
    (out, bench)
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut report = serde_json::Map::new();
    let mut bench_rows = Vec::new();
    if arg == "imaging" || arg == "all" {
        let (out, bench) = run(Workload::Imaging, &PAPER_IMAGING);
        report.insert("imaging".to_string(), serde_json::Value::Array(out));
        bench_rows.extend(bench);
    }
    if arg == "histogram" || arg == "all" {
        let (out, bench) = run(Workload::Histogram, &PAPER_HISTOGRAM);
        report.insert("histogram".to_string(), serde_json::Value::Array(out));
        bench_rows.extend(bench);
    }
    if report.is_empty() {
        eprintln!("usage: table1_processing [imaging|histogram|all]");
        std::process::exit(2);
    }
    println!("\nkey shapes (§8.4): data movement is cheap (C ≈ C/Cached); the CPU-bound");
    println!("imaging test gains most from the faster client; short histogram analyses");
    println!("expose the central scheduler (S(2) < 2x speedup, client unsaturated).");
    hedc_bench::write_report("table1_processing", &serde_json::Value::Object(report));
    hedc_bench::write_report(
        "BENCH_table1_processing",
        &serde_json::json!({ "bench": "table1_processing", "rows": bench_rows }),
    );
}
