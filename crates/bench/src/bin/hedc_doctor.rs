//! hedc-doctor — the tail-latency triage tool.
//!
//! Three modes:
//!
//! * **(default) live** — boot a node, load a slice of telemetry, drive a
//!   few browse requests, and print the observability snapshot plus a
//!   critical-path breakdown of the slowest retained traces. The "what is
//!   this process doing" console.
//! * **`--obs-smoke`** — the CI gate: boot a node, force every request to
//!   pin (threshold 1 µs), and assert the whole diagnosis loop closes:
//!   traces pin, `/hedc/trace/<id>` serves the waterfall, the JSON variant
//!   parses, and `/hedc/stats.json` exposes the exemplar / saturation /
//!   flight-recorder fields. Exits non-zero on the first broken link.
//! * **`--bench-report [dir]`** — validate the `BENCH_*.json` reports in
//!   `dir` (default: the repo `results/`) against `hedc_bench::schema` and
//!   print the attribution sections' per-tier breakdowns.

use hedc_core::{Hedc, HedcConfig};
use hedc_events::GenConfig;
use hedc_web::HttpRequest;
use std::path::PathBuf;

fn small_gen() -> GenConfig {
    GenConfig {
        duration_ms: 5 * 60 * 1000,
        flares_per_hour: 12.0,
        background_rate: 20.0,
        seed: 4242,
        ..GenConfig::default()
    }
}

/// Boot, load, browse: the shared setup for live and smoke modes.
fn boot_and_browse() -> std::sync::Arc<Hedc> {
    let hedc = Hedc::start(HedcConfig::default()).expect("boot node");
    let report = hedc
        .load_telemetry(&small_gen(), 200_000)
        .expect("load telemetry");
    eprintln!(
        "loaded {} unit(s), {} photons, {} events",
        report.units, report.photons, report.events
    );
    for path in ["/hedc/catalogs", "/hedc/summary", "/hedc/catalogs"] {
        let resp = hedc.web().handle(&HttpRequest::get(path, "doctor"));
        assert_eq!(resp.status, 200, "GET {path} failed during warm-up");
    }
    hedc
}

fn fail(checks: &mut u32, msg: &str) {
    *checks += 1;
    eprintln!("FAIL {msg}");
}

fn pass(msg: &str) {
    println!("  ok {msg}");
}

fn obs_smoke() -> i32 {
    let hedc = boot_and_browse();
    let recorder = hedc_obs::recorder();
    // Force the tail: with a 1 µs threshold every request is "slow", so the
    // pin path runs even on a fast CI box.
    recorder.set_pin_threshold_us(1);
    for _ in 0..3 {
        let resp = hedc
            .web()
            .handle(&HttpRequest::get("/hedc/catalogs", "doctor"));
        assert_eq!(resp.status, 200);
    }
    hedc_obs::sample_now();

    let mut failures = 0u32;

    let pinned = recorder.pinned();
    if pinned.is_empty() {
        fail(&mut failures, "no trace pinned despite a 1 us threshold");
    } else {
        pass(&format!(
            "{} trace(s) pinned, slowest {} us",
            pinned.len(),
            pinned[0].duration_us
        ));
    }

    if let Some(slow) = pinned.first() {
        let path = format!("/hedc/trace/{}", slow.trace_id);
        let resp = hedc.web().handle(&HttpRequest::get(&path, "doctor"));
        if resp.status != 200 {
            fail(&mut failures, &format!("GET {path} -> {}", resp.status));
        } else {
            pass(&format!("GET {path} -> 200 ({} bytes)", resp.body.len()));
        }

        let resp = hedc
            .web()
            .handle(&HttpRequest::get(&format!("{path}.json"), "doctor"));
        let parsed: Result<serde_json::Value, _> = serde_json::from_slice(&resp.body);
        match parsed {
            Ok(v) if resp.status == 200 && v.get("breakdown").is_some() => {
                pass(&format!("GET {path}.json -> parseable breakdown"));
            }
            _ => fail(
                &mut failures,
                &format!("GET {path}.json -> {} or missing breakdown", resp.status),
            ),
        }
    }

    let stats = hedc
        .web()
        .handle(&HttpRequest::get("/hedc/stats.json", "doctor"));
    let body = String::from_utf8_lossy(&stats.body).to_string();
    for field in ["\"exemplars\"", "\"saturation\"", "\"flight\""] {
        if stats.status == 200 && body.contains(field) {
            pass(&format!("stats.json exposes {field}"));
        } else {
            fail(&mut failures, &format!("stats.json missing {field}"));
        }
    }
    match serde_json::from_str::<serde_json::Value>(&body) {
        Ok(v) => {
            let pinned_count = v
                .pointer("/flight/pinned")
                .and_then(|p| p.as_u64())
                .unwrap_or(0);
            if pinned_count == 0 {
                fail(&mut failures, "stats.json flight.pinned is zero");
            } else {
                pass(&format!("stats.json flight.pinned = {pinned_count}"));
            }
            match v.pointer("/saturation/0/gauges") {
                Some(g) if g.as_object().is_some_and(|o| !o.is_empty()) => {
                    pass("stats.json carries saturation gauge samples");
                }
                _ => fail(&mut failures, "stats.json has no saturation samples"),
            }
        }
        Err(e) => fail(&mut failures, &format!("stats.json is not JSON: {e}")),
    }

    hedc.shutdown();
    if failures == 0 {
        println!("obs-smoke: all checks passed");
        0
    } else {
        eprintln!("obs-smoke: {failures} check(s) failed");
        1
    }
}

fn bench_report(dir: Option<PathBuf>) -> i32 {
    let dir = dir.unwrap_or_else(hedc_bench::results_dir);
    match hedc_bench::schema::validate_dir(&dir, &[]) {
        Ok(summary) => println!("{}: {summary}", dir.display()),
        Err(errs) => {
            for e in &errs {
                eprintln!("FAIL {e}");
            }
            return 1;
        }
    }
    // Print whatever attribution sections the reports carry.
    for name in ["fig4_browse_clients", "ingest"] {
        let path = dir.join(format!("BENCH_{name}.json"));
        let Ok(raw) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(report) = serde_json::from_str::<serde_json::Value>(&raw) else {
            continue;
        };
        let Some(attr) = report.get("attribution") else {
            continue;
        };
        println!("\n{name} — attribution");
        if let Some(tiers) = attr.get("tiers").and_then(|t| t.as_array()) {
            println!("{:>10} {:>10} {:>14}", "tier", "category", "self_us");
            for t in tiers {
                println!(
                    "{:>10} {:>10} {:>14}",
                    t.get("tier").and_then(|v| v.as_str()).unwrap_or("?"),
                    t.get("category").and_then(|v| v.as_str()).unwrap_or("?"),
                    t.get("self_us").and_then(|v| v.as_u64()).unwrap_or(0)
                );
            }
        }
        if let Some(rows) = report.get("rows").and_then(|r| r.as_array()) {
            for row in rows {
                if row.get("mode").and_then(|m| m.as_str()) == Some("attribution") {
                    println!(
                        "coverage {:.3} over {} sampled traces",
                        row.get("coverage").and_then(|c| c.as_f64()).unwrap_or(0.0),
                        row.get("sampled_traces")
                            .and_then(|s| s.as_u64())
                            .unwrap_or(0)
                    );
                }
            }
        }
    }
    0
}

fn live() -> i32 {
    let hedc = boot_and_browse();
    let snapshot = hedc_obs::snapshot();
    println!("{}", snapshot.to_text());
    println!("slowest retained traces");
    println!("{:-<74}", "");
    for record in hedc_obs::recorder().slowest(3) {
        match hedc_obs::analyze_trace(record.trace_id) {
            Some(b) => {
                print!("trace {} {} {} us:", b.trace_id, b.root_name, b.root_us);
                for c in hedc_obs::Category::ALL {
                    print!(" {}={}us", c.label(), b.category_us(c));
                }
                println!();
                for t in b.by_tier.iter().take(4) {
                    println!("    {:>8}/{}: {} us", t.tier, t.category.label(), t.self_us);
                }
            }
            None => println!(
                "trace {} {} {} us (spans evicted)",
                record.trace_id, record.root_name, record.duration_us
            ),
        }
    }
    println!("\n(drill in: GET /hedc/traces and /hedc/trace/<id> on the web tier)");
    hedc.shutdown();
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--obs-smoke") => obs_smoke(),
        Some("--bench-report") => bench_report(args.get(1).map(PathBuf::from)),
        Some("--help") | Some("-h") => {
            println!("usage: hedc_doctor [--obs-smoke | --bench-report [dir]]");
            0
        }
        Some(other) => {
            eprintln!("unknown flag {other:?}; try --help");
            2
        }
        None => live(),
    };
    std::process::exit(code);
}
