//! Figure 4: browse throughput versus number of simultaneous clients on a
//! single middle-tier server (§7.3).
//!
//! Paper shape: throughput peaks at ≈ 16 requests/s around 16 clients
//! (database near its ≈ 120 query/s ceiling), then *degrades* to ≈ 3
//! requests/s at 96 clients — caused by the application logic, not the
//! database.

use hedc_bench::attribution::{run_browse_attribution, AttributionConfig};
use hedc_bench::cluster::run_fig4_net;
use hedc_core::HedcConfig;
use hedc_sim::browse::{figure4, figure4_batched};
use std::time::Duration;

fn batch_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--batch")
        || std::env::var("HEDC_BATCH").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn attribution_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--attribution")
        || std::env::var("HEDC_ATTRIBUTION").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn main() {
    let clients = [8usize, 16, 24, 32, 48, 64, 80, 96];
    // The paper's figure marks 16..96; paper values read off Figure 4's
    // stated anchors (peak ≈16 rps at 16 clients, ≈3 rps at 96).
    let paper: [(usize, Option<f64>); 8] = [
        (8, None),
        (16, Some(16.0)),
        (24, None),
        (32, None),
        (48, None),
        (64, None),
        (80, None),
        (96, Some(3.0)),
    ];

    println!("Figure 4 — browse throughput vs clients (1 middle-tier node)");
    println!("{:-<74}", "");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "clients", "req/s", "paper", "delta", "DB q/s", "resp [s]"
    );
    let results = figure4(&clients);
    let mut rows = Vec::new();
    for (r, (_, paper_v)) in results.iter().zip(paper.iter()) {
        let paper_s = paper_v
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into());
        let delta = paper_v
            .map(|v| hedc_bench::vs_paper(r.requests_per_second, v))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>8} {:>12.2} {:>12} {:>10} {:>12.1} {:>12.2}",
            r.config.clients,
            r.requests_per_second,
            paper_s,
            delta,
            r.db_queries_per_second,
            r.avg_response_s
        );
        rows.push(serde_json::json!({
            "clients": r.config.clients,
            "requests_per_second": r.requests_per_second,
            "paper_requests_per_second": paper_v,
            "db_queries_per_second": r.db_queries_per_second,
            "avg_response_s": r.avg_response_s,
            "p50_response_s": r.p50_response_s,
            "p95_response_s": r.p95_response_s,
            "p99_response_s": r.p99_response_s,
            "mt_utilization": r.mt_utilization,
            "db_utilization": r.db_utilization,
        }));
    }

    // The §7.3 diagnosis: at 96 clients the middle tier, not the DB, is hot.
    let at96 = results.last().unwrap();
    println!("{:-<74}", "");
    println!(
        "at 96 clients: middle-tier util {:.0}%, DB util {:.0}% -> the slowdown \"is caused by the increased processing load of the application logic\" (§7.3)",
        at96.mt_utilization[0] * 100.0,
        at96.db_utilization * 100.0
    );

    // `--batch`: the same sweep with the §4.3 name-mapping queries batched
    // (3 DB queries per request instead of 7 — see
    // `hedc_sim::calib::BATCHED_QUERIES_PER_REQUEST`).
    let batched = if batch_mode_enabled() {
        let batched = figure4_batched(&clients);
        println!();
        println!("with batched name mapping (3 DB queries/request instead of 7)");
        println!("{:-<74}", "");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            "clients", "req/s", "std req/s", "DB q/s", "DB util"
        );
        for (b, s) in batched.iter().zip(results.iter()) {
            println!(
                "{:>8} {:>12.2} {:>12.2} {:>12.1} {:>11.0}%",
                b.config.clients,
                b.requests_per_second,
                s.requests_per_second,
                b.db_queries_per_second,
                b.db_utilization * 100.0
            );
        }
        Some(batched)
    } else {
        None
    };

    let mut report = serde_json::json!({ "rows": rows });
    if let Some(batched) = &batched {
        report["batched_rows"] = serde_json::Value::Array(
            batched
                .iter()
                .map(|r| {
                    serde_json::json!({
                        "clients": r.config.clients,
                        "requests_per_second": r.requests_per_second,
                        "db_queries_per_second": r.db_queries_per_second,
                        "db_utilization": r.db_utilization,
                        "avg_response_s": r.avg_response_s,
                    })
                })
                .collect(),
        );
    }
    hedc_bench::write_report("fig4_browse_clients", &report);

    // Machine-readable latency/throughput summary from the per-run obs
    // histograms (one row per client count), mode-tagged when the batched
    // sweep ran too.
    let summarize = |rs: &[hedc_sim::browse::BrowseResult], mode: &str| -> Vec<serde_json::Value> {
        rs.iter()
            .map(|r| {
                serde_json::json!({
                    "mode": mode,
                    "clients": r.config.clients,
                    "throughput_rps": r.requests_per_second,
                    "latency_s": {
                        "avg": r.avg_response_s,
                        "p50": r.p50_response_s,
                        "p95": r.p95_response_s,
                        "p99": r.p99_response_s,
                    },
                })
            })
            .collect()
    };
    let mut bench_rows = summarize(&results, "standard");
    if let Some(batched) = &batched {
        bench_rows.extend(summarize(batched, "batched"));
    }

    // The measured net-tier sweep: the same "clients vs throughput" axis as
    // the paper's figure, but against the event-driven, admission-controlled
    // `DmServer` over real loopback sockets. Where Figure 4 collapses
    // (16 req/s at 16 clients down to 3 at 96), this curve must hold flat:
    // offered load beyond capacity is shed with a typed `Overloaded`, not
    // queued into multi-second p99s. `check_fig4` in `hedc_bench::schema`
    // gates exactly that shape.
    let net_clients: &[usize] = if hedc_bench::smoke() {
        &[8, 16]
    } else {
        &[16, 32, 64, 128, 256, 512]
    };
    let net_secs: f64 = std::env::var("HEDC_NET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let hedc = HedcConfig::default();
    println!();
    println!("net — measured clients sweep, 1 admission-controlled DmServer");
    println!("{:-<74}", "");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "clients", "req/s", "p50 ms", "p99 ms", "requests", "sheds", "shed %"
    );
    for &clients in net_clients {
        let r = run_fig4_net(clients, Duration::from_secs_f64(net_secs), &hedc);
        println!(
            "{:>8} {:>12.1} {:>10.2} {:>10.2} {:>10} {:>10} {:>8.1}%",
            r.clients,
            r.requests_per_second,
            r.p50_response_s * 1e3,
            r.p99_response_s * 1e3,
            r.requests,
            r.sheds,
            r.shed_rate * 100.0
        );
        bench_rows.push(serde_json::json!({
            "mode": "net",
            "clients": r.clients,
            "requests": r.requests,
            "throughput_rps": r.requests_per_second,
            "sheds": r.sheds,
            "shed_rate": r.shed_rate,
            "overload_retries": r.overload_retries,
            "latency_s": {
                "avg": r.avg_response_s,
                "p50": r.p50_response_s,
                "p95": r.p95_response_s,
                "p99": r.p99_response_s,
            },
        }));
    }

    // `--attribution`: the measured tail-latency decomposition. A one-node
    // loopback stack serves the same browse mix over real sockets; every
    // request runs under a root span, sampled traces are partitioned into
    // queue / pool / wire / execute self time, and the slowest trace is
    // verified retrievable through `/hedc/trace/<id>`.
    let mut bench_report = serde_json::json!({ "bench": "fig4_browse_clients" });
    if attribution_mode_enabled() {
        let smoke = hedc_bench::smoke();
        let (clients, measure) = if smoke {
            (8, Duration::from_millis(800))
        } else {
            (96, Duration::from_secs(10))
        };
        println!();
        println!("attribution — measured critical-path breakdown at {clients} clients");
        println!("{:-<74}", "");
        let run = run_browse_attribution(&AttributionConfig::fig4(clients, measure));
        println!(
            "{} requests, {:.2} req/s, avg {:.1} ms, p99 {:.1} ms",
            run.requests,
            run.requests_per_second,
            run.avg_response_s * 1e3,
            run.p99_response_s * 1e3
        );
        let attributed = run.totals.attributed_us.max(1);
        for (cat, us) in &run.totals.by_category_us {
            println!(
                "{:>10}: {:>10} us total across {} sampled traces ({:>5.1}%)",
                cat,
                us,
                run.totals.traces,
                *us as f64 / attributed as f64 * 100.0
            );
        }
        println!(
            "coverage {:.3} (attributed / measured root time), {} pinned >= {} us",
            run.totals.coverage(),
            run.pinned,
            run.pin_threshold_us
        );
        if let Some(check) = &run.trace_page {
            println!(
                "slowest trace {} -> GET /hedc/trace/{} = {}",
                check.trace_id, check.trace_id, check.status
            );
        }
        bench_rows.push(run.to_row());
        bench_report["attribution"] = run.to_section();
    }
    bench_report["rows"] = serde_json::Value::Array(bench_rows);
    hedc_bench::write_report("BENCH_fig4_browse_clients", &bench_report);
}
