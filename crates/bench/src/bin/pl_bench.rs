//! The redundant-work elimination bench (§3.5 "avoid redundant
//! computation").
//!
//! Drives the real PL (real DM, real staging, real imaging executions) with
//! a zipf-skewed duplicate-heavy request stream — the "everyone asks for
//! the same flare" shape — in two configurations over the *same* seeded
//! sequence:
//!
//! * `coalesce_off` — the execute-every-submit baseline: coalescing
//!   disabled and every request forced, so each of the N submits runs the
//!   full estimate → stage → execute → commit workflow.
//! * `coalesce_on` — single-flight coalescing plus the versioned result
//!   store: concurrent duplicates attach to the in-flight leader, repeat
//!   requests across waves hit the store.
//!
//! Effective throughput is requests *answered* per second; the committed
//! `BENCH_pl.json` is gated by `hedc_bench::schema::check_pl`, which
//! requires the on/off ratio to hold at ≥ 5x.
//!
//! Usage: `pl_bench [seed]` (default 0x5EED). `HEDC_BENCH_SMOKE=1` shrinks
//! the sweep.

use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
use hedc_dm::{Dm, DmConfig, IngestConfig};
use hedc_events::{generate, package, GenConfig};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_pl::{PlConfig, ProcessingLogic, RequestSpec};
use hedc_sim::{duplication_factor, Zipf, ZipfConfig};
use std::sync::Arc;
use std::time::Instant;

/// Sweep shape: `rounds` waves of `threads` concurrent submits drawn from a
/// zipf catalog of `keys` distinct analyses.
struct Shape {
    threads: usize,
    rounds: usize,
    keys: usize,
    window_ms: u64,
}

fn shape() -> Shape {
    if hedc_bench::smoke() {
        Shape {
            threads: 8,
            rounds: 10,
            keys: 4,
            window_ms: 5 * 60 * 1000,
        }
    } else {
        Shape {
            threads: 32,
            rounds: 10,
            keys: 16,
            window_ms: 20 * 60 * 1000,
        }
    }
}

fn setup_dm(window_ms: u64) -> Arc<Dm> {
    let files = Arc::new(FileStore::new());
    files.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    files.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    let dm = Dm::bootstrap(files, DmConfig::default()).expect("bootstrap");
    let t = generate(&GenConfig {
        duration_ms: window_ms,
        flares_per_hour: 6.0,
        background_rate: 15.0,
        seed: 4242,
        ..GenConfig::default()
    });
    let session = dm.import_session();
    let cfg = IngestConfig::new(1, 2, dm.extended_catalog);
    for unit in package(&t, 200_000, 1) {
        dm.processes()
            .ingest_unit(&session, &unit, &cfg)
            .expect("ingest");
    }
    dm
}

/// The catalog of distinct analyses the zipf stream draws from: histogram
/// requests over staggered sub-windows, so each key stages and computes
/// real (distinct) work. Histograms are the paper's I/O-bound series —
/// staging dominates, which is exactly the work reuse avoids.
fn catalog(dm: &Arc<Dm>, shape: &Shape) -> Vec<RequestSpec> {
    let session = dm.import_session();
    let hle = dm
        .services()
        .query(&session, hedc_metadb::Query::table("hle").limit(1))
        .expect("hle query")
        .rows[0][0]
        .as_int()
        .expect("hle id");
    let span = shape.window_ms / shape.keys as u64;
    (0..shape.keys as u64)
        .map(|i| {
            RequestSpec::new(
                "histogram",
                AnalysisParams::window(i * span, (i + 1) * span).with("bins", 64.0),
                hle,
            )
        })
        .collect()
}

struct ModeResult {
    requests: u64,
    computes: u64,
    wall_ms: f64,
    effective_rps: f64,
}

/// Replay the stream against one PL configuration. Each round submits
/// `threads` requests back-to-back (concurrent in flight) and waits for the
/// wave to drain before the next — the barrier keeps offered concurrency
/// constant across modes.
fn run_mode(shape: &Shape, stream: &[usize], coalesce: bool) -> ModeResult {
    let dm = setup_dm(shape.window_ms);
    let specs = catalog(&dm, shape);
    let session = dm.import_session();
    let pl = ProcessingLogic::start(
        Arc::clone(&dm),
        Arc::new(AlgorithmRegistry::with_builtins()),
        PlConfig {
            servers: 2,
            dispatchers: shape.threads,
            coalesce,
            ..PlConfig::default()
        },
    );
    let mut computes = 0u64;
    let started = Instant::now();
    for wave in stream.chunks(shape.threads) {
        let rxs: Vec<_> = wave
            .iter()
            .map(|&k| {
                let mut spec = specs[k].clone();
                if !coalesce {
                    // The baseline really is execute-every-submit: forcing
                    // skips the result store the same way the elimination
                    // machinery being absent would.
                    spec = spec.force();
                }
                pl.submit_async(Arc::clone(&session), spec).1
            })
            .collect();
        for rx in rxs {
            let outcome = rx.recv().expect("pl alive").expect("analysis ok");
            if !outcome.was_reused() {
                computes += 1;
            }
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    pl.shutdown();
    ModeResult {
        requests: stream.len() as u64,
        computes,
        wall_ms,
        effective_rps: stream.len() as f64 / (wall_ms / 1e3),
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED);
    let shape = shape();
    let n = shape.threads * shape.rounds;
    let stream = Zipf::new(&ZipfConfig {
        keys: shape.keys,
        exponent: 1.3,
        seed,
    })
    .stream(n);
    println!(
        "pl_bench: {} requests over {} distinct analyses (duplication {:.1}x), \
         {} waves of {}",
        n,
        shape.keys,
        duplication_factor(&stream),
        shape.rounds,
        shape.threads
    );

    println!("{:-<72}", "");
    println!(
        "{:<14} {:>9} {:>9} {:>11} {:>13}",
        "mode", "requests", "computes", "wall [ms]", "effective r/s"
    );
    let mut rows = Vec::new();
    let mut by_mode = std::collections::HashMap::new();
    // Coalesce-on first: both modes start from a cold DM, and the forced
    // baseline is insensitive to order anyway.
    for (mode, coalesce) in [("coalesce_on", true), ("coalesce_off", false)] {
        let r = run_mode(&shape, &stream, coalesce);
        println!(
            "{:<14} {:>9} {:>9} {:>11.0} {:>13.1}",
            mode, r.requests, r.computes, r.wall_ms, r.effective_rps
        );
        rows.push(serde_json::json!({
            "mode": mode,
            "threads": shape.threads,
            "rounds": shape.rounds,
            "requests": r.requests,
            "computes": r.computes,
            "wall_ms": r.wall_ms,
            "effective_rps": r.effective_rps,
        }));
        by_mode.insert(mode, r);
    }
    let on = &by_mode["coalesce_on"];
    let off = &by_mode["coalesce_off"];
    let ratio = on.effective_rps / off.effective_rps;
    println!(
        "\nsingle-flight + versioned store: {:.1}x effective throughput \
         ({} -> {} executions)",
        ratio, off.computes, on.computes
    );
    hedc_bench::write_report(
        "BENCH_pl",
        &serde_json::json!({
            "bench": "pl",
            "seed": seed,
            "zipf": { "keys": shape.keys, "exponent": 1.3 },
            "duplication_factor": duplication_factor(&stream),
            "rows": rows,
            "summary": {
                "computes_on": on.computes,
                "computes_off": off.computes,
                "throughput_ratio": ratio,
            },
        }),
    );
}
