//! Figure 5: browse throughput versus number of middle-tier servers at 96
//! simultaneous clients (§7.3).
//!
//! Paper shape: "the throughput rises from 3 requests for one node to 18
//! requests for five nodes. These 18 requests result in around 120 HEDC
//! database queries, the peak performance of the database setup."
//!
//! Pass `--net` (or set `HEDC_NET=1`) to additionally run the real-network
//! mode: N loopback `DmServer`s behind a `DmRouter` of `NetDm` clients, the
//! same closed-loop browse workload measured over actual sockets. Both the
//! simulated and the measured rows land in `results/BENCH_fig5_browse_nodes`
//! tagged with `"mode"`. `HEDC_NET_SECS` tunes the per-point window.
//!
//! Pass `--cache` (or set `HEDC_CACHE=1`) to additionally measure the DM
//! result cache: a cold pass of distinct browse queries against an empty
//! cache versus warm repeats served from it, recorded as `"mode": "cache"`
//! rows (one `"phase": "cold"`, one `"phase": "warm"`) with the speedup.
//!
//! Pass `--shards` (or set `HEDC_SHARDS=1`) to run the scale-out sweep: the
//! same dataset and seeded browse stream at 1/2/4 shards through the
//! `ShardedDm` scatter-gather path, written as `results/BENCH_fig5_shards`
//! and gated by `check_fig5` (≥1.6x throughput from 1 to 4 shards).

use hedc_bench::cache_bench::{run_cache_bench, CacheBenchConfig};
use hedc_bench::cluster::{run_cluster, ClusterConfig};
use hedc_bench::shard_bench::{run_shard_bench, ShardBenchConfig};
use hedc_sim::browse::figure5;
use std::time::Duration;

fn net_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--net")
        || std::env::var("HEDC_NET").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn cache_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--cache")
        || std::env::var("HEDC_CACHE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn shards_mode_enabled() -> bool {
    std::env::args().any(|a| a == "--shards")
        || std::env::var("HEDC_SHARDS").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn main() {
    let nodes = [1usize, 2, 3, 5];
    let paper: [Option<f64>; 4] = [Some(3.0), None, None, Some(18.0)];

    println!("Figure 5 — browse throughput vs middle-tier nodes (96 clients)");
    println!("{:-<74}", "");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "nodes", "req/s", "paper", "delta", "DB q/s", "DB util"
    );
    let results = figure5(&nodes, 96);
    let mut rows = Vec::new();
    for (r, paper_v) in results.iter().zip(paper.iter()) {
        let paper_s = paper_v
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into());
        let delta = paper_v
            .map(|v| hedc_bench::vs_paper(r.requests_per_second, v))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>6} {:>12.2} {:>12} {:>10} {:>12.1} {:>9.0}%",
            r.config.nodes,
            r.requests_per_second,
            paper_s,
            delta,
            r.db_queries_per_second,
            r.db_utilization * 100.0
        );
        rows.push(serde_json::json!({
            "nodes": r.config.nodes,
            "requests_per_second": r.requests_per_second,
            "paper_requests_per_second": paper_v,
            "db_queries_per_second": r.db_queries_per_second,
            "db_utilization": r.db_utilization,
            "avg_response_s": r.avg_response_s,
            "p50_response_s": r.p50_response_s,
            "p95_response_s": r.p95_response_s,
            "p99_response_s": r.p99_response_s,
        }));
    }
    println!("{:-<74}", "");
    let five = results.last().unwrap();
    println!(
        "at 5 nodes the database saturates: {:.0} queries/s of its ≈126 q/s peak — further scaling needs DB replication or the DM's partitioning (§7.3)",
        five.db_queries_per_second
    );

    hedc_bench::write_report("fig5_browse_nodes", &serde_json::json!({ "rows": rows }));

    // Machine-readable latency/throughput summary from the per-run obs
    // histograms (one row per node count).
    let mut bench_rows: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "mode": "sim",
                "nodes": r.config.nodes,
                "clients": r.config.clients,
                "throughput_rps": r.requests_per_second,
                "latency_s": {
                    "avg": r.avg_response_s,
                    "p50": r.p50_response_s,
                    "p95": r.p95_response_s,
                    "p99": r.p99_response_s,
                },
            })
        })
        .collect();

    if net_mode_enabled() {
        let secs: f64 = std::env::var("HEDC_NET_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2.0);
        println!("\nreal-network mode — loopback DmServer cluster over hedc-net");
        println!("{:-<74}", "");
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "nodes", "req/s", "p50 ms", "p95 ms", "p99 ms"
        );
        for n in nodes {
            let r = run_cluster(&ClusterConfig::fig5(n, Duration::from_secs_f64(secs)));
            println!(
                "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                r.nodes,
                r.requests_per_second,
                r.p50_response_s * 1e3,
                r.p95_response_s * 1e3,
                r.p99_response_s * 1e3
            );
            bench_rows.push(serde_json::json!({
                "mode": "net",
                "nodes": r.nodes,
                "clients": r.clients,
                "requests": r.requests,
                "throughput_rps": r.requests_per_second,
                "bytes_out": r.bytes_out,
                "bytes_in": r.bytes_in,
                "latency_s": {
                    "avg": r.avg_response_s,
                    "p50": r.p50_response_s,
                    "p95": r.p95_response_s,
                    "p99": r.p99_response_s,
                },
            }));
        }
        println!("{:-<74}", "");
        println!(
            "the net rows measure the same router/redirection path as the sim \
             rows, but every query crosses the hedc-net wire protocol"
        );
    } else {
        println!("(run with --net or HEDC_NET=1 to add real-network rows)");
    }

    if cache_mode_enabled() {
        println!("\ncache mode — warm vs cold browse latency, sharded DM result cache");
        println!("{:-<74}", "");
        let config = CacheBenchConfig::default();
        let r = run_cache_bench(&config);
        println!(
            "{:>8} {:>14} {:>14} {:>10}",
            "phase", "avg us/query", "cache hits", "misses"
        );
        println!(
            "{:>8} {:>14.1} {:>14} {:>10}",
            "cold", r.cold_avg_us, 0, r.misses
        );
        println!(
            "{:>8} {:>14.1} {:>14} {:>10}",
            "warm", r.warm_avg_us, r.hits, 0
        );
        println!("{:-<74}", "");
        println!(
            "speedup {:.1}x — a warm node answers browse queries without touching \
             the metadata database (and keeps answering when it is unreachable)",
            r.speedup
        );
        for (phase, avg_us) in [("cold", r.cold_avg_us), ("warm", r.warm_avg_us)] {
            bench_rows.push(serde_json::json!({
                "mode": "cache",
                "phase": phase,
                "queries": config.queries,
                "warm_passes": config.warm_passes,
                "avg_us_per_query": avg_us,
                "speedup": r.speedup,
                "hits": r.hits,
                "misses": r.misses,
            }));
        }
    } else {
        println!("(run with --cache or HEDC_CACHE=1 to add warm-vs-cold cache rows)");
    }

    hedc_bench::write_report(
        "BENCH_fig5_browse_nodes",
        &serde_json::json!({ "bench": "fig5_browse_nodes", "rows": bench_rows }),
    );

    if shards_mode_enabled() {
        let config = ShardBenchConfig::default();
        println!(
            "\nscale-out mode — {} rows, {} probes, sharded DM scatter-gather",
            config.rows, config.queries
        );
        println!("{:-<74}", "");
        println!(
            "{:>7} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "shards", "probes/s", "speedup", "p50 ms", "p95 ms", "p99 ms", "fanout"
        );
        let points = run_shard_bench(&config);
        let base_rps = points[0].throughput_rps;
        let mut shard_rows = Vec::new();
        for p in &points {
            println!(
                "{:>7} {:>12.1} {:>9.2}x {:>10.3} {:>10.3} {:>10.3} {:>8.2}",
                p.shards,
                p.throughput_rps,
                p.throughput_rps / base_rps,
                p.p50_s * 1e3,
                p.p95_s * 1e3,
                p.p99_s * 1e3,
                p.fanout_avg
            );
            shard_rows.push(serde_json::json!({
                "mode": "shards",
                "shards": p.shards,
                "replicas": p.replicas,
                "clients": 1,
                "queries": p.queries,
                "rows_returned": p.rows_returned,
                "fanout_avg": p.fanout_avg,
                "throughput_rps": p.throughput_rps,
                "latency_s": {
                    "avg": p.avg_s,
                    "p50": p.p50_s,
                    "p95": p.p95_s,
                    "p99": p.p99_s,
                },
            }));
        }
        println!("{:-<74}", "");
        let last = points.last().unwrap();
        println!(
            "partition pruning does the work: a window probe touches {:.2} of {} \
             shards on average, so the same browse stream runs {:.2}x faster than \
             the single-shard baseline on identical answers",
            last.fanout_avg,
            last.shards,
            last.throughput_rps / base_rps
        );
        hedc_bench::write_report(
            "BENCH_fig5_shards",
            &serde_json::json!({
                "bench": "fig5_shards",
                "rows": shard_rows,
                "summary": {
                    "dataset_rows": config.rows,
                    "speedup_1_to_max": last.throughput_rps / base_rps,
                    // Smoke sweeps get check_fig5's softer speedup bar; the
                    // committed full-size report carries the 1.6x claim.
                    "smoke": hedc_bench::smoke(),
                },
            }),
        );
    } else {
        println!("(run with --shards or HEDC_SHARDS=1 to add the scale-out sweep)");
    }
}
