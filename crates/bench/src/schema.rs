//! The documented row schema for `results/BENCH_*.json`, plus a validator.
//!
//! Every bench that commits machine-readable results writes one
//! `BENCH_<name>.json` file: a top-level object whose `"bench"` tag equals
//! `<name>` and whose sections are arrays of flat rows. The schema per
//! bench:
//!
//! * **fig4_browse_clients / fig5_browse_nodes** — `rows`: non-empty; each
//!   row has `mode` (fig4: `standard`/`batched`/`attribution`/`net`; fig5:
//!   `sim`/`net`/`cache`), and — except fig5 `cache` rows, which carry
//!   `phase`/`avg_us_per_query` instead — `clients` ≥ 1, a finite
//!   `throughput_rps` ≥ 0, and a `latency_s` object with finite
//!   `avg`/`p50`/`p95`/`p99` where p50 ≤ p95 ≤ p99. `attribution` rows
//!   additionally carry `sampled_traces`, `measured_root_us`,
//!   `attributed_us`, a `coverage` within 10% of exact (0.9 ..= 1.1), and a
//!   `breakdown_us` object whose `queue`/`pool`/`wire`/`execute` sum to
//!   `attributed_us` — the partition property, enforced at the report
//!   boundary. fig4 `net` rows (the measured clients sweep against the
//!   admission-controlled server) carry `requests`, `sheds`, and a
//!   `shed_rate` in `0..=1`, and the sweep as a whole must satisfy
//!   [`check_fig4`]: at least two rows on strictly increasing client
//!   counts, throughput never collapsing below 65% of the best preceding
//!   point, p99 ≤ 3 s, and shed rate ≤ 0.5 — the anti-Figure-4 claim that
//!   overload sheds instead of queueing into collapse.
//! * **batch_bench** — `resolve`: non-empty rows with `mode`
//!   (`local`/`net`), `batch_size` ≥ 1, `reps` ≥ 1, finite
//!   `sequential_avg_us`/`batched_avg_us`/`speedup`; `topk`: object with
//!   finite `full_sort_us`/`topk_us`/`speedup`.
//! * **ingest** — `workload` (`units`/`photons` counts), `scale`: non-empty
//!   rows with `workers` ≥ 1 and finite `secs`/`units_per_s`/`speedup`;
//!   `wal`: rows with `group_commit` ≥ 1; `crash_cycle`: object whose
//!   `skipped + resumed + ingested == units` (every unit accounted).
//! * **table1_processing** — `rows`: non-empty with `workload`, `config`,
//!   finite `throughput_rps`, and an ordered `latency_s`.
//! * **store** — `contention`: non-empty rows with `backend`
//!   (`memory`/`paged`), `phase` (`idle`/`under_ingest`), `queries` ≥ 1,
//!   finite `throughput_rps`, and an ordered `latency_s`;
//!   `contention_summary`: finite positive `memory_p99_ratio` and
//!   `paged_p99_ratio`, with the paged ratio ≤ 2 — the tentpole claim that
//!   MVCC snapshot reads keep browse p99 under ingest within 2× of idle;
//!   `larger_than_cache`: object whose `scan_rows == rows`, `evictions` >
//!   `cache_pages` (the table really exceeded the cache), and
//!   `scan_verified` is `true`.
//! * **fig5_shards** — `rows`: non-empty; each row has `mode` `"shards"`,
//!   `shards` ≥ 1, `replicas` ≥ 1, `clients` ≥ 1, `queries` ≥ 1,
//!   `rows_returned`, a finite `fanout_avg` ≥ 1, a finite
//!   `throughput_rps` ≥ 0, and an ordered `latency_s`. The sweep as a whole
//!   must satisfy [`check_fig5`]: at least two rows on strictly increasing
//!   shard counts starting at 1, every row returning the same
//!   `rows_returned` as the baseline (a sharded answer that lost rows is
//!   not a faster answer), and the largest shard count delivering ≥ 1.6x
//!   the single-shard throughput — the measured scale-out claim behind the
//!   §7.3 "partition the DM" remedy. Reports whose `summary.smoke` is true
//!   (tiny sweeps, timing-noise dominated) get a softer ≥ 1.2x bar.
//! * **pl** — `rows`: non-empty rows with `mode` (`coalesce_on`/
//!   `coalesce_off`), `threads` ≥ 1, `rounds` ≥ 1, `requests` ≥ 1,
//!   `computes` ≥ 1, finite `wall_ms` and `effective_rps` ≥ 0; both modes
//!   present. `summary`: `computes_on` < `computes_off` (coalescing really
//!   eliminated executions) and `throughput_ratio` ≥ 5 — the redundant-work
//!   claim enforced by [`check_pl`]: under a zipf-skewed duplicate-heavy
//!   load, single-flight coalescing plus the versioned result store must
//!   deliver at least 5x the effective throughput of the
//!   execute-every-submit configuration.
//!
//! Unknown `BENCH_*` names are an error: a bench that invents a report must
//! register its schema here, which is the point.

use std::fmt::Write as _;
use std::path::Path;

/// Bench names this validator knows how to check.
pub const KNOWN: [&str; 8] = [
    "fig4_browse_clients",
    "fig5_browse_nodes",
    "fig5_shards",
    "batch_bench",
    "ingest",
    "table1_processing",
    "store",
    "pl",
];

type Errors = Vec<String>;

fn fin(v: &serde_json::Value, key: &str, ctx: &str, errs: &mut Errors) -> Option<f64> {
    match v.get(key).and_then(|x| x.as_f64()) {
        Some(n) if n.is_finite() => Some(n),
        Some(_) => {
            errs.push(format!("{ctx}: `{key}` is not finite"));
            None
        }
        None => {
            errs.push(format!("{ctx}: missing numeric `{key}`"));
            None
        }
    }
}

fn uint(v: &serde_json::Value, key: &str, ctx: &str, errs: &mut Errors) -> Option<u64> {
    match v.get(key).and_then(|x| x.as_u64()) {
        Some(n) => Some(n),
        None => {
            errs.push(format!("{ctx}: missing unsigned `{key}`"));
            None
        }
    }
}

fn text<'a>(v: &'a serde_json::Value, key: &str, ctx: &str, errs: &mut Errors) -> Option<&'a str> {
    match v.get(key).and_then(|x| x.as_str()) {
        Some(s) => Some(s),
        None => {
            errs.push(format!("{ctx}: missing string `{key}`"));
            None
        }
    }
}

fn section<'a>(
    v: &'a serde_json::Value,
    key: &str,
    ctx: &str,
    errs: &mut Errors,
) -> Option<&'a Vec<serde_json::Value>> {
    match v.get(key).and_then(|x| x.as_array()) {
        Some(rows) if !rows.is_empty() => Some(rows),
        Some(_) => {
            errs.push(format!("{ctx}: `{key}` must be non-empty"));
            None
        }
        None => {
            errs.push(format!("{ctx}: missing array `{key}`"));
            None
        }
    }
}

/// `latency_s`: finite avg/p50/p95/p99 with ordered percentiles.
fn check_latency(row: &serde_json::Value, ctx: &str, errs: &mut Errors) {
    let Some(lat) = row.get("latency_s").filter(|l| l.is_object()) else {
        errs.push(format!("{ctx}: missing `latency_s` object"));
        return;
    };
    let ctx = format!("{ctx}.latency_s");
    fin(lat, "avg", &ctx, errs);
    let p50 = fin(lat, "p50", &ctx, errs);
    let p95 = fin(lat, "p95", &ctx, errs);
    let p99 = fin(lat, "p99", &ctx, errs);
    if let (Some(p50), Some(p95), Some(p99)) = (p50, p95, p99) {
        if !(p50 <= p95 && p95 <= p99) {
            errs.push(format!(
                "{ctx}: percentiles out of order (p50={p50}, p95={p95}, p99={p99})"
            ));
        }
    }
}

/// The attribution-row extras: counts, coverage near 1, and a breakdown
/// that sums back to the attributed total.
fn check_attribution_row(row: &serde_json::Value, ctx: &str, errs: &mut Errors) {
    uint(row, "sampled_traces", ctx, errs);
    uint(row, "measured_root_us", ctx, errs);
    let attributed = uint(row, "attributed_us", ctx, errs);
    if let Some(cov) = fin(row, "coverage", ctx, errs) {
        if !(0.9..=1.1).contains(&cov) {
            errs.push(format!(
                "{ctx}: coverage {cov} outside 0.9..=1.1 — breakdown does not \
                 sum to the measured root latency"
            ));
        }
    }
    let Some(bd) = row.get("breakdown_us").filter(|b| b.is_object()) else {
        errs.push(format!("{ctx}: missing `breakdown_us` object"));
        return;
    };
    let bctx = format!("{ctx}.breakdown_us");
    let mut sum = 0u64;
    for cat in ["queue", "pool", "wire", "execute"] {
        sum += uint(bd, cat, &bctx, errs).unwrap_or(0);
    }
    if let Some(attributed) = attributed {
        if sum != attributed {
            errs.push(format!(
                "{bctx}: categories sum to {sum}, `attributed_us` says {attributed}"
            ));
        }
    }
}

fn check_browse_rows(report: &serde_json::Value, name: &str, errs: &mut Errors) {
    let modes: &[&str] = if name == "fig4_browse_clients" {
        &["standard", "batched", "attribution", "net"]
    } else {
        &["sim", "net", "cache"]
    };
    let Some(rows) = section(report, "rows", name, errs) else {
        return;
    };
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("{name}.rows[{i}]");
        let Some(mode) = text(row, "mode", &ctx, errs) else {
            continue;
        };
        if !modes.contains(&mode) {
            errs.push(format!("{ctx}: unknown mode {mode:?} (expected {modes:?})"));
            continue;
        }
        if mode == "cache" {
            text(row, "phase", &ctx, errs);
            fin(row, "avg_us_per_query", &ctx, errs);
            continue;
        }
        if let Some(c) = uint(row, "clients", &ctx, errs) {
            if c == 0 {
                errs.push(format!("{ctx}: zero clients"));
            }
        }
        if let Some(t) = fin(row, "throughput_rps", &ctx, errs) {
            if t < 0.0 {
                errs.push(format!("{ctx}: negative throughput"));
            }
        }
        check_latency(row, &ctx, errs);
        if mode == "attribution" {
            check_attribution_row(row, &ctx, errs);
        }
        if name == "fig4_browse_clients" && mode == "net" {
            uint(row, "requests", &ctx, errs);
            uint(row, "sheds", &ctx, errs);
            if let Some(rate) = fin(row, "shed_rate", &ctx, errs) {
                if !(0.0..=1.0).contains(&rate) {
                    errs.push(format!("{ctx}: shed_rate {rate} outside 0..=1"));
                }
            }
        }
    }
    if name == "fig4_browse_clients" {
        check_fig4(report, errs);
    }
}

/// The net-tier scaling gate — the measured refutation of Figure 4's
/// collapse, enforced at the report boundary.
///
/// The paper's middle tier peaks at 16 req/s around 16 clients and degrades
/// to ≈3 req/s at 96 because excess load queues instead of being refused
/// (§7.3). The admission-controlled server must do the opposite: as offered
/// load grows past capacity, throughput holds and the surplus is *shed*.
/// Over the report's `mode == "net"` rows this requires:
///
/// * at least two rows, on strictly increasing `clients` counts;
/// * `throughput_rps` never dropping below 65% of the best preceding
///   point — flat-or-rising within noise, never collapsing;
/// * `latency_s.p99` ≤ 3 s at every point — accepted requests stay fast
///   even at 512 clients;
/// * `shed_rate` ≤ 0.5 — shedding is a safety valve, not the common case.
pub fn check_fig4(report: &serde_json::Value, errs: &mut Errors) {
    let net_rows: Vec<&serde_json::Value> = report
        .get("rows")
        .and_then(|r| r.as_array())
        .map(|rows| {
            rows.iter()
                .filter(|r| r.get("mode").and_then(|m| m.as_str()) == Some("net"))
                .collect()
        })
        .unwrap_or_default();
    if net_rows.len() < 2 {
        errs.push(format!(
            "fig4_browse_clients: {} net row(s) — the clients sweep needs at \
             least two points to witness the scaling claim",
            net_rows.len()
        ));
        return;
    }
    let mut prev_clients = 0u64;
    let mut best_rps = 0.0f64;
    for (i, row) in net_rows.iter().enumerate() {
        let ctx = format!("fig4_browse_clients.net[{i}]");
        if let Some(clients) = row.get("clients").and_then(|c| c.as_u64()) {
            if clients <= prev_clients {
                errs.push(format!(
                    "{ctx}: clients {clients} not strictly increasing (previous {prev_clients})"
                ));
            }
            prev_clients = clients;
        }
        if let Some(rps) = row.get("throughput_rps").and_then(|t| t.as_f64()) {
            if rps < 0.65 * best_rps {
                errs.push(format!(
                    "{ctx}: throughput {rps:.1} req/s collapsed below 65% of the \
                     best preceding point ({best_rps:.1}) — the Figure-4 cliff \
                     the admission control exists to prevent"
                ));
            }
            best_rps = best_rps.max(rps);
        }
        if let Some(p99) = row
            .get("latency_s")
            .and_then(|l| l.get("p99"))
            .and_then(|p| p.as_f64())
        {
            if p99 > 3.0 {
                errs.push(format!(
                    "{ctx}: p99 {p99:.2}s exceeds 3s — accepted requests must \
                     stay fast; excess load should have been shed"
                ));
            }
        }
        if let Some(rate) = row.get("shed_rate").and_then(|r| r.as_f64()) {
            if rate > 0.5 {
                errs.push(format!(
                    "{ctx}: shed_rate {rate:.2} exceeds 0.5 — refusing most of \
                     the offered load is an outage, not admission control"
                ));
            }
        }
    }
}

/// The scale-out gate — the measured claim that partitioning the DM buys
/// throughput, enforced at the report boundary.
///
/// The paper's Figure 5 scales the middle tier until the single shared
/// database saturates at ≈126 queries/s; its §7.3 remedy is to partition
/// the DM itself. The `fig5_shards` sweep measures that remedy: the same
/// dataset and seeded browse stream through the identical scatter-gather
/// path at rising shard counts. Over the report's rows this requires:
///
/// * at least two rows, on strictly increasing `shards` counts, the first
///   being the 1-shard baseline;
/// * every row's `rows_returned` equal to the baseline's — the speedup is
///   only meaningful on identical answers;
/// * per-row sanity: `mode == "shards"`, `replicas`/`queries` ≥ 1, a
///   finite `fanout_avg` ≥ 1;
/// * the largest shard count delivering `throughput_rps` ≥ 1.6x the
///   baseline — partition pruning must actually pay, not just not hurt.
pub fn check_fig5(report: &serde_json::Value, errs: &mut Errors) {
    let Some(rows) = section(report, "rows", "fig5_shards", errs) else {
        return;
    };
    let mut prev_shards = 0u64;
    let mut base: Option<(f64, u64)> = None;
    let mut last_rps: Option<f64> = None;
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("fig5_shards.rows[{i}]");
        if let Some(mode) = text(row, "mode", &ctx, errs) {
            if mode != "shards" {
                errs.push(format!("{ctx}: unknown mode {mode:?} (expected \"shards\")"));
            }
        }
        let shards = uint(row, "shards", &ctx, errs);
        if let Some(s) = shards {
            if s <= prev_shards {
                errs.push(format!(
                    "{ctx}: shards {s} not strictly increasing (previous {prev_shards})"
                ));
            }
            prev_shards = s;
        }
        for key in ["replicas", "queries"] {
            if uint(row, key, &ctx, errs) == Some(0) {
                errs.push(format!("{ctx}: zero `{key}`"));
            }
        }
        if let Some(f) = fin(row, "fanout_avg", &ctx, errs) {
            if f < 1.0 {
                errs.push(format!("{ctx}: fanout_avg {f} below 1"));
            }
        }
        let rps = fin(row, "throughput_rps", &ctx, errs);
        if let Some(t) = rps {
            if t < 0.0 {
                errs.push(format!("{ctx}: negative throughput"));
            }
        }
        check_latency(row, &ctx, errs);
        let returned = uint(row, "rows_returned", &ctx, errs);
        match (&base, shards, rps, returned) {
            (None, Some(1), Some(rps), Some(ret)) => base = Some((rps, ret)),
            (None, Some(s), _, _) if s != 1 => {
                errs.push(format!(
                    "{ctx}: first row has {s} shards — the sweep must start at \
                     the 1-shard baseline"
                ));
            }
            (Some((_, base_ret)), _, _, Some(ret)) if ret != *base_ret => {
                errs.push(format!(
                    "{ctx}: returned {ret} rows, baseline returned {base_ret} — \
                     a sharded answer that lost rows is not a faster answer"
                ));
            }
            _ => {}
        }
        last_rps = rps.or(last_rps);
    }
    if rows.len() < 2 {
        errs.push(format!(
            "fig5_shards: {} row(s) — the sweep needs at least two shard counts \
             to witness the scale-out claim",
            rows.len()
        ));
        return;
    }
    // Smoke sweeps run a dataset small enough that single-core timing
    // noise swings the ratio by tenths; they are gated at a softer bar
    // that still rules out "sharding bought nothing". The committed
    // full-size report carries the real >= 1.6x scale-out claim.
    let smoke = report
        .get("summary")
        .and_then(|s| s.get("smoke"))
        .and_then(|v| v.as_bool())
        .unwrap_or(false);
    let floor = if smoke { 1.2 } else { 1.6 };
    if let (Some((base_rps, _)), Some(last)) = (base, last_rps) {
        let ratio = last / base_rps;
        if ratio < floor {
            errs.push(format!(
                "fig5_shards: {prev_shards} shards deliver only {ratio:.2}x the \
                 1-shard throughput — partition pruning must buy at least \
                 {floor}x on the browse stream{}",
                if smoke { " (smoke bar)" } else { "" }
            ));
        }
    }
}

fn check_batch_bench(report: &serde_json::Value, errs: &mut Errors) {
    if let Some(rows) = section(report, "resolve", "batch_bench", errs) {
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("batch_bench.resolve[{i}]");
            if let Some(mode) = text(row, "mode", &ctx, errs) {
                if !["local", "net"].contains(&mode) {
                    errs.push(format!("{ctx}: unknown mode {mode:?}"));
                }
            }
            for key in ["batch_size", "reps"] {
                if uint(row, key, &ctx, errs) == Some(0) {
                    errs.push(format!("{ctx}: zero `{key}`"));
                }
            }
            for key in ["sequential_avg_us", "batched_avg_us", "speedup"] {
                fin(row, key, &ctx, errs);
            }
        }
    }
    match report.get("topk").filter(|t| t.is_object()) {
        Some(topk) => {
            for key in ["full_sort_us", "topk_us", "speedup"] {
                fin(topk, key, "batch_bench.topk", errs);
            }
        }
        None => errs.push("batch_bench: missing `topk` object".to_string()),
    }
}

fn check_ingest(report: &serde_json::Value, errs: &mut Errors) {
    match report.get("workload").filter(|w| w.is_object()) {
        Some(w) => {
            uint(w, "units", "ingest.workload", errs);
            uint(w, "photons", "ingest.workload", errs);
        }
        None => errs.push("ingest: missing `workload` object".to_string()),
    }
    if let Some(rows) = section(report, "scale", "ingest", errs) {
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("ingest.scale[{i}]");
            if uint(row, "workers", &ctx, errs) == Some(0) {
                errs.push(format!("{ctx}: zero workers"));
            }
            for key in ["secs", "units_per_s", "speedup"] {
                fin(row, key, &ctx, errs);
            }
        }
    }
    if let Some(rows) = section(report, "wal", "ingest", errs) {
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("ingest.wal[{i}]");
            if uint(row, "group_commit", &ctx, errs) == Some(0) {
                errs.push(format!("{ctx}: zero group_commit"));
            }
            fin(row, "units_per_s", &ctx, errs);
        }
    }
    match report.get("crash_cycle").filter(|c| c.is_object()) {
        Some(cycle) => {
            let ctx = "ingest.crash_cycle";
            let units = uint(cycle, "units", ctx, errs);
            fin(cycle, "recovery_secs", ctx, errs);
            fin(cycle, "resume_secs", ctx, errs);
            let parts: Option<u64> = ["skipped", "resumed", "ingested"]
                .iter()
                .map(|k| uint(cycle, k, ctx, errs))
                .sum();
            if let (Some(units), Some(parts)) = (units, parts) {
                if parts != units {
                    errs.push(format!(
                        "{ctx}: skipped+resumed+ingested = {parts} but units = {units} — \
                         a unit went unaccounted"
                    ));
                }
            }
        }
        None => errs.push("ingest: missing `crash_cycle` object".to_string()),
    }
    // Optional attribution section (the `--attribution` run).
    if let Some(attr) = report.get("attribution").filter(|a| a.is_object()) {
        check_attribution_row(attr, "ingest.attribution", errs);
    }
}

fn check_table1(report: &serde_json::Value, errs: &mut Errors) {
    let Some(rows) = section(report, "rows", "table1_processing", errs) else {
        return;
    };
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("table1_processing.rows[{i}]");
        text(row, "workload", &ctx, errs);
        text(row, "config", &ctx, errs);
        fin(row, "throughput_rps", &ctx, errs);
        check_latency(row, &ctx, errs);
    }
}

fn check_store(report: &serde_json::Value, errs: &mut Errors) {
    if let Some(rows) = section(report, "contention", "store", errs) {
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("store.contention[{i}]");
            if let Some(backend) = text(row, "backend", &ctx, errs) {
                if !["memory", "paged"].contains(&backend) {
                    errs.push(format!("{ctx}: unknown backend {backend:?}"));
                }
            }
            if let Some(phase) = text(row, "phase", &ctx, errs) {
                if !["idle", "under_ingest"].contains(&phase) {
                    errs.push(format!("{ctx}: unknown phase {phase:?}"));
                }
            }
            if uint(row, "queries", &ctx, errs) == Some(0) {
                errs.push(format!("{ctx}: zero queries"));
            }
            fin(row, "throughput_rps", &ctx, errs);
            check_latency(row, &ctx, errs);
        }
    }
    match report.get("contention_summary").filter(|s| s.is_object()) {
        Some(summary) => {
            let ctx = "store.contention_summary";
            fin(summary, "memory_p99_ratio", ctx, errs);
            if let Some(r) = fin(summary, "paged_p99_ratio", ctx, errs) {
                if r <= 0.0 {
                    errs.push(format!("{ctx}: non-positive paged_p99_ratio {r}"));
                } else if r > 2.0 {
                    errs.push(format!(
                        "{ctx}: paged_p99_ratio {r:.2} exceeds 2.0 — browse p99 under \
                         ingest must stay within 2x of idle on the paged backend"
                    ));
                }
            }
        }
        None => errs.push("store: missing `contention_summary` object".to_string()),
    }
    match report.get("larger_than_cache").filter(|l| l.is_object()) {
        Some(ltc) => {
            let ctx = "store.larger_than_cache";
            let rows = uint(ltc, "rows", ctx, errs);
            let scanned = uint(ltc, "scan_rows", ctx, errs);
            if let (Some(rows), Some(scanned)) = (rows, scanned) {
                if rows != scanned {
                    errs.push(format!(
                        "{ctx}: scan returned {scanned} of {rows} rows — a row went missing"
                    ));
                }
            }
            let cache = uint(ltc, "cache_pages", ctx, errs);
            let evictions = uint(ltc, "evictions", ctx, errs);
            if let (Some(cache), Some(evictions)) = (cache, evictions) {
                if evictions <= cache {
                    errs.push(format!(
                        "{ctx}: only {evictions} evictions against a {cache}-page cache — \
                         the table cannot have exceeded the cache budget"
                    ));
                }
            }
            fin(ltc, "scan_secs", ctx, errs);
            if ltc.get("scan_verified").and_then(|v| v.as_bool()) != Some(true) {
                errs.push(format!("{ctx}: `scan_verified` must be true"));
            }
        }
        None => errs.push("store: missing `larger_than_cache` object".to_string()),
    }
}

/// The redundant-work gate — the measured claim that eliminating duplicate
/// analyses is worth an order of magnitude, enforced at the report boundary.
///
/// The workload is zipf-skewed: a few hot (fingerprint, user) keys dominate,
/// as repeat "show me the flare again" requests do in practice (§3.5 "avoid
/// redundant computation"). With coalescing and the versioned result store
/// off, every submit executes; with them on, duplicates attach to the
/// in-flight leader or hit the store. Over the report this requires:
///
/// * rows for both `coalesce_on` and `coalesce_off` under the same
///   `threads`/`rounds` shape;
/// * `summary.computes_on` < `summary.computes_off` — executions were
///   actually eliminated, not just moved;
/// * `summary.throughput_ratio` ≥ 5 — effective requests-per-second with
///   elimination on is at least 5x the execute-everything baseline.
pub fn check_pl(report: &serde_json::Value, errs: &mut Errors) {
    let mut saw_on = false;
    let mut saw_off = false;
    if let Some(rows) = section(report, "rows", "pl", errs) {
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("pl.rows[{i}]");
            match text(row, "mode", &ctx, errs) {
                Some("coalesce_on") => saw_on = true,
                Some("coalesce_off") => saw_off = true,
                Some(mode) => {
                    errs.push(format!("{ctx}: unknown mode {mode:?}"));
                    continue;
                }
                None => continue,
            }
            for key in ["threads", "rounds", "requests", "computes"] {
                if uint(row, key, &ctx, errs) == Some(0) {
                    errs.push(format!("{ctx}: zero `{key}`"));
                }
            }
            fin(row, "wall_ms", &ctx, errs);
            if let Some(rps) = fin(row, "effective_rps", &ctx, errs) {
                if rps < 0.0 {
                    errs.push(format!("{ctx}: negative effective_rps"));
                }
            }
        }
        if !(saw_on && saw_off) {
            errs.push(
                "pl: need rows for both coalesce_on and coalesce_off — the ratio \
                 is meaningless without its baseline"
                    .to_string(),
            );
        }
    }
    match report.get("summary").filter(|s| s.is_object()) {
        Some(summary) => {
            let ctx = "pl.summary";
            let on = uint(summary, "computes_on", ctx, errs);
            let off = uint(summary, "computes_off", ctx, errs);
            if let (Some(on), Some(off)) = (on, off) {
                if on >= off {
                    errs.push(format!(
                        "{ctx}: computes_on {on} not below computes_off {off} — \
                         no redundant executions were eliminated"
                    ));
                }
            }
            if let Some(ratio) = fin(summary, "throughput_ratio", ctx, errs) {
                if ratio < 5.0 {
                    errs.push(format!(
                        "{ctx}: throughput_ratio {ratio:.2} below 5 — single-flight \
                         plus the versioned store must beat execute-every-submit by \
                         at least 5x on a duplicate-heavy load"
                    ));
                }
            }
        }
        None => errs.push("pl: missing `summary` object".to_string()),
    }
}

/// Validate one parsed report against its bench name.
pub fn validate_report(name: &str, report: &serde_json::Value) -> Result<(), Errors> {
    let mut errs = Errors::new();
    if !report.is_object() {
        return Err(vec![format!("{name}: report is not a JSON object")]);
    }
    match report.get("bench").and_then(|b| b.as_str()) {
        Some(tag) if tag == name => {}
        Some(tag) => errs.push(format!("{name}: `bench` tag says {tag:?}")),
        None => errs.push(format!("{name}: missing `bench` tag")),
    }
    match name {
        "fig4_browse_clients" | "fig5_browse_nodes" => check_browse_rows(report, name, &mut errs),
        "fig5_shards" => check_fig5(report, &mut errs),
        "batch_bench" => check_batch_bench(report, &mut errs),
        "ingest" => check_ingest(report, &mut errs),
        "table1_processing" => check_table1(report, &mut errs),
        "store" => check_store(report, &mut errs),
        "pl" => check_pl(report, &mut errs),
        other => errs.push(format!(
            "unknown bench {other:?} — register its schema in hedc_bench::schema"
        )),
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Validate one `BENCH_<name>.json` file; the name comes from the filename.
pub fn validate_file(path: &Path) -> Result<String, Errors> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    let Some(name) = stem.strip_prefix("BENCH_") else {
        return Err(vec![format!(
            "{}: not a BENCH_*.json report",
            path.display()
        )]);
    };
    let raw = std::fs::read_to_string(path)
        .map_err(|e| vec![format!("{}: unreadable: {e}", path.display())])?;
    let report: serde_json::Value = serde_json::from_str(&raw)
        .map_err(|e| vec![format!("{}: bad JSON: {e}", path.display())])?;
    validate_report(name, &report).map(|()| name.to_string())
}

/// Validate every `BENCH_*.json` under `dir`; `required` names must all be
/// present. Returns a human-readable summary or the full error list.
pub fn validate_dir(dir: &Path, required: &[&str]) -> Result<String, Errors> {
    let mut errs = Errors::new();
    let mut seen: Vec<String> = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| vec![format!("{}: unreadable: {e}", dir.display())])?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in &paths {
        match validate_file(path) {
            Ok(name) => seen.push(name),
            Err(mut e) => errs.append(&mut e),
        }
    }
    for req in required {
        if !seen.iter().any(|s| s == req) {
            errs.push(format!(
                "{}: required report BENCH_{req}.json is missing",
                dir.display()
            ));
        }
    }
    if !errs.is_empty() {
        return Err(errs);
    }
    let mut summary = format!("{} report(s) valid:", seen.len());
    for name in &seen {
        let _ = write!(summary, " {name}");
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_row(mode: &str) -> serde_json::Value {
        serde_json::json!({
            "mode": mode,
            "clients": 16,
            "throughput_rps": 12.5,
            "latency_s": { "avg": 0.9, "p50": 0.8, "p95": 1.2, "p99": 1.6 },
        })
    }

    fn fig4_net_row(clients: u64, rps: f64, p99: f64, shed_rate: f64) -> serde_json::Value {
        serde_json::json!({
            "mode": "net",
            "clients": clients,
            "requests": (rps * 2.0) as u64,
            "throughput_rps": rps,
            "sheds": 10,
            "shed_rate": shed_rate,
            "latency_s": { "avg": p99 / 4.0, "p50": p99 / 8.0, "p95": p99 / 2.0, "p99": p99 },
        })
    }

    /// A fig4 report whose net sweep satisfies `check_fig4`.
    fn fig4_report(extra_rows: Vec<serde_json::Value>) -> serde_json::Value {
        let mut rows = vec![
            fig4_net_row(16, 1400.0, 0.030, 0.0),
            fig4_net_row(64, 2700.0, 0.150, 0.01),
            fig4_net_row(256, 2900.0, 0.500, 0.05),
        ];
        rows.extend(extra_rows);
        serde_json::json!({ "bench": "fig4_browse_clients", "rows": rows })
    }

    #[test]
    fn committed_reports_validate() {
        // The repo's own committed results must satisfy their schema.
        let dir = crate::results_dir();
        for name in [
            "fig4_browse_clients",
            "fig5_shards",
            "batch_bench",
            "ingest",
            "store",
            "pl",
        ] {
            let path = dir.join(format!("BENCH_{name}.json"));
            if path.exists() {
                validate_file(&path).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            }
        }
    }

    #[test]
    fn fig4_rows_validate_and_misordered_percentiles_fail() {
        let ok = fig4_report(vec![fig4_row("standard")]);
        validate_report("fig4_browse_clients", &ok).unwrap();

        let mut bad = ok.clone();
        bad["rows"][3]["latency_s"]["p95"] = serde_json::json!(9.0);
        let errs = validate_report("fig4_browse_clients", &bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("percentiles out of order")));
    }

    #[test]
    fn fig4_net_gate_catches_collapse_sheds_and_tails() {
        validate_report("fig4_browse_clients", &fig4_report(vec![])).unwrap();

        // Fewer than two net points cannot witness the scaling claim.
        let report =
            serde_json::json!({ "bench": "fig4_browse_clients", "rows": [fig4_row("standard")] });
        let errs = validate_report("fig4_browse_clients", &report).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("at least two points")),
            "{errs:?}"
        );

        // The Figure-4 cliff: throughput collapsing at high client counts.
        let report = fig4_report(vec![fig4_net_row(512, 700.0, 0.5, 0.05)]);
        let errs = validate_report("fig4_browse_clients", &report).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("collapsed below 65%")),
            "{errs:?}"
        );

        // Client counts must strictly increase.
        let report = fig4_report(vec![fig4_net_row(256, 2900.0, 0.5, 0.05)]);
        let errs = validate_report("fig4_browse_clients", &report).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("strictly increasing")),
            "{errs:?}"
        );

        // Accepted requests queueing into multi-second tails.
        let report = fig4_report(vec![fig4_net_row(512, 2900.0, 4.5, 0.05)]);
        let errs = validate_report("fig4_browse_clients", &report).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("exceeds 3s")), "{errs:?}");

        // Shedding most of the offered load is an outage.
        let report = fig4_report(vec![fig4_net_row(512, 2900.0, 0.5, 0.8)]);
        let errs = validate_report("fig4_browse_clients", &report).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("outage")), "{errs:?}");
    }

    #[test]
    fn attribution_rows_must_sum() {
        let mut row = fig4_row("attribution");
        row["sampled_traces"] = serde_json::json!(40);
        row["measured_root_us"] = serde_json::json!(1000);
        row["attributed_us"] = serde_json::json!(1000);
        row["coverage"] = serde_json::json!(1.0);
        row["breakdown_us"] =
            serde_json::json!({ "queue": 400, "pool": 100, "wire": 300, "execute": 200 });
        let report = fig4_report(vec![row]);
        validate_report("fig4_browse_clients", &report).unwrap();

        let mut bad = report.clone();
        bad["rows"][3]["breakdown_us"]["queue"] = serde_json::json!(1);
        let errs = validate_report("fig4_browse_clients", &bad).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("categories sum")),
            "{errs:?}"
        );

        let mut bad = report;
        bad["rows"][3]["coverage"] = serde_json::json!(0.5);
        let errs = validate_report("fig4_browse_clients", &bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("coverage")), "{errs:?}");
    }

    #[test]
    fn unknown_bench_and_wrong_tag_fail() {
        let v = serde_json::json!({ "bench": "mystery" });
        assert!(validate_report("mystery", &v).is_err());
        let v = serde_json::json!({ "bench": "ingest", "rows": [] });
        let errs = validate_report("fig4_browse_clients", &v).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("`bench` tag")));
    }

    #[test]
    fn ingest_unaccounted_units_fail() {
        let report = serde_json::json!({
            "bench": "ingest",
            "workload": { "units": 6, "photons": 100, "smoke": true },
            "scale": [{ "workers": 1, "secs": 1.0, "units_per_s": 6.0, "speedup": 1.0 }],
            "wal": [{ "group_commit": 1, "secs": 1.0, "units_per_s": 6.0 }],
            "crash_cycle": {
                "units": 6, "crash_unit": 3, "recovery_secs": 0.1, "resume_secs": 0.2,
                "skipped": 3, "resumed": 1, "ingested": 1,
            },
        });
        let errs = validate_report("ingest", &report).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unaccounted")), "{errs:?}");
    }

    fn store_report() -> serde_json::Value {
        let phase = |backend: &str, phase: &str| {
            serde_json::json!({
                "backend": backend,
                "phase": phase,
                "queries": 400,
                "throughput_rps": 5000.0,
                "latency_s": { "avg": 0.0002, "p50": 0.0001, "p95": 0.0004, "p99": 0.0008 },
            })
        };
        serde_json::json!({
            "bench": "store",
            "contention": [
                phase("memory", "idle"), phase("memory", "under_ingest"),
                phase("paged", "idle"), phase("paged", "under_ingest"),
            ],
            "contention_summary": { "memory_p99_ratio": 6.0, "paged_p99_ratio": 1.2 },
            "larger_than_cache": {
                "rows": 60_000, "page_size": 4096, "cache_pages": 64,
                "scan_rows": 60_000, "scan_secs": 0.5, "evictions": 9_000,
                "cache_misses": 9_100, "scan_verified": true,
            },
        })
    }

    #[test]
    fn store_report_validates_and_gates_the_p99_ratio() {
        validate_report("store", &store_report()).unwrap();

        // The tentpole claim is enforced: paged p99 under ingest > 2x idle
        // fails validation.
        let mut bad = store_report();
        bad["contention_summary"]["paged_p99_ratio"] = serde_json::json!(3.5);
        let errs = validate_report("store", &bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("within 2x")), "{errs:?}");

        // A lossy scan fails.
        let mut bad = store_report();
        bad["larger_than_cache"]["scan_rows"] = serde_json::json!(59_999);
        let errs = validate_report("store", &bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("went missing")), "{errs:?}");

        // A cache the table fit inside fails.
        let mut bad = store_report();
        bad["larger_than_cache"]["evictions"] = serde_json::json!(10);
        let errs = validate_report("store", &bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("cache budget")), "{errs:?}");
    }

    fn pl_report() -> serde_json::Value {
        let row = |mode: &str, computes: u64, wall_ms: f64, rps: f64| {
            serde_json::json!({
                "mode": mode,
                "threads": 32,
                "rounds": 8,
                "requests": 256,
                "computes": computes,
                "wall_ms": wall_ms,
                "effective_rps": rps,
            })
        };
        serde_json::json!({
            "bench": "pl",
            "rows": [
                row("coalesce_off", 256, 4000.0, 64.0),
                row("coalesce_on", 24, 480.0, 533.0),
            ],
            "summary": {
                "computes_on": 24,
                "computes_off": 256,
                "throughput_ratio": 8.3,
            },
        })
    }

    #[test]
    fn pl_report_validates_and_gates_the_ratio() {
        validate_report("pl", &pl_report()).unwrap();

        // The tentpole claim is enforced: a sub-5x ratio fails validation.
        let mut bad = pl_report();
        bad["summary"]["throughput_ratio"] = serde_json::json!(2.0);
        let errs = validate_report("pl", &bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("below 5")), "{errs:?}");

        // Coalescing that eliminated nothing fails.
        let mut bad = pl_report();
        bad["summary"]["computes_on"] = serde_json::json!(256);
        let errs = validate_report("pl", &bad).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("no redundant executions")),
            "{errs:?}"
        );

        // A baseline-less report cannot witness the ratio.
        let mut bad = pl_report();
        let on_only = bad["rows"][1].clone();
        bad["rows"] = serde_json::json!([on_only]);
        let errs = validate_report("pl", &bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("baseline")), "{errs:?}");
    }

    fn fig5_shards_row(shards: u64, rps: f64, returned: u64) -> serde_json::Value {
        serde_json::json!({
            "mode": "shards",
            "shards": shards,
            "replicas": 2,
            "clients": 1,
            "queries": 160,
            "rows_returned": returned,
            "fanout_avg": 1.0 + 0.4 / shards as f64,
            "throughput_rps": rps,
            "latency_s": { "avg": 0.004, "p50": 0.003, "p95": 0.009, "p99": 0.012 },
        })
    }

    fn fig5_shards_report(rows: Vec<serde_json::Value>) -> serde_json::Value {
        serde_json::json!({
            "bench": "fig5_shards",
            "rows": rows,
            "summary": { "dataset_rows": 24_000, "speedup_1_to_max": 2.5 },
        })
    }

    #[test]
    fn fig5_shards_gate_requires_a_real_speedup_on_identical_answers() {
        let ok = fig5_shards_report(vec![
            fig5_shards_row(1, 100.0, 50_000),
            fig5_shards_row(2, 170.0, 50_000),
            fig5_shards_row(4, 250.0, 50_000),
        ]);
        validate_report("fig5_shards", &ok).unwrap();

        // Scale-out that fails to pay fails the gate.
        let flat = fig5_shards_report(vec![
            fig5_shards_row(1, 100.0, 50_000),
            fig5_shards_row(4, 140.0, 50_000),
        ]);
        let errs = validate_report("fig5_shards", &flat).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("at least 1.6x")), "{errs:?}");

        // A smoke-flagged sweep is noise-tolerant (softer 1.2x bar) but
        // still cannot claim scaling that bought nothing.
        let mut smoke_ok = fig5_shards_report(vec![
            fig5_shards_row(1, 100.0, 50_000),
            fig5_shards_row(4, 140.0, 50_000),
        ]);
        smoke_ok["summary"]["smoke"] = serde_json::json!(true);
        validate_report("fig5_shards", &smoke_ok).unwrap();
        let mut smoke_flat = fig5_shards_report(vec![
            fig5_shards_row(1, 100.0, 50_000),
            fig5_shards_row(4, 110.0, 50_000),
        ]);
        smoke_flat["summary"]["smoke"] = serde_json::json!(true);
        let errs = validate_report("fig5_shards", &smoke_flat).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("smoke bar")), "{errs:?}");

        // A sweep that loses rows is measuring different answers.
        let lossy = fig5_shards_report(vec![
            fig5_shards_row(1, 100.0, 50_000),
            fig5_shards_row(4, 250.0, 49_999),
        ]);
        let errs = validate_report("fig5_shards", &lossy).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("lost rows")), "{errs:?}");

        // No baseline, no claim.
        let baseless = fig5_shards_report(vec![
            fig5_shards_row(2, 170.0, 50_000),
            fig5_shards_row(4, 250.0, 50_000),
        ]);
        let errs = validate_report("fig5_shards", &baseless).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("1-shard baseline")),
            "{errs:?}"
        );

        // One point cannot witness scaling; shard counts must rise.
        let single = fig5_shards_report(vec![fig5_shards_row(1, 100.0, 50_000)]);
        let errs = validate_report("fig5_shards", &single).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("at least two shard counts")),
            "{errs:?}"
        );
        let unordered = fig5_shards_report(vec![
            fig5_shards_row(1, 100.0, 50_000),
            fig5_shards_row(4, 250.0, 50_000),
            fig5_shards_row(2, 170.0, 50_000),
        ]);
        let errs = validate_report("fig5_shards", &unordered).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("strictly increasing")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_required_report_fails_dir_validation() {
        let dir = std::env::temp_dir().join(format!("hedc-schema-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_fig4_browse_clients.json"),
            fig4_report(vec![fig4_row("standard")]).to_string(),
        )
        .unwrap();
        validate_dir(&dir, &["fig4_browse_clients"]).unwrap();
        let errs = validate_dir(&dir, &["fig4_browse_clients", "ingest"]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("BENCH_ingest.json")),
            "{errs:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
