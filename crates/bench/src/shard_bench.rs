//! Scale-out browse: the same dataset and query mix measured at rising
//! shard counts, all in-process.
//!
//! The dataset is a fixed number of HLE rows range-sharded by `time_end`;
//! the workload is the archive's dominant browse pattern — "events in this
//! time window" — plus a periodic global top-k scatter. The single-shard
//! point *is* the unsharded baseline: the identical router/merge path with
//! a one-entry map, so the sweep isolates what partitioning buys rather
//! than comparing different code. On one core the win comes from
//! partition pruning: `time_end` has no index, so a window probe
//! full-scans every row its route touches, and a 4-way map routes it to
//! ~1/4 of the data. `fig5_browse_nodes --shards` records the sweep as
//! `results/BENCH_fig5_shards.json`, gated by
//! [`crate::schema::check_fig5`].

use hedc_dm::{
    schema, splitmix64, Clock, DmIo, DmNode, DmResult, IoConfig, Partitioning, Route, ShardMap,
    ShardedDm,
};
use hedc_filestore::FileStore;
use hedc_metadb::{Database, Expr, OrderDir, Query, QueryResult, Value};
use std::sync::Arc;
use std::time::Instant;

/// The `time_end` domain the rows are spread over, `[0, SPAN)`.
const SPAN: i64 = 100_000;
/// Window width of a browse probe: 1/20 of the domain, so at 4 shards a
/// probe lands inside one partition ~80% of the time.
const WINDOW: i64 = SPAN / 20;
const SEED: u64 = 0x5AAD_BE2C;

/// One shard-scaling sweep.
#[derive(Debug, Clone)]
pub struct ShardBenchConfig {
    /// Total HLE rows, identical at every shard count.
    pub rows: usize,
    /// Closed-loop probes per point.
    pub queries: usize,
    /// Shard counts to sweep (must include 1 for the baseline).
    pub shard_counts: Vec<usize>,
    /// Replica nodes per shard.
    pub replicas: usize,
    /// Every k-th probe is a global top-k scatter instead of a window.
    pub scatter_every: usize,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        if crate::smoke() {
            // Smoke still has to clear check_fig5's 1.6x gate: below ~2k
            // rows per shard the fanout-thread overhead of a 4-way scatter
            // on one core eats the pruning gain, so the smoke dataset stays
            // large enough that a window probe's scan cost dominates.
            ShardBenchConfig {
                rows: 10_000,
                queries: 64,
                shard_counts: vec![1, 2, 4],
                replicas: 2,
                scatter_every: 8,
            }
        } else {
            ShardBenchConfig {
                rows: 24_000,
                queries: 160,
                shard_counts: vec![1, 2, 4],
                replicas: 2,
                scatter_every: 8,
            }
        }
    }
}

/// Measured outcome of one shard count.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// Shard count of this point.
    pub shards: usize,
    /// Replica nodes per shard.
    pub replicas: usize,
    /// Probes measured.
    pub queries: usize,
    /// Total rows the probes returned (the workload invariant: identical
    /// at every shard count).
    pub rows_returned: u64,
    /// Mean shards touched per probe — the pruning evidence.
    pub fanout_avg: f64,
    /// Wall-clock seconds of the measured loop.
    pub secs: f64,
    /// Probes per second.
    pub throughput_rps: f64,
    /// Mean probe latency, seconds.
    pub avg_s: f64,
    /// Latency percentiles, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
}

fn store(label: &str) -> Arc<DmIo> {
    let db = Database::in_memory(label);
    {
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
    }
    Arc::new(DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(FileStore::new()),
        Clock::starting_at(0),
        &IoConfig::default(),
    ))
}

struct LocalNode {
    io: Arc<DmIo>,
    label: String,
}

impl DmNode for LocalNode {
    fn node_id(&self) -> String {
        self.label.clone()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.io.query(q)
    }
}

fn hle_row(id: i64, time_end: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Int(1),
        Value::Int(id % 64),
        Value::Timestamp(time_end - 5),
        Value::Timestamp(time_end),
        Value::Float(3.0),
        Value::Float(20_000.0),
        Value::Text("flare".into()),
        Value::Null,
        Value::Float((id % 101) as f64),
        Value::Null,
        Value::Int((id * 13) % 997),
        Value::Int(1),
        Value::Int(1),
        Value::Bool(true),
        Value::Null,
        Value::Null,
        Value::Timestamp(time_end - 5),
        Value::Text("user".into()),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Int(0),
        Value::Bool(false),
    ]
}

/// The seeded probe stream: index `i` yields the same query at every
/// shard count, so the points measure identical work.
fn probe(i: usize, scatter_every: usize, state: &mut u64) -> Query {
    if scatter_every != 0 && i % scatter_every == 0 {
        // Global top-k: which events had the most photons, archive-wide.
        Query::table("hle")
            .select(&["id", "n_photons", "time_end"])
            .order_by("n_photons", OrderDir::Desc)
            .order_by("id", OrderDir::Asc)
            .limit(10)
    } else {
        let lo = (splitmix64(state) % (SPAN - WINDOW) as u64) as i64;
        Query::table("hle")
            .select(&["id", "time_end", "n_photons"])
            .filter(Expr::between("time_end", lo, lo + WINDOW))
            .order_by("id", OrderDir::Asc)
    }
}

/// How many shards a probe's route touches under `map`.
fn route_width(map: &ShardMap, q: &Query, shards: usize) -> usize {
    match map.route(q) {
        Route::Single(_) => 1,
        Route::Fanout(parts) => parts.len(),
        Route::Replicated => shards,
    }
}

/// Run one point of the sweep.
pub fn run_shard_point(config: &ShardBenchConfig, shards: usize) -> ShardPoint {
    let map = ShardMap::new(shards as u32).with_even_range("hle", "time_end", 0, SPAN);
    let stores: Vec<Arc<DmIo>> = (0..shards).map(|s| store(&format!("shard-{s}"))).collect();
    let mut state = SEED;
    for id in 0..config.rows as i64 {
        let time_end = (splitmix64(&mut state) % SPAN as u64) as i64;
        let owner = map.shard_for("hle", time_end).expect("hle is sharded");
        stores[owner as usize]
            .insert("hle", hle_row(id, time_end))
            .unwrap();
    }
    let replica_sets: Vec<Vec<Arc<dyn DmNode>>> = stores
        .iter()
        .enumerate()
        .map(|(s, io)| {
            (0..config.replicas)
                .map(|r| {
                    Arc::new(LocalNode {
                        io: Arc::clone(io),
                        label: format!("shard-{s}-r{r}"),
                    }) as Arc<dyn DmNode>
                })
                .collect()
        })
        .collect();
    let sharded = ShardedDm::new(replica_sets, map);

    // Warmup: a couple of probes outside the measured window.
    let mut warm_state = SEED ^ 0x9E37;
    for i in 0..4 {
        let q = probe(i + 1, 0, &mut warm_state);
        sharded.query(&q).unwrap();
    }

    let mut probe_state = SEED;
    let mut latencies = Vec::with_capacity(config.queries);
    let mut rows_returned = 0u64;
    let mut fanout_sum = 0usize;
    let started = Instant::now();
    for i in 0..config.queries {
        let q = probe(i, config.scatter_every, &mut probe_state);
        fanout_sum += route_width(&sharded.map(), &q, shards);
        let t = Instant::now();
        let r = sharded.query(&q).expect("probe");
        latencies.push(t.elapsed().as_secs_f64());
        rows_returned += r.rows.len() as u64;
    }
    let secs = started.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    ShardPoint {
        shards,
        replicas: config.replicas,
        queries: config.queries,
        rows_returned,
        fanout_avg: fanout_sum as f64 / config.queries as f64,
        secs,
        throughput_rps: config.queries as f64 / secs,
        avg_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_s: pct(0.50),
        p95_s: pct(0.95),
        p99_s: pct(0.99),
    }
}

/// Run the whole sweep. Panics if any point returns a different row total
/// than the baseline — a sharded answer that lost rows is not a faster
/// answer.
pub fn run_shard_bench(config: &ShardBenchConfig) -> Vec<ShardPoint> {
    let points: Vec<ShardPoint> = config
        .shard_counts
        .iter()
        .map(|&s| run_shard_point(config, s))
        .collect();
    if let Some(base) = points.first() {
        for p in &points {
            assert_eq!(
                p.rows_returned, base.rows_returned,
                "{} shards returned {} rows, baseline returned {} — the sweep \
                 must measure identical answers",
                p.shards, p.rows_returned, base.rows_returned
            );
        }
    }
    points
}
