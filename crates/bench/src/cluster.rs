//! Real-network cluster harness: boot N loopback DM servers and drive
//! browse traffic through `DmRouter` over `NetDm`.
//!
//! This is the measured counterpart of the §7.3 simulation: the same
//! router/redirection architecture, but every query crosses a real socket
//! through the `hedc-net` wire protocol. `fig5_browse_nodes --net` runs it
//! alongside the simulated Figure 5 so `results/BENCH_*.json` carries both
//! a modeled and a measured throughput row per node count.

use hedc_core::HedcConfig;
use hedc_dm::{Dm, DmConfig, DmNode, DmRouter};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{AggFunc, Expr, Query};
use hedc_net::{AdmissionConfig, DmServer, NetConfig, NetDm, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Map the deployment-level `HedcConfig` admission knobs onto the net
/// tier's [`ServerConfig`]. This is the one place the two meet: `hedc-core`
/// must not depend on `hedc-net`, so harnesses (and a real deployment
/// binary) do the translation here.
pub fn server_config_from(config: &HedcConfig) -> ServerConfig {
    ServerConfig {
        admission: AdmissionConfig {
            max_connections: config.net_max_connections,
            workers: config.net_workers,
            queue_depth: config.net_queue_depth,
            queue_deadline: config.net_queue_deadline(),
            read_deadline: config.net_read_deadline(),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// One real-network cluster run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Middle-tier DM server count.
    pub nodes: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Measurement window.
    pub measure: Duration,
    /// Database queries per browse request (the paper's request costs
    /// seven, §7.2).
    pub queries_per_request: usize,
}

impl ClusterConfig {
    /// The Figure-5 shape: 96 clients, 7 queries per request.
    pub fn fig5(nodes: usize, measure: Duration) -> Self {
        ClusterConfig {
            nodes,
            clients: 96,
            measure,
            queries_per_request: 7,
        }
    }
}

/// Measured outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Node count.
    pub nodes: usize,
    /// Client thread count.
    pub clients: usize,
    /// Completed browse requests.
    pub requests: u64,
    /// Browse requests per second.
    pub requests_per_second: f64,
    /// Mean request latency, seconds.
    pub avg_response_s: f64,
    /// Median request latency, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_response_s: f64,
    /// 99th-percentile request latency, seconds.
    pub p99_response_s: f64,
    /// Client-side bytes sent during the run.
    pub bytes_out: u64,
    /// Client-side bytes received during the run.
    pub bytes_in: u64,
}

pub(crate) fn dm_node(i: usize) -> Arc<Dm> {
    let fs = FileStore::new();
    fs.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    fs.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    let dm = Dm::bootstrap(Arc::new(fs), DmConfig::default())
        .unwrap_or_else(|e| panic!("bootstrap cluster node {i}: {e}"));
    // A few public HLEs so the browse aggregate has rows to chew on.
    let session = dm.import_session();
    let svc = dm.services();
    for k in 0..16u64 {
        let id = svc
            .create_hle(
                &session,
                &hedc_dm::HleSpec::window(k * 100, k * 100 + 50, "flare"),
            )
            .expect("seed hle");
        svc.publish(&session, "hle", id).expect("publish hle");
    }
    dm
}

/// The browse query mix: one request = `queries_per_request` DB queries,
/// alternating a catalog scan with an indexed HLE count — read-only, like
/// the §7.2 browse session.
pub(crate) fn browse_queries(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                Query::table("catalog").filter(Expr::eq("public", true))
            } else {
                Query::table("hle")
                    .filter(Expr::eq("public", true))
                    .aggregate(AggFunc::CountStar)
            }
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Boot the cluster, run the closed-loop workload, tear everything down.
pub fn run_cluster(config: &ClusterConfig) -> ClusterRunResult {
    assert!(config.nodes > 0 && config.clients > 0);
    let servers: Vec<DmServer> = (0..config.nodes)
        .map(|i| {
            DmServer::bind("127.0.0.1:0", dm_node(i), ServerConfig::default())
                .expect("bind loopback DM server")
        })
        .collect();
    let remotes: Vec<Arc<dyn DmNode>> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Arc::new(NetDm::connect(
                s.local_addr(),
                format!("net-dm-{i}"),
                NetConfig::default(),
            )) as Arc<dyn DmNode>
        })
        .collect();
    let router = Arc::new(DmRouter::new(remotes));

    let obs = hedc_obs::global();
    let bytes_out_before = obs.counter("net.client.bytes_out").get();
    let bytes_in_before = obs.counter("net.client.bytes_in").get();

    let queries = Arc::new(browse_queries(config.queries_per_request));
    let deadline = Instant::now() + config.measure;
    let started = Instant::now();
    let workers: Vec<_> = (0..config.clients)
        .map(|_| {
            let router = Arc::clone(&router);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    let mut ok = true;
                    for q in queries.iter() {
                        if router.execute_query(q).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        latencies.push(t0.elapsed().as_secs_f64());
                    }
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<f64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    drop(router);
    for mut s in servers {
        s.shutdown();
    }

    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies.len() as u64;
    let avg = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    ClusterRunResult {
        nodes: config.nodes,
        clients: config.clients,
        requests,
        requests_per_second: requests as f64 / elapsed.max(f64::EPSILON),
        avg_response_s: avg,
        p50_response_s: percentile(&latencies, 0.50),
        p95_response_s: percentile(&latencies, 0.95),
        p99_response_s: percentile(&latencies, 0.99),
        bytes_out: obs.counter("net.client.bytes_out").get() - bytes_out_before,
        bytes_in: obs.counter("net.client.bytes_in").get() - bytes_in_before,
    }
}

/// One point of the net-tier Figure-4 sweep: N closed-loop clients against
/// a *single* admission-controlled server.
#[derive(Debug, Clone)]
pub struct NetClientsResult {
    /// Concurrent client threads.
    pub clients: usize,
    /// Browse requests completed successfully.
    pub requests: u64,
    /// Completed requests per second.
    pub requests_per_second: f64,
    /// Mean request latency, seconds.
    pub avg_response_s: f64,
    /// Median request latency, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_response_s: f64,
    /// 99th-percentile request latency, seconds.
    pub p99_response_s: f64,
    /// Server-side admission sheds during the window (queue full +
    /// queue deadline + per-connection in-flight cap).
    pub sheds: u64,
    /// `sheds / (requests + sheds)` — the fraction of offered work the
    /// server refused instead of queueing into collapse.
    pub shed_rate: f64,
    /// Client-side retries that absorbed a shed before it surfaced.
    pub overload_retries: u64,
}

fn shed_total() -> u64 {
    let obs = hedc_obs::global();
    obs.counter("net.server.shed.queue_full").get()
        + obs.counter("net.server.shed.deadline").get()
        + obs.counter("net.server.shed.inflight").get()
}

/// The measured Figure-4 counterpart: instead of the paper's collapsing
/// middle tier (16 req/s at 16 clients down to 3 at 96), the event-driven
/// server holds throughput flat past saturation by shedding excess load.
/// One point per call; the harness sweeps the client counts.
pub fn run_fig4_net(clients: usize, measure: Duration, hedc: &HedcConfig) -> NetClientsResult {
    assert!(clients > 0);
    let mut server = DmServer::bind("127.0.0.1:0", dm_node(0), server_config_from(hedc))
        .expect("bind loopback DM server");
    // Scale the connection pool with the client count so the sweep
    // exercises multiplexing (many threads per socket) at every point.
    let net_config = NetConfig {
        pool_size: (clients / 8).clamp(4, 64),
        ..NetConfig::default()
    };
    let client = Arc::new(NetDm::connect(server.local_addr(), "fig4-net", net_config));

    let obs = hedc_obs::global();
    let sheds_before = shed_total();
    let retries_before = obs.counter("net.client.overload_retries").get();

    let queries = Arc::new(browse_queries(2));
    let deadline = Instant::now() + measure;
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let client = Arc::clone(&client);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    // A shed that survives the client's retries surfaces
                    // as an error here; the request simply doesn't count.
                    if queries.iter().all(|q| client.execute_query(q).is_ok()) {
                        latencies.push(t0.elapsed().as_secs_f64());
                    }
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<f64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    drop(client);
    server.shutdown();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies.len() as u64;
    let sheds = shed_total().saturating_sub(sheds_before);
    let avg = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    NetClientsResult {
        clients,
        requests,
        requests_per_second: requests as f64 / elapsed.max(f64::EPSILON),
        avg_response_s: avg,
        p50_response_s: percentile(&latencies, 0.50),
        p95_response_s: percentile(&latencies, 0.95),
        p99_response_s: percentile(&latencies, 0.99),
        sheds,
        shed_rate: sheds as f64 / (requests + sheds).max(1) as f64,
        overload_retries: obs
            .counter("net.client.overload_retries")
            .get()
            .saturating_sub(retries_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: a 2-node loopback cluster serves real traffic.
    #[test]
    fn two_node_cluster_serves_browse_traffic() {
        let result = run_cluster(&ClusterConfig {
            nodes: 2,
            clients: 4,
            measure: Duration::from_millis(300),
            queries_per_request: 7,
        });
        assert!(result.requests > 0, "{result:?}");
        assert!(result.requests_per_second > 0.0);
        assert!(result.bytes_out > 0 && result.bytes_in > 0);
        assert!(result.p50_response_s <= result.p99_response_s);
    }

    /// The deployment config's admission knobs land on the server config.
    #[test]
    fn server_config_translates_admission_knobs() {
        let hedc = HedcConfig {
            net_max_connections: 7,
            net_workers: 3,
            net_queue_depth: 9,
            net_queue_deadline_ms: 111,
            net_read_deadline_ms: 222,
            ..HedcConfig::default()
        };
        let sc = server_config_from(&hedc);
        assert_eq!(sc.admission.max_connections, 7);
        assert_eq!(sc.admission.workers, 3);
        assert_eq!(sc.admission.queue_depth, 9);
        assert_eq!(sc.admission.queue_deadline, Duration::from_millis(111));
        assert_eq!(sc.admission.read_deadline, Duration::from_millis(222));
    }

    /// Smoke: one net-tier Figure-4 point produces a coherent row.
    #[test]
    fn fig4_net_point_reports_admission_outcome() {
        let r = run_fig4_net(4, Duration::from_millis(300), &HedcConfig::default());
        assert!(r.requests > 0, "{r:?}");
        assert!(r.requests_per_second > 0.0);
        assert!((0.0..=1.0).contains(&r.shed_rate), "{r:?}");
        assert!(r.p50_response_s <= r.p99_response_s);
    }
}
