//! Attribution runs: the measured browse workload driven over the real
//! loopback stack with a root span per request, decomposed by the obs
//! critical-path analyzer into queue / pool / wire / execute self time.
//!
//! This is the `--attribution` mode behind `fig4_browse_clients` and
//! `ingest_bench`: instead of only reporting end-to-end latency, the run
//! samples traces, partitions each root's wall clock across the tiers that
//! actually spent it, and emits the aggregate (plus the slowest individual
//! traces) into the `BENCH_*.json` report. A calibration window sets the
//! flight-recorder pin threshold to the observed p95 so the run's genuine
//! tail pins itself for post-hoc inspection via `/hedc/trace/<id>`.

use crate::cluster::{browse_queries, dm_node};
use hedc_dm::{DmNode, DmRouter};
use hedc_net::{DmServer, NetConfig, NetDm, ServerConfig};
use hedc_obs::{Breakdown, Category};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many slowest per-trace breakdowns the aggregate retains.
const SLOWEST_KEPT: usize = 4;

/// One attribution run's shape.
#[derive(Debug, Clone, Copy)]
pub struct AttributionConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Measured (traced) window.
    pub measure: Duration,
    /// Untraced warm-up window used to calibrate the pin threshold.
    pub calibrate: Duration,
    /// Database queries per browse request (the paper's seven, §7.2).
    pub queries_per_request: usize,
    /// Analyze every Nth traced request per client (every request is
    /// traced and eligible to pin; analysis is the sampled part).
    pub sample_every: usize,
}

impl AttributionConfig {
    /// The fig4 shape at a given client count.
    pub fn fig4(clients: usize, measure: Duration) -> AttributionConfig {
        let calibrate = (measure / 4).clamp(Duration::from_millis(200), Duration::from_secs(2));
        AttributionConfig {
            clients,
            measure,
            calibrate,
            queries_per_request: 7,
            sample_every: 8,
        }
    }
}

/// Aggregated self time across a set of analyzed traces.
#[derive(Debug, Clone, Default)]
pub struct AttributionTotals {
    /// Analyzed trace count.
    pub traces: u64,
    /// Sum of analyzed root durations, microseconds.
    pub measured_root_us: u64,
    /// Sum of attributed (partitioned) time, microseconds.
    pub attributed_us: u64,
    /// Self time per category label ("queue", "pool", "wire", "execute").
    pub by_category_us: BTreeMap<&'static str, u64>,
    /// Self time per (tier, category label).
    pub by_tier_us: BTreeMap<(String, &'static str), u64>,
    /// Traces whose breakdown referenced evicted parents.
    pub orphaned_spans: u64,
    /// Slowest analyzed traces, slowest first, at most [`SLOWEST_KEPT`].
    pub slowest: Vec<Breakdown>,
}

impl AttributionTotals {
    /// Fold one analyzed trace in.
    pub fn add(&mut self, b: Breakdown) {
        self.traces += 1;
        self.measured_root_us += b.root_us;
        self.attributed_us += b.attributed_us();
        for c in Category::ALL {
            *self.by_category_us.entry(c.label()).or_insert(0) += b.category_us(c);
        }
        for t in &b.by_tier {
            *self
                .by_tier_us
                .entry((t.tier.clone(), t.category.label()))
                .or_insert(0) += t.self_us;
        }
        self.orphaned_spans += b.orphans as u64;
        let pos = self
            .slowest
            .iter()
            .position(|s| s.root_us < b.root_us)
            .unwrap_or(self.slowest.len());
        if pos < SLOWEST_KEPT {
            self.slowest.insert(pos, b);
            self.slowest.truncate(SLOWEST_KEPT);
        }
    }

    /// Merge another accumulator (per-thread fold-in).
    pub fn merge(&mut self, other: AttributionTotals) {
        self.traces += other.traces;
        self.measured_root_us += other.measured_root_us;
        self.attributed_us += other.attributed_us;
        for (k, v) in other.by_category_us {
            *self.by_category_us.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.by_tier_us {
            *self.by_tier_us.entry(k).or_insert(0) += v;
        }
        self.orphaned_spans += other.orphaned_spans;
        for b in other.slowest {
            let pos = self
                .slowest
                .iter()
                .position(|s| s.root_us < b.root_us)
                .unwrap_or(self.slowest.len());
            if pos < SLOWEST_KEPT {
                self.slowest.insert(pos, b);
                self.slowest.truncate(SLOWEST_KEPT);
            }
        }
    }

    /// Attributed share of measured root time (1.0 = exact partition).
    pub fn coverage(&self) -> f64 {
        if self.measured_root_us == 0 {
            return 0.0;
        }
        self.attributed_us as f64 / self.measured_root_us as f64
    }

    /// The `breakdown_us` object for a BENCH row.
    pub fn breakdown_json(&self) -> serde_json::Value {
        let mut obj = serde_json::Map::new();
        for c in Category::ALL {
            obj.insert(
                c.label().to_string(),
                serde_json::json!(self.by_category_us.get(c.label()).copied().unwrap_or(0)),
            );
        }
        serde_json::Value::Object(obj)
    }

    /// The per-tier rollup as a JSON array, largest first.
    pub fn tiers_json(&self) -> serde_json::Value {
        let mut tiers: Vec<(&(String, &'static str), &u64)> = self.by_tier_us.iter().collect();
        tiers.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        serde_json::Value::Array(
            tiers
                .into_iter()
                .map(|((tier, category), us)| {
                    serde_json::json!({ "tier": tier, "category": category, "self_us": us })
                })
                .collect(),
        )
    }
}

/// Verification that the slowest retained trace is servable over the thin
/// web tier.
#[derive(Debug, Clone)]
pub struct TracePageCheck {
    /// Trace the check fetched.
    pub trace_id: u64,
    /// HTTP status of `GET /hedc/trace/<id>`.
    pub status: u16,
    /// Whether the page rendered (status 200 and a non-empty body).
    pub ok: bool,
}

/// One measured browse attribution run.
#[derive(Debug, Clone)]
pub struct BrowseAttribution {
    /// Client thread count.
    pub clients: usize,
    /// Completed browse requests in the measured window.
    pub requests: u64,
    /// Browse requests per second.
    pub requests_per_second: f64,
    /// Mean request latency, seconds.
    pub avg_response_s: f64,
    /// Median request latency, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_response_s: f64,
    /// 99th-percentile request latency, seconds.
    pub p99_response_s: f64,
    /// Pin threshold the calibration window chose, microseconds.
    pub pin_threshold_us: u64,
    /// Traces pinned during the measured window.
    pub pinned: usize,
    /// The sampled-trace aggregate.
    pub totals: AttributionTotals,
    /// `/hedc/trace/<id>` round-trip for the slowest retained trace.
    pub trace_page: Option<TracePageCheck>,
}

impl BrowseAttribution {
    /// The mode-tagged BENCH row for `results/BENCH_fig4_browse_clients.json`.
    pub fn to_row(&self) -> serde_json::Value {
        serde_json::json!({
            "mode": "attribution",
            "clients": self.clients,
            "throughput_rps": self.requests_per_second,
            "latency_s": {
                "avg": self.avg_response_s,
                "p50": self.p50_response_s,
                "p95": self.p95_response_s,
                "p99": self.p99_response_s,
            },
            "sampled_traces": self.totals.traces,
            "measured_root_us": self.totals.measured_root_us,
            "attributed_us": self.totals.attributed_us,
            "coverage": self.totals.coverage(),
            "breakdown_us": self.totals.breakdown_json(),
        })
    }

    /// The report's `attribution` section: tiers, slowest traces, pin state.
    pub fn to_section(&self) -> serde_json::Value {
        let slowest: Vec<serde_json::Value> = self
            .totals
            .slowest
            .iter()
            .map(|b| {
                serde_json::from_str(&b.to_json())
                    .unwrap_or_else(|_| serde_json::json!({ "trace_id": b.trace_id }))
            })
            .collect();
        serde_json::json!({
            "pin_threshold_us": self.pin_threshold_us,
            "pinned": self.pinned,
            "orphaned_spans": self.totals.orphaned_spans,
            "tiers": self.totals.tiers_json(),
            "slowest": slowest,
            "trace_page": self.trace_page.as_ref().map(|t| serde_json::json!({
                "trace_id": t.trace_id,
                "status": t.status,
                "ok": t.ok,
            })),
        })
    }
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive the closed browse loop until `deadline`; every request optionally
/// runs under a root span, and every `sample_every`th traced request is
/// analyzed inline (while its spans are hot in the store).
fn browse_loop(
    router: &DmRouter,
    queries: &[hedc_metadb::Query],
    deadline: Instant,
    trace: bool,
    sample_every: usize,
) -> (Vec<u64>, AttributionTotals) {
    let mut latencies_us = Vec::new();
    let mut totals = AttributionTotals::default();
    let mut n = 0usize;
    while Instant::now() < deadline {
        let root = trace.then(|| hedc_obs::Span::root("browse.request"));
        let trace_id = root.as_ref().map(|r| r.context().trace_id);
        let t0 = Instant::now();
        let mut ok = true;
        for q in queries {
            if router.execute_query(q).is_err() {
                ok = false;
                break;
            }
        }
        let elapsed = t0.elapsed();
        drop(root); // finishes into the span store + flight recorder
        if !ok {
            continue;
        }
        latencies_us.push(elapsed.as_micros() as u64);
        n += 1;
        if let Some(id) = trace_id {
            if n % sample_every.max(1) == 0 {
                if let Some(b) = hedc_obs::analyze_trace(id) {
                    totals.add(b);
                }
            }
        }
    }
    (latencies_us, totals)
}

/// Boot a one-node loopback stack, calibrate the pin threshold, run the
/// traced browse workload, and aggregate the sampled critical-path
/// breakdowns.
pub fn run_browse_attribution(config: &AttributionConfig) -> BrowseAttribution {
    assert!(config.clients > 0);
    let recorder = hedc_obs::recorder();
    recorder.drain_pinned();
    recorder.clear();

    let dm = dm_node(0);
    let node: Arc<dyn DmNode> = dm.clone();
    let mut server = DmServer::bind("127.0.0.1:0", node, ServerConfig::default())
        .expect("bind loopback DM server");
    let remote: Arc<dyn DmNode> = Arc::new(NetDm::connect(
        server.local_addr(),
        "net-dm-attr".to_string(),
        NetConfig::default(),
    ));
    let router = Arc::new(DmRouter::new(vec![remote]));
    let queries = Arc::new(browse_queries(config.queries_per_request));

    // Calibration: untraced, nothing pins; the p95 becomes the threshold so
    // the measured window pins its genuine tail.
    recorder.set_pin_threshold_us(u64::MAX);
    let calibrated = {
        let deadline = Instant::now() + config.calibrate;
        let workers: Vec<_> = (0..config.clients)
            .map(|_| {
                let router = Arc::clone(&router);
                let queries = Arc::clone(&queries);
                std::thread::spawn(move || browse_loop(&router, &queries, deadline, false, 1).0)
            })
            .collect();
        let mut all: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("calibration thread"))
            .collect();
        all.sort_unstable();
        percentile_us(&all, 0.95).max(1)
    };
    recorder.set_pin_threshold_us(calibrated);

    // Measured window: every request traced, every Nth analyzed.
    let deadline = Instant::now() + config.measure;
    let started = Instant::now();
    let workers: Vec<_> = (0..config.clients)
        .map(|_| {
            let router = Arc::clone(&router);
            let queries = Arc::clone(&queries);
            let sample_every = config.sample_every;
            std::thread::spawn(move || browse_loop(&router, &queries, deadline, true, sample_every))
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut totals = AttributionTotals::default();
    for w in workers {
        let (lat, t) = w.join().expect("attribution client thread");
        latencies_us.extend(lat);
        totals.merge(t);
    }
    let elapsed = started.elapsed().as_secs_f64();
    drop(router);
    server.shutdown();

    latencies_us.sort_unstable();
    let requests = latencies_us.len() as u64;
    let avg_us = if latencies_us.is_empty() {
        0.0
    } else {
        latencies_us.iter().sum::<u64>() as f64 / latencies_us.len() as f64
    };

    // The slowest retained trace must be servable end to end.
    let trace_page = recorder.slowest(1).first().map(|slow| {
        let web = hedc_web::WebServer::new(dm, None);
        let path = format!("/hedc/trace/{}", slow.trace_id);
        let resp = web.handle(&hedc_web::HttpRequest::get(&path, "bench"));
        TracePageCheck {
            trace_id: slow.trace_id,
            status: resp.status,
            ok: resp.status == 200 && !resp.body.is_empty(),
        }
    });

    BrowseAttribution {
        clients: config.clients,
        requests,
        requests_per_second: requests as f64 / elapsed.max(f64::EPSILON),
        avg_response_s: avg_us / 1e6,
        p50_response_s: percentile_us(&latencies_us, 0.50) as f64 / 1e6,
        p95_response_s: percentile_us(&latencies_us, 0.95) as f64 / 1e6,
        p99_response_s: percentile_us(&latencies_us, 0.99) as f64 / 1e6,
        pin_threshold_us: calibrated,
        pinned: recorder.depths().1,
        totals,
        trace_page,
    }
}

/// Aggregate whatever `root_name` traces the flight recorder still retains
/// (recent ring plus pins) — the ingest bench's attribution path, where the
/// pipeline mints its own `ingest.unit` roots.
pub fn analyze_retained_roots(root_name: &str) -> AttributionTotals {
    let recorder = hedc_obs::recorder();
    let mut totals = AttributionTotals::default();
    let mut seen = std::collections::HashSet::new();
    let mut records = recorder.pinned();
    records.extend(recorder.recent(usize::MAX));
    for record in records {
        if record.root_name != root_name || !seen.insert(record.trace_id) {
            continue;
        }
        if let Some(b) = hedc_obs::analyze_trace(record.trace_id) {
            totals.add(b);
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short attribution run over the real loopback stack must attribute
    /// nearly all measured root time and retain a servable slowest trace.
    #[test]
    fn attribution_partitions_browse_latency() {
        let run = run_browse_attribution(&AttributionConfig {
            clients: 4,
            measure: Duration::from_millis(400),
            calibrate: Duration::from_millis(150),
            queries_per_request: 7,
            sample_every: 2,
        });
        assert!(run.requests > 0, "{run:?}");
        assert!(run.totals.traces > 0, "sampling must analyze something");
        let cov = run.totals.coverage();
        assert!(
            (0.9..=1.1).contains(&cov),
            "breakdown must sum to within 10% of measured root time, got {cov} ({run:?})"
        );
        let wire_plus_execute = run.totals.by_category_us.get("wire").copied().unwrap_or(0)
            + run
                .totals
                .by_category_us
                .get("execute")
                .copied()
                .unwrap_or(0);
        assert!(
            wire_plus_execute > 0,
            "browse time must land somewhere real"
        );
        let check = run.trace_page.expect("a slowest trace must be retained");
        assert!(
            check.ok,
            "GET /hedc/trace/{} returned {}",
            check.trace_id, check.status
        );
        assert!(!run.totals.slowest.is_empty());
        assert!(run.totals.slowest[0].root_us >= run.totals.slowest.last().unwrap().root_us);
    }

    #[test]
    fn totals_merge_keeps_slowest_sorted() {
        let mk = |trace_id, root_us| Breakdown {
            trace_id,
            root_name: "browse.request".into(),
            root_us,
            by_category: Category::ALL.iter().map(|&c| (c, 0)).collect(),
            by_tier: Vec::new(),
            waterfall: Vec::new(),
            orphans: 0,
        };
        let mut a = AttributionTotals::default();
        for (id, us) in [(1, 50), (2, 300), (3, 100)] {
            a.add(mk(id, us));
        }
        let mut b = AttributionTotals::default();
        for (id, us) in [(4, 200), (5, 700), (6, 10)] {
            b.add(mk(id, us));
        }
        a.merge(b);
        let ids: Vec<u64> = a.slowest.iter().map(|s| s.trace_id).collect();
        assert_eq!(ids, vec![5, 2, 4, 3]);
        assert_eq!(a.traces, 6);
        assert_eq!(a.measured_root_us, 1360);
    }
}
