//! Ablation A4 (§5.3): connection pooling on versus off. "Creating
//! database connections and user sessions are the two most expensive parts
//! of request processing" — here connection setup is modeled at 200 µs
//! (network round trip + authentication on 2002 hardware it was
//! milliseconds) and the browse query mix runs both ways.

use criterion::{criterion_group, criterion_main, Criterion};
use hedc_metadb::{ColumnDef, ConnectionPool, DataType, Database, Expr, Query, Schema, Value};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn seeded_db() -> Arc<Database> {
    let db = Database::in_memory("pool-bench");
    let mut conn = db.connect();
    conn.create_table(
        Schema::new(
            "hle",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("t0", DataType::Timestamp).not_null(),
                ColumnDef::new("label", DataType::Text),
            ],
        )
        .primary_key(&["id"]),
    )
    .unwrap();
    conn.create_index("hle", "hle_t0", &["t0"], false).unwrap();
    for i in 0..20_000i64 {
        conn.insert(
            "hle",
            vec![
                Value::Int(i),
                Value::Int(i * 40),
                Value::Text(format!("e{i}")),
            ],
        )
        .unwrap();
    }
    db
}

const CREATION_COST: Duration = Duration::from_micros(200);

fn browse_query(conn: &hedc_metadb::Connection, i: i64) {
    let q = Query::table("hle")
        .filter(Expr::between("t0", i * 40, i * 40 + 4000))
        .limit(50);
    black_box(conn.query(&q).unwrap());
}

fn bench_pooling(c: &mut Criterion) {
    let db = seeded_db();
    let mut group = c.benchmark_group("A4_connection_pooling");

    // Pooled: connections reused, creation cost amortized away.
    let pool = ConnectionPool::new(Arc::clone(&db), 8, CREATION_COST);
    let mut i = 0i64;
    group.bench_function("pooled", |b| {
        b.iter(|| {
            let conn = pool.acquire();
            i = (i + 1) % 19_000;
            browse_query(&conn, i);
        })
    });

    // Unpooled: every request pays the creation cost (the pre-§5.3 world).
    let mut j = 0i64;
    group.bench_function("fresh_connection", |b| {
        b.iter(|| {
            std::thread::sleep(CREATION_COST); // the setup cost a pool avoids
            let conn = db.connect();
            j = (j + 1) % 19_000;
            browse_query(&conn, j);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pooling);
criterion_main!(benches);
