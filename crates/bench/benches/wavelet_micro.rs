//! Ablation A7: wavelet codec throughput — the load-time preprocessing
//! cost (§3.4 says views are built "when the data is loaded", so encode
//! speed bounds ingest) and the client-side decode speed that makes the
//! StreamCorder interactive (§6.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hedc_wavelet::{analyze, decode_prefix, encode_signal, synthesize, PartitionedView};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (t / 300.0).sin() * 50.0
                + (t / 17.0).cos() * 4.0
                + if i % 1009 == 0 { 800.0 } else { 0.0 }
        })
        .collect()
}

fn bench_wavelet(c: &mut Criterion) {
    let mut group = c.benchmark_group("A7_wavelet_micro");
    for &n in &[4096usize, 65_536, 524_288] {
        let s = signal(n);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("transform", n), &n, |b, _| {
            b.iter(|| black_box(analyze(&s)))
        });

        let dec = analyze(&s);
        group.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter(|| black_box(synthesize(&dec, usize::MAX)))
        });

        group.bench_with_input(BenchmarkId::new("encode_q0.5", n), &n, |b, _| {
            b.iter(|| black_box(encode_signal(&s, 0.5)))
        });

        let stream = encode_signal(&s, 0.5);
        group.bench_with_input(BenchmarkId::new("decode_full", n), &n, |b, _| {
            b.iter(|| black_box(decode_prefix(&stream, usize::MAX).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("decode_5_levels", n), &n, |b, _| {
            b.iter(|| black_box(decode_prefix(&stream, 5).unwrap()))
        });

        group.bench_with_input(BenchmarkId::new("view_build_p1024", n), &n, |b, _| {
            b.iter(|| black_box(PartitionedView::build(&s, 1024, 0.5)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wavelet);
criterion_main!(benches);
