//! Ablation A6: metadata-engine microbenchmarks. The §7 evaluation leans
//! on "all database queries are performed on indexed fields" and a known
//! DB ceiling; these micros characterize the engine the DM runs on:
//! inserts, indexed point and range queries, count aggregates, and the
//! full-scan penalty indexed access avoids.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hedc_metadb::{AggFunc, ColumnDef, DataType, Database, Expr, Query, Schema, Value};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: i64 = 100_000; // §7.1: "more than 100,000 tuples for each queried table"

fn seeded() -> Arc<Database> {
    let db = Database::in_memory("micro");
    let mut conn = db.connect();
    conn.create_table(
        Schema::new(
            "hle",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("t0", DataType::Timestamp).not_null(),
                ColumnDef::new("etype", DataType::Text).not_null(),
                ColumnDef::new("rate", DataType::Float),
            ],
        )
        .primary_key(&["id"]),
    )
    .unwrap();
    conn.create_index("hle", "hle_t0", &["t0"], false).unwrap();
    for i in 0..ROWS {
        conn.insert(
            "hle",
            vec![
                Value::Int(i),
                Value::Int(i * 37),
                Value::Text(if i % 7 == 0 { "grb" } else { "flare" }.to_string()),
                Value::Float((i % 997) as f64),
            ],
        )
        .unwrap();
    }
    db
}

fn bench_metadb(c: &mut Criterion) {
    let db = seeded();
    let conn = db.connect();
    let mut group = c.benchmark_group("A6_metadb_micro");

    let mut i = ROWS;
    group.bench_function("insert", |b| {
        let db2 = Database::in_memory("insert-bench");
        let mut c2 = db2.connect();
        c2.create_table(
            Schema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Int).not_null(),
                    ColumnDef::new("v", DataType::Int),
                ],
            )
            .primary_key(&["id"]),
        )
        .unwrap();
        b.iter(|| {
            i += 1;
            black_box(
                c2.insert("t", vec![Value::Int(i), Value::Int(i * 3)])
                    .unwrap(),
            )
        })
    });

    let mut k = 0i64;
    group.bench_function("point_query_pk", |b| {
        b.iter(|| {
            k = (k + 7919) % ROWS;
            black_box(
                conn.query(&Query::table("hle").filter(Expr::eq("id", k)))
                    .unwrap(),
            )
        })
    });

    group.throughput(Throughput::Elements(100));
    let mut t = 0i64;
    group.bench_function("range_query_indexed_100_rows", |b| {
        b.iter(|| {
            t = (t + 104_729) % (ROWS * 37 - 3700);
            black_box(
                conn.query(&Query::table("hle").filter(Expr::between("t0", t, t + 3699)))
                    .unwrap(),
            )
        })
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("count_full_scan", |b| {
        b.iter(|| {
            black_box(
                conn.query(
                    &Query::table("hle")
                        .filter(Expr::eq("etype", "grb"))
                        .aggregate(AggFunc::CountStar),
                )
                .unwrap(),
            )
        })
    });

    group.bench_function("sql_parse_and_execute", |b| {
        let mut conn2 = db.connect();
        let mut x = 0i64;
        b.iter(|| {
            x = (x + 6151) % (ROWS * 37 - 3700);
            let sql = format!(
                "SELECT id, etype FROM hle WHERE t0 BETWEEN {x} AND {} LIMIT 20",
                x + 3699
            );
            black_box(conn2.execute_sql(&sql).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_metadb);
criterion_main!(benches);
