//! Ablation A3 (§3.4/§6.3): approximated analysis on wavelet-view prefixes
//! versus full-resolution processing. The paper claims the approach
//! "shortens this holistic response time by at least an order of
//! magnitude"; here the same lightcurve-style reduction runs over (a) the
//! raw photon stream, (b) the full-precision view, (c) coarse view
//! prefixes, with the transferred-byte ratio reported alongside.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hedc_events::{bin_counts, generate, GenConfig};
use hedc_wavelet::PartitionedView;
use std::hint::black_box;

fn bench_wavelet_ablation(c: &mut Criterion) {
    // Two hours of telemetry; the view is 1-second count bins.
    let telemetry = generate(&GenConfig {
        duration_ms: 2 * 3600 * 1000,
        background_rate: 25.0,
        flares_per_hour: 3.0,
        seed: 424_242,
        ..GenConfig::default()
    });
    let span = telemetry.config.duration_ms;
    let counts = bin_counts(&telemetry.photons, 0, span, 1000);
    let signal: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let view = PartitionedView::build(&signal, 1024, 0.5);

    let full_bytes = view.bytes_for_range(0, signal.len(), usize::MAX).unwrap();
    let coarse_bytes = view.bytes_for_range(0, signal.len(), 5).unwrap();
    println!(
        "A3 transfer: full view {} B, 5-level prefix {} B ({}x saving); raw photons {} B",
        full_bytes,
        coarse_bytes,
        full_bytes / coarse_bytes.max(1),
        telemetry.photons.len() * 13,
    );

    let mut group = c.benchmark_group("A3_wavelet_approximation");
    group.throughput(Throughput::Elements(signal.len() as u64));

    // (a) Full resolution from raw photons: bin + reduce.
    group.bench_function("raw_photons_full", |b| {
        b.iter(|| {
            let counts = bin_counts(&telemetry.photons, 0, span, 1000);
            black_box(counts.iter().map(|&c| c as f64).sum::<f64>())
        })
    });

    // (b) Full-precision view decode + reduce.
    group.bench_function("view_full_decode", |b| {
        b.iter(|| {
            let s = view.reconstruct_range(0, signal.len(), usize::MAX).unwrap();
            black_box(s.iter().sum::<f64>())
        })
    });

    // (c) Coarse prefixes: the interactive path.
    for levels in [3usize, 5, 7] {
        group.bench_function(format!("view_prefix_{levels}_levels"), |b| {
            b.iter(|| {
                let s = view.reconstruct_range(0, signal.len(), levels).unwrap();
                black_box(s.iter().sum::<f64>())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wavelet_ablation);
criterion_main!(benches);
