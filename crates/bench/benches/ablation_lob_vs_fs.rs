//! Ablation A1 (§4.2): store science products as in-database LOBs versus
//! files in the archive layer. The paper rejected LOBs because "accessing a
//! LOB is significantly slower than accessing a file" once chunking and the
//! engine's locking are paid; this bench makes that decision measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::Database;
use std::hint::black_box;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_lob_vs_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("A1_lob_vs_fs");
    for &size in &[64 * 1024usize, 1024 * 1024, 8 * 1024 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        let data = payload(size);

        // LOB path: chunked blob inside the engine, read via connection.
        let db = Database::in_memory("lob-bench");
        let mut conn = db.connect();
        let lob_id = conn.lob_put(&data);
        group.bench_with_input(BenchmarkId::new("lob_read", size), &size, |b, _| {
            b.iter(|| black_box(conn.lob_get(lob_id).unwrap()))
        });

        // File path: same payload through the archive layer.
        let fs = FileStore::new();
        fs.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 30,
        ));
        fs.store(1, "product.fits", &data).unwrap();
        group.bench_with_input(BenchmarkId::new("file_read", size), &size, |b, _| {
            b.iter(|| black_box(fs.fetch(1, "product.fits").unwrap()))
        });

        // Partial read (the long-range-spectrogram case the paper cites):
        // LOBs must walk chunks; files would be a single seek+read.
        group.bench_with_input(BenchmarkId::new("lob_range_read", size), &size, |b, _| {
            b.iter(|| black_box(conn.lob_get_range(lob_id, size / 2, 64 * 1024).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lob_vs_fs);
criterion_main!(benches);
