//! Ablation A8: the §7 browse workload on the *real* stack (not the
//! simulator) — per-page cost of catalog, HLE, and materialized-view
//! summary pages, single-threaded and under concurrency. This grounds the
//! simulator's middle-tier service-demand constant in measured reality.

use criterion::{criterion_group, criterion_main, Criterion};
use hedc_core::{Hedc, HedcConfig};
use hedc_events::GenConfig;
use hedc_web::HttpRequest;
use std::hint::black_box;
use std::sync::Arc;

fn booted() -> Arc<Hedc> {
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");
    hedc.load_telemetry(
        &GenConfig {
            duration_ms: 30 * 60 * 1000,
            flares_per_hour: 8.0,
            background_rate: 15.0,
            seed: 7777,
            ..GenConfig::default()
        },
        usize::MAX,
    )
    .expect("ingest");
    hedc
}

fn bench_browse_real(c: &mut Criterion) {
    let hedc = booted();
    let hle_id = hedc
        .dm()
        .services()
        .query(
            &hedc.dm().import_session(),
            hedc_metadb::Query::table("hle").limit(1),
        )
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();

    let mut group = c.benchmark_group("A8_browse_real_stack");

    group.bench_function("catalog_page", |b| {
        let req = HttpRequest::get(
            &format!("/hedc/catalog/{}", hedc.dm().extended_catalog),
            "b",
        );
        b.iter(|| {
            let resp = hedc.web().handle(&req);
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        })
    });

    group.bench_function("hle_page", |b| {
        let req = HttpRequest::get(&format!("/hedc/hle/{hle_id}"), "b");
        b.iter(|| {
            let resp = hedc.web().handle(&req);
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        })
    });

    group.bench_function("summary_from_matviews", |b| {
        let req = HttpRequest::get("/hedc/summary", "b");
        b.iter(|| {
            let resp = hedc.web().handle(&req);
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        })
    });

    // Concurrency: 8 browser threads hammering HLE pages; reported as
    // time per 400-request batch (throughput = 400 / time).
    group.sample_size(10);
    group.bench_function("hle_page_8_threads_x50", |b| {
        b.iter(|| {
            let mut handles = Vec::new();
            for t in 0..8 {
                let hedc = Arc::clone(&hedc);
                handles.push(std::thread::spawn(move || {
                    let req = HttpRequest::get(&format!("/hedc/hle/{hle_id}"), &format!("c{t}"));
                    for _ in 0..50 {
                        let resp = hedc.web().handle(&req);
                        assert_eq!(resp.status, 200);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    group.finish();
    hedc.shutdown();
}

criterion_group!(benches, bench_browse_real);
criterion_main!(benches);
