//! Ablation A2 (§4.3): the cost of dynamic name construction — "two extra
//! database queries on an indexed field" — versus a hypothetical design
//! that stores absolute paths in the domain tuples. The flexibility
//! (run-time relocation) costs these microseconds per access.

use criterion::{criterion_group, criterion_main, Criterion};
use hedc_dm::{Clock, DmIo, IoConfig, NameType, Names, Partitioning};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{Database, Expr, Query};
use std::hint::black_box;
use std::sync::Arc;

fn setup() -> (DmIo, Vec<i64>) {
    let db = Database::in_memory("names-bench");
    let mut conn = db.connect();
    hedc_dm::schema::create_generic(&mut conn).unwrap();
    hedc_dm::schema::create_domain(&mut conn).unwrap();
    let files = FileStore::new();
    files.register(Archive::in_memory(
        1,
        "disk",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(files),
        Clock::starting_at(0),
        &IoConfig::default(),
    );
    let names = Names::new(&io);
    names
        .register_archive(1, "disk", "online/v1", None)
        .unwrap();
    let mut items = Vec::new();
    for i in 0..10_000 {
        let item = names.new_item().unwrap();
        names
            .attach(
                item,
                NameType::File,
                1,
                &format!("raw/unit{i:06}.fits"),
                40 << 20,
                Some(i as u32),
                "data",
            )
            .unwrap();
        items.push(item);
    }
    (io, items)
}

fn bench_name_mapping(c: &mut Criterion) {
    let (io, items) = setup();
    let names = Names::new(&io);
    let mut group = c.benchmark_group("A2_name_mapping");

    // Dynamic §4.3 construction: loc_entry by item_id + loc_archive by pk.
    let mut i = 0usize;
    group.bench_function("dynamic_two_queries", |b| {
        b.iter(|| {
            let item = items[i % items.len()];
            i += 1;
            black_box(names.resolve(item, NameType::File).unwrap())
        })
    });

    // Static baseline: a single indexed lookup returning a frozen path
    // (what a path-in-tuple schema would do — and what relocation breaks).
    let mut j = 0usize;
    group.bench_function("static_single_query", |b| {
        b.iter(|| {
            let item = items[j % items.len()];
            j += 1;
            black_box(
                io.query(&Query::table("loc_entry").filter(Expr::eq("item_id", item)))
                    .unwrap(),
            )
        })
    });

    // The payoff side: relocation under dynamic naming is one UPDATE...
    group.bench_function("relocate_archive_prefix", |b| {
        let mut version = 0u64;
        b.iter(|| {
            version += 1;
            black_box(
                names
                    .set_archive_prefix(1, &format!("online/v{version}"))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_name_mapping);
criterion_main!(benches);
