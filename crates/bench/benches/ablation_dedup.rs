//! Ablation A5 (§3.5): redundant-work detection. When an identical
//! analysis already exists, HEDC answers from the catalog — "users do not
//! need to repeat the analyses themselves, thereby reducing the system load".
//! This bench runs the same request through the full PL with the check on
//! (reuse) and off (forced recomputation).

use criterion::{criterion_group, criterion_main, Criterion};
use hedc_analysis::{AlgorithmRegistry, AnalysisParams};
use hedc_core::{Hedc, HedcConfig};
use hedc_events::GenConfig;
use hedc_pl::RequestSpec;
use std::hint::black_box;
use std::sync::Arc;

fn bench_dedup(c: &mut Criterion) {
    let _ = AlgorithmRegistry::with_builtins(); // keep registry types linked
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");
    hedc.load_telemetry(
        &GenConfig {
            duration_ms: 20 * 60 * 1000,
            background_rate: 12.0,
            flares_per_hour: 4.0,
            seed: 5150,
            ..GenConfig::default()
        },
        usize::MAX,
    )
    .expect("ingest");
    let session = hedc.dm().import_session();
    // Detection may find nothing in a quiet realization; any event works.
    let hle = {
        let r = hedc
            .dm()
            .services()
            .query(&session, hedc_metadb::Query::table("hle").limit(1))
            .unwrap();
        match r.rows.first() {
            Some(row) => row[0].as_int().unwrap(),
            None => hedc
                .dm()
                .services()
                .create_hle(
                    &session,
                    &hedc_dm::HleSpec::window(0, 10 * 60 * 1000, "flare"),
                )
                .unwrap(),
        }
    };
    let params = AnalysisParams::window(0, 10 * 60 * 1000).with("bins", 64.0);

    // Seed the catalog with the result once.
    hedc.pl()
        .submit_sync(
            Arc::clone(&session),
            RequestSpec::new("spectrum", params.clone(), hle),
        )
        .expect("seed analysis");

    let mut group = c.benchmark_group("A5_redundancy_detection");
    group.sample_size(20);

    group.bench_function("reused_from_catalog", |b| {
        b.iter(|| {
            let outcome = hedc
                .pl()
                .submit_sync(
                    Arc::clone(&session),
                    RequestSpec::new("spectrum", params.clone(), hle),
                )
                .unwrap();
            assert!(outcome.was_reused());
            black_box(outcome.ana_id())
        })
    });

    group.bench_function("forced_recomputation", |b| {
        b.iter(|| {
            let outcome = hedc
                .pl()
                .submit_sync(
                    Arc::clone(&session),
                    RequestSpec::new("spectrum", params.clone(), hle).force(),
                )
                .unwrap();
            assert!(!outcome.was_reused());
            black_box(outcome.ana_id())
        })
    });
    group.finish();
    hedc.shutdown();
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
