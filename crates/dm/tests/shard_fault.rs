//! Shard-failover fault suite: what a scatter-gather does when replicas
//! die or shed mid-flight.
//!
//! The contract under test, layer by layer:
//!
//! * a replica dying mid-scatter is absorbed by its shard's sibling — the
//!   merged answer is identical to the healthy cluster's (never a partial
//!   row set);
//! * a replica shedding [`DmError::Overloaded`] redirects within the shard
//!   without flipping its health (the node is *up*; it must keep receiving
//!   traffic once it stops shedding);
//! * a **whole shard** going dark surfaces as the typed
//!   [`DmError::ShardUnavailable`] naming the lost shard — not as a
//!   silently smaller result.
//!
//! Seeded faults derive from one printed seed (`HEDC_TEST_SEED`
//! overrides; replay with `scripts/check.sh --seed <seed>`).

use hedc_dm::{
    schema, splitmix64, Clock, DmError, DmIo, DmNode, DmResult, FaultPlan, FaultyDmNode, IoConfig,
    NameType, Names, Partitioning, ResolvedName, ShardMap, ShardedDm,
};
use hedc_filestore::FileStore;
use hedc_metadb::{Database, Expr, OrderDir, Query, QueryResult, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BASE_SEED: u64 = 0x5AAD_FA17;

fn effective_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(BASE_SEED)
}

fn store(label: &str) -> Arc<DmIo> {
    let db = Database::in_memory(label);
    {
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
    }
    Arc::new(DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(FileStore::new()),
        Clock::starting_at(0),
        &IoConfig::default(),
    ))
}

struct LocalNode {
    io: Arc<DmIo>,
    label: String,
}

impl DmNode for LocalNode {
    fn node_id(&self) -> String {
        self.label.clone()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.io.query(q)
    }
    fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        Names::new(&self.io).resolve(item_id, want)
    }
}

/// Sheds the first `sheds` queries with [`DmError::Overloaded`], serves
/// everything after; counts what it actually served.
struct ShedFirst {
    inner: LocalNode,
    sheds: AtomicU64,
    served: AtomicU64,
}

impl DmNode for ShedFirst {
    fn node_id(&self) -> String {
        self.inner.node_id()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        loop {
            let left = self.sheds.load(Ordering::SeqCst);
            if left == 0 {
                break;
            }
            if self
                .sheds
                .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Err(DmError::Overloaded(format!(
                    "{}: queue full",
                    self.inner.label
                )));
            }
        }
        self.served.fetch_add(1, Ordering::SeqCst);
        self.inner.execute_query(q)
    }
}

/// A minimal HLE row: only the columns the suite queries carry signal.
fn hle_row(id: i64, time_end: i64, n_photons: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Int(1),                      // owner
        Value::Int(id % 16),                // item_id
        Value::Timestamp(time_end - 10),    // time_start
        Value::Timestamp(time_end),         // time_end
        Value::Float(3.0),
        Value::Float(20_000.0),
        Value::Text("flare".into()),        // event_type
        Value::Null,
        Value::Float((id % 7) as f64),      // peak_rate
        Value::Null,
        Value::Int(n_photons),
        Value::Int(1),
        Value::Int(1),
        Value::Bool(true),                  // public
        Value::Null,
        Value::Null,
        Value::Timestamp(time_end - 10),    // created_ms
        Value::Text("user".into()),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Int(0),
        Value::Bool(false),
    ]
}

/// Two range shards (cut at 1000) with the given replica sets, plus an
/// unsharded oracle holding every row.
fn two_shard_map() -> ShardMap {
    ShardMap::new(2)
        .with_range("hle", "time_end", vec![1000], vec![0, 1])
        .with_hash("loc_item", "item_id", 8)
}

fn seed_rows(map: &ShardMap, stores: &[Arc<DmIo>], oracle: &DmIo, n: i64) {
    let mut state = 0x0DDB_1A5Eu64;
    for id in 0..n {
        let time_end = 1 + (splitmix64(&mut state) % 2_000) as i64;
        let row = hle_row(id, time_end, (id * 13) % 997);
        let owner = map.shard_for("hle", time_end).unwrap();
        stores[owner as usize].insert("hle", row.clone()).unwrap();
        oracle.insert("hle", row).unwrap();
    }
}

/// The fanout query every test scatters: spans the range cut, totally
/// ordered by the unique id.
fn spanning_query() -> Query {
    Query::table("hle")
        .select(&["id", "time_end", "n_photons"])
        .filter(Expr::between("time_end", 500, 1500))
        .order_by("id", OrderDir::Asc)
}

#[test]
fn replica_death_mid_scatter_is_absorbed_by_the_sibling() {
    let map = two_shard_map();
    let stores = [store("md-s0"), store("md-s1")];
    let oracle = store("md-oracle");
    seed_rows(&map, &stores, &oracle, 200);

    // Shard 0: two replicas over the same store; replica a0 dies after
    // exactly 3 served calls — mid-way through the query sequence.
    let mk = |io: &Arc<DmIo>, label: &str| {
        Arc::new(FaultyDmNode::new(
            Arc::new(LocalNode {
                io: Arc::clone(io),
                label: label.into(),
            }),
            label,
            FaultPlan::seeded(1),
        ))
    };
    let a0 = mk(&stores[0], "a0");
    let a1 = mk(&stores[0], "a1");
    let b0 = mk(&stores[1], "b0");
    let b1 = mk(&stores[1], "b1");
    a0.down_after(3);
    let sharded = ShardedDm::new(
        vec![
            vec![
                Arc::clone(&a0) as Arc<dyn DmNode>,
                Arc::clone(&a1) as Arc<dyn DmNode>,
            ],
            vec![
                Arc::clone(&b0) as Arc<dyn DmNode>,
                Arc::clone(&b1) as Arc<dyn DmNode>,
            ],
        ],
        map,
    );

    let q = spanning_query();
    let want = oracle.query(&q).unwrap();
    assert!(!want.rows.is_empty(), "the window must hold rows");
    for i in 0..12 {
        let got = sharded.query(&q).unwrap_or_else(|e| {
            panic!("scatter {i}: a single replica death must be absorbed: {e}")
        });
        assert_eq!(got.columns, want.columns, "scatter {i}");
        assert_eq!(got.rows, want.rows, "scatter {i}: no partial answers");
    }
    assert!(!a0.is_available(), "a0 must have died mid-sequence");
    assert!(
        a1.counts().passed > 0,
        "the sibling must have carried shard 0 after the death"
    );
}

#[test]
fn seeded_replica_flapping_never_surfaces_or_truncates() {
    let seed = effective_seed();
    println!("shard_fault seed={seed} (replay: scripts/check.sh --seed {seed})");
    let map = two_shard_map();
    let stores = [store("fl-s0"), store("fl-s1")];
    let oracle = store("fl-oracle");
    seed_rows(&map, &stores, &oracle, 300);

    // One noisy replica per shard (~25% unavailable); the sibling is
    // always healthy, so every scatter must complete exactly.
    let noisy = |io: &Arc<DmIo>, label: &str, s: u64| {
        Arc::new(FaultyDmNode::new(
            Arc::new(LocalNode {
                io: Arc::clone(io),
                label: label.into(),
            }),
            label,
            FaultPlan::seeded(s).unavailable(250),
        ))
    };
    let steady = |io: &Arc<DmIo>, label: &str| {
        Arc::new(FaultyDmNode::new(
            Arc::new(LocalNode {
                io: Arc::clone(io),
                label: label.into(),
            }),
            label,
            FaultPlan::seeded(0),
        ))
    };
    let n0 = noisy(&stores[0], "n0", seed);
    let n1 = noisy(&stores[1], "n1", seed ^ 0x9E37_79B9_7F4A_7C15);
    let sharded = ShardedDm::new(
        vec![
            vec![
                Arc::clone(&n0) as Arc<dyn DmNode>,
                steady(&stores[0], "s0") as Arc<dyn DmNode>,
            ],
            vec![
                Arc::clone(&n1) as Arc<dyn DmNode>,
                steady(&stores[1], "s1") as Arc<dyn DmNode>,
            ],
        ],
        map,
    );

    let q = spanning_query();
    let want = oracle.query(&q).unwrap();
    for i in 0..150 {
        let got = sharded
            .query(&q)
            .unwrap_or_else(|e| panic!("scatter {i}: injected flap must be absorbed: {e}"));
        assert_eq!(got.rows, want.rows, "scatter {i}");
    }
    let injected = n0.counts().unavailable + n1.counts().unavailable;
    assert!(
        injected > 0,
        "the plan should have injected at least one outage"
    );
}

#[test]
fn overload_shed_redirects_within_the_shard_without_health_flip() {
    let map = two_shard_map();
    let stores = [store("ov-s0"), store("ov-s1")];
    let oracle = store("ov-oracle");
    seed_rows(&map, &stores, &oracle, 150);

    let shedder = Arc::new(ShedFirst {
        inner: LocalNode {
            io: Arc::clone(&stores[0]),
            label: "shed-a".into(),
        },
        sheds: AtomicU64::new(2),
        served: AtomicU64::new(0),
    });
    let mk = |io: &Arc<DmIo>, label: &str| {
        Arc::new(LocalNode {
            io: Arc::clone(io),
            label: label.into(),
        }) as Arc<dyn DmNode>
    };
    let sharded = ShardedDm::new(
        vec![
            vec![Arc::clone(&shedder) as Arc<dyn DmNode>, mk(&stores[0], "shed-b")],
            vec![mk(&stores[1], "c"), mk(&stores[1], "d")],
        ],
        map,
    );

    let q = spanning_query();
    let want = oracle.query(&q).unwrap();
    // Every query during the shed window succeeds via the sibling.
    for i in 0..4 {
        let got = sharded
            .query(&q)
            .unwrap_or_else(|e| panic!("query {i}: a shed must redirect, not fail: {e}"));
        assert_eq!(got.rows, want.rows, "query {i}");
    }
    // The shedding node was never health-flipped: once it stops shedding,
    // rotation keeps sending it traffic and it serves.
    assert!(shedder.is_available());
    for _ in 0..6 {
        sharded.query(&q).unwrap();
    }
    assert!(
        shedder.served.load(Ordering::SeqCst) > 0,
        "a node that shed must stay in rotation and serve once recovered"
    );
}

#[test]
fn whole_shard_loss_is_a_typed_error_not_a_truncated_result() {
    let map = two_shard_map();
    let stores = [store("wl-s0"), store("wl-s1")];
    let oracle = store("wl-oracle");
    seed_rows(&map, &stores, &oracle, 200);

    let mk = |io: &Arc<DmIo>, label: &str| {
        Arc::new(FaultyDmNode::new(
            Arc::new(LocalNode {
                io: Arc::clone(io),
                label: label.into(),
            }),
            label,
            FaultPlan::seeded(2),
        ))
    };
    let a0 = mk(&stores[0], "wa0");
    let a1 = mk(&stores[0], "wa1");
    let b0 = mk(&stores[1], "wb0");
    let b1 = mk(&stores[1], "wb1");
    let sharded = ShardedDm::new(
        vec![
            vec![
                Arc::clone(&a0) as Arc<dyn DmNode>,
                Arc::clone(&a1) as Arc<dyn DmNode>,
            ],
            vec![
                Arc::clone(&b0) as Arc<dyn DmNode>,
                Arc::clone(&b1) as Arc<dyn DmNode>,
            ],
        ],
        map,
    );

    // Healthy baseline.
    let q = spanning_query();
    let want = oracle.query(&q).unwrap();
    assert_eq!(sharded.query(&q).unwrap().rows, want.rows);

    // Kill every replica of shard 1: the scatter must name the lost shard.
    b0.set_down(true);
    b1.set_down(true);
    match sharded.query(&q) {
        Err(DmError::ShardUnavailable { shard, .. }) => assert_eq!(shard, 1),
        Ok(r) => panic!(
            "a scatter that lost shard 1 returned {} rows as if complete",
            r.rows.len()
        ),
        Err(other) => panic!("wrong error type: {other:?}"),
    }

    // Queries pinned to the surviving shard still answer.
    let pinned = Query::table("hle")
        .select(&["id", "time_end"])
        .filter(Expr::between("time_end", 1, 900))
        .order_by("id", OrderDir::Asc);
    let got = sharded.query(&pinned).unwrap();
    assert_eq!(got.rows, oracle.query(&pinned).unwrap().rows);

    // Recovery: the shard rejoins and scatters complete again.
    b0.set_down(false);
    b1.set_down(false);
    assert_eq!(sharded.query(&q).unwrap().rows, want.rows);
}

#[test]
fn shard_loss_during_batch_resolution_errors_per_entry() {
    let map = two_shard_map();
    let stores = [store("br-s0"), store("br-s1")];
    let mk = |io: &Arc<DmIo>, label: &str| {
        Arc::new(FaultyDmNode::new(
            Arc::new(LocalNode {
                io: Arc::clone(io),
                label: label.into(),
            }),
            label,
            FaultPlan::seeded(3),
        ))
    };
    let b0 = mk(&stores[1], "bb0");
    let b1 = mk(&stores[1], "bb1");
    let sharded = ShardedDm::new(
        vec![
            vec![
                mk(&stores[0], "ba0") as Arc<dyn DmNode>,
                mk(&stores[0], "ba1") as Arc<dyn DmNode>,
            ],
            vec![
                Arc::clone(&b0) as Arc<dyn DmNode>,
                Arc::clone(&b1) as Arc<dyn DmNode>,
            ],
        ],
        map.clone(),
    );
    b0.set_down(true);
    b1.set_down(true);

    let ids: Vec<i64> = (0..32).collect();
    let results = sharded.resolve_batch(&ids, NameType::File);
    assert_eq!(results.len(), ids.len(), "positional: one slot per input");
    let mut lost = 0;
    for (id, r) in ids.iter().zip(&results) {
        let owner = map.shard_for("loc_item", *id).unwrap();
        match r {
            Ok(_) => assert_eq!(owner, 0, "id {id}: only shard 0 can answer"),
            Err(DmError::ShardUnavailable { shard, .. }) => {
                assert_eq!(*shard, 1, "id {id}");
                assert_eq!(owner, 1, "id {id}: the typed error names its owner");
                lost += 1;
            }
            Err(other) => panic!("id {id}: wrong error type: {other:?}"),
        }
    }
    assert!(lost > 0, "some ids must hash to the dead shard");
}
