//! Router failover under concurrent load (§5.1 "self-recovering ...
//! tolerate failure and restart").
//!
//! N threads hammer a 3-node router while one node flaps down and up.
//! Invariants: no request is ever lost (every call returns Ok), and once
//! the flapping node recovers, load rebalances onto it.
//!
//! The seeded test below drives the same router through [`FaultyDmNode`]
//! injectors instead of wall-clock flapping: the whole fault sequence is a
//! pure function of the printed seed, replayable with
//! `scripts/check.sh --seed <seed>`.

use hedc_dm::{
    schema, Clock, Dm, DmConfig, DmError, DmIo, DmNode, DmResult, DmRouter, FaultCounts, FaultPlan,
    FaultyDmNode, IoConfig, NameType, Partitioning, RemoteDm,
};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{Database, Query, QueryResult, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

struct LocalNode {
    io: DmIo,
    label: String,
}

impl DmNode for LocalNode {
    fn node_id(&self) -> String {
        self.label.clone()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.io.query(q)
    }
}

fn node(label: &str) -> Arc<LocalNode> {
    let db = Database::in_memory(label);
    let mut conn = db.connect();
    schema::create_generic(&mut conn).unwrap();
    schema::create_domain(&mut conn).unwrap();
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(FileStore::new()),
        Clock::starting_at(0),
        &IoConfig::default(),
    );
    io.insert(
        "catalog",
        vec![
            Value::Int(1),
            Value::Int(0),
            Value::Text("standard".into()),
            Value::Null,
            Value::Text("system".into()),
            Value::Bool(true),
            Value::Int(0),
        ],
    )
    .unwrap();
    Arc::new(LocalNode {
        io,
        label: label.to_string(),
    })
}

#[test]
fn concurrent_load_survives_node_flapping_and_rebalances() {
    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 200;

    let a = Arc::new(RemoteDm::new(node("flap-a"), "flap-a", 10));
    let b = Arc::new(RemoteDm::new(node("flap-b"), "flap-b", 10));
    let c = Arc::new(RemoteDm::new(node("flap-c"), "flap-c", 10));
    let router = Arc::new(DmRouter::new(vec![
        a.clone() as Arc<dyn DmNode>,
        b.clone() as Arc<dyn DmNode>,
        c.clone() as Arc<dyn DmNode>,
    ]));

    // One thread flaps node A down/up until the workers finish.
    let stop_flapping = Arc::new(AtomicBool::new(false));
    let flapper = {
        let a = a.clone();
        let stop = Arc::clone(&stop_flapping);
        thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                a.set_down(true);
                thread::sleep(Duration::from_millis(3));
                a.set_down(false);
                thread::sleep(Duration::from_millis(3));
            }
            a.set_down(false);
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let router = Arc::clone(&router);
            thread::spawn(move || {
                let mut ok = 0usize;
                for _ in 0..REQUESTS_PER_THREAD {
                    let r = router
                        .execute_query(&Query::table("catalog"))
                        .expect("failover must absorb a single flapping node");
                    assert_eq!(r.rows.len(), 1);
                    ok += 1;
                }
                ok
            })
        })
        .collect();

    let completed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    stop_flapping.store(true, Ordering::SeqCst);
    flapper.join().unwrap();

    // Invariant 1: no request lost.
    assert_eq!(completed, THREADS * REQUESTS_PER_THREAD);

    // The healthy nodes carried the imbalance while A was down.
    let (calls_a, calls_b, calls_c) = (a.calls(), b.calls(), c.calls());
    assert_eq!(
        (calls_a + calls_b + calls_c) as usize,
        completed,
        "every completed request was served exactly once"
    );
    assert!(calls_b > 0 && calls_c > 0);

    // Invariant 2: after recovery, calls rebalance back onto A.
    let before = a.calls();
    for _ in 0..30 {
        router.execute_query(&Query::table("catalog")).unwrap();
    }
    let gained = a.calls() - before;
    // Round-robin over 3 healthy nodes gives A ~10 of 30; allow slack but
    // require genuine participation.
    assert!(gained >= 5, "recovered node got {gained}/30 calls");
}

/// One full failover scenario under seeded injection. Returns the per-node
/// fault tallies, which are a pure function of the seed: the router is
/// driven serially, each request draws exactly one random number per node
/// it touches, and only unavailability/slowness are injected (the router
/// does not fail over `RemoteFailed`, so every request must complete).
fn run_seeded_scenario(seed: u64) -> Vec<FaultCounts> {
    const REQUESTS: usize = 300;
    let nodes: Vec<Arc<FaultyDmNode<LocalNode>>> = vec![
        // ~20% unavailable, ~10% slow: the noisy node.
        Arc::new(FaultyDmNode::new(
            node("det-a"),
            "det-a",
            FaultPlan::seeded(seed)
                .unavailable(200)
                .slow(100, Duration::from_micros(200)),
        )),
        // ~15% unavailable.
        Arc::new(FaultyDmNode::new(
            node("det-b"),
            "det-b",
            FaultPlan::seeded(seed ^ 0x9E37_79B9_7F4A_7C15).unavailable(150),
        )),
        // Never unavailable — guarantees the router always has an out.
        Arc::new(FaultyDmNode::new(
            node("det-c"),
            "det-c",
            FaultPlan::seeded(seed.rotate_left(17)).slow(50, Duration::from_micros(100)),
        )),
    ];
    println!(
        "fault seed {} (replay: scripts/check.sh --seed {})",
        nodes[0].seed(),
        nodes[0].seed()
    );
    let router = DmRouter::new(
        nodes
            .iter()
            .map(|n| Arc::clone(n) as Arc<dyn DmNode>)
            .collect(),
    );
    for _ in 0..REQUESTS {
        let r = router
            .execute_query(&Query::table("catalog"))
            .expect("injected unavailability must be failed over");
        assert_eq!(r.rows.len(), 1);
    }
    let counts: Vec<FaultCounts> = nodes.iter().map(|n| n.counts()).collect();
    // Every injected unavailability was absorbed, never surfaced.
    assert!(
        counts.iter().any(|c| c.unavailable > 0),
        "the plan should have injected at least one outage: {counts:?}"
    );
    counts
}

/// Two DM nodes carrying identical location tables (the replicated-browse
/// deployment of §5.4) plus the shared item-id list. Identical construction
/// order makes the deterministic id allocators agree, so any node can
/// resolve any item.
fn replicated_dms(n_items: usize) -> (Arc<Dm>, Arc<Dm>, Vec<i64>) {
    let mk = || {
        let files = FileStore::new();
        files.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 20,
        ));
        Dm::bootstrap(Arc::new(files), DmConfig::default()).unwrap()
    };
    let (a, b) = (mk(), mk());
    let mut items = Vec::with_capacity(n_items);
    for i in 0..n_items {
        let (na, nb) = (a.names(), b.names());
        let item = na.new_item().unwrap();
        assert_eq!(item, nb.new_item().unwrap(), "id allocators must agree");
        for names in [&na, &nb] {
            names
                .attach(
                    item,
                    NameType::File,
                    1,
                    &format!("raw/u{i}.fits"),
                    64,
                    None,
                    "data",
                )
                .unwrap();
        }
        items.push(item);
    }
    (a, b, items)
}

#[test]
fn batched_resolution_survives_mid_batch_node_failures() {
    let (dm_a, dm_b, items) = replicated_dms(40);
    let expected: Vec<_> = items
        .iter()
        .map(|&id| dm_b.names().resolve(id, NameType::File).unwrap())
        .collect();

    // Node A injects ~30% per-entry outages *inside* the batch; node B is
    // healthy. The router must retry exactly the failed entries.
    let a = Arc::new(FaultyDmNode::new(
        dm_a,
        "batch-a",
        FaultPlan::seeded(11).unavailable(300),
    ));
    println!(
        "fault seed {} (replay: scripts/check.sh --seed {})",
        a.seed(),
        a.seed()
    );
    let b = Arc::new(RemoteDm::new(dm_b, "batch-b", 10));
    let router = DmRouter::new(vec![
        a.clone() as Arc<dyn DmNode>,
        b.clone() as Arc<dyn DmNode>,
    ]);

    let batch = router.resolve_batch(&items, NameType::File);
    assert_eq!(batch.len(), items.len(), "one result per input, always");
    for ((got, want), item) in batch.iter().zip(&expected).zip(&items) {
        assert_eq!(
            got.as_ref().unwrap(),
            want,
            "item {item}: entries that failed on A must land on B unchanged"
        );
    }

    // Hard kill mid-rotation: A refuses everything, so any chunk assigned
    // to it fails over wholesale. Still exactly one result per input.
    a.set_down(true);
    let after_kill = router.resolve_batch(&items, NameType::File);
    assert_eq!(after_kill.len(), items.len());
    for (got, want) in after_kill.iter().zip(&expected) {
        assert_eq!(got.as_ref().unwrap(), want);
    }

    // Total outage: positional per-entry errors, nothing silently dropped.
    b.set_down(true);
    let dead = router.resolve_batch(&items, NameType::File);
    assert_eq!(dead.len(), items.len());
    assert!(dead
        .iter()
        .all(|r| matches!(r, Err(DmError::RemoteUnavailable(_)))));
}

#[test]
fn seeded_fault_injection_is_reproducible() {
    // Two runs from one seed must inject the exact same fault sequence —
    // this is what makes a flake printed as "fault seed N" replayable.
    // (Distinct seeds diverging is covered by the hedc-dm unit tests; it
    // is not asserted here because `HEDC_TEST_SEED` pins every plan to one
    // seed during `scripts/check.sh --seed` replays.)
    let first = run_seeded_scenario(7);
    let second = run_seeded_scenario(7);
    assert_eq!(first, second, "same seed, same faults");
}
