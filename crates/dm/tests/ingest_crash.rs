//! The ingest crash-point matrix (§5.2: "logging and compensation").
//!
//! Kills a journaled serial ingest at every step of the workflow, resumes
//! it, and asserts the recovery contract:
//!
//! * a crash at a step **boundary** (the journal record survived) resumes
//!   read-only and reproduces a **byte-identical** metadata state against an
//!   uninterrupted twin run;
//! * a crash **mid-step** (effects applied, record lost) is compensated —
//!   the resumed state carries no duplicated rows and no orphaned archive
//!   files;
//! * a WAL-backed node killed for real (fixture dropped, reopened from the
//!   log) resumes across process "death";
//! * a unit that fails keeps its slot in the report instead of aborting the
//!   run (the old loader's accounting bug).
//!
//! Deterministic: the workload derives from one printed seed, replayable
//! with `scripts/check.sh --seed <seed>` (`HEDC_TEST_SEED`).

use hedc_dm::{
    create_user, pipeline, schema, Clock, CrashPlan, CrashSite, DmError, DmIo, IngestConfig,
    IngestOptions, IoConfig, JournalStep, Names, Partitioning, Rights, Services, Session,
    SessionKind, SessionManager, UnitStatus,
};
use hedc_events::{generate, package, GenConfig, TelemetryUnit};
use hedc_filestore::{Archive, ArchiveTier, DirBackend, FileStore};
use hedc_metadb::{Database, DbOptions, Expr, Query, StorageConfig, Value, WalOptions};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

const BASE_SEED: u64 = 0xC4A5_0041;

fn effective_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(BASE_SEED)
}

/// A few distribution units with enough activity that most carry events.
fn workload(seed: u64) -> Vec<TelemetryUnit> {
    let t = generate(&GenConfig {
        seed,
        start_ms: 0,
        duration_ms: 4 * 60 * 1000,
        background_rate: 25.0,
        flares_per_hour: 45.0,
        grbs_per_day: 2.0,
        ..GenConfig::default()
    });
    let units = package(&t, 2_500, 1);
    assert!(units.len() >= 3, "workload must span several units");
    units
}

struct Fix {
    io: DmIo,
    #[allow(dead_code)]
    mgr: SessionManager,
    session: Arc<Session>,
    cfg: IngestConfig,
}

/// A deterministic in-memory node: twin calls produce twin id/clock states,
/// which is what the byte-identity assertions lean on.
fn fixture() -> Fix {
    fixture_on(None)
}

fn fixture_on(storage: Option<StorageConfig>) -> Fix {
    let db = match storage {
        Some(storage) => Database::open(
            "ingest-crash",
            DbOptions {
                storage,
                ..DbOptions::default()
            },
        )
        .unwrap(),
        None => Database::in_memory("ingest-crash"),
    };
    {
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
    }
    let files = FileStore::new();
    files.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 26,
    ));
    files.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineDisk,
        1 << 26,
    ));
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(files),
        Clock::starting_at(0),
        &IoConfig::default(),
    );
    setup_node(&io);
    let (mgr, session) = login(&io);
    let catalog = make_catalog(&io, &session);
    Fix {
        io,
        mgr,
        session,
        cfg: IngestConfig::new(1, 2, catalog),
    }
}

fn setup_node(io: &DmIo) {
    let names = Names::new(io);
    for status in io.files.statuses() {
        names
            .register_archive(status.id, &format!("{:?}", status.tier), "", None)
            .unwrap();
        io.insert(
            "op_archives",
            vec![
                Value::Int(i64::from(status.id)),
                Value::Text(status.name.clone()),
                Value::Text(format!("{:?}", status.tier)),
                Value::Text(format!("{:?}", status.state)),
                Value::Int(status.capacity as i64),
                Value::Int(status.used as i64),
            ],
        )
        .unwrap();
    }
    create_user(io, "loader", "pw", "sci", Rights::SCIENTIST).unwrap();
}

fn login(io: &DmIo) -> (SessionManager, Arc<Session>) {
    let mgr = SessionManager::new();
    let cookie = mgr.authenticate(io, "loader", "pw", "t").unwrap();
    let session = mgr.lookup("t", cookie, SessionKind::Hle).unwrap();
    (mgr, session)
}

fn make_catalog(io: &DmIo, session: &Session) -> i64 {
    let svc = Services::new(io);
    let catalog = svc
        .create_catalog(session, "extended", "system", None)
        .unwrap();
    svc.publish(session, "catalog", catalog).unwrap();
    catalog
}

/// Canonical dump of every table: sorted debug-formatted rows, table-tagged.
fn dump(io: &DmIo) -> Vec<String> {
    let mut out = Vec::new();
    for t in schema::GENERIC_TABLES
        .iter()
        .chain(schema::DOMAIN_TABLES.iter())
    {
        let r = io.query(&Query::table(*t)).unwrap();
        let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{t}|{row:?}")).collect();
        rows.sort();
        out.append(&mut rows);
    }
    out
}

fn table_counts(io: &DmIo) -> BTreeMap<&'static str, usize> {
    schema::GENERIC_TABLES
        .iter()
        .chain(schema::DOMAIN_TABLES.iter())
        .map(|t| (*t, io.query(&Query::table(*t)).unwrap().rows.len()))
        .collect()
}

/// Every file in every archive must be reachable through exactly one
/// `loc_entry` row — a resumed ingest never strands an orphan.
fn assert_no_orphans(io: &DmIo) {
    for id in io.files.archive_ids() {
        let archive = io.files.archive(id).unwrap();
        for path in archive.list() {
            let r = io
                .query(&Query::table("loc_entry").filter(
                    Expr::eq("path", path.as_str()).and(Expr::eq("archive_id", i64::from(id))),
                ))
                .unwrap();
            assert_eq!(
                r.rows.len(),
                1,
                "archive {id} file `{path}` must have exactly one loc_entry"
            );
        }
    }
}

fn serial() -> IngestOptions {
    IngestOptions::serial()
}

fn crashing(victim: u32, site: CrashSite) -> IngestOptions {
    IngestOptions {
        crash: Some(CrashPlan {
            unit_seq: victim,
            site,
        }),
        ..IngestOptions::serial()
    }
}

#[test]
fn boundary_crash_matrix_resumes_byte_identical() {
    let seed = effective_seed();
    println!("ingest_crash seed={seed}");
    let units = workload(seed);
    let victim = units[units.len() / 2].seq;

    // Uninterrupted twin: the reference state.
    let reference = fixture();
    let ref_report = pipeline::ingest(
        &reference.io,
        &reference.session,
        &units,
        &reference.cfg,
        &serial(),
    )
    .unwrap();
    assert_eq!(ref_report.failed, 0);
    assert_eq!(ref_report.ingested, units.len());
    let ref_dump = dump(&reference.io);

    for step in JournalStep::ALL {
        let fix = fixture();
        let crashed = pipeline::ingest(
            &fix.io,
            &fix.session,
            &units,
            &fix.cfg,
            &crashing(victim, CrashSite::Boundary(step)),
        );
        assert!(
            matches!(crashed, Err(DmError::Crashed(_))),
            "boundary {step:?}: injected crash must surface"
        );
        let resumed = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
        assert!(resumed.fully_accounted(), "boundary {step:?}");
        assert_eq!(resumed.failed, 0, "boundary {step:?}");
        let v = resumed.units.iter().find(|u| u.seq == victim).unwrap();
        match step {
            // The `done` record survived: the victim is skipped outright.
            JournalStep::Done => assert!(
                matches!(v.status, UnitStatus::Skipped),
                "boundary done: {:?}",
                v.status
            ),
            // A clean boundary needs no compensation.
            _ => assert!(
                matches!(
                    v.status,
                    UnitStatus::Resumed {
                        from,
                        compensations: 0,
                    } if from == step
                ),
                "boundary {step:?}: {:?}",
                v.status
            ),
        }
        assert_eq!(
            dump(&fix.io),
            ref_dump,
            "boundary {step:?}: resumed state must be byte-identical"
        );
        assert_no_orphans(&fix.io);
    }
}

#[test]
fn midstep_crash_matrix_compensates_without_duplicates() {
    let seed = effective_seed();
    println!("ingest_crash seed={seed}");
    let units = workload(seed);
    let victim = units[units.len() / 2].seq;

    let reference = fixture();
    pipeline::ingest(
        &reference.io,
        &reference.session,
        &units,
        &reference.cfg,
        &serial(),
    )
    .unwrap();
    let ref_counts = table_counts(&reference.io);

    for step in JournalStep::ALL {
        let fix = fixture();
        let crashed = pipeline::ingest(
            &fix.io,
            &fix.session,
            &units,
            &fix.cfg,
            &crashing(victim, CrashSite::MidStep(step)),
        );
        assert!(
            matches!(crashed, Err(DmError::Crashed(_))),
            "mid-step {step:?}: injected crash must surface"
        );
        let resumed = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
        assert!(resumed.fully_accounted(), "mid-step {step:?}");
        assert_eq!(resumed.failed, 0, "mid-step {step:?}");
        let v = resumed.units.iter().find(|u| u.seq == victim).unwrap();
        match step {
            // Mid-step `admitted` dies before the unit's first journal row:
            // resume sees no trail and ingests the victim from scratch.
            JournalStep::Admitted => assert!(
                matches!(v.status, UnitStatus::Ingested),
                "mid-step admitted: {:?}",
                v.status
            ),
            _ => {
                assert!(
                    matches!(v.status, UnitStatus::Resumed { .. }),
                    "mid-step {step:?}: {:?}",
                    v.status
                );
                // Steps with unconditional effects must have compensated.
                if !matches!(step, JournalStep::Events) {
                    assert!(
                        matches!(
                            v.status,
                            UnitStatus::Resumed { compensations, .. } if compensations > 0
                        ),
                        "mid-step {step:?} left effects that must be compensated: {:?}",
                        v.status
                    );
                }
            }
        }
        // Compensation re-runs allocate fresh ids, so the state is not
        // byte-identical — but nothing may duplicate or leak.
        assert_eq!(
            table_counts(&fix.io),
            ref_counts,
            "mid-step {step:?}: row counts must match the uninterrupted run"
        );
        let raws = fix.io.query(&Query::table("raw_unit")).unwrap();
        let mut seqs: Vec<i64> = raws.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(
            seqs.len(),
            units.len(),
            "mid-step {step:?}: exactly one raw_unit row per unit"
        );
        assert_no_orphans(&fix.io);
    }
}

// ---------------------------------------------------------------------------
// WAL-backed recovery: resume across a real fixture teardown
// ---------------------------------------------------------------------------

struct WalFix {
    io: DmIo,
    #[allow(dead_code)]
    mgr: SessionManager,
    session: Arc<Session>,
    cfg: IngestConfig,
}

fn wal_fixture(dir: &Path, options: WalOptions) -> WalFix {
    wal_fixture_on(dir, options, None)
}

fn wal_fixture_on(dir: &Path, options: WalOptions, storage: Option<StorageConfig>) -> WalFix {
    let db = Database::open(
        "ingest-crash-wal",
        DbOptions {
            storage: storage.unwrap_or_default(),
            wal_path: Some(dir.join("wal.log")),
            wal: options,
        },
    )
    .unwrap();
    let fresh = {
        let mut conn = db.connect();
        match schema::create_generic(&mut conn) {
            Ok(()) => {
                schema::create_domain(&mut conn).unwrap();
                true
            }
            // Schema already replayed from the log: recovery open.
            Err(_) => false,
        }
    };
    let files = FileStore::new();
    for (id, name) in [(1u32, "raw"), (2u32, "derived")] {
        files.register(Archive::new(
            id,
            name,
            ArchiveTier::OnlineDisk,
            1 << 26,
            Box::new(DirBackend::new(dir.join(name)).unwrap()),
        ));
    }
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(files),
        Clock::starting_at(0),
        &IoConfig::default(),
    );
    if fresh {
        setup_node(&io);
    } else {
        io.reseed_after_recovery();
    }
    let (mgr, session) = login(&io);
    let catalog = if fresh {
        make_catalog(&io, &session)
    } else {
        let r = io
            .query(&Query::table("catalog").filter(Expr::eq("name", "extended")))
            .unwrap();
        r.rows[0][0].as_int().unwrap()
    };
    WalFix {
        io,
        mgr,
        session,
        cfg: IngestConfig::new(1, 2, catalog),
    }
}

#[test]
fn wal_recovery_resumes_across_process_death() {
    let seed = effective_seed();
    println!("ingest_crash seed={seed}");
    let units = workload(seed);
    let victim = units[units.len() / 2].seq;
    let dir = std::env::temp_dir().join(format!("hedc-ingest-crash-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let options = WalOptions {
        fsync: false,
        group_commit: 4,
    };

    let fix = wal_fixture(&dir, options);
    let crashed = pipeline::ingest(
        &fix.io,
        &fix.session,
        &units,
        &fix.cfg,
        &crashing(victim, CrashSite::MidStep(JournalStep::View)),
    );
    assert!(matches!(crashed, Err(DmError::Crashed(_))));
    // "Process death": only the WAL file and the archive directories survive.
    drop(fix);

    let fix = wal_fixture(&dir, options);
    let resumed = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
    assert!(resumed.fully_accounted());
    assert_eq!(resumed.failed, 0);
    let v = resumed.units.iter().find(|u| u.seq == victim).unwrap();
    assert!(
        matches!(
            v.status,
            UnitStatus::Resumed {
                from: JournalStep::Events,
                ..
            }
        ),
        "victim must resume after its last journaled step: {:?}",
        v.status
    );
    assert!(
        resumed.skipped >= 1,
        "pre-crash units skip via their trails"
    );

    // No duplicates, no orphans — even though recovery reseeded the id space.
    let raws = fix.io.query(&Query::table("raw_unit")).unwrap();
    let mut seqs: Vec<i64> = raws.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), units.len());
    assert_no_orphans(&fix.io);

    // Idempotence: a third pass over the same batch is all skips.
    let again = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
    assert_eq!(again.skipped, units.len());
    assert_eq!(again.ingested + again.resumed + again.failed, 0);

    drop(fix);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Paged backend: same recovery contract as the memory backend
// ---------------------------------------------------------------------------

fn small_paged() -> StorageConfig {
    StorageConfig {
        page_size: 1024,
        cache_pages: 128,
        ..StorageConfig::paged()
    }
}

/// A paged node crashed at every step boundary resumes to a state
/// byte-identical to an uninterrupted *memory* twin: the storage engine is
/// invisible to the recovery contract.
#[test]
fn paged_boundary_crash_resumes_byte_identical_to_memory_twin() {
    let seed = effective_seed();
    println!("ingest_crash seed={seed}");
    let units = workload(seed);
    let victim = units[units.len() / 2].seq;

    let reference = fixture();
    pipeline::ingest(
        &reference.io,
        &reference.session,
        &units,
        &reference.cfg,
        &serial(),
    )
    .unwrap();
    let ref_dump = dump(&reference.io);

    for step in [
        JournalStep::Admitted,
        JournalStep::RawRow,
        JournalStep::Done,
    ] {
        let fix = fixture_on(Some(small_paged()));
        let crashed = pipeline::ingest(
            &fix.io,
            &fix.session,
            &units,
            &fix.cfg,
            &crashing(victim, CrashSite::Boundary(step)),
        );
        assert!(matches!(crashed, Err(DmError::Crashed(_))));
        let resumed = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
        assert!(resumed.fully_accounted(), "paged boundary {step:?}");
        assert_eq!(resumed.failed, 0, "paged boundary {step:?}");
        assert_eq!(
            dump(&fix.io),
            ref_dump,
            "paged boundary {step:?}: state must match the memory twin byte-for-byte"
        );
        assert_no_orphans(&fix.io);
    }
}

/// WAL-backed paged node killed for real: the store's scratch file dies
/// with the process, and replaying the WAL into a fresh paged store
/// reproduces the exact state — same contract as the memory backend.
#[test]
fn paged_wal_recovery_resumes_across_process_death() {
    let seed = effective_seed();
    println!("ingest_crash seed={seed}");
    let units = workload(seed);
    let victim = units[units.len() / 2].seq;
    let dir = std::env::temp_dir().join(format!(
        "hedc-ingest-crash-paged-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let options = WalOptions {
        fsync: false,
        group_commit: 4,
    };

    let fix = wal_fixture_on(&dir, options, Some(small_paged()));
    let crashed = pipeline::ingest(
        &fix.io,
        &fix.session,
        &units,
        &fix.cfg,
        &crashing(victim, CrashSite::MidStep(JournalStep::View)),
    );
    assert!(matches!(crashed, Err(DmError::Crashed(_))));
    drop(fix);

    let fix = wal_fixture_on(&dir, options, Some(small_paged()));
    let resumed = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
    assert!(resumed.fully_accounted());
    assert_eq!(resumed.failed, 0);
    let v = resumed.units.iter().find(|u| u.seq == victim).unwrap();
    assert!(
        matches!(
            v.status,
            UnitStatus::Resumed {
                from: JournalStep::Events,
                ..
            }
        ),
        "victim must resume after its last journaled step: {:?}",
        v.status
    );
    let raws = fix.io.query(&Query::table("raw_unit")).unwrap();
    let mut seqs: Vec<i64> = raws.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), units.len());
    assert_no_orphans(&fix.io);

    // Idempotence on the recovered paged node.
    let again = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
    assert_eq!(again.skipped, units.len());
    assert_eq!(again.ingested + again.resumed + again.failed, 0);

    drop(fix);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Report accounting and parallel/serial agreement
// ---------------------------------------------------------------------------

#[test]
fn failed_units_are_reported_not_lost() {
    let seed = effective_seed();
    println!("ingest_crash seed={seed}");
    let units = workload(seed);
    let victim = &units[1];
    let fix = fixture();

    // A poisoned journal trail: claims `raw_row` completed but carries no
    // state, so the victim's events step fails with an integrity error.
    let id = fix.io.next_id();
    fix.io
        .insert(
            "op_ingest_journal",
            vec![
                Value::Int(id),
                Value::Text(victim.archive_path()),
                Value::Int(i64::from(victim.seq)),
                Value::Text("raw_row".into()),
                Value::Text("{}".into()),
                Value::Int(0),
            ],
        )
        .unwrap();

    let report = pipeline::ingest(&fix.io, &fix.session, &units, &fix.cfg, &serial()).unwrap();
    assert!(
        report.fully_accounted(),
        "a failed unit must keep its slot in the accounting"
    );
    assert_eq!(report.failed, 1);
    assert_eq!(report.ingested, units.len() - 1);
    let failed = report.units.iter().find(|u| u.seq == victim.seq).unwrap();
    assert!(matches!(failed.status, UnitStatus::Failed));
    assert!(matches!(failed.error, Some(DmError::Integrity(_))));
}

#[test]
fn parallel_ingest_matches_serial_semantics() {
    let seed = effective_seed();
    println!("ingest_crash seed={seed}");
    let units = workload(seed);

    let s = fixture();
    let serial_report = pipeline::ingest(&s.io, &s.session, &units, &s.cfg, &serial()).unwrap();
    let p = fixture();
    let parallel_report = pipeline::ingest(
        &p.io,
        &p.session,
        &units,
        &p.cfg,
        &IngestOptions::with_workers(4),
    )
    .unwrap();

    assert_eq!(parallel_report.failed, 0);
    assert_eq!(parallel_report.ingested, serial_report.ingested);
    assert_eq!(parallel_report.hle_count, serial_report.hle_count);
    assert_eq!(parallel_report.bytes_stored, serial_report.bytes_stored);
    // Ids interleave differently across workers, but the shape of the state
    // must agree row-for-row in count, and path-for-path in the archives.
    assert_eq!(table_counts(&s.io), table_counts(&p.io));
    for id in s.io.files.archive_ids() {
        let mut a = s.io.files.archive(id).unwrap().list();
        let mut b = p.io.files.archive(id).unwrap().list();
        a.sort();
        b.sort();
        assert_eq!(a, b, "archive {id} contents must agree");
    }
    assert_no_orphans(&p.io);
}
