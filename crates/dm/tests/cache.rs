//! Integration suite for the sharded DM result cache: hit/miss behavior,
//! write-through invalidation across every mutating semantic-layer
//! service, per-session scope isolation, byte-budget eviction, and a
//! multi-threaded read/write storm proving no stale read survives an
//! invalidation.

use hedc_cache::CacheConfig;
use hedc_dm::{
    create_user, schema, AnaSpec, Clock, DmIo, FilePayload, HleSpec, IoConfig, Partitioning,
    Rights, Services, Session, SessionKind, SessionManager,
};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{AggFunc, Database, Expr, Query};
use std::sync::Arc;

struct Fixture {
    io: DmIo,
    #[allow(dead_code)]
    mgr: SessionManager,
    alice: Arc<Session>,
    bob: Arc<Session>,
}

fn fixture_with(cache: CacheConfig) -> Fixture {
    let db = Database::in_memory("cache-int-test");
    let mut conn = db.connect();
    schema::create_generic(&mut conn).unwrap();
    schema::create_domain(&mut conn).unwrap();
    let files = FileStore::new();
    files.register(Archive::in_memory(
        1,
        "disk",
        ArchiveTier::OnlineDisk,
        1 << 24,
    ));
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(files),
        Clock::starting_at(0),
        &IoConfig {
            cache: Some(cache),
            ..IoConfig::default()
        },
    );
    create_user(&io, "alice", "a", "sci", Rights::SCIENTIST).unwrap();
    create_user(&io, "bob", "b", "sci", Rights::SCIENTIST).unwrap();
    let mgr = SessionManager::new();
    let ca = mgr.authenticate(&io, "alice", "a", "ip-a").unwrap();
    let cb = mgr.authenticate(&io, "bob", "b", "ip-b").unwrap();
    let alice = mgr.lookup("ip-a", ca, SessionKind::Hle).unwrap();
    let bob = mgr.lookup("ip-b", cb, SessionKind::Hle).unwrap();
    Fixture {
        io,
        mgr,
        alice,
        bob,
    }
}

fn fixture() -> Fixture {
    fixture_with(CacheConfig::default())
}

fn ana_spec(hle_id: i64, fp: &str) -> AnaSpec {
    AnaSpec {
        hle_id,
        kind: "imaging".into(),
        fingerprint: fp.to_string(),
        t_start: 0,
        t_end: 1000,
        energy_lo: 3.0,
        energy_hi: 100.0,
        param_grid: Some(64.0),
        param_bins: None,
        param_bin_ms: None,
        duration_ms: 60_000,
        cpu_ms: 55_000,
        output_bytes: 56_000,
        product_type: "image".into(),
        calib_version: 1,
    }
}

/// Executed-query delta on the database backing `table` while `f` runs.
fn db_queries_during<T>(io: &DmIo, table: &str, f: impl FnOnce() -> T) -> (T, u64) {
    let before = io.db_for(table).stats();
    let out = f();
    let delta = io.db_for(table).stats().since(&before);
    (out, delta.queries)
}

#[test]
fn repeated_query_hits_the_cache_not_the_database() {
    let f = fixture();
    let svc = Services::new(&f.io);
    svc.create_hle(&f.alice, &HleSpec::window(0, 100, "flare"))
        .unwrap();
    let q = Query::table("hle").filter(Expr::eq("event_type", "flare"));

    let (first, cold_queries) =
        db_queries_during(&f.io, "hle", || svc.query(&f.alice, q.clone()).unwrap());
    assert_eq!(cold_queries, 1, "cold read executes SQL");
    let (second, warm_queries) =
        db_queries_during(&f.io, "hle", || svc.query(&f.alice, q.clone()).unwrap());
    assert_eq!(warm_queries, 0, "warm read must not touch the database");
    assert_eq!(first.rows, second.rows);

    let stats = f.io.caches().unwrap().queries.stats();
    assert!(stats.hits >= 1, "{stats:?}");
    assert!(stats.misses >= 1, "{stats:?}");
}

#[test]
fn every_mutating_service_invalidates_what_it_writes() {
    let f = fixture();
    let svc = Services::new(&f.io);
    let hle_count = || {
        svc.query(&f.alice, Query::table("hle").aggregate(AggFunc::CountStar))
            .unwrap()
            .scalar_int()
            .unwrap()
    };
    let ana_count = || {
        svc.query(&f.alice, Query::table("ana").aggregate(AggFunc::CountStar))
            .unwrap()
            .scalar_int()
            .unwrap()
    };
    let catalog_count = || {
        svc.query(
            &f.alice,
            Query::table("catalog").aggregate(AggFunc::CountStar),
        )
        .unwrap()
        .scalar_int()
        .unwrap()
    };

    // create_hle invalidates `hle` reads.
    assert_eq!(hle_count(), 0);
    let hle = svc
        .create_hle(&f.alice, &HleSpec::window(0, 100, "flare"))
        .unwrap();
    assert_eq!(hle_count(), 1, "create_hle left a stale count");

    // publish (an UPDATE) invalidates `hle` reads: bob's warm view of
    // public rows must pick the row up.
    let bob_view = || svc.query(&f.bob, Query::table("hle")).unwrap().rows.len();
    assert_eq!(bob_view(), 0);
    svc.publish(&f.alice, "hle", hle).unwrap();
    assert_eq!(bob_view(), 1, "publish left a stale scoped read");

    // import_analysis commits through a raw transaction; `ana` (and the
    // location tables) must still invalidate.
    assert_eq!(ana_count(), 0);
    let (ana_id, _) = svc
        .import_analysis(
            &f.alice,
            &ana_spec(hle, "fp-inv"),
            &[FilePayload {
                archive_id: 1,
                path: "inv/image.fits".into(),
                role: "image".into(),
                data: vec![7; 64],
            }],
        )
        .unwrap();
    assert_eq!(ana_count(), 1, "import_analysis left a stale count");

    // delete_analysis (raw transaction over ana + loc tables).
    svc.delete_analysis(&f.alice, ana_id).unwrap();
    assert_eq!(ana_count(), 0, "delete_analysis left a stale count");

    // create_catalog / add_to_catalog / delete_hle.
    let cats_before = catalog_count();
    let cat = svc
        .create_catalog(&f.alice, "mine", "private", None)
        .unwrap();
    assert_eq!(
        catalog_count(),
        cats_before + 1,
        "create_catalog left a stale count"
    );
    let members = || svc.catalog_members(&f.alice, cat).unwrap().len();
    assert_eq!(members(), 0);
    svc.add_to_catalog(&f.alice, cat, hle).unwrap();
    assert_eq!(members(), 1, "add_to_catalog left a stale membership read");

    svc.delete_hle(&f.alice, hle).unwrap();
    assert_eq!(hle_count(), 0, "delete_hle left a stale count");
    assert_eq!(
        members(),
        0,
        "delete_hle cascades to catalog_member; the cached read must see it"
    );
}

#[test]
fn cached_rows_never_cross_session_scopes() {
    let f = fixture();
    let svc = Services::new(&f.io);
    svc.create_hle(&f.alice, &HleSpec::window(0, 100, "flare"))
        .unwrap();
    let q = Query::table("hle").filter(Expr::eq("event_type", "flare"));

    // Warm alice's entry first, so a scope-confused cache would have
    // something to leak to bob.
    let mine = svc.query(&f.alice, q.clone()).unwrap();
    assert_eq!(mine.rows.len(), 1);
    let theirs = svc.query(&f.bob, q.clone()).unwrap();
    assert!(
        theirs.rows.is_empty(),
        "bob was served alice's private rows from cache"
    );
    // And warm entries for both scopes stay separate on repeat.
    assert_eq!(svc.query(&f.alice, q.clone()).unwrap().rows.len(), 1);
    assert!(svc.query(&f.bob, q).unwrap().rows.is_empty());
}

#[test]
fn byte_budget_evicts_but_never_corrupts() {
    // A cache far too small for the working set: plenty of evictions,
    // same answers as the database.
    let f = fixture_with(CacheConfig {
        capacity_bytes: 4096,
        shards: 1,
        ttl: None,
    });
    let svc = Services::new(&f.io);
    for k in 0..32u64 {
        svc.create_hle(&f.alice, &HleSpec::window(k * 10, k * 10 + 5, "flare"))
            .unwrap();
    }
    for round in 0..3 {
        for k in 0..32i64 {
            let r = svc
                .query(
                    &f.alice,
                    Query::table("hle").filter(Expr::between("t_start", k * 10, k * 10 + 1)),
                )
                .unwrap();
            assert_eq!(r.rows.len(), 1, "round {round} window {k}");
        }
    }
    let caches = f.io.caches().unwrap();
    assert!(
        caches.queries.stats().evictions > 0,
        "{:?}",
        caches.queries.stats()
    );
    assert!(
        caches.queries.bytes() <= 4096,
        "resident {} over budget",
        caches.queries.bytes()
    );
}

#[test]
fn concurrent_readers_never_see_a_stale_count() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const ROWS_PER_WRITER: u64 = 50;

    let f = Arc::new(fixture());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let f = Arc::clone(&f);
            scope.spawn(move || {
                let svc = Services::new(&f.io);
                for k in 0..ROWS_PER_WRITER {
                    let t0 = (w as u64) * 100_000 + k * 100;
                    svc.create_hle(&f.alice, &HleSpec::window(t0, t0 + 50, "storm"))
                        .unwrap();
                }
            });
        }
        for _ in 0..READERS {
            let f = Arc::clone(&f);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let svc = Services::new(&f.io);
                let q = Query::table("hle")
                    .filter(Expr::eq("event_type", "storm"))
                    .aggregate(AggFunc::CountStar);
                let mut floor = 0i64;
                // Keep reading until the writers are done, then once more.
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let n = svc
                        .query(&f.alice, q.clone())
                        .unwrap()
                        .scalar_int()
                        .unwrap();
                    // Rows are only ever added: any decrease means a stale
                    // cached count was served after an invalidation.
                    assert!(
                        n >= floor,
                        "stale read: count went backwards {floor} -> {n}"
                    );
                    floor = n;
                    if finished {
                        break;
                    }
                }
            });
        }
        // Writer threads are the first WRITERS handles; scope joins all at
        // the end, but readers poll `done`, so flip it when writers finish.
        // (Spawn order guarantees nothing about completion; re-check via a
        // dedicated monitor thread.)
        let f_mon = Arc::clone(&f);
        let done_mon = Arc::clone(&done);
        scope.spawn(move || {
            let svc = Services::new(&f_mon.io);
            let total = (WRITERS as u64 * ROWS_PER_WRITER) as i64;
            let q = Query::table("hle")
                .filter(Expr::eq("event_type", "storm"))
                .aggregate(AggFunc::CountStar);
            loop {
                let n = svc
                    .query(&f_mon.alice, q.clone())
                    .unwrap()
                    .scalar_int()
                    .unwrap();
                if n == total {
                    done_mon.store(true, Ordering::Release);
                    break;
                }
                std::thread::yield_now();
            }
        });
    });

    // After the storm the cached count matches the database exactly.
    let svc = Services::new(&f.io);
    let n = svc
        .query(
            &f.alice,
            Query::table("hle")
                .filter(Expr::eq("event_type", "storm"))
                .aggregate(AggFunc::CountStar),
        )
        .unwrap()
        .scalar_int()
        .unwrap();
    assert_eq!(n, (WRITERS as u64 * ROWS_PER_WRITER) as i64);
    let stats = f.io.caches().unwrap().queries.stats();
    assert!(stats.invalidations + stats.misses > 0, "{stats:?}");
}

#[test]
fn disabled_cache_changes_nothing() {
    // The default IoConfig carries no cache; the same flows must work
    // without one (and `caches()` reports None).
    let db = Database::in_memory("cache-off-test");
    let mut conn = db.connect();
    schema::create_generic(&mut conn).unwrap();
    schema::create_domain(&mut conn).unwrap();
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(FileStore::new()),
        Clock::starting_at(0),
        &IoConfig::default(),
    );
    assert!(io.caches().is_none());
    create_user(&io, "solo", "s", "sci", Rights::SCIENTIST).unwrap();
    let mgr = SessionManager::new();
    let c = mgr.authenticate(&io, "solo", "s", "ip").unwrap();
    let solo = mgr.lookup("ip", c, SessionKind::Hle).unwrap();
    let svc = Services::new(&io);
    svc.create_hle(&solo, &HleSpec::window(0, 10, "flare"))
        .unwrap();
    let (r, executed) = {
        let before = io.db_for("hle").stats();
        let r = svc.query(&solo, Query::table("hle")).unwrap();
        let delta = io.db_for("hle").stats().since(&before);
        (r, delta.queries)
    };
    assert_eq!(r.rows.len(), 1);
    assert_eq!(executed, 1, "without a cache every read executes");
}
