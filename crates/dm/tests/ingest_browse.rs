//! Concurrent ingest vs. browse (§6: loading must not stop the readers).
//!
//! A staged parallel ingest runs while browser threads hammer the cached,
//! batched read path (result cache + `IN`-list lookups + `resolve_batch`).
//! Invariants, checked on every browse snapshot:
//!
//! * **no stale cache hits** — observed `raw_unit` counts never decrease,
//!   and a cache entry warmed before the load never survives the
//!   write-through generation bumps;
//! * **no torn reads** — any `raw_unit` row visible in a snapshot already
//!   has its location rows (the journal orders `raw_stored` before
//!   `raw_row`), so every batched resolve must succeed.

use hedc_cache::CacheConfig;
use hedc_dm::{
    create_user, pipeline, schema, Clock, DmIo, IngestConfig, IngestOptions, IoConfig, NameType,
    Names, Partitioning, Rights, Services, Session, SessionKind, SessionManager,
};
use hedc_events::{generate, package, GenConfig, TelemetryUnit};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{Database, DbOptions, Expr, Query, StorageConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn effective_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xB40_053)
}

fn workload(seed: u64) -> Vec<TelemetryUnit> {
    let t = generate(&GenConfig {
        seed,
        start_ms: 0,
        duration_ms: 6 * 60 * 1000,
        background_rate: 30.0,
        flares_per_hour: 30.0,
        grbs_per_day: 2.0,
        ..GenConfig::default()
    });
    let units = package(&t, 1_000, 1);
    assert!(units.len() >= 8, "need enough units for a racy window");
    units
}

struct Fix {
    io: DmIo,
    #[allow(dead_code)]
    mgr: SessionManager,
    session: Arc<Session>,
    cfg: IngestConfig,
}

fn fixture() -> Fix {
    fixture_on(None)
}

/// `storage: Some(..)` opens the metadata database on the paged B-tree
/// backend; `None` uses the in-process heap.
fn fixture_on(storage: Option<StorageConfig>) -> Fix {
    let db = match storage {
        Some(storage) => Database::open(
            "ingest-browse",
            DbOptions {
                storage,
                ..DbOptions::default()
            },
        )
        .unwrap(),
        None => Database::in_memory("ingest-browse"),
    };
    {
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
    }
    let files = FileStore::new();
    files.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 26,
    ));
    files.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineDisk,
        1 << 26,
    ));
    let io = DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(files),
        Clock::starting_at(0),
        &IoConfig {
            cache: Some(CacheConfig::default()),
            ..IoConfig::default()
        },
    );
    let names = Names::new(&io);
    for status in io.files.statuses() {
        names
            .register_archive(status.id, &format!("{:?}", status.tier), "", None)
            .unwrap();
    }
    create_user(&io, "loader", "pw", "sci", Rights::SCIENTIST).unwrap();
    let mgr = SessionManager::new();
    let cookie = mgr.authenticate(&io, "loader", "pw", "t").unwrap();
    let session = mgr.lookup("t", cookie, SessionKind::Hle).unwrap();
    let svc = Services::new(&io);
    let catalog = svc
        .create_catalog(&session, "extended", "system", None)
        .unwrap();
    svc.publish(&session, "catalog", catalog).unwrap();
    Fix {
        io,
        mgr,
        session,
        cfg: IngestConfig::new(1, 2, catalog),
    }
}

/// One browse snapshot over the cached, batched read path. Returns the
/// observed unit count; panics on any torn read.
fn browse_once(io: &DmIo) -> usize {
    let raws = io.query(&Query::table("raw_unit")).unwrap();
    let item_ids: Vec<i64> = raws
        .rows
        .iter()
        .map(|r| r[6].as_int().expect("raw_unit.item_id"))
        .collect();
    if item_ids.is_empty() {
        return 0;
    }
    // Batched IN-list lookup: every visible unit's location rows must
    // already exist (raw_stored journals before raw_row).
    let entries = io
        .query(
            &Query::table("loc_entry").filter(Expr::in_list("item_id", item_ids.iter().copied())),
        )
        .unwrap();
    let located: std::collections::HashSet<i64> = entries
        .rows
        .iter()
        .map(|r| r[1].as_int().unwrap())
        .collect();
    for id in &item_ids {
        assert!(
            located.contains(id),
            "torn read: raw_unit item {id} visible without its loc_entry"
        );
    }
    // Batched name mapping must resolve every visible unit.
    let names = Names::new(io);
    for (id, res) in item_ids
        .iter()
        .zip(names.resolve_batch(&item_ids, NameType::File))
    {
        let resolved = res.unwrap_or_else(|e| panic!("resolve_batch({id}): {e}"));
        assert!(!resolved.is_empty(), "item {id} resolved to nothing");
    }
    item_ids.len()
}

#[test]
fn browse_stays_consistent_under_concurrent_ingest() {
    exercise_browse_under_ingest(fixture());
}

/// Same invariants on the paged backend, where browse snapshots come from
/// the published MVCC registry instead of the catalog lock: a reader holds
/// a consistent point-in-time view while the ingest writers run, and never
/// waits behind them.
#[test]
fn browse_stays_consistent_under_concurrent_ingest_paged() {
    let fix = fixture_on(Some(StorageConfig {
        page_size: 2048,
        cache_pages: 256,
        ..StorageConfig::paged()
    }));
    // Paged tables publish snapshots from the moment they are created.
    let db = &fix.io.databases()[0];
    let pinned = db.snapshot("raw_unit").expect("paged table publishes");
    assert_eq!(pinned.len(), 0);
    exercise_browse_under_ingest(fix);
    // The pre-ingest snapshot still reads its original (empty) state: MVCC
    // kept the old version alive for the pinned reader.
    assert_eq!(pinned.len(), 0);
    assert!(pinned.scan_ids().is_empty());
}

fn exercise_browse_under_ingest(fix: Fix) {
    let seed = effective_seed();
    println!("ingest_browse seed={seed}");
    let units = workload(seed);

    // Warm the cache with the empty pre-load answer: if any write-through
    // generation bump is missed, this entry resurfaces as a stale hit below.
    assert_eq!(
        fix.io.query(&Query::table("raw_unit")).unwrap().rows.len(),
        0
    );
    assert_eq!(fix.io.query(&Query::table("hle")).unwrap().rows.len(), 0);

    let done = AtomicBool::new(false);
    let report = std::thread::scope(|s| {
        let browsers: Vec<_> = (0..2)
            .map(|_| {
                let (io, done) = (&fix.io, &done);
                s.spawn(move || {
                    let mut last = 0usize;
                    let mut snapshots = 0usize;
                    while !done.load(Ordering::Relaxed) {
                        let n = browse_once(io);
                        assert!(
                            n >= last,
                            "stale cache hit: unit count fell from {last} to {n}"
                        );
                        last = n;
                        snapshots += 1;
                    }
                    snapshots
                })
            })
            .collect();

        let report = pipeline::ingest(
            &fix.io,
            &fix.session,
            &units,
            &fix.cfg,
            &IngestOptions::with_workers(2),
        )
        .unwrap();
        done.store(true, Ordering::Relaxed);
        let snapshots: usize = browsers.into_iter().map(|b| b.join().unwrap()).sum();
        assert!(snapshots > 0, "browsers must have observed the load");
        report
    });

    assert!(report.fully_accounted());
    assert_eq!(report.failed, 0);
    assert_eq!(report.ingested, units.len());

    // Post-load reads go through the same cache: the pre-load entries must
    // have been invalidated by the load's generation bumps.
    assert_eq!(
        fix.io.query(&Query::table("raw_unit")).unwrap().rows.len(),
        units.len()
    );
    assert_eq!(
        fix.io.query(&Query::table("hle")).unwrap().rows.len(),
        report.hle_count
    );
    assert_eq!(browse_once(&fix.io), units.len());

    // The loader's session-scoped view agrees with the internal one.
    let svc = Services::new(&fix.io);
    let visible = svc.query(&fix.session, Query::table("raw_unit")).unwrap();
    assert_eq!(visible.rows.len(), units.len());

    // Value sanity on one batched row: path round-trips through the store.
    let raws = fix.io.query(&Query::table("raw_unit")).unwrap();
    let item = raws.rows[0][6].as_int().unwrap();
    let entries = fix
        .io
        .query(&Query::table("loc_entry").filter(Expr::eq("item_id", item)))
        .unwrap();
    let path = entries.rows[0][4].as_text().unwrap();
    let archive = entries.rows[0][3].as_int().unwrap() as u32;
    assert!(fix.io.files.exists(archive, path));
}
