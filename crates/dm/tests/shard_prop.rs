//! Seeded scatter-gather oracle: a [`ShardedDm`] over 2–8 shards must be
//! observably indistinguishable from one unsharded DM node holding the
//! same rows.
//!
//! Every case derives from one printed seed (`HEDC_TEST_SEED` overrides,
//! `scripts/check.sh --seed <seed>` replays): the workload, the shard
//! count, the partitioning scheme and the query mix are all pure functions
//! of it. Queries whose `ORDER BY` ends in the unique `id` column — and
//! every aggregate over integer columns — are asserted **byte-identical**
//! (`columns` + `rows`); un-ordered row queries are asserted equal as
//! multisets, which is the documented carve-out (shard-concatenation order
//! replaces single-node scan order).

use hedc_dm::{
    schema, splitmix64, Clock, DmIo, DmNode, DmResult, FanoutPlan, IoConfig, NameType, Names,
    Partitioning, ResolvedName, ShardMap, ShardedDm,
};
use hedc_filestore::FileStore;
use hedc_metadb::{AggFunc, CmpOp, Database, Expr, OrderDir, Query, QueryResult, Value};
use std::sync::{Arc, Mutex};

const BASE_SEED: u64 = 0x5AAD_0010;

fn effective_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(BASE_SEED)
}

/// Deterministic splitmix stream, the same generator the fault plans use.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// A DM store with the full schema and nothing else.
fn store(label: &str) -> Arc<DmIo> {
    let db = Database::in_memory(label);
    {
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
    }
    Arc::new(DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(FileStore::new()),
        Clock::starting_at(0),
        &IoConfig::default(),
    ))
}

/// A local [`DmNode`] over a shared store.
struct LocalNode {
    io: Arc<DmIo>,
    label: String,
}

impl DmNode for LocalNode {
    fn node_id(&self) -> String {
        self.label.clone()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.io.query(q)
    }
    fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        Names::new(&self.io).resolve(item_id, want)
    }
}

/// A [`DmNode`] that records every query it serves — the probe for the
/// LIMIT-pushdown assertions.
struct RecordingNode {
    inner: LocalNode,
    seen: Mutex<Vec<Query>>,
}

impl DmNode for RecordingNode {
    fn node_id(&self) -> String {
        self.inner.node_id()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.seen.lock().unwrap().push(q.clone());
        self.inner.execute_query(q)
    }
}

/// One synthetic HLE row. Integer-valued numerics keep SUM/AVG in the
/// byte-identical regime; `peak_rate` is a float for MIN/MAX coverage.
fn hle_row(id: i64, rng: &mut Rng) -> Vec<Value> {
    let t0 = rng.below(4_000) as i64;
    let dur = 1 + rng.below(400) as i64;
    let kinds = ["flare", "grb", "background", "calibration"];
    let kind = kinds[rng.below(kinds.len() as u64) as usize];
    let n_photons = if rng.below(10) == 0 {
        Value::Null
    } else {
        Value::Int(rng.below(100_000) as i64)
    };
    vec![
        Value::Int(id),
        Value::Int(1 + rng.below(5) as i64),       // owner
        Value::Int(rng.below(64) as i64),          // item_id
        Value::Timestamp(t0),                      // time_start
        Value::Timestamp(t0 + dur),                // time_end
        Value::Float(3.0),                         // energy_lo
        Value::Float(20_000.0),                    // energy_hi
        Value::Text(kind.into()),                  // event_type
        Value::Null,                               // flare_class
        Value::Float(rng.below(1_000) as f64),     // peak_rate
        Value::Null,                               // hardness
        n_photons,                                 // n_photons
        Value::Int(1),                             // calib_version
        Value::Int(1),                             // version
        Value::Bool(rng.below(2) == 0),            // public
        Value::Null,                               // title
        Value::Null,                               // notes
        Value::Timestamp(t0),                      // created_ms
        Value::Text("user".into()),                // source
        Value::Null,                               // position_x
        Value::Null,                               // position_y
        Value::Null,                               // goes_flux
        Value::Null,                               // active_region
        Value::Int(rng.below(5) as i64),           // quality
        Value::Bool(false),                        // obsolete
    ]
}

/// A seeded cluster: `shards` stores partitioned per `map`, the same rows
/// mirrored into one unsharded oracle store.
struct Cluster {
    sharded: ShardedDm,
    oracle: Arc<DmIo>,
    rows: Vec<Vec<Value>>,
}

fn cluster(seed: u64, shards: u32, map: ShardMap, n_rows: usize) -> Cluster {
    let mut rng = Rng(seed);
    let stores: Vec<Arc<DmIo>> = (0..shards).map(|s| store(&format!("shard-{s}"))).collect();
    let oracle = store("oracle");
    let mut rows = Vec::with_capacity(n_rows);
    for id in 0..n_rows as i64 {
        let row = hle_row(id, &mut rng);
        let spec = map.sharding("hle").expect("hle must be sharded");
        let key_col = match spec.column.as_str() {
            "id" => 0,
            "time_end" => 4,
            other => panic!("unexpected shard key {other}"),
        };
        let key = match &row[key_col] {
            Value::Int(i) => *i,
            Value::Timestamp(t) => *t,
            other => panic!("non-integer shard key {other:?}"),
        };
        let owner = map.shard_for("hle", key).unwrap();
        stores[owner as usize].insert("hle", row.clone()).unwrap();
        oracle.insert("hle", row.clone()).unwrap();
        rows.push(row);
    }
    let replica_sets: Vec<Vec<Arc<dyn DmNode>>> = stores
        .iter()
        .enumerate()
        .map(|(s, io)| {
            vec![Arc::new(LocalNode {
                io: Arc::clone(io),
                label: format!("s{s}"),
            }) as Arc<dyn DmNode>]
        })
        .collect();
    Cluster {
        sharded: ShardedDm::new(replica_sets, map),
        oracle,
        rows,
    }
}

/// The seeded partitioning for one scenario round: alternate hash-by-id
/// and range-by-time_end.
fn seeded_map(rng: &mut Rng, shards: u32) -> ShardMap {
    if rng.below(2) == 0 {
        ShardMap::new(shards).with_hash("hle", "id", 16)
    } else {
        // Cuts inside the generated time_end domain [1, 4400).
        ShardMap::new(shards).with_even_range("hle", "time_end", 0, 4_400)
    }
}

// ---------------------------------------------------------------------------
// Seeded query mix
// ---------------------------------------------------------------------------

/// A seeded row query whose final ORDER BY key is the unique `id`: totally
/// ordered, so the sharded answer must be byte-identical.
fn ordered_query(rng: &mut Rng) -> Query {
    let mut q = Query::table("hle");
    q = match rng.below(4) {
        0 => q.select(&["id", "event_type", "n_photons"]),
        1 => q.select(&["id", "time_end"]),
        2 => q.select(&["id", "owner", "peak_rate"]),
        _ => q,
    };
    q = match rng.below(5) {
        0 => {
            let lo = rng.below(4_000) as i64;
            q.filter(Expr::between("time_end", lo, lo + rng.below(2_000) as i64))
        }
        1 => q.filter(Expr::eq("event_type", "flare")),
        2 => q.filter(Expr::cmp("time_end", CmpOp::Ge, rng.below(4_000) as i64)),
        3 => q.filter(Expr::eq("public", true)),
        _ => q,
    };
    if rng.below(2) == 0 {
        q = q.order_by("time_end", OrderDir::Desc);
    }
    q = q.order_by("id", OrderDir::Asc);
    if rng.below(2) == 0 {
        q = q.limit(1 + rng.below(40) as usize);
    }
    if rng.below(3) == 0 {
        q = q.offset(rng.below(20) as usize);
    }
    q
}

/// A seeded integer-aggregate query: byte-identical under the merge.
fn aggregate_query(rng: &mut Rng) -> Query {
    let mut q = Query::table("hle");
    if rng.below(2) == 0 {
        q = q.group_by("event_type");
    }
    q = q.aggregate(AggFunc::CountStar);
    q = match rng.below(4) {
        0 => q.aggregate(AggFunc::Sum("n_photons".into())),
        1 => q.aggregate(AggFunc::Avg("n_photons".into())),
        2 => q
            .aggregate(AggFunc::Min("peak_rate".into()))
            .aggregate(AggFunc::Max("peak_rate".into())),
        _ => q.aggregate(AggFunc::Count("n_photons".into())),
    };
    if rng.below(4) == 0 {
        let lo = rng.below(3_000) as i64;
        q = q.filter(Expr::between("time_end", lo, lo + 1_500));
    }
    q
}

fn multiset(r: &QueryResult) -> Vec<String> {
    let mut out: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// The oracle suite
// ---------------------------------------------------------------------------

#[test]
fn sharded_answers_are_byte_identical_to_the_unsharded_oracle() {
    let seed = effective_seed();
    println!("shard_prop seed={seed} (replay: scripts/check.sh --seed {seed})");
    let mut rng = Rng(seed);
    for round in 0..4u64 {
        let shards = 2 + rng.below(7) as u32; // 2..=8
        let map = seeded_map(&mut rng, shards);
        let c = cluster(rng.next(), shards, map, 300);
        for case in 0..25u64 {
            let q = ordered_query(&mut rng);
            let want = c.oracle.query(&q).unwrap();
            let got = c.sharded.query(&q).unwrap();
            assert_eq!(
                got.columns, want.columns,
                "round {round} case {case}: columns diverged for {q:?}"
            );
            assert_eq!(
                got.rows, want.rows,
                "round {round} case {case}: rows diverged for {q:?}"
            );
        }
        for case in 0..25u64 {
            let q = aggregate_query(&mut rng);
            let want = c.oracle.query(&q).unwrap();
            let got = c.sharded.query(&q).unwrap();
            assert_eq!(
                (got.columns, got.rows),
                (want.columns, want.rows),
                "round {round} aggregate case {case}: {q:?}"
            );
        }
        // Un-ordered queries: multiset equality (the documented carve-out).
        for _ in 0..10u64 {
            let mut q = Query::table("hle");
            if rng.below(2) == 0 {
                q = q.filter(Expr::eq("event_type", "grb"));
            }
            let want = c.oracle.query(&q).unwrap();
            let got = c.sharded.query(&q).unwrap();
            assert_eq!(got.columns, want.columns);
            assert_eq!(multiset(&got), multiset(&want));
        }
    }
}

#[test]
fn merge_is_invariant_under_shuffled_reply_order() {
    let seed = effective_seed() ^ 0x00FF_F00D;
    println!("shard_prop seed={seed} (replay: scripts/check.sh --seed {seed})");
    let mut rng = Rng(seed);
    let shards = 5;
    let map = ShardMap::new(shards).with_hash("hle", "id", 16);
    let c = cluster(rng.next(), shards, map.clone(), 200);
    for _ in 0..20u64 {
        let q = ordered_query(&mut rng);
        let plan = FanoutPlan::new(&q);
        // Collect each shard's partial directly, then merge under several
        // seeded permutations of the reply order.
        let mut parts: Vec<QueryResult> = (0..shards)
            .map(|s| {
                c.sharded
                    .shard_router(s)
                    .execute_query(plan.pushed())
                    .unwrap()
            })
            .collect();
        let reference = plan.merge(parts.clone()).unwrap();
        for _ in 0..4 {
            // Fisher–Yates over the parts.
            for i in (1..parts.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                parts.swap(i, j);
            }
            let shuffled = plan.merge(parts.clone()).unwrap();
            assert_eq!(shuffled.columns, reference.columns);
            assert_eq!(
                shuffled.rows, reference.rows,
                "totally-ordered merge must not depend on reply order: {q:?}"
            );
        }
    }
}

#[test]
fn limit_pushdown_caps_what_each_shard_returns() {
    let seed = effective_seed() ^ 0x10_57;
    println!("shard_prop seed={seed} (replay: scripts/check.sh --seed {seed})");
    let mut rng = Rng(seed);
    let shards = 4u32;
    let map = ShardMap::new(shards).with_hash("hle", "id", 16);

    // Build the cluster by hand so every shard node records its queries.
    let stores: Vec<Arc<DmIo>> = (0..shards).map(|s| store(&format!("rec-{s}"))).collect();
    let oracle = store("rec-oracle");
    for id in 0..400i64 {
        let row = hle_row(id, &mut rng);
        let owner = map.shard_for("hle", id).unwrap();
        stores[owner as usize].insert("hle", row.clone()).unwrap();
        oracle.insert("hle", row).unwrap();
    }
    let recorders: Vec<Arc<RecordingNode>> = stores
        .iter()
        .enumerate()
        .map(|(s, io)| {
            Arc::new(RecordingNode {
                inner: LocalNode {
                    io: Arc::clone(io),
                    label: format!("rec-{s}"),
                },
                seen: Mutex::new(Vec::new()),
            })
        })
        .collect();
    let sharded = ShardedDm::new(
        recorders
            .iter()
            .map(|r| vec![Arc::clone(r) as Arc<dyn DmNode>])
            .collect(),
        map,
    );

    let q = Query::table("hle")
        .select(&["id", "event_type"])
        .order_by("n_photons", OrderDir::Desc)
        .order_by("id", OrderDir::Asc)
        .limit(10)
        .offset(7);
    let got = sharded.query(&q).unwrap();
    let want = oracle.query(&q).unwrap();
    assert_eq!(got.columns, want.columns);
    assert_eq!(got.rows, want.rows);
    assert_eq!(got.rows.len(), 10);

    for (s, rec) in recorders.iter().enumerate() {
        let seen = rec.seen.lock().unwrap();
        assert_eq!(seen.len(), 1, "shard {s} must be scattered to exactly once");
        let pushed = &seen[0];
        assert_eq!(
            pushed.limit,
            Some(17),
            "shard {s}: offset+limit must push down"
        );
        assert_eq!(pushed.offset, None, "shard {s}: offset must not push");
        // The pushed window bounds the per-shard transfer.
        let part = stores[s].query(pushed).unwrap();
        assert!(
            part.rows.len() <= 17,
            "shard {s} returned {} rows past the pushed window",
            part.rows.len()
        );
    }
}

#[test]
fn point_and_batch_resolution_route_like_the_oracle() {
    // resolve_batch groups by the ITEM_TABLE (loc_item) sharding; here we
    // only pin that grouped routing agrees with shard_for on every id and
    // that input order is preserved positionally even when ids interleave
    // across shards.
    let seed = effective_seed() ^ 0xBA7C;
    println!("shard_prop seed={seed} (replay: scripts/check.sh --seed {seed})");
    let mut rng = Rng(seed);
    let shards = 3u32;
    let map = ShardMap::new(shards).with_hash("loc_item", "item_id", 12);
    let stores: Vec<Arc<DmIo>> = (0..shards).map(|s| store(&format!("res-{s}"))).collect();
    let sharded = ShardedDm::new(
        stores
            .iter()
            .enumerate()
            .map(|(s, io)| {
                vec![Arc::new(LocalNode {
                    io: Arc::clone(io),
                    label: format!("res-{s}"),
                }) as Arc<dyn DmNode>]
            })
            .collect(),
        map.clone(),
    );
    let ids: Vec<i64> = (0..40).map(|_| rng.below(10_000) as i64).collect();
    let results = sharded.resolve_batch(&ids, NameType::File);
    assert_eq!(results.len(), ids.len(), "positional, one answer per input");
    // No names exist anywhere: every entry must be an empty Ok, proving the
    // scatter reached a real shard (a routing hole would error).
    for (i, r) in results.iter().enumerate() {
        let names = r.as_ref().unwrap_or_else(|e| {
            panic!("id {} (shard {:?}): {e}", ids[i], map.shard_for("loc_item", ids[i]))
        });
        assert!(names.is_empty());
    }
}

#[test]
fn same_seed_reproduces_the_same_answers() {
    // The replay contract behind the printed seed: the whole scenario is a
    // pure function of it.
    let run = |seed: u64| -> Vec<String> {
        let mut rng = Rng(seed);
        let shards = 2 + rng.below(7) as u32;
        let map = seeded_map(&mut rng, shards);
        let c = cluster(rng.next(), shards, map, 120);
        let mut digest = Vec::new();
        for _ in 0..10 {
            let q = ordered_query(&mut rng);
            let r = c.sharded.query(&q).unwrap();
            digest.push(format!("{:?}|{:?}", r.columns, r.rows));
        }
        digest.push(format!("{}", c.rows.len()));
        digest
    };
    assert_eq!(run(41), run(41), "same seed, same cluster, same answers");
}
