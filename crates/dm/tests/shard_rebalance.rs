//! The rebalance crash-point matrix (mirror of `ingest_crash.rs` for
//! [`ShardMover`]).
//!
//! A shard move is killed at every journal boundary and mid-step of its
//! workflow, resumed, and held to the recovery contract:
//!
//! * the resumed final placement is **byte-identical** to an uninterrupted
//!   twin's — per shard, row for row;
//! * an interrupted copy is compensated (the destination's partial rows
//!   deleted, then re-copied) so nothing duplicates;
//! * the map epoch lands exactly where the twin's does — resume after a
//!   mid-cutover crash must not double-bump;
//! * the cutover invalidates every cached scatter that read either moved
//!   shard: across the whole matrix there are **zero stale cache hits**.
//!
//! Deterministic: the placement derives from a printed seed
//! (`HEDC_TEST_SEED` overrides; replay with `scripts/check.sh --seed`).

use hedc_cache::CacheConfig;
use hedc_dm::{
    schema, splitmix64, Clock, DmError, DmIo, DmNode, DmResult, IoConfig, MoveCrash, MoveSpec,
    MoveStep, Partitioning, ShardMap, ShardMover, ShardedDm,
};
use hedc_filestore::FileStore;
use hedc_metadb::{Database, Expr, OrderDir, Query, QueryResult, Value};
use std::sync::Arc;

const BASE_SEED: u64 = 0x5AAD_0EBA;
const N_ROWS: i64 = 120;
/// The hash slot the matrix moves from shard 0 to shard 1.
const MOVED_PART: u32 = 0;

fn effective_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(BASE_SEED)
}

fn store(label: &str) -> Arc<DmIo> {
    let db = Database::in_memory(label);
    {
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
    }
    Arc::new(DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(FileStore::new()),
        Clock::starting_at(0),
        &IoConfig::default(),
    ))
}

struct LocalNode {
    io: Arc<DmIo>,
    label: String,
}

impl DmNode for LocalNode {
    fn node_id(&self) -> String {
        self.label.clone()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.io.query(q)
    }
}

fn hle_row(id: i64, time_end: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Int(1),
        Value::Int(id % 16),
        Value::Timestamp(time_end - 5),
        Value::Timestamp(time_end),
        Value::Float(3.0),
        Value::Float(20_000.0),
        Value::Text("flare".into()),
        Value::Null,
        Value::Float((id % 11) as f64),
        Value::Null,
        Value::Int((id * 13) % 997),
        Value::Int(1),
        Value::Int(1),
        Value::Bool(true),
        Value::Null,
        Value::Null,
        Value::Timestamp(time_end - 5),
        Value::Text("user".into()),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Int(0),
        Value::Bool(false),
    ]
}

/// Slots spread round-robin over 2 shards: slots {0,2} on shard 0,
/// {1,3} on shard 1. The matrix moves slot 0 to shard 1.
fn base_map() -> ShardMap {
    ShardMap::new(2).with_hash("hle", "id", 4)
}

struct Fix {
    stores: Vec<Arc<DmIo>>,
    sharded: ShardedDm,
}

fn fixture(seed: u64, cache: bool) -> Fix {
    let map = base_map();
    let stores = vec![store("reb-0"), store("reb-1")];
    let mut state = seed;
    for id in 0..N_ROWS {
        let time_end = 10 + (splitmix64(&mut state) % 3_000) as i64;
        let owner = map.shard_for("hle", id).unwrap();
        stores[owner as usize]
            .insert("hle", hle_row(id, time_end))
            .unwrap();
    }
    let replica_sets: Vec<Vec<Arc<dyn DmNode>>> = stores
        .iter()
        .enumerate()
        .map(|(s, io)| {
            vec![Arc::new(LocalNode {
                io: Arc::clone(io),
                label: format!("reb-{s}"),
            }) as Arc<dyn DmNode>]
        })
        .collect();
    let sharded = if cache {
        ShardedDm::with_cache(replica_sets, map, &CacheConfig::default())
    } else {
        ShardedDm::new(replica_sets, map)
    };
    Fix { stores, sharded }
}

fn spec() -> MoveSpec {
    MoveSpec {
        table: "hle".into(),
        part: MOVED_PART,
        to: 1,
    }
}

/// Sorted per-shard dump of the `hle` table (the journal table is
/// intentionally excluded: a resumed run legitimately journals more rows
/// than its twin).
fn hle_dump(io: &DmIo) -> Vec<String> {
    let r = io.query(&Query::table("hle")).unwrap();
    let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
    rows.sort();
    rows
}

fn run_mover(fix: &Fix, crash: Option<MoveCrash>) -> DmResult<hedc_dm::MoveOutcome> {
    let stores: Vec<&DmIo> = fix.stores.iter().map(|s| s.as_ref()).collect();
    let mut mover = ShardMover::new(fix.stores[0].as_ref(), stores, &fix.sharded);
    if let Some(c) = crash {
        mover = mover.with_crash(c);
    }
    mover.run(&spec())
}

/// Ids the moved slot owns, and a probe query over them.
fn moved_ids(map: &ShardMap) -> Vec<i64> {
    (0..N_ROWS)
        .filter(|&id| map.part_for("hle", id) == Some(MOVED_PART))
        .collect()
}

#[test]
fn uninterrupted_move_relocates_the_partition_and_bumps_the_epoch() {
    let seed = effective_seed();
    println!("shard_rebalance seed={seed} (replay: scripts/check.sh --seed {seed})");
    let fix = fixture(seed, false);
    let map0 = fix.sharded.map();
    let ids = moved_ids(&map0);
    assert!(!ids.is_empty(), "slot {MOVED_PART} must own rows");
    assert_eq!(map0.assignment("hle", MOVED_PART), Some(0));

    let out = run_mover(&fix, None).unwrap();
    assert_eq!(out.from, 0);
    assert_eq!(out.to, 1);
    assert_eq!(out.rows_moved, ids.len());
    assert_eq!(out.rows_planned, ids.len());
    assert_eq!(out.resumed_from, None);
    assert_eq!(out.compensated_rows, 0);

    let map1 = fix.sharded.map();
    assert_eq!(map1.epoch, map0.epoch + 1);
    assert_eq!(map1.assignment("hle", MOVED_PART), Some(1));
    for id in &ids {
        assert_eq!(map1.shard_for("hle", *id), Some(1));
    }
    // The source holds nothing of the moved slot; the destination holds
    // all of it; a routed point read finds each row exactly once.
    for id in &ids {
        let q = Query::table("hle")
            .select(&["id"])
            .filter(Expr::eq("id", *id));
        assert!(fix.stores[0].query(&q).unwrap().rows.is_empty());
        assert_eq!(fix.stores[1].query(&q).unwrap().rows.len(), 1);
        assert_eq!(fix.sharded.query(&q).unwrap().rows.len(), 1);
    }
    // Re-running the whole move is a journaled no-op.
    let again = run_mover(&fix, None).unwrap();
    assert_eq!(again.resumed_from, Some(MoveStep::Done));
    assert_eq!(again.rows_moved, 0);
    assert_eq!(fix.sharded.map().epoch, map0.epoch + 1, "no double bump");
}

#[test]
fn crash_matrix_resumes_to_the_twin_placement_byte_for_byte() {
    let seed = effective_seed();
    println!("shard_rebalance seed={seed} (replay: scripts/check.sh --seed {seed})");

    // Uninterrupted twin: the reference placement.
    let twin = fixture(seed, false);
    run_mover(&twin, None).unwrap();
    let twin_dumps: Vec<Vec<String>> = twin.stores.iter().map(|s| hle_dump(s)).collect();
    let twin_epoch = twin.sharded.map().epoch;

    let matrix = [
        MoveCrash::Boundary(MoveStep::Planned),
        MoveCrash::Boundary(MoveStep::Copied),
        MoveCrash::Boundary(MoveStep::Cutover),
        MoveCrash::Boundary(MoveStep::Cleaned),
        MoveCrash::MidStep(MoveStep::Copied),
        MoveCrash::MidStep(MoveStep::Cutover),
        MoveCrash::MidStep(MoveStep::Cleaned),
    ];
    for crash in matrix {
        let fix = fixture(seed, false);
        let ids = moved_ids(&fix.sharded.map());
        let died = run_mover(&fix, Some(crash));
        assert!(
            matches!(died, Err(DmError::Crashed(_))),
            "{crash:?}: the injected crash must surface, got {died:?}"
        );
        let out = run_mover(&fix, None)
            .unwrap_or_else(|e| panic!("{crash:?}: resume must complete: {e}"));

        // The journal pins where the resume picked up.
        let expected_resume = match crash {
            MoveCrash::Boundary(s) => s,
            // A mid-step death loses that step's journal row: the resume
            // sees only the previous step.
            MoveCrash::MidStep(MoveStep::Copied) => MoveStep::Planned,
            MoveCrash::MidStep(MoveStep::Cutover) => MoveStep::Copied,
            MoveCrash::MidStep(MoveStep::Cleaned) => MoveStep::Cutover,
            MoveCrash::MidStep(other) => panic!("no mid-step injection for {other:?}"),
        };
        assert_eq!(
            out.resumed_from,
            Some(expected_resume),
            "{crash:?}: resume point"
        );
        assert_eq!(out.rows_planned, ids.len(), "{crash:?}: recovered plan");
        if crash == MoveCrash::MidStep(MoveStep::Copied) {
            assert_eq!(
                out.compensated_rows,
                ids.len() / 2,
                "{crash:?}: the half-copied destination rows must be compensated"
            );
            assert_eq!(out.rows_moved, ids.len(), "{crash:?}: full re-copy");
        }

        for (s, twin_dump) in twin_dumps.iter().enumerate() {
            assert_eq!(
                &hle_dump(&fix.stores[s]),
                twin_dump,
                "{crash:?}: shard {s} placement must match the twin byte-for-byte"
            );
        }
        assert_eq!(
            fix.sharded.map().epoch,
            twin_epoch,
            "{crash:?}: exactly one epoch bump, crash or no crash"
        );
        assert_eq!(
            fix.sharded.map().assignment("hle", MOVED_PART),
            Some(1),
            "{crash:?}"
        );

        // A third run is a pure skip.
        let noop = run_mover(&fix, None).unwrap();
        assert_eq!(noop.resumed_from, Some(MoveStep::Done), "{crash:?}");
        assert_eq!(noop.rows_moved, 0, "{crash:?}");
    }
}

#[test]
fn cutover_leaves_zero_stale_cache_hits() {
    let seed = effective_seed();
    println!("shard_rebalance seed={seed} (replay: scripts/check.sh --seed {seed})");
    // The matrix includes the nastiest window: a crash *between* the map
    // install and the generation bumps (MidStep(Cutover)). Resume must
    // re-bump, so even entries cached inside that window cannot be served.
    for crash in [None, Some(MoveCrash::MidStep(MoveStep::Cutover))] {
        let fix = fixture(seed, true);
        let ids = moved_ids(&fix.sharded.map());
        let probe = Query::table("hle")
            .select(&["id", "n_photons"])
            .order_by("id", OrderDir::Asc);

        // Warm the cache with a full scatter, then prove it serves hits.
        let cache = fix.sharded.cache().unwrap();
        let first = fix.sharded.query(&probe).unwrap();
        assert_eq!(first.rows.len(), N_ROWS as usize);
        let warm_hits = cache.stats().hits;
        let second = fix.sharded.query(&probe).unwrap();
        assert_eq!(second.rows, first.rows);
        assert_eq!(
            cache.stats().hits,
            warm_hits + 1,
            "the warmed entry must serve before the move"
        );

        if let Some(c) = crash {
            let died = run_mover(&fix, Some(c));
            assert!(matches!(died, Err(DmError::Crashed(_))));
        }
        run_mover(&fix, None).unwrap();

        // Mutate the moved partition on its *new* owner. A stale cached
        // scatter would still show the old rows; a fresh read cannot.
        let victim = ids[0];
        fix.stores[1]
            .execute(hedc_metadb::Statement::Delete {
                table: "hle".into(),
                filter: Some(Expr::eq("id", victim)),
            })
            .unwrap();
        let hits_before = cache.stats().hits;
        let after = fix.sharded.query(&probe).unwrap();
        assert_eq!(
            cache.stats().hits,
            hits_before,
            "{crash:?}: the cutover must invalidate the cached scatter (zero stale hits)"
        );
        assert_eq!(
            after.rows.len(),
            N_ROWS as usize - 1,
            "{crash:?}: the merged answer must reflect the post-move state"
        );
        assert!(
            after.rows.iter().all(|r| r[0] != Value::Int(victim)),
            "{crash:?}: the deleted row must be gone from the merge"
        );
    }
}

#[test]
fn journal_is_scoped_per_move_key() {
    // Two different moves journal side by side without clobbering each
    // other's resume state: move slot 0 → shard 1, then slot 1 → shard 0.
    let seed = effective_seed();
    let fix = fixture(seed, false);
    run_mover(&fix, None).unwrap();

    let back = MoveSpec {
        table: "hle".into(),
        part: 1,
        to: 0,
    };
    let stores: Vec<&DmIo> = fix.stores.iter().map(|s| s.as_ref()).collect();
    let mover = ShardMover::new(fix.stores[0].as_ref(), stores, &fix.sharded);
    let out = mover.run(&back).unwrap();
    assert_eq!(out.from, 1);
    assert_eq!(out.resumed_from, None, "a distinct move key starts fresh");
    let map = fix.sharded.map();
    assert_eq!(map.assignment("hle", 0), Some(1));
    assert_eq!(map.assignment("hle", 1), Some(0));
    assert_eq!(map.epoch, 3, "two cutovers, two bumps");
}
