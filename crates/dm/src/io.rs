//! The DM I/O layer.
//!
//! §5.2: "The I/O layer abstracts from the actual storage type and location.
//! All data accesses happen through this layer. It manages database access,
//! file system manipulation, database connections and performs general
//! resource management." It also implements the load partitioning that
//! routes "data requests for certain parts of a database schema ... to a
//! different DBMS".
//!
//! The query path is deliberately the long way around (§5.4): structured
//! [`Query`] objects are *verified*, *scoped*, *compiled to SQL text*, and
//! the SQL is parsed and executed — so generated SQL stays honest and "may
//! be adapted and optimized without system downtime".

use crate::error::{DmError, DmResult};
use crate::names::ResolvedSet;
use hedc_cache::{CacheConfig, GenerationMap, QueryCache, ShardedCache};
use hedc_filestore::FileStore;
use hedc_metadb::{
    query_to_sql, Database, PoolKind, PoolSet, Query, QueryResult, SqlOutput, Statement, Value,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Access-scope tag for internal (non-session) queries. Internal callers
/// see raw rows, so their cache entries must never be shared with a
/// session scope — the tag keeps them structurally apart.
const INTERNAL_SCOPE: &str = "-";

/// Logical mission clock: deterministic, strictly monotone milliseconds.
/// Injected everywhere a timestamp is needed so tests and experiments are
/// reproducible.
#[derive(Debug)]
pub struct Clock {
    now_ms: AtomicU64,
}

impl Clock {
    /// Start the clock at a given mission time.
    pub fn starting_at(ms: u64) -> Arc<Self> {
        Arc::new(Clock {
            now_ms: AtomicU64::new(ms),
        })
    }

    /// Current time; each call advances by 1 ms (strict monotonicity).
    pub fn now_ms(&self) -> u64 {
        self.now_ms.fetch_add(1, Ordering::Relaxed)
    }

    /// Advance the clock (simulated elapsed work).
    pub fn advance(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// Advance the clock to at least `ms` (never backwards). Used after WAL
    /// recovery so timestamps minted post-restart stay monotone with the
    /// replayed history.
    pub fn advance_to(&self, ms: u64) {
        self.now_ms.fetch_max(ms, Ordering::Relaxed);
    }

    /// Read without advancing.
    pub fn peek_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Relaxed)
    }
}

/// Table → database routing (§5.2 "dynamic partitioning of the load").
#[derive(Debug, Clone, Default)]
pub struct Partitioning {
    routes: HashMap<String, usize>,
}

impl Partitioning {
    /// Everything on database 0.
    pub fn single() -> Self {
        Partitioning::default()
    }

    /// Route a table to a database index.
    pub fn route(mut self, table: &str, db: usize) -> Self {
        self.routes.insert(table.to_ascii_lowercase(), db);
        self
    }

    /// Database index for a table (default 0).
    pub fn db_for(&self, table: &str) -> usize {
        self.routes
            .get(&table.to_ascii_lowercase())
            .copied()
            .unwrap_or(0)
    }
}

/// Connection-pool sizing for one DM node.
#[derive(Debug, Clone)]
pub struct IoConfig {
    /// Query-pool capacity per database.
    pub query_pool: usize,
    /// Update-pool capacity per database.
    pub update_pool: usize,
    /// Auth-pool capacity per database.
    pub auth_pool: usize,
    /// Synthetic connection-creation cost (see `hedc_metadb::ConnectionPool`).
    pub creation_cost: Duration,
    /// The `[root]` element of dynamic names (§4.3), from system config.
    pub name_root: String,
    /// Queries slower than this are captured in the observability event log
    /// with their SQL and trace ID.
    pub slow_query: Duration,
    /// Result-cache policy. `None` (the default) disables caching: every
    /// query takes the verify/compile/execute path. When set, query
    /// results and name resolutions are cached with write-through
    /// generation invalidation (see `hedc-cache`).
    pub cache: Option<CacheConfig>,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            query_pool: 16,
            update_pool: 4,
            auth_pool: 4,
            creation_cost: Duration::ZERO,
            name_root: "hedc".to_string(),
            slow_query: Duration::from_millis(100),
            cache: None,
        }
    }
}

/// The I/O layer's cache bundle: one shared [`GenerationMap`] feeding a
/// query-result cache and a name-resolution cache. Every write through
/// [`DmIo::insert`] / [`DmIo::execute`] bumps the written table's
/// generation; multi-statement transactions that bypass those entry
/// points (semantic-layer `update_conn` blocks) must bump explicitly via
/// [`DmIo::bump_generation`] after commit.
pub struct DmCaches {
    /// Per-table write generations — the invalidation spine.
    pub gens: Arc<GenerationMap>,
    /// Cached query results, keyed by access scope + canonical
    /// fingerprint.
    pub queries: QueryCache,
    /// Cached dynamic-name resolutions, keyed `names:{type}:{item_id}`,
    /// depending on the three location tables.
    pub names: ShardedCache<ResolvedSet>,
}

impl DmCaches {
    fn new(config: &CacheConfig) -> Arc<Self> {
        let gens = Arc::new(GenerationMap::new());
        Arc::new(DmCaches {
            queries: QueryCache::new(config, Arc::clone(&gens)),
            names: ShardedCache::new(config),
            gens,
        })
    }
}

/// The I/O layer: databases + pools + file store + id/clock services.
pub struct DmIo {
    dbs: Vec<Arc<Database>>,
    pools: Vec<PoolSet>,
    partition: Partitioning,
    /// The archives this node mounts.
    pub files: Arc<FileStore>,
    /// The logical clock.
    pub clock: Arc<Clock>,
    next_id: AtomicI64,
    /// Highest calibration version applied to this node's raw data. Result
    /// reuse (PL §3.5) is only sound for analyses computed at this lineage
    /// or later; recalibration bumps it, invalidating older cached results.
    calib_lineage: AtomicU32,
    name_root: String,
    slow_query: Duration,
    caches: Option<Arc<DmCaches>>,
}

impl DmIo {
    /// Build over existing databases (schema must be created by the caller;
    /// [`crate::Dm::bootstrap`] does both).
    pub fn new(
        dbs: Vec<Arc<Database>>,
        partition: Partitioning,
        files: Arc<FileStore>,
        clock: Arc<Clock>,
        config: &IoConfig,
    ) -> Self {
        assert!(!dbs.is_empty(), "at least one database required");
        let pools = dbs
            .iter()
            .map(|db| {
                PoolSet::new(
                    db,
                    config.query_pool,
                    config.update_pool,
                    config.auth_pool,
                    config.creation_cost,
                )
            })
            .collect();
        DmIo {
            dbs,
            pools,
            partition,
            files,
            clock,
            next_id: AtomicI64::new(1),
            calib_lineage: AtomicU32::new(1),
            name_root: config.name_root.clone(),
            slow_query: config.slow_query,
            caches: config.cache.as_ref().map(DmCaches::new),
        }
    }

    /// Allocate a fresh tuple/item id.
    pub fn next_id(&self) -> i64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Current calibration lineage: the highest calibration version applied
    /// to raw data on this node. Analyses committed at an older
    /// `calib_version` are stale and must not be served from result caches.
    pub fn calib_lineage(&self) -> u32 {
        self.calib_lineage.load(Ordering::Acquire)
    }

    /// Advance the calibration lineage (monotonic; called by recalibration).
    pub fn bump_calib_lineage(&self, version: u32) {
        self.calib_lineage.fetch_max(version, Ordering::AcqRel);
    }

    /// Re-seed the id allocator and clock after a WAL rebuild. A recovered
    /// database carries every previously-allocated id and timestamp in its
    /// rows, but the in-process `next_id` counter and `Clock` restart at
    /// their initial values — without this, a resumed ingest would mint
    /// duplicate primary keys. Scans every table of every database for the
    /// largest integer value (ids and millisecond timestamps share one
    /// ordered space, both strictly below any future allocation) and bumps
    /// both allocators past it.
    pub fn reseed_after_recovery(&self) {
        let mut max_seen: i64 = 0;
        for db in &self.dbs {
            for table in db.table_names() {
                let q = Query::table(&table);
                if let Ok(res) = db.connect().query(&q) {
                    for row in &res.rows {
                        for v in row {
                            if let Some(i) = v.as_int() {
                                max_seen = max_seen.max(i);
                            }
                        }
                    }
                }
            }
        }
        self.next_id.fetch_max(max_seen + 1, Ordering::Relaxed);
        self.clock.advance_to((max_seen + 1) as u64);
    }

    /// The `[root]` element for name construction.
    pub fn name_root(&self) -> &str {
        &self.name_root
    }

    /// The database holding a table.
    pub fn db_for(&self, table: &str) -> &Arc<Database> {
        &self.dbs[self.partition.db_for(table).min(self.dbs.len() - 1)]
    }

    /// All databases (for stats aggregation).
    pub fn databases(&self) -> &[Arc<Database>] {
        &self.dbs
    }

    fn pool_for(&self, table: &str) -> &PoolSet {
        &self.pools[self.partition.db_for(table).min(self.dbs.len() - 1)]
    }

    /// Verify a query object: known table, sane limits. The semantic layer
    /// adds ownership scoping before calling this.
    ///
    /// Table existence is checked against the live catalog, not a static
    /// list — new instruments add new domain tables at run time (§3.1:
    /// "new data sources ... some of which require a new database schema").
    fn verify(&self, q: &Query) -> DmResult<()> {
        let known = self
            .db_for(&q.table)
            .table_names()
            .iter()
            .any(|t| t.eq_ignore_ascii_case(&q.table));
        if !known {
            return Err(DmError::BadQuery(format!("unknown table `{}`", q.table)));
        }
        if let Some(limit) = q.limit {
            if limit > 1_000_000 {
                return Err(DmError::BadQuery(format!("limit {limit} too large")));
            }
        }
        Ok(())
    }

    /// Execute an internal (non-session) query. Cached under the internal
    /// access scope when caching is enabled; see [`DmIo::query_scoped`].
    pub fn query(&self, q: &Query) -> DmResult<QueryResult> {
        self.query_scoped(INTERNAL_SCOPE, q)
    }

    /// Execute a query under an access-scope tag. When the result cache
    /// is enabled, a fresh entry under `(scope, fingerprint)` is served
    /// without touching the database; a miss snapshots the table's
    /// generation *before* executing (so a racing write leaves the new
    /// entry born-stale, never wrongly fresh) and fills on success. The
    /// semantic layer passes the session's scope tag; two scopes never
    /// share an entry, preserving §5.5 ownership isolation.
    pub fn query_scoped(&self, scope: &str, q: &Query) -> DmResult<QueryResult> {
        let caches = match &self.caches {
            Some(c) => c,
            None => return self.query_uncached(q),
        };
        if let Some(hit) = caches.queries.get(scope, q) {
            return Ok(hit);
        }
        let deps = caches.queries.snapshot(q);
        let r = self.query_uncached(q)?;
        caches.queries.fill(scope, q, &r, deps);
        Ok(r)
    }

    /// Execute a query object via the SQL round-trip (§5.4).
    /// End-to-end latency feeds the `dm.query` histogram; anything over the
    /// configured slow-query threshold is captured in the event log with its
    /// generated SQL, under the ambient trace.
    fn query_uncached(&self, q: &Query) -> DmResult<QueryResult> {
        let _span = hedc_obs::Span::child("dm.io.query");
        let started = std::time::Instant::now();
        self.verify(q)?;
        let pool = self.pool_for(&q.table).pool(PoolKind::Query);
        let mut conn = pool.acquire();
        let db_schema = conn.database().schema_of(&q.table)?;
        let sql = query_to_sql(q, &db_schema);
        let out = conn.execute_sql(&sql);
        let elapsed = started.elapsed();
        hedc_obs::global().histogram("dm.query").record(elapsed);
        if elapsed >= self.slow_query {
            hedc_obs::emit(
                hedc_obs::events::kind::SLOW_QUERY,
                format!(
                    "db={} elapsed_us={} sql={sql}",
                    conn.database().name(),
                    elapsed.as_micros()
                ),
            );
        }
        match out? {
            SqlOutput::Rows(r) => Ok(r),
            other => Err(DmError::BadQuery(format!(
                "query compiled to non-SELECT: {other:?}"
            ))),
        }
    }

    /// Check out an update-pool connection for the database holding
    /// `table` — the semantic layer uses this for multi-statement
    /// transactions ("transactional properties around entities", §4.4).
    pub fn update_conn(&self, table: &str) -> hedc_metadb::PooledConnection {
        self.pool_for(table).pool(PoolKind::Update).acquire()
    }

    /// Insert a row (update pool). Write-through: the table's cache
    /// generation is bumped around the write (see [`DmIo::bump_generation`]
    /// for why both sides are needed).
    pub fn insert(&self, table: &str, values: Vec<Value>) -> DmResult<u64> {
        let pool = self.pool_for(table).pool(PoolKind::Update);
        let mut conn = pool.acquire();
        self.bump_generation(table);
        let id = conn.insert(table, values)?;
        self.bump_generation(table);
        Ok(id)
    }

    /// Execute an arbitrary DML/DDL statement (update pool). Write-through:
    /// the written table's cache generation is bumped around the write.
    pub fn execute(&self, stmt: Statement) -> DmResult<usize> {
        let table = match &stmt {
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => table.clone(),
            _ => String::new(),
        };
        let pool = self.pool_for(&table).pool(PoolKind::Update);
        let mut conn = pool.acquire();
        self.bump_generation(&table);
        let out = conn.execute_statement(stmt)?;
        self.bump_generation(&table);
        match out {
            SqlOutput::Affected(n) => Ok(n),
            _ => Ok(0),
        }
    }

    /// Record a write to `table` in the cache generation map (no-op when
    /// caching is off, or for the empty table name).
    ///
    /// Writers must bump **before and after** the write (the built-in
    /// [`DmIo::insert`] / [`DmIo::execute`] paths do; semantic-layer
    /// transactions built on [`DmIo::update_conn`] must do the same per
    /// written table). A single post-write bump has an ABA hole: a read
    /// that executes between the commit and the bump observes the new data
    /// under the *old* generation, so a slower read that executed before
    /// the commit could later overwrite it with pre-write rows that still
    /// verify as fresh. Bumping on both sides makes any fill whose
    /// snapshot-to-fill window overlaps a write born-stale.
    pub fn bump_generation(&self, table: &str) {
        if let Some(caches) = &self.caches {
            if !table.is_empty() {
                caches.gens.bump(table);
            }
        }
    }

    /// The cache bundle, when [`IoConfig::cache`] enabled one.
    pub fn caches(&self) -> Option<&Arc<DmCaches>> {
        self.caches.as_ref()
    }

    /// Execute administrator DDL (CREATE TABLE / CREATE INDEX) — the §3.1
    /// path by which a new instrument's domain schema arrives at run time.
    pub fn execute_ddl(&self, sql: &str) -> DmResult<()> {
        let stmt = hedc_metadb::parse(sql)?;
        match &stmt {
            Statement::CreateTable(_) | Statement::CreateIndex { .. } => {
                let mut conn = self.update_conn("");
                conn.execute_statement(stmt)?;
                Ok(())
            }
            _ => Err(DmError::BadQuery("execute_ddl accepts only DDL".into())),
        }
    }

    /// Run raw SQL submitted by an advanced user (§1). Only SELECTs are
    /// accepted on this path; everything else must go through services.
    pub fn user_sql(&self, sql: &str) -> DmResult<QueryResult> {
        let stmt = hedc_metadb::parse(sql)?;
        match stmt {
            Statement::Select(q) => self.query(&q),
            _ => Err(DmError::BadQuery(
                "only SELECT is allowed on the user SQL path".into(),
            )),
        }
    }

    /// Append an operational log row (§4.1 operational section).
    pub fn log(&self, level: &str, component: &str, message: &str) -> DmResult<()> {
        let id = self.next_id();
        let ts = self.clock.now_ms();
        self.insert(
            "op_log",
            vec![
                Value::Int(id),
                Value::Int(ts as i64),
                Value::Text(level.to_string()),
                Value::Text(component.to_string()),
                Value::Text(message.to_string()),
            ],
        )?;
        Ok(())
    }

    /// Record a usage/audit row.
    pub fn audit(&self, user_id: i64, action: &str, duration_ms: Option<i64>) -> DmResult<()> {
        let id = self.next_id();
        let ts = self.clock.now_ms();
        self.insert(
            "op_usage",
            vec![
                Value::Int(id),
                Value::Int(ts as i64),
                Value::Int(user_id),
                Value::Text(action.to_string()),
                duration_ms.map(Value::Int).unwrap_or(Value::Null),
            ],
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use hedc_metadb::Expr;

    fn io_single() -> DmIo {
        let db = Database::in_memory("io-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(FileStore::new()),
            Clock::starting_at(1_000_000),
            &IoConfig::default(),
        )
    }

    #[test]
    fn clock_is_monotone() {
        let c = Clock::starting_at(100);
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b > a);
        c.advance(500);
        assert!(c.peek_ms() >= 602);
    }

    #[test]
    fn query_roundtrips_through_sql() {
        let io = io_single();
        let id = io.next_id();
        let ts = io.clock.now_ms() as i64;
        io.insert(
            "catalog",
            vec![
                Value::Int(id),
                Value::Int(0),
                Value::Text("extended".into()),
                Value::Null,
                Value::Text("system".into()),
                Value::Bool(true),
                Value::Int(ts),
            ],
        )
        .unwrap();
        let r = io
            .query(&Query::table("catalog").filter(Expr::eq("name", "extended")))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn unknown_table_rejected() {
        let io = io_single();
        let err = io.query(&Query::table("secrets")).unwrap_err();
        assert!(matches!(err, DmError::BadQuery(_)));
    }

    #[test]
    fn oversized_limit_rejected() {
        let io = io_single();
        let err = io
            .query(&Query::table("hle").limit(10_000_000))
            .unwrap_err();
        assert!(matches!(err, DmError::BadQuery(_)));
    }

    #[test]
    fn user_sql_select_only() {
        let io = io_single();
        assert!(io.user_sql("SELECT * FROM hle").is_ok());
        assert!(io.user_sql("DELETE FROM hle").is_err());
        assert!(io.user_sql("INSERT INTO hle (id) VALUES (1)").is_err());
    }

    #[test]
    fn partitioning_routes_tables() {
        let browse_db = Database::in_memory("browse");
        let process_db = Database::in_memory("process");
        for db in [&browse_db, &process_db] {
            let mut conn = db.connect();
            schema::create_generic(&mut conn).unwrap();
            schema::create_domain(&mut conn).unwrap();
        }
        // §5.2: separate processing (raw_unit) from browsing load.
        let io = DmIo::new(
            vec![browse_db.clone(), process_db.clone()],
            Partitioning::single().route("raw_unit", 1),
            Arc::new(FileStore::new()),
            Clock::starting_at(0),
            &IoConfig::default(),
        );
        io.insert(
            "raw_unit",
            vec![
                Value::Int(1),
                Value::Int(0),
                Value::Int(0),
                Value::Int(1000),
                Value::Int(10),
                Value::Int(1),
                Value::Int(99),
                Value::Int(4096),
                Value::Bool(false),
            ],
        )
        .unwrap();
        assert_eq!(process_db.row_count("raw_unit").unwrap(), 1);
        assert_eq!(browse_db.row_count("raw_unit").unwrap(), 0);
        // Browsing tables stay on db 0.
        io.log("info", "test", "hello").unwrap();
        assert_eq!(browse_db.row_count("op_log").unwrap(), 1);
        assert_eq!(process_db.row_count("op_log").unwrap(), 0);
    }

    fn catalog_row(id: i64, name: &str) -> Vec<Value> {
        vec![
            Value::Int(id),
            Value::Int(0),
            Value::Text(name.into()),
            Value::Null,
            Value::Text("system".into()),
            Value::Bool(true),
            Value::Int(0),
        ]
    }

    #[test]
    fn cached_query_skips_database_and_write_invalidates() {
        let db = Database::in_memory("io-cache");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(FileStore::new()),
            Clock::starting_at(0),
            &IoConfig {
                cache: Some(hedc_cache::CacheConfig::default()),
                ..IoConfig::default()
            },
        );
        io.insert("catalog", catalog_row(1, "standard")).unwrap();

        let q = Query::table("catalog").filter(Expr::eq("public", true));
        let before = io.db_for("catalog").stats();
        let r1 = io.query(&q).unwrap();
        let r2 = io.query(&q).unwrap();
        assert_eq!(r1.rows, r2.rows);
        let delta = io.db_for("catalog").stats().since(&before);
        assert_eq!(delta.queries, 1, "second read must be served by the cache");

        // A write through the io layer invalidates; the next read sees it.
        io.insert("catalog", catalog_row(2, "extended")).unwrap();
        let r3 = io.query(&q).unwrap();
        assert_eq!(r3.rows.len(), 2, "cached row set must not survive a write");
    }

    #[test]
    fn audit_and_log_rows_written() {
        let io = io_single();
        io.log("warn", "dm", "something").unwrap();
        io.audit(7, "browse", Some(12)).unwrap();
        let logs = io.query(&Query::table("op_log")).unwrap();
        assert_eq!(logs.rows.len(), 1);
        let usage = io.query(&Query::table("op_usage")).unwrap();
        assert_eq!(usage.rows[0][2], Value::Int(7));
    }
}
