//! DM-level errors.

use hedc_filestore::FsError;
use hedc_metadb::DbError;
use std::fmt;

/// Errors surfaced by the Data Management component.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum DmError {
    /// Underlying metadata database error.
    Db(DbError),
    /// Underlying file store error.
    Fs(FsError),
    /// Authentication failed (unknown user or bad password).
    AuthFailed(String),
    /// The session token is unknown or expired.
    NoSession,
    /// The caller lacks the right for the operation.
    AccessDenied { user: String, needed: &'static str },
    /// Referential-integrity violation (e.g. deleting an HLE with analyses).
    Integrity(String),
    /// No entity with the given id.
    NotFound { entity: &'static str, id: i64 },
    /// A query object failed verification (unknown table, missing owner
    /// scoping, etc.).
    BadQuery(String),
    /// The remote DM node did not respond in time (redirection).
    RemoteUnavailable(String),
    /// The remote DM node answered, but reported a failure that is neither a
    /// query rejection nor unavailability (wire protocol mismatch, remote
    /// internal error). Not retried and not failed over: the node is up.
    RemoteFailed(String),
    /// The node shed the request under load (admission control: queue full,
    /// queue deadline passed, or in-flight cap hit). The node is up and
    /// healthy — callers back off and retry, or fail over to a less-loaded
    /// replica, without marking the node down.
    Overloaded(String),
    /// A whole shard (every replica in its set) is unreachable during a
    /// sharded read. Typed so scatter-gather callers can distinguish "the
    /// answer is missing shard N's rows" from a total failure — partial
    /// results are never silently returned as complete ones.
    ShardUnavailable { shard: u32, detail: String },
    /// A test-injected process crash (ingest crash-point matrix). Carries the
    /// crash site so a surviving harness can report where it died. Never
    /// produced outside tests/benches.
    Crashed(String),
}

impl fmt::Display for DmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmError::Db(e) => write!(f, "database: {e}"),
            DmError::Fs(e) => write!(f, "file store: {e}"),
            DmError::AuthFailed(u) => write!(f, "authentication failed for `{u}`"),
            DmError::NoSession => write!(f, "no such session"),
            DmError::AccessDenied { user, needed } => {
                write!(f, "user `{user}` lacks the `{needed}` right")
            }
            DmError::Integrity(m) => write!(f, "integrity violation: {m}"),
            DmError::NotFound { entity, id } => write!(f, "no {entity} with id {id}"),
            DmError::BadQuery(m) => write!(f, "query rejected: {m}"),
            DmError::RemoteUnavailable(m) => write!(f, "remote DM unavailable: {m}"),
            DmError::RemoteFailed(m) => write!(f, "remote DM failed: {m}"),
            DmError::Overloaded(m) => write!(f, "node overloaded: {m}"),
            DmError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable (all replicas): {detail}")
            }
            DmError::Crashed(site) => write!(f, "simulated crash at {site}"),
        }
    }
}

impl std::error::Error for DmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmError::Db(e) => Some(e),
            DmError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for DmError {
    fn from(e: DbError) -> Self {
        DmError::Db(e)
    }
}

impl From<FsError> for DmError {
    fn from(e: FsError) -> Self {
        DmError::Fs(e)
    }
}

/// Crate-wide result alias.
pub type DmResult<T> = Result<T, DmError>;
