//! The concurrent, crash-resumable ingest pipeline (§5.2, §6).
//!
//! §5.2 describes loading as "a multi-step workflow with logging and
//! compensation"; §6 requires it to keep pace with the continuous RHESSI
//! downlink. This module provides both properties on top of the existing
//! single-unit ingest logic:
//!
//! * **Staged parallelism** — [`ingest`] runs units through five bounded-queue
//!   stages (`package` → `write` → `meta` → `events` → `view`), each with N
//!   worker threads. Bounded channels give backpressure: a slow stage stalls
//!   its producers instead of buffering without limit.
//! * **A persistent workflow journal** — every completed step of every unit
//!   appends a row to `op_ingest_journal` *after* the step's effects. Journal
//!   rows are ordinary inserts, so they ride the metadb WAL: after a crash the
//!   recovered journal tells the resume path exactly which steps completed.
//!   A unit resumes at its first unrecorded step; partial effects of that
//!   step (the crash landed mid-step) are compensated first, mirroring the
//!   paper's compensation logic. A unit whose `done` record survived is
//!   skipped entirely — re-running an ingest is idempotent.
//!
//! The journal steps, in order:
//!
//! | step | effects |
//! |---|---|
//! | `admitted` | none (marks the unit as entered) |
//! | `raw_stored` | raw FITS file in the archive, `loc_entry` + `loc_item` |
//! | `raw_row` | the `raw_unit` tuple |
//! | `events` | detected HLEs + catalog membership + lineage |
//! | `view` | approximated view file, its location rows, `view_meta`, lineage |
//! | `done` | the ingest `op_log` line |
//!
//! Within each step, rows that *reference* are written before rows that are
//! *referenced* (e.g. `loc_entry` before `loc_item`), so a mid-step crash
//! never strands an unreachable row; the compensation queries rediscover
//! partial effects purely from the unit's deterministic keys (archive paths,
//! time window) and remove them before the step re-runs.
//!
//! Determinism: with a single worker, a crash at a step *boundary* (the
//! record was written) followed by a resume performs exactly the same global
//! sequence of id allocations, clock reads, and inserts as an uninterrupted
//! run — the resume path itself is read-only — so the final database state is
//! byte-identical. The crash-point matrix test asserts this per step.

use crate::error::{DmError, DmResult};
use crate::io::DmIo;
use crate::names::{NameType, Names};
use crate::process::{IngestConfig, IngestReport, Processes};
use crate::semantic::{HleSpec, Services};
use crate::session::Session;
use crossbeam::channel::{bounded, Receiver, Sender};
use hedc_events::{detect, EventKind, TelemetryUnit};
use hedc_filestore::checksum;
use hedc_metadb::{Expr, Query, Statement, Value};
use hedc_wavelet::PartitionedView;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Journal steps
// ---------------------------------------------------------------------------

/// One step of the ingest workflow, in execution order. The journal records
/// the *completion* of a step; resumption starts at the successor of the last
/// recorded step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JournalStep {
    /// The unit entered the pipeline (no effects; anchors the unit key).
    Admitted,
    /// Raw FITS file stored and its location rows written.
    RawStored,
    /// The `raw_unit` tuple inserted.
    RawRow,
    /// Event detection ran; HLEs, catalog members, lineage written.
    Events,
    /// The load-time approximated view stored and registered.
    View,
    /// The ingest log line written; the unit is complete.
    Done,
}

impl JournalStep {
    /// Every step, in execution order.
    pub const ALL: [JournalStep; 6] = [
        JournalStep::Admitted,
        JournalStep::RawStored,
        JournalStep::RawRow,
        JournalStep::Events,
        JournalStep::View,
        JournalStep::Done,
    ];

    /// Stable string stored in the journal's `step` column.
    pub fn as_str(self) -> &'static str {
        match self {
            JournalStep::Admitted => "admitted",
            JournalStep::RawStored => "raw_stored",
            JournalStep::RawRow => "raw_row",
            JournalStep::Events => "events",
            JournalStep::View => "view",
            JournalStep::Done => "done",
        }
    }

    /// Parse the stored representation back.
    pub fn parse(s: &str) -> Option<JournalStep> {
        JournalStep::ALL.into_iter().find(|st| st.as_str() == s)
    }

    /// Position in [`JournalStep::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

// ---------------------------------------------------------------------------
// Crash injection (tests and the bench crash-cycle)
// ---------------------------------------------------------------------------

/// Where, relative to one journal step of one unit, an injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After the step's effects but *before* its journal record: the
    /// worst-case mid-step crash. Resume must compensate.
    MidStep(JournalStep),
    /// After the step's journal record: a clean step boundary. Resume must
    /// continue without compensation and reproduce a byte-identical state.
    Boundary(JournalStep),
}

/// A one-shot injected process crash: ingest dies with [`DmError::Crashed`]
/// when the named unit reaches the named site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// `TelemetryUnit::seq` of the victim unit.
    pub unit_seq: u32,
    /// Crash site within that unit's workflow.
    pub site: CrashSite,
}

// ---------------------------------------------------------------------------
// Options and reports
// ---------------------------------------------------------------------------

/// Tuning for one ingest run.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Worker threads per stage. `0` or `1` selects the serial executor
    /// (which is also the deterministic one the crash matrix uses).
    pub workers: usize,
    /// Bound of each inter-stage queue (backpressure window).
    pub queue_depth: usize,
    /// Write the workflow journal. Disabled for the legacy
    /// [`Processes::ingest_unit`] single-shot path.
    pub journal: bool,
    /// Injected crash, if any (tests, bench crash-cycle).
    pub crash: Option<CrashPlan>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            workers: 1,
            queue_depth: 8,
            journal: true,
            crash: None,
        }
    }
}

impl IngestOptions {
    /// Journaled serial ingest (the deterministic baseline).
    pub fn serial() -> Self {
        IngestOptions::default()
    }

    /// Journaled staged ingest with `n` workers per stage.
    pub fn with_workers(n: usize) -> Self {
        IngestOptions {
            workers: n,
            ..IngestOptions::default()
        }
    }
}

/// Terminal status of one unit in a pipeline run. Every submitted unit gets
/// exactly one status — the accounting invariant the report enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitStatus {
    /// Ingested from scratch in this run.
    Ingested,
    /// A prior attempt left a journal trail; this run finished the remainder.
    Resumed {
        /// Last step the prior attempt completed.
        from: JournalStep,
        /// Number of compensating actions (row deletes, file deletes) taken
        /// before re-running the interrupted step.
        compensations: usize,
    },
    /// The journal already carried a `done` record: nothing to do.
    Skipped,
    /// The unit failed with the attached error; later units still ran.
    Failed,
}

/// Outcome of one unit.
#[derive(Debug, Clone)]
pub struct UnitResult {
    /// `TelemetryUnit::seq` of the unit.
    pub seq: u32,
    /// Terminal status.
    pub status: UnitStatus,
    /// What the unit produced (also reconstructed for skipped units from the
    /// journal payload). `None` only for failed units.
    pub report: Option<IngestReport>,
    /// The failure, when `status` is [`UnitStatus::Failed`].
    pub error: Option<DmError>,
}

impl UnitResult {
    fn skipped(seq: u32, state: &UnitState) -> UnitResult {
        UnitResult {
            seq,
            status: UnitStatus::Skipped,
            report: Some(state.report()),
            error: None,
        }
    }

    fn failed(seq: u32, error: DmError) -> UnitResult {
        UnitResult {
            seq,
            status: UnitStatus::Failed,
            report: None,
            error: Some(error),
        }
    }
}

/// Aggregated outcome of one pipeline run. Unlike the original all-or-nothing
/// loader, every submitted unit is accounted for exactly once:
/// `ingested + resumed + skipped + failed == submitted`.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Units handed to the run.
    pub submitted: usize,
    /// Units ingested from scratch.
    pub ingested: usize,
    /// Units resumed from a journal trail.
    pub resumed: usize,
    /// Units already complete (journaled `done`).
    pub skipped: usize,
    /// Units that failed (their errors are in `units`).
    pub failed: usize,
    /// Total compensating actions across resumed units.
    pub compensations: usize,
    /// HLEs created or re-counted by completed units.
    pub hle_count: usize,
    /// Bytes stored by units completed in this run (skipped units excluded).
    pub bytes_stored: u64,
    /// Per-unit outcomes, sorted by `seq`.
    pub units: Vec<UnitResult>,
}

impl PipelineReport {
    /// Whether every submitted unit landed in exactly one status bucket.
    pub fn fully_accounted(&self) -> bool {
        self.ingested + self.resumed + self.skipped + self.failed == self.submitted
    }

    fn from_units(submitted: usize, mut units: Vec<UnitResult>) -> PipelineReport {
        units.sort_by_key(|u| u.seq);
        let mut rep = PipelineReport {
            submitted,
            ..PipelineReport::default()
        };
        for u in &units {
            match &u.status {
                UnitStatus::Ingested => rep.ingested += 1,
                UnitStatus::Resumed { compensations, .. } => {
                    rep.resumed += 1;
                    rep.compensations += *compensations;
                }
                UnitStatus::Skipped => rep.skipped += 1,
                UnitStatus::Failed => rep.failed += 1,
            }
            if let Some(r) = &u.report {
                rep.hle_count += r.hle_ids.len();
                if !matches!(u.status, UnitStatus::Skipped) {
                    rep.bytes_stored += r.bytes_stored;
                }
            }
        }
        let obs = hedc_obs::global();
        obs.counter("ingest.units_ingested")
            .add(rep.ingested as u64);
        obs.counter("ingest.units_resumed").add(rep.resumed as u64);
        obs.counter("ingest.units_skipped").add(rep.skipped as u64);
        obs.counter("ingest.units_failed").add(rep.failed as u64);
        rep.units = units;
        rep
    }
}

// ---------------------------------------------------------------------------
// Journal state
// ---------------------------------------------------------------------------

/// Cumulative per-unit workflow state, serialized into the journal `payload`
/// column at every step so the *last* record alone suffices to resume.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
struct UnitState {
    raw_item: Option<i64>,
    raw_entry: Option<i64>,
    raw_id: Option<i64>,
    hle_ids: Vec<i64>,
    view_item: Option<i64>,
    view_entry: Option<i64>,
    view_id: Option<i64>,
    raw_bytes: u64,
    view_bytes: u64,
}

impl UnitState {
    fn report(&self) -> IngestReport {
        IngestReport {
            raw_id: self.raw_id.unwrap_or(-1),
            hle_ids: self.hle_ids.clone(),
            view_id: self.view_id.unwrap_or(-1),
            bytes_stored: self.raw_bytes + self.view_bytes,
        }
    }
}

fn done_message(unit: &TelemetryUnit, state: &UnitState) -> String {
    format!(
        "unit {} ingested: {} photons, {} events, {} bytes",
        unit.seq,
        unit.photons.len(),
        state.hle_ids.len(),
        state.raw_bytes + state.view_bytes
    )
}

// ---------------------------------------------------------------------------
// Artifacts: CPU-heavy byte products, computed once in the package stage
// ---------------------------------------------------------------------------

/// Serialized byte products of a unit. The package stage precomputes them so
/// DB-bound stages don't repeat the CPU work; the serial path fills them
/// lazily.
#[derive(Debug, Default)]
struct Artifacts {
    fits: Option<Vec<u8>>,
    view: Option<Vec<u8>>,
}

impl Artifacts {
    fn fits(&mut self, unit: &TelemetryUnit) -> &[u8] {
        self.fits
            .get_or_insert_with(|| unit.to_fits().to_bytes())
            .as_slice()
    }

    fn view(&mut self, unit: &TelemetryUnit, cfg: &IngestConfig) -> &[u8] {
        self.view
            .get_or_insert_with(|| build_view_bytes(unit, cfg))
            .as_slice()
    }

    /// Eagerly compute whatever the remaining steps will need.
    fn precompute(&mut self, unit: &TelemetryUnit, cfg: &IngestConfig, next_idx: usize) {
        if next_idx <= JournalStep::RawStored.index() {
            let _ = self.fits(unit);
        }
        if next_idx <= JournalStep::View.index() {
            let _ = self.view(unit, cfg);
        }
    }
}

fn build_view_bytes(unit: &TelemetryUnit, cfg: &IngestConfig) -> Vec<u8> {
    let counts =
        hedc_events::bin_counts(&unit.photons, unit.start_ms, unit.end_ms, cfg.view_bin_ms);
    let signal: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    PartitionedView::build(&signal, cfg.view_partition, cfg.view_quant).to_bytes()
}

// ---------------------------------------------------------------------------
// The unit runner: step execution, journaling, compensation
// ---------------------------------------------------------------------------

/// One unit mid-flight through the stages.
struct Flight<'u> {
    unit: &'u TelemetryUnit,
    art: Artifacts,
    state: UnitState,
    next_idx: usize,
    resumed_from: Option<JournalStep>,
    compensations: usize,
    /// Per-unit trace root, minted by the package stage and finished by
    /// whichever stage terminates the unit (done or failed). Stages adopt
    /// its context so their spans join one tree per unit.
    trace: Option<hedc_obs::PendingRoot>,
    /// When the unit was handed to the current stage's queue, for the
    /// `ingest.queue_wait.<stage>` attribution spans.
    handed_off: Option<Instant>,
}

impl<'u> Flight<'u> {
    fn fresh(unit: &'u TelemetryUnit) -> Flight<'u> {
        Flight {
            unit,
            art: Artifacts::default(),
            state: UnitState::default(),
            next_idx: 0,
            resumed_from: None,
            compensations: 0,
            trace: None,
            handed_off: None,
        }
    }

    fn into_result(self) -> UnitResult {
        UnitResult {
            seq: self.unit.seq,
            status: match self.resumed_from {
                Some(from) => UnitStatus::Resumed {
                    from,
                    compensations: self.compensations,
                },
                None => UnitStatus::Ingested,
            },
            report: Some(self.state.report()),
            error: None,
        }
    }
}

enum Admit<'u> {
    Run(Flight<'u>),
    Skip(UnitState),
}

struct UnitRunner<'a> {
    io: &'a DmIo,
    session: &'a Session,
    cfg: &'a IngestConfig,
    journal: bool,
    crash: Option<CrashPlan>,
}

impl UnitRunner<'_> {
    /// Read the unit's journal trail and decide how to enter the workflow:
    /// fresh, resumed at the first unrecorded step (after compensating any
    /// partial effects of that step), or skipped because `done` survived.
    fn admit<'u>(&self, unit: &'u TelemetryUnit) -> DmResult<Admit<'u>> {
        match self.journal_last(unit)? {
            None => Ok(Admit::Run(Flight::fresh(unit))),
            Some((JournalStep::Done, state)) => Ok(Admit::Skip(state)),
            Some((last, state)) => {
                let next = JournalStep::ALL[last.index() + 1];
                let n = self.compensate(next, unit, &state)?;
                if n > 0 {
                    hedc_obs::emit(
                        hedc_obs::kind::INGEST_COMPENSATE,
                        format!(
                            "unit {} step {}: {} compensating actions",
                            unit.seq,
                            next.as_str(),
                            n
                        ),
                    );
                    hedc_obs::global()
                        .counter("ingest.compensations")
                        .add(n as u64);
                }
                hedc_obs::emit(
                    hedc_obs::kind::INGEST_RESUME,
                    format!(
                        "unit {} resumes at {} (journal ends after {})",
                        unit.seq,
                        next.as_str(),
                        last.as_str()
                    ),
                );
                Ok(Admit::Run(Flight {
                    unit,
                    art: Artifacts::default(),
                    state,
                    next_idx: last.index() + 1,
                    resumed_from: Some(last),
                    compensations: n,
                    trace: None,
                    handed_off: None,
                }))
            }
        }
    }

    /// Execute steps up to and including `through`, journaling each.
    fn advance(&self, flight: &mut Flight<'_>, through: JournalStep) -> DmResult<()> {
        while flight.next_idx <= through.index() {
            let step = JournalStep::ALL[flight.next_idx];
            self.exec_step(step, flight.unit, &mut flight.art, &mut flight.state)?;
            self.crash_check(flight.unit.seq, CrashSite::MidStep(step))?;
            self.journal_record(flight.unit, step, &flight.state)?;
            self.crash_check(flight.unit.seq, CrashSite::Boundary(step))?;
            flight.next_idx += 1;
        }
        Ok(())
    }

    fn crash_check(&self, seq: u32, site: CrashSite) -> DmResult<()> {
        if let Some(plan) = &self.crash {
            if plan.unit_seq == seq && plan.site == site {
                hedc_obs::emit(
                    hedc_obs::kind::FAULT_INJECT,
                    format!("ingest crash injected: unit {seq} at {site:?}"),
                );
                return Err(DmError::Crashed(format!("unit {seq} at {site:?}")));
            }
        }
        Ok(())
    }

    // -- journal ------------------------------------------------------------

    fn journal_record(
        &self,
        unit: &TelemetryUnit,
        step: JournalStep,
        state: &UnitState,
    ) -> DmResult<()> {
        if !self.journal {
            return Ok(());
        }
        let payload = serde_json::to_string(state)
            .map_err(|e| DmError::Integrity(format!("ingest journal payload: {e}")))?;
        let id = self.io.next_id();
        let ts = self.io.clock.now_ms();
        self.io.insert(
            "op_ingest_journal",
            vec![
                Value::Int(id),
                Value::Text(unit.archive_path()),
                Value::Int(i64::from(unit.seq)),
                Value::Text(step.as_str().to_string()),
                Value::Text(payload),
                Value::Int(ts as i64),
            ],
        )?;
        Ok(())
    }

    fn journal_last(&self, unit: &TelemetryUnit) -> DmResult<Option<(JournalStep, UnitState)>> {
        if !self.journal {
            return Ok(None);
        }
        let key = unit.archive_path();
        let r = self
            .io
            .query(&Query::table("op_ingest_journal").filter(Expr::eq("unit_key", key.as_str())))?;
        let mut best: Option<(JournalStep, String)> = None;
        for row in &r.rows {
            let step = match row[3].as_text().and_then(JournalStep::parse) {
                Some(s) => s,
                None => continue,
            };
            if best
                .as_ref()
                .map_or(true, |(b, _)| step.index() > b.index())
            {
                best = Some((step, row[4].as_text().unwrap_or("{}").to_string()));
            }
        }
        match best {
            None => Ok(None),
            Some((step, payload)) => {
                let state = serde_json::from_str(&payload).map_err(|e| {
                    DmError::Integrity(format!("ingest journal payload for `{key}`: {e}"))
                })?;
                Ok(Some((step, state)))
            }
        }
    }

    // -- step execution -----------------------------------------------------

    fn exec_step(
        &self,
        step: JournalStep,
        unit: &TelemetryUnit,
        art: &mut Artifacts,
        state: &mut UnitState,
    ) -> DmResult<()> {
        match step {
            JournalStep::Admitted => Ok(()),
            JournalStep::RawStored => self.step_raw_stored(unit, art, state),
            JournalStep::RawRow => self.step_raw_row(unit, state),
            JournalStep::Events => self.step_events(unit, state),
            JournalStep::View => self.step_view(unit, art, state),
            JournalStep::Done => self.step_done(unit, state),
        }
    }

    fn step_raw_stored(
        &self,
        unit: &TelemetryUnit,
        art: &mut Artifacts,
        state: &mut UnitState,
    ) -> DmResult<()> {
        let names = Names::new(self.io);
        let raw_path = unit.archive_path();
        let physical = names.physical_path(self.cfg.raw_archive, &raw_path)?;
        let (size, sum) = {
            let fits = art.fits(unit);
            self.io.files.store(self.cfg.raw_archive, &physical, fits)?;
            (fits.len() as u64, checksum(fits))
        };
        let raw_item = self.io.next_id();
        let entry_id = self.io.next_id();
        // loc_entry before loc_item: a mid-step crash may leave an entry
        // whose item row is missing (cleaned by path-keyed compensation) but
        // never an item row nothing points to.
        self.io.insert(
            "loc_entry",
            vec![
                Value::Int(entry_id),
                Value::Int(raw_item),
                Value::Text(NameType::File.as_str().to_string()),
                Value::Int(i64::from(self.cfg.raw_archive)),
                Value::Text(raw_path),
                Value::Int(size as i64),
                Value::Int(i64::from(sum)),
                Value::Text("data".to_string()),
            ],
        )?;
        let ts = self.io.clock.now_ms();
        self.io.insert(
            "loc_item",
            vec![Value::Int(raw_item), Value::Int(ts as i64)],
        )?;
        state.raw_item = Some(raw_item);
        state.raw_entry = Some(entry_id);
        state.raw_bytes = size;
        Ok(())
    }

    fn step_raw_row(&self, unit: &TelemetryUnit, state: &mut UnitState) -> DmResult<()> {
        let raw_item = state.raw_item.ok_or_else(|| {
            DmError::Integrity("ingest journal: raw_row without raw_stored".into())
        })?;
        let raw_id = self.io.next_id();
        self.io.insert(
            "raw_unit",
            vec![
                Value::Int(raw_id),
                Value::Int(i64::from(unit.seq)),
                Value::Int(unit.start_ms as i64),
                Value::Int(unit.end_ms as i64),
                Value::Int(unit.photons.len() as i64),
                Value::Int(i64::from(unit.calib_version)),
                Value::Int(raw_item),
                Value::Int(state.raw_bytes as i64),
                Value::Bool(false),
            ],
        )?;
        state.raw_id = Some(raw_id);
        Ok(())
    }

    fn step_events(&self, unit: &TelemetryUnit, state: &mut UnitState) -> DmResult<()> {
        let svc = Services::new(self.io);
        let procs = Processes::new(self.io);
        let raw_id = state
            .raw_id
            .ok_or_else(|| DmError::Integrity("ingest journal: events without raw_row".into()))?;
        let detected = detect(&unit.photons, unit.start_ms, unit.end_ms, &self.cfg.detect);
        for ev in &detected {
            let spec = HleSpec {
                time_start: ev.start_ms,
                time_end: ev.end_ms,
                energy_lo: 3.0,
                energy_hi: 20_000.0,
                event_type: ev.kind.type_name().to_string(),
                flare_class: match ev.kind {
                    EventKind::Flare(c) => Some(c.label().to_string()),
                    _ => None,
                },
                peak_rate: Some(ev.peak_rate),
                hardness: Some(ev.hardness),
                n_photons: Some(ev.photon_count as i64),
                title: Some(format!("{} @ {}", ev.kind.type_name(), ev.start_ms)),
                source: "detection".to_string(),
                calib_version: unit.calib_version,
            };
            let hle_id = svc.create_hle(self.session, &spec)?;
            svc.publish(self.session, "hle", hle_id)?;
            svc.add_to_catalog(self.session, self.cfg.extended_catalog, hle_id)?;
            procs.lineage(
                "hle",
                hle_id,
                Some(("raw_unit", raw_id)),
                "detect",
                unit.calib_version,
            )?;
            state.hle_ids.push(hle_id);
        }
        Ok(())
    }

    fn step_view(
        &self,
        unit: &TelemetryUnit,
        art: &mut Artifacts,
        state: &mut UnitState,
    ) -> DmResult<()> {
        let names = Names::new(self.io);
        let raw_id = state
            .raw_id
            .ok_or_else(|| DmError::Integrity("ingest journal: view without raw_row".into()))?;
        let view_path = view_path_of(unit, self.cfg);
        let physical = names.physical_path(self.cfg.derived_archive, &view_path)?;
        let (size, sum) = {
            let bytes = art.view(unit, self.cfg);
            self.io
                .files
                .store(self.cfg.derived_archive, &physical, bytes)?;
            (bytes.len() as u64, checksum(bytes))
        };
        let view_item = self.io.next_id();
        let entry_id = self.io.next_id();
        self.io.insert(
            "loc_entry",
            vec![
                Value::Int(entry_id),
                Value::Int(view_item),
                Value::Text(NameType::File.as_str().to_string()),
                Value::Int(i64::from(self.cfg.derived_archive)),
                Value::Text(view_path),
                Value::Int(size as i64),
                Value::Int(i64::from(sum)),
                Value::Text("data".to_string()),
            ],
        )?;
        let ts = self.io.clock.now_ms();
        self.io.insert(
            "loc_item",
            vec![Value::Int(view_item), Value::Int(ts as i64)],
        )?;
        let view_id = self.io.next_id();
        self.io.insert(
            "view_meta",
            vec![
                Value::Int(view_id),
                Value::Int(unit.start_ms as i64),
                Value::Int(unit.end_ms as i64),
                Value::Int(self.cfg.view_bin_ms as i64),
                Value::Int(self.cfg.view_partition as i64),
                Value::Float(self.cfg.view_quant),
                Value::Int(view_item),
                Value::Int(i64::from(unit.calib_version)),
            ],
        )?;
        Processes::new(self.io).lineage(
            "view",
            view_id,
            Some(("raw_unit", raw_id)),
            "wavelet",
            unit.calib_version,
        )?;
        state.view_item = Some(view_item);
        state.view_entry = Some(entry_id);
        state.view_id = Some(view_id);
        state.view_bytes = size;
        Ok(())
    }

    fn step_done(&self, unit: &TelemetryUnit, state: &mut UnitState) -> DmResult<()> {
        self.io.log("info", "ingest", &done_message(unit, state))
    }

    // -- compensation -------------------------------------------------------

    /// Remove partial effects of `step` (the first unrecorded step of a
    /// crashed unit) so the step can re-run from a clean slate. Every query
    /// keys off deterministic unit properties — archive paths, the unit's
    /// time window — never off allocated ids, which the crash may not have
    /// persisted anywhere. Returns the number of compensating actions.
    fn compensate(
        &self,
        step: JournalStep,
        unit: &TelemetryUnit,
        state: &UnitState,
    ) -> DmResult<usize> {
        match step {
            JournalStep::Admitted => Ok(0),
            JournalStep::RawStored => {
                self.compensate_file_location(unit.archive_path(), self.cfg.raw_archive)
            }
            JournalStep::RawRow => self.compensate_raw_row(state),
            JournalStep::Events => self.compensate_events(unit),
            JournalStep::View => self.compensate_view(unit, state),
            JournalStep::Done => self.compensate_done(unit, state),
        }
    }

    /// Delete the location rows and archive file of one path, if present.
    fn compensate_file_location(&self, path: String, archive: u32) -> DmResult<usize> {
        let mut n = 0usize;
        let entries = self.io.query(&Query::table("loc_entry").filter(
            Expr::eq("path", path.as_str()).and(Expr::eq("archive_id", i64::from(archive))),
        ))?;
        for row in &entries.rows {
            let entry_id = row[0].as_int().unwrap_or(0);
            let item_id = row[1].as_int().unwrap_or(0);
            n += self.io.execute(Statement::Delete {
                table: "loc_item".into(),
                filter: Some(Expr::eq("item_id", item_id)),
            })?;
            n += self.io.execute(Statement::Delete {
                table: "loc_entry".into(),
                filter: Some(Expr::eq("id", entry_id)),
            })?;
        }
        let names = Names::new(self.io);
        let physical = names.physical_path(archive, &path)?;
        if self.io.files.exists(archive, &physical) {
            self.io.files.delete(archive, &physical)?;
            n += 1;
        }
        Ok(n)
    }

    fn compensate_raw_row(&self, state: &UnitState) -> DmResult<usize> {
        match state.raw_item {
            Some(item) => Ok(self.io.execute(Statement::Delete {
                table: "raw_unit".into(),
                filter: Some(Expr::eq("item_id", item)),
            })?),
            None => Ok(0),
        }
    }

    /// Remove HLEs a crashed events step left behind. Detection HLEs start
    /// inside the unit's half-open time window, and units partition the
    /// downlink on disjoint windows, so `source = 'detection'` rows starting
    /// in `[start_ms, end_ms)` can only be this unit's partial output.
    fn compensate_events(&self, unit: &TelemetryUnit) -> DmResult<usize> {
        if unit.end_ms <= unit.start_ms {
            return Ok(0);
        }
        let mut n = 0usize;
        let hles = self.io.query(&Query::table("hle").filter(
            Expr::eq("source", "detection").and(Expr::between(
                "time_start",
                unit.start_ms as i64,
                unit.end_ms as i64 - 1,
            )),
        ))?;
        for row in &hles.rows {
            let hle_id = row[0].as_int().unwrap_or(0);
            n += self.io.execute(Statement::Delete {
                table: "catalog_member".into(),
                filter: Some(Expr::eq("hle_id", hle_id)),
            })?;
            n += self.io.execute(Statement::Delete {
                table: "op_lineage".into(),
                filter: Some(Expr::eq("entity_id", hle_id)),
            })?;
            n += self.io.execute(Statement::Delete {
                table: "hle".into(),
                filter: Some(Expr::eq("id", hle_id)),
            })?;
        }
        Ok(n)
    }

    fn compensate_view(&self, unit: &TelemetryUnit, state: &UnitState) -> DmResult<usize> {
        let view_path = view_path_of(unit, self.cfg);
        let mut n = 0usize;
        let entries = self.io.query(
            &Query::table("loc_entry").filter(
                Expr::eq("path", view_path.as_str())
                    .and(Expr::eq("archive_id", i64::from(self.cfg.derived_archive))),
            ),
        )?;
        for row in &entries.rows {
            let item_id = row[1].as_int().unwrap_or(0);
            n += self.io.execute(Statement::Delete {
                table: "view_meta".into(),
                filter: Some(Expr::eq("item_id", item_id)),
            })?;
        }
        if let Some(raw_id) = state.raw_id {
            n += self.io.execute(Statement::Delete {
                table: "op_lineage".into(),
                filter: Some(Expr::eq("entity_kind", "view").and(Expr::eq("source_id", raw_id))),
            })?;
        }
        n += self.compensate_file_location(view_path, self.cfg.derived_archive)?;
        Ok(n)
    }

    /// The done step's only effect is the ingest log line; its message is
    /// deterministic, so an exact-match delete removes a pre-crash duplicate.
    fn compensate_done(&self, unit: &TelemetryUnit, state: &UnitState) -> DmResult<usize> {
        Ok(self.io.execute(Statement::Delete {
            table: "op_log".into(),
            filter: Some(
                Expr::eq("component", "ingest")
                    .and(Expr::eq("message", done_message(unit, state).as_str())),
            ),
        })?)
    }
}

fn view_path_of(unit: &TelemetryUnit, cfg: &IngestConfig) -> String {
    format!("views/unit{:06}_b{}.hpv", unit.seq, cfg.view_bin_ms)
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Journal-less single-unit ingest: the legacy [`Processes::ingest_unit`]
/// path, now expressed through the shared step executor.
pub(crate) fn ingest_one(
    io: &DmIo,
    session: &Session,
    unit: &TelemetryUnit,
    cfg: &IngestConfig,
) -> DmResult<IngestReport> {
    let runner = UnitRunner {
        io,
        session,
        cfg,
        journal: false,
        crash: None,
    };
    let mut flight = match runner.admit(unit)? {
        Admit::Run(f) => f,
        Admit::Skip(state) => return Ok(state.report()),
    };
    runner.advance(&mut flight, JournalStep::Done)?;
    Ok(flight.state.report())
}

/// Ingest a batch of units: serial when `opts.workers <= 1`, staged-parallel
/// otherwise. Either way the run ends with the operational catalog refresh
/// (`op_archives` synced to the live file-store state) and a WAL flush on
/// every database, so "the run returned" implies "the journal is durable"
/// even under a large group-commit window.
///
/// A [`DmError::Crashed`] (injected crash) aborts the run and propagates —
/// it simulates process death, so no report exists. Any other per-unit error
/// marks that unit [`UnitStatus::Failed`] and the run continues: the report
/// accounts for every submitted unit.
pub fn ingest(
    io: &DmIo,
    session: &Session,
    units: &[TelemetryUnit],
    cfg: &IngestConfig,
    opts: &IngestOptions,
) -> DmResult<PipelineReport> {
    let report = if opts.workers <= 1 {
        ingest_serial(io, session, units, cfg, opts)?
    } else {
        ingest_parallel(io, session, units, cfg, opts)?
    };
    finish(io)?;
    Ok(report)
}

fn finish(io: &DmIo) -> DmResult<()> {
    Processes::new(io).refresh_archive_status()?;
    for db in io.databases() {
        db.wal_flush()?;
    }
    Ok(())
}

fn ingest_serial(
    io: &DmIo,
    session: &Session,
    units: &[TelemetryUnit],
    cfg: &IngestConfig,
    opts: &IngestOptions,
) -> DmResult<PipelineReport> {
    let runner = UnitRunner {
        io,
        session,
        cfg,
        journal: opts.journal,
        crash: opts.crash,
    };
    let mut results = Vec::with_capacity(units.len());
    for unit in units {
        // One trace per unit, same shape as the staged pipeline's.
        let root = hedc_obs::Span::root("ingest.unit");
        let outcome = match runner.admit(unit) {
            Ok(Admit::Skip(state)) => Ok(UnitResult::skipped(unit.seq, &state)),
            Ok(Admit::Run(mut flight)) => match runner.advance(&mut flight, JournalStep::Done) {
                Ok(()) => Ok(flight.into_result()),
                Err(DmError::Crashed(site)) => Err(DmError::Crashed(site)),
                Err(e) => Ok(UnitResult::failed(unit.seq, e)),
            },
            Err(DmError::Crashed(site)) => Err(DmError::Crashed(site)),
            Err(e) => Ok(UnitResult::failed(unit.seq, e)),
        };
        drop(root);
        results.push(outcome?);
    }
    Ok(PipelineReport::from_units(units.len(), results))
}

/// Stage-shared control state: the abort latch and the first injected crash.
struct Ctrl {
    abort: AtomicBool,
    crash: parking_lot::Mutex<Option<DmError>>,
}

impl Ctrl {
    fn record_crash(&self, e: DmError) {
        let mut slot = self.crash.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::Relaxed);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }
}

fn ingest_parallel(
    io: &DmIo,
    session: &Session,
    units: &[TelemetryUnit],
    cfg: &IngestConfig,
    opts: &IngestOptions,
) -> DmResult<PipelineReport> {
    let workers = opts.workers.max(1);
    let depth = opts.queue_depth.max(1);
    let runner = UnitRunner {
        io,
        session,
        cfg,
        journal: opts.journal,
        crash: opts.crash,
    };
    let ctrl = Ctrl {
        abort: AtomicBool::new(false),
        crash: parking_lot::Mutex::new(None),
    };

    let (in_tx, in_rx) = bounded::<&TelemetryUnit>(depth);
    let (write_tx, write_rx) = bounded::<Flight<'_>>(depth);
    let (meta_tx, meta_rx) = bounded::<Flight<'_>>(depth);
    let (events_tx, events_rx) = bounded::<Flight<'_>>(depth);
    let (view_tx, view_rx) = bounded::<Flight<'_>>(depth);
    // Unbounded-enough: one result per unit, so cap at the unit count.
    let (res_tx, res_rx) = bounded::<UnitResult>(units.len().max(1));

    let results = std::thread::scope(|s| {
        for _ in 0..workers {
            let (rx, tx, res) = (in_rx.clone(), write_tx.clone(), res_tx.clone());
            let (runner, ctrl) = (&runner, &ctrl);
            s.spawn(move || package_worker(runner, rx, tx, res, ctrl));
        }
        let stages = [
            ("write", JournalStep::RawStored, write_rx, Some(meta_tx)),
            ("meta", JournalStep::RawRow, meta_rx, Some(events_tx)),
            ("events", JournalStep::Events, events_rx, Some(view_tx)),
            ("view", JournalStep::Done, view_rx, None),
        ];
        for (name, through, rx, tx) in stages {
            for _ in 0..workers {
                let (rx, tx, res) = (rx.clone(), tx.clone(), res_tx.clone());
                let (runner, ctrl) = (&runner, &ctrl);
                s.spawn(move || stage_worker(runner, name, through, rx, tx, res, ctrl));
            }
            // The per-stage clones moved into the workers; dropping the
            // originals here lets each channel close once its stage drains.
            drop((rx, tx));
        }
        drop((in_rx, write_tx, res_tx));
        for unit in units {
            if ctrl.aborted() || in_tx.send(unit).is_err() {
                break;
            }
        }
        drop(in_tx);
        res_rx.iter().collect::<Vec<UnitResult>>()
    });

    if let Some(e) = ctrl.crash.lock().take() {
        return Err(e);
    }
    Ok(PipelineReport::from_units(units.len(), results))
}

/// First stage: journal lookup (admit/skip/resume) plus the CPU-heavy byte
/// products, so the DB-bound stages downstream stay short.
fn package_worker<'u>(
    runner: &UnitRunner<'_>,
    rx: Receiver<&'u TelemetryUnit>,
    tx: Sender<Flight<'u>>,
    results: Sender<UnitResult>,
    ctrl: &Ctrl,
) {
    let obs = hedc_obs::global();
    let queue = obs.gauge("ingest.queue.package");
    let lat = obs.histogram("ingest.stage.package");
    for unit in rx.iter() {
        queue.set(rx.len() as i64);
        if ctrl.aborted() {
            continue;
        }
        let started = Instant::now();
        match runner.admit(unit) {
            Ok(Admit::Skip(state)) => {
                let _ = results.send(UnitResult::skipped(unit.seq, &state));
            }
            Ok(Admit::Run(mut flight)) => {
                // Mint the unit's trace; the package work becomes its first
                // stage span, and downstream stages adopt the same context.
                let root = hedc_obs::PendingRoot::begin("ingest.unit");
                {
                    let _g = hedc_obs::adopt(Some(root.context()));
                    let _span = hedc_obs::Span::child("ingest.stage.package");
                    flight.art.precompute(unit, runner.cfg, flight.next_idx);
                }
                lat.record(started.elapsed());
                flight.trace = Some(root);
                flight.handed_off = Some(Instant::now());
                if tx.send(flight).is_err() {
                    ctrl.abort.store(true, Ordering::Relaxed);
                }
            }
            Err(e @ DmError::Crashed(_)) => ctrl.record_crash(e),
            Err(e) => {
                let _ = results.send(UnitResult::failed(unit.seq, e));
            }
        }
    }
}

/// A DB-bound stage: advance each in-flight unit through this stage's steps,
/// journaling as it goes, then hand it downstream (or finalize it).
fn stage_worker<'u>(
    runner: &UnitRunner<'_>,
    name: &'static str,
    through: JournalStep,
    rx: Receiver<Flight<'u>>,
    tx: Option<Sender<Flight<'u>>>,
    results: Sender<UnitResult>,
    ctrl: &Ctrl,
) {
    let obs = hedc_obs::global();
    let queue = obs.gauge(&format!("ingest.queue.{name}"));
    let lat = obs.histogram(&format!("ingest.stage.{name}"));
    for mut flight in rx.iter() {
        queue.set(rx.len() as i64);
        if ctrl.aborted() {
            continue;
        }
        // Rejoin the unit's trace; the time spent in this stage's queue
        // becomes an attribution span before the stage span opens.
        let _g = hedc_obs::adopt(flight.trace.as_ref().map(|t| t.context()));
        if let Some(handed) = flight.handed_off.take() {
            hedc_obs::record_interval(&format!("ingest.queue_wait.{name}"), handed);
        }
        let started = Instant::now();
        let outcome = {
            let _span = hedc_obs::Span::child(&format!("ingest.stage.{name}"));
            runner.advance(&mut flight, through)
        };
        match outcome {
            Ok(()) => {
                lat.record(started.elapsed());
                match &tx {
                    Some(tx) => {
                        flight.handed_off = Some(Instant::now());
                        if tx.send(flight).is_err() {
                            ctrl.abort.store(true, Ordering::Relaxed);
                        }
                    }
                    None => {
                        // Terminal stage: close the unit's trace.
                        if let Some(root) = flight.trace.take() {
                            root.finish();
                        }
                        let _ = results.send(flight.into_result());
                    }
                }
            }
            Err(e @ DmError::Crashed(_)) => ctrl.record_crash(e),
            Err(e) => {
                if let Some(root) = flight.trace.take() {
                    root.finish();
                }
                let _ = results.send(UnitResult::failed(flight.unit.seq, e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_step_roundtrip_and_order() {
        for (i, step) in JournalStep::ALL.into_iter().enumerate() {
            assert_eq!(step.index(), i);
            assert_eq!(JournalStep::parse(step.as_str()), Some(step));
        }
        assert_eq!(JournalStep::parse("nonsense"), None);
        assert!(JournalStep::Admitted < JournalStep::Done);
    }

    #[test]
    fn report_accounts_for_every_unit() {
        let mk = |seq: u32, status: UnitStatus| UnitResult {
            seq,
            report: match status {
                UnitStatus::Failed => None,
                _ => Some(IngestReport {
                    raw_id: 1,
                    hle_ids: vec![7, 8],
                    view_id: 2,
                    bytes_stored: 100,
                }),
            },
            error: match status {
                UnitStatus::Failed => Some(DmError::Integrity("x".into())),
                _ => None,
            },
            status,
        };
        let rep = PipelineReport::from_units(
            4,
            vec![
                mk(3, UnitStatus::Failed),
                mk(0, UnitStatus::Ingested),
                mk(
                    1,
                    UnitStatus::Resumed {
                        from: JournalStep::RawRow,
                        compensations: 2,
                    },
                ),
                mk(2, UnitStatus::Skipped),
            ],
        );
        assert!(rep.fully_accounted());
        assert_eq!(
            (rep.ingested, rep.resumed, rep.skipped, rep.failed),
            (1, 1, 1, 1)
        );
        assert_eq!(rep.compensations, 2);
        // Skipped units contribute HLE counts but not "stored this run" bytes.
        assert_eq!(rep.hle_count, 6);
        assert_eq!(rep.bytes_stored, 200);
        // Sorted by seq.
        let seqs: Vec<u32> = rep.units.iter().map(|u| u.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }
}
