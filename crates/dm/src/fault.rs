//! Deterministic fault injection for DM-tier and network-tier tests.
//!
//! Concurrency tests that kill nodes mid-run are the tests most likely to
//! flake — and a flake that cannot be replayed is a flake that never gets
//! fixed. [`FaultyDmNode`] wraps any [`DmNode`] and injects failures from a
//! seeded [SplitMix64] stream, so a failing run reproduces exactly from the
//! seed it printed. Setting `HEDC_TEST_SEED` overrides every plan's seed,
//! which is how `scripts/check.sh --seed N` replays a reported failure.
//!
//! Three fault classes are injected, mirroring what the real network tier
//! can produce (see `hedc-net`):
//!
//! * **unavailable** — the node refuses the call
//!   ([`DmError::RemoteUnavailable`]); routers fail over past it.
//! * **failed** — the node answers with an internal error
//!   ([`DmError::RemoteFailed`]); routers surface it, they do *not* fail
//!   over (the node is up — §5.4's redirection only reroutes outages).
//! * **slow** — the call sleeps before executing, exercising timeout and
//!   tail-latency handling without wall-clock-dependent assertions.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::error::{DmError, DmResult};
use crate::redirect::DmNode;
use hedc_metadb::{Query, QueryResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Advance a SplitMix64 state and return the next draw. Passes BigCrush,
/// needs one u64 of state, and — unlike hashing a counter — is identical
/// across platforms and std versions, which is what replayability needs.
/// Public so seeded concurrency tests outside this crate (the net-tier
/// churn and multiplexing suites) replay from the same stream family.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault schedule: per-mille rates for each fault class,
/// drawn from a seeded stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Base seed. [`FaultPlan::effective_seed`] applies the
    /// `HEDC_TEST_SEED` override.
    pub seed: u64,
    /// Calls per 1000 that return [`DmError::RemoteUnavailable`].
    pub unavailable_per_mille: u32,
    /// Calls per 1000 that return [`DmError::RemoteFailed`].
    pub failed_per_mille: u32,
    /// Calls per 1000 delayed by [`FaultPlan::slow_for`] before executing.
    pub slow_per_mille: u32,
    /// Injected delay for slow calls.
    pub slow_for: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; dial rates in with the
    /// builder methods.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            unavailable_per_mille: 0,
            failed_per_mille: 0,
            slow_per_mille: 0,
            slow_for: Duration::from_millis(1),
        }
    }

    /// Set the unavailability rate (calls per 1000).
    pub fn unavailable(mut self, per_mille: u32) -> Self {
        self.unavailable_per_mille = per_mille;
        self
    }

    /// Set the internal-failure rate (calls per 1000).
    pub fn failed(mut self, per_mille: u32) -> Self {
        self.failed_per_mille = per_mille;
        self
    }

    /// Set the slow-call rate (calls per 1000) and the injected delay.
    pub fn slow(mut self, per_mille: u32, delay: Duration) -> Self {
        self.slow_per_mille = per_mille;
        self.slow_for = delay;
        self
    }

    /// The seed this plan will actually run with: `HEDC_TEST_SEED` when the
    /// environment sets it (the `scripts/check.sh --seed` replay path),
    /// otherwise the plan's own seed. Tests should print this value so any
    /// failure is reproducible.
    pub fn effective_seed(&self) -> u64 {
        std::env::var("HEDC_TEST_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(self.seed)
    }
}

/// Counts of injected faults, for assertions and debugging output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected [`DmError::RemoteUnavailable`] responses.
    pub unavailable: u64,
    /// Injected [`DmError::RemoteFailed`] responses.
    pub failed: u64,
    /// Calls delayed before executing.
    pub slow: u64,
    /// Calls that reached the wrapped node (including delayed ones).
    pub passed: u64,
}

/// A [`DmNode`] wrapper that injects faults deterministically.
///
/// The draw sequence depends only on the seed and on the *order* in which
/// calls acquire the internal RNG lock. Single-threaded tests are exactly
/// reproducible; multi-threaded tests reproduce the same multiset of
/// injected faults for a given seed and call count, which pins down the
/// distribution a scheduler-dependent interleaving runs against.
pub struct FaultyDmNode<N: DmNode> {
    inner: Arc<N>,
    label: String,
    plan: FaultPlan,
    seed: u64,
    rng: Mutex<u64>,
    down: AtomicBool,
    /// Remaining calls before the node goes hard-down (`i64::MAX` = never).
    /// The shard-failover suite uses this to kill one replica *mid-scatter*
    /// at a deterministic call count rather than at a wall-clock instant.
    down_after: AtomicU64,
    unavailable: AtomicU64,
    failed: AtomicU64,
    slow: AtomicU64,
    passed: AtomicU64,
}

impl<N: DmNode> FaultyDmNode<N> {
    /// Wrap `inner`, drawing faults from `plan` (seed subject to the
    /// `HEDC_TEST_SEED` override).
    pub fn new(inner: Arc<N>, label: impl Into<String>, plan: FaultPlan) -> Self {
        let seed = plan.effective_seed();
        FaultyDmNode {
            inner,
            label: label.into(),
            plan,
            seed,
            rng: Mutex::new(seed),
            down: AtomicBool::new(false),
            down_after: AtomicU64::new(u64::MAX),
            unavailable: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            passed: AtomicU64::new(0),
        }
    }

    /// The seed the fault stream runs with. Print it in every test that
    /// uses this wrapper, so a flake reproduces via `HEDC_TEST_SEED`.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hard-down toggle (like [`crate::RemoteDm::set_down`]): while set,
    /// every call is refused regardless of the plan.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Die after `n` more calls: the first `n` gate entries proceed
    /// normally, then the node flips hard-down (refusing that call and
    /// every later one until [`FaultyDmNode::set_down`]`(false)`).
    /// Deterministic replica death for mid-scatter failover tests.
    pub fn down_after(&self, n: u64) {
        self.down_after.store(n, Ordering::SeqCst);
    }

    /// Injected-fault counters so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            unavailable: self.unavailable.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            slow: self.slow.load(Ordering::Relaxed),
            passed: self.passed.load(Ordering::Relaxed),
        }
    }

    fn inject(&self, class: &str, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
        hedc_obs::global().counter("fault.injected").inc();
        hedc_obs::emit(
            hedc_obs::events::kind::FAULT_INJECT,
            format!("{} injected {class} (seed {})", self.label, self.seed),
        );
    }

    /// One fault draw: the gate every delegated call (and every *entry* of
    /// a batched call) passes through. `Err` is the injected fault;
    /// `Ok(())` means the call proceeds (possibly after a slow-delay).
    fn fault_gate(&self) -> DmResult<()> {
        // Countdown death: decrement-and-check so exactly `n` calls pass.
        loop {
            let left = self.down_after.load(Ordering::SeqCst);
            if left == u64::MAX {
                break;
            }
            if left == 0 {
                self.down.store(true, Ordering::SeqCst);
                break;
            }
            if self
                .down_after
                .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        if self.down.load(Ordering::SeqCst) {
            return Err(DmError::RemoteUnavailable(self.label.clone()));
        }
        let draw = {
            let mut rng = self.rng.lock().expect("fault rng poisoned");
            splitmix64(&mut rng) % 1000
        } as u32;
        let p = &self.plan;
        if draw < p.unavailable_per_mille {
            self.inject("unavailable", &self.unavailable);
            return Err(DmError::RemoteUnavailable(self.label.clone()));
        }
        if draw < p.unavailable_per_mille + p.failed_per_mille {
            self.inject("failed", &self.failed);
            return Err(DmError::RemoteFailed(format!(
                "{}: injected internal error",
                self.label
            )));
        }
        if draw < p.unavailable_per_mille + p.failed_per_mille + p.slow_per_mille {
            self.inject("slow", &self.slow);
            std::thread::sleep(p.slow_for);
        }
        self.passed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl<N: DmNode> DmNode for FaultyDmNode<N> {
    fn node_id(&self) -> String {
        self.label.clone()
    }

    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.fault_gate()?;
        self.inner.execute_query(q)
    }

    fn resolve_names(
        &self,
        item_id: i64,
        want: crate::NameType,
    ) -> DmResult<Vec<crate::ResolvedName>> {
        self.fault_gate()?;
        self.inner.resolve_names(item_id, want)
    }

    // `execute_batch` and `resolve_batch` deliberately keep the trait
    // defaults: each entry of a batch delegates through the single-call
    // methods above and therefore takes its *own* fault draw — a batch
    // can partially fail, which is exactly what the wire tier's per-entry
    // error isolation has to be tested against.

    fn is_available(&self) -> bool {
        !self.down.load(Ordering::SeqCst) && self.inner.is_available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Clock, DmIo, IoConfig, Partitioning};
    use crate::schema;
    use hedc_filestore::FileStore;
    use hedc_metadb::{Database, Value};

    struct LocalNode {
        io: DmIo,
    }

    impl DmNode for LocalNode {
        fn node_id(&self) -> String {
            "local".into()
        }
        fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
            self.io.query(q)
        }
    }

    fn node() -> Arc<LocalNode> {
        let db = Database::in_memory("fault-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(FileStore::new()),
            Clock::starting_at(0),
            &IoConfig::default(),
        );
        io.insert(
            "catalog",
            vec![
                Value::Int(1),
                Value::Int(0),
                Value::Text("c".into()),
                Value::Null,
                Value::Text("system".into()),
                Value::Bool(true),
                Value::Int(0),
            ],
        )
        .unwrap();
        Arc::new(LocalNode { io })
    }

    fn outcome_tag(r: &DmResult<QueryResult>) -> &'static str {
        match r {
            Ok(_) => "ok",
            Err(DmError::RemoteUnavailable(_)) => "unavail",
            Err(DmError::RemoteFailed(_)) => "failed",
            Err(_) => "other",
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_sequence() {
        let run = |seed: u64| -> Vec<&'static str> {
            let n = FaultyDmNode::new(
                node(),
                "det",
                FaultPlan::seeded(seed).unavailable(200).failed(100),
            );
            (0..200)
                .map(|_| outcome_tag(&n.execute_query(&Query::table("catalog"))))
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(
            run(42),
            run(43),
            "distinct seeds should draw distinct fault schedules"
        );
    }

    #[test]
    fn rates_are_roughly_honored_and_counted() {
        let n = FaultyDmNode::new(
            node(),
            "rates",
            FaultPlan::seeded(7).unavailable(300).failed(100),
        );
        let mut ok = 0u64;
        for _ in 0..1000 {
            if n.execute_query(&Query::table("catalog")).is_ok() {
                ok += 1;
            }
        }
        let c = n.counts();
        assert_eq!(c.unavailable + c.failed + c.passed, 1000);
        assert_eq!(c.passed, ok);
        // 30%/10% nominal; a seeded stream lands near it.
        assert!((200..400).contains(&c.unavailable), "{c:?}");
        assert!((50..150).contains(&c.failed), "{c:?}");
    }

    #[test]
    fn hard_down_overrides_the_plan() {
        let n = FaultyDmNode::new(node(), "downed", FaultPlan::seeded(1));
        assert!(n.execute_query(&Query::table("catalog")).is_ok());
        n.set_down(true);
        assert!(!n.is_available());
        assert!(matches!(
            n.execute_query(&Query::table("catalog")),
            Err(DmError::RemoteUnavailable(_))
        ));
        n.set_down(false);
        assert!(n.execute_query(&Query::table("catalog")).is_ok());
    }

    #[test]
    fn down_after_kills_at_an_exact_call_count() {
        let n = FaultyDmNode::new(node(), "countdown", FaultPlan::seeded(5));
        n.down_after(3);
        for i in 0..3 {
            assert!(
                n.execute_query(&Query::table("catalog")).is_ok(),
                "call {i} should still pass"
            );
        }
        assert!(matches!(
            n.execute_query(&Query::table("catalog")),
            Err(DmError::RemoteUnavailable(_))
        ));
        assert!(!n.is_available(), "countdown death is a hard-down");
        n.set_down(false);
        assert!(n.execute_query(&Query::table("catalog")).is_ok());
    }

    #[test]
    fn injections_are_observable() {
        let n = FaultyDmNode::new(
            node(),
            "observed-node",
            FaultPlan::seeded(3).unavailable(1000),
        );
        let _ = n.execute_query(&Query::table("catalog"));
        let events = hedc_obs::event_log().events_of_kind(hedc_obs::events::kind::FAULT_INJECT);
        assert!(
            events
                .iter()
                .any(|e| e.detail.contains("observed-node") && e.detail.contains("unavailable")),
            "{events:?}"
        );
    }
}
