//! The DM process layer (§5.2).
//!
//! "The process layer combines the operations of the I/O layer with the
//! services of the semantic layer to provide processes": raw-data
//! preparation, event filtering, entity association, catalog generation,
//! and physical archive relocation — each a multi-step workflow with
//! logging and compensation.

use crate::error::{DmError, DmResult};
use crate::io::DmIo;
use crate::names::{NameType, Names};
use crate::semantic::Services;
use crate::session::Session;
use hedc_events::{DetectConfig, TelemetryUnit};
use hedc_filestore::migrate_batch;
use hedc_metadb::{Expr, Query, Statement, Value};

/// Result of ingesting one telemetry unit.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// `raw_unit` tuple id.
    pub raw_id: i64,
    /// HLE ids created from detected events.
    pub hle_ids: Vec<i64>,
    /// `view_meta` id of the approximated view built at load time.
    pub view_id: i64,
    /// Bytes stored (raw file + view file).
    pub bytes_stored: u64,
}

/// Ingest parameters.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Archive receiving the raw FITS file.
    pub raw_archive: u32,
    /// Archive receiving derived files (views, catalog images).
    pub derived_archive: u32,
    /// Extended-catalog id to attach detected events to.
    pub extended_catalog: i64,
    /// Detection tuning.
    pub detect: DetectConfig,
    /// Wavelet view: bin width (ms).
    pub view_bin_ms: u64,
    /// Wavelet view: partition length (bins).
    pub view_partition: usize,
    /// Wavelet view: quantization step.
    pub view_quant: f64,
}

impl IngestConfig {
    /// Sensible defaults against archives 1 (raw) and 2 (derived).
    pub fn new(raw_archive: u32, derived_archive: u32, extended_catalog: i64) -> Self {
        IngestConfig {
            raw_archive,
            derived_archive,
            extended_catalog,
            detect: DetectConfig::default(),
            view_bin_ms: 1000,
            view_partition: 1024,
            view_quant: 0.5,
        }
    }
}

/// Process-layer workflows over one DM node.
pub struct Processes<'a> {
    io: &'a DmIo,
}

impl<'a> Processes<'a> {
    /// Wrap the I/O layer.
    pub fn new(io: &'a DmIo) -> Self {
        Processes { io }
    }

    /// The data-loading workflow (§2.2/§4.1): store the raw unit, register
    /// its location, run event detection, create public HLEs in the
    /// extended catalog, and build the load-time wavelet view (§3.4).
    ///
    /// `import_session` is the system import user (HLEs it creates are
    /// published immediately, as the paper's catalogs are).
    pub fn ingest_unit(
        &self,
        import_session: &Session,
        unit: &TelemetryUnit,
        cfg: &IngestConfig,
    ) -> DmResult<IngestReport> {
        crate::pipeline::ingest_one(self.io, import_session, unit, cfg)
    }

    /// Synchronize the `op_archives` operational table with the live
    /// file-store state (§4.1: "status of archives (online, capacity left,
    /// type)"). Run after ingest/relocation so monitoring reflects reality.
    pub fn refresh_archive_status(&self) -> DmResult<usize> {
        let mut updated = 0usize;
        for status in self.io.files.statuses() {
            updated += self.io.execute(Statement::Update {
                table: "op_archives".into(),
                sets: vec![
                    (
                        "state".into(),
                        Expr::Literal(Value::Text(format!("{:?}", status.state))),
                    ),
                    ("used".into(), Expr::Literal(Value::Int(status.used as i64))),
                ],
                filter: Some(Expr::eq("archive_id", i64::from(status.id))),
            })?;
        }
        Ok(updated)
    }

    /// Record a lineage row (§4.1 operational section).
    pub fn lineage(
        &self,
        entity_kind: &str,
        entity_id: i64,
        source: Option<(&str, i64)>,
        operation: &str,
        calib_version: u32,
    ) -> DmResult<()> {
        let id = self.io.next_id();
        let ts = self.io.clock.now_ms() as i64;
        self.io.insert(
            "op_lineage",
            vec![
                Value::Int(id),
                Value::Text(entity_kind.to_string()),
                Value::Int(entity_id),
                source
                    .map(|(k, _)| Value::Text(k.to_string()))
                    .unwrap_or(Value::Null),
                source.map(|(_, i)| Value::Int(i)).unwrap_or(Value::Null),
                Value::Text(operation.to_string()),
                Value::Int(i64::from(calib_version)),
                Value::Int(ts),
            ],
        )?;
        Ok(())
    }

    /// Lineage rows for an entity (provenance queries).
    pub fn lineage_of(&self, entity_id: i64) -> DmResult<Vec<(String, String)>> {
        let r = self
            .io
            .query(&Query::table("op_lineage").filter(Expr::eq("entity_id", entity_id)))?;
        Ok(r.rows
            .iter()
            .map(|row| {
                (
                    row[1].as_text().unwrap_or("").to_string(),
                    row[5].as_text().unwrap_or("").to_string(),
                )
            })
            .collect())
    }

    /// Physical archive relocation (§5.2's example workflow): migrate the
    /// files, repoint their location entries, write lineage and logs.
    /// Already-moved files stay moved on failure (the workflow is
    /// restartable); metadata always matches reality.
    pub fn relocate(
        &self,
        from_archive: u32,
        to_archive: u32,
        paths: &[String],
    ) -> DmResult<usize> {
        let names = Names::new(self.io);
        let (records, failure) = migrate_batch(&self.io.files, from_archive, to_archive, paths);
        for rec in &records {
            names.repoint_entries(from_archive, to_archive, std::slice::from_ref(&rec.path))?;
            self.lineage("file", 0, None, &format!("relocate:{}", rec.path), 0)?;
        }
        self.io.log(
            if failure.is_some() { "warn" } else { "info" },
            "relocate",
            &format!(
                "moved {}/{} files from archive {} to {}",
                records.len(),
                paths.len(),
                from_archive,
                to_archive
            ),
        )?;
        match failure {
            Some(e) => Err(DmError::Fs(e)),
            None => Ok(records.len()),
        }
    }

    /// Catalog generation: group all visible HLEs matching a filter into a
    /// new catalog (the "lists of events that are generally accepted as
    /// being of a particular type", §3.3).
    pub fn generate_catalog(
        &self,
        session: &Session,
        name: &str,
        filter: Expr,
    ) -> DmResult<(i64, usize)> {
        let svc = Services::new(self.io);
        let catalog_id = svc.create_catalog(session, name, "generated", None)?;
        let hles = svc.query(session, Query::table("hle").filter(filter))?;
        let mut count = 0usize;
        for row in &hles.rows {
            let hle_id = row[0].as_int().expect("hle id");
            svc.add_to_catalog(session, catalog_id, hle_id)?;
            count += 1;
        }
        self.io.log(
            "info",
            "catalog",
            &format!("generated catalog `{name}` with {count} events"),
        )?;
        Ok((catalog_id, count))
    }

    /// Purge obsolete raw units: delete their files and mark metadata. The
    /// "data refresh and purging rules" of §4.1.
    pub fn purge_obsolete_raw(&self) -> DmResult<usize> {
        let names = Names::new(self.io);
        let rows = self
            .io
            .query(&Query::table("raw_unit").filter(Expr::eq("obsolete", true)))?;
        let mut purged = 0usize;
        for row in &rows.rows {
            let raw_id = row[0].as_int().expect("id");
            let item_id = row[6].as_int().expect("item");
            for name in names.resolve(item_id, NameType::File)? {
                // Missing files are fine — purge is idempotent.
                let _ = self.io.files.delete(name.archive_id, &name.archive_path);
            }
            self.io.execute(Statement::Delete {
                table: "loc_entry".into(),
                filter: Some(Expr::eq("item_id", item_id)),
            })?;
            self.io.execute(Statement::Delete {
                table: "raw_unit".into(),
                filter: Some(Expr::eq("id", raw_id)),
            })?;
            purged += 1;
        }
        Ok(purged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Clock, IoConfig, Partitioning};
    use crate::schema;
    use crate::session::{create_user, Rights, SessionKind, SessionManager};
    use hedc_events::{generate, package, GenConfig};
    use hedc_filestore::{Archive, ArchiveTier, FileStore};
    use hedc_metadb::Database;
    use hedc_wavelet::PartitionedView;
    use std::sync::Arc;

    struct Fx {
        io: DmIo,
        import: Arc<Session>,
        extended: i64,
    }

    fn fixture() -> Fx {
        let db = Database::in_memory("process-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let files = FileStore::new();
        files.register(Archive::in_memory(
            1,
            "raw",
            ArchiveTier::OnlineDisk,
            1 << 30,
        ));
        files.register(Archive::in_memory(
            2,
            "derived",
            ArchiveTier::OnlineRaid,
            1 << 30,
        ));
        files.register(Archive::in_memory(
            3,
            "tape",
            ArchiveTier::TapeVault,
            1 << 30,
        ));
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(files),
            Clock::starting_at(0),
            &IoConfig::default(),
        );
        let names = Names::new(&io);
        for (id, ty) in [(1u32, "disk"), (2, "raid"), (3, "tape")] {
            names.register_archive(id, ty, "", None).unwrap();
        }
        create_user(
            &io,
            "import",
            "pw",
            "system",
            Rights::SCIENTIST.with(Rights::ADMIN),
        )
        .unwrap();
        let mgr = SessionManager::new();
        let c = mgr.authenticate(&io, "import", "pw", "local").unwrap();
        let import = mgr.lookup("local", c, SessionKind::Hle).unwrap();
        let svc = Services::new(&io);
        let extended = svc
            .create_catalog(&import, "extended", "system", None)
            .unwrap();
        svc.publish(&import, "catalog", extended).unwrap();
        Fx {
            io,
            import,
            extended,
        }
    }

    fn busy_unit() -> TelemetryUnit {
        let t = generate(&GenConfig {
            duration_ms: 30 * 60 * 1000,
            flares_per_hour: 8.0,
            background_rate: 20.0,
            seed: 31,
            ..GenConfig::default()
        });
        package(&t, usize::MAX, 1).remove(0)
    }

    #[test]
    fn ingest_full_workflow() {
        let f = fixture();
        let procs = Processes::new(&f.io);
        let unit = busy_unit();
        let cfg = IngestConfig::new(1, 2, f.extended);
        let report = procs.ingest_unit(&f.import, &unit, &cfg).unwrap();
        assert!(report.bytes_stored > 0);
        assert!(
            !report.hle_ids.is_empty(),
            "an active half hour detects events"
        );
        // Raw file exists and is referenced.
        assert!(f.io.files.exists(1, &unit.archive_path()));
        // HLEs are in the extended catalog and public.
        let svc = Services::new(&f.io);
        let members = svc.catalog_members(&f.import, f.extended).unwrap();
        assert_eq!(members, report.hle_ids);
        let guest = Session::anonymous("x");
        let visible = svc.query(&guest, Query::table("hle")).unwrap();
        assert_eq!(visible.rows.len(), report.hle_ids.len());
        // The view file parses back and reconstructs.
        let names = Names::new(&f.io);
        let vm = f.io.query(&Query::table("view_meta")).unwrap();
        assert_eq!(vm.rows.len(), 1);
        let view_item = vm.rows[0][6].as_int().unwrap();
        let bytes = names.fetch_data(view_item).unwrap();
        let view = PartitionedView::from_bytes(&bytes).unwrap();
        assert_eq!(
            view.total_len() as u64,
            (unit.end_ms - unit.start_ms) / 1000
        );
        // Lineage recorded for every HLE.
        for &h in &report.hle_ids {
            let lin = procs.lineage_of(h).unwrap();
            assert!(lin.iter().any(|(k, op)| k == "hle" && op == "detect"));
        }
    }

    #[test]
    fn relocation_workflow_moves_and_repoints() {
        let f = fixture();
        let procs = Processes::new(&f.io);
        let unit = busy_unit();
        let cfg = IngestConfig::new(1, 2, f.extended);
        procs.ingest_unit(&f.import, &unit, &cfg).unwrap();
        let path = unit.archive_path();
        let moved = procs.relocate(1, 3, std::slice::from_ref(&path)).unwrap();
        assert_eq!(moved, 1);
        assert!(!f.io.files.exists(1, &path));
        assert!(f.io.files.exists(3, &path));
        // Name mapping follows.
        let names = Names::new(&f.io);
        let raw = f.io.query(&Query::table("raw_unit")).unwrap();
        let item = raw.rows[0][6].as_int().unwrap();
        let resolved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(resolved[0].archive_id, 3);
        assert!(names.fetch_data(item).is_ok());
    }

    #[test]
    fn relocation_failure_keeps_metadata_consistent() {
        let f = fixture();
        let procs = Processes::new(&f.io);
        let unit = busy_unit();
        let cfg = IngestConfig::new(1, 2, f.extended);
        procs.ingest_unit(&f.import, &unit, &cfg).unwrap();
        let good = unit.archive_path();
        let paths = vec![good.clone(), "missing/file".to_string()];
        let err = procs.relocate(1, 3, &paths).unwrap_err();
        assert!(matches!(err, DmError::Fs(_)));
        // The good file moved and was repointed; metadata matches reality.
        let names = Names::new(&f.io);
        let raw = f.io.query(&Query::table("raw_unit")).unwrap();
        let item = raw.rows[0][6].as_int().unwrap();
        let resolved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(resolved[0].archive_id, 3);
        assert_eq!(
            names.fetch_data(item).unwrap().len() as u64,
            resolved[0].size
        );
    }

    #[test]
    fn generated_catalog_collects_flares() {
        let f = fixture();
        let procs = Processes::new(&f.io);
        let unit = busy_unit();
        let cfg = IngestConfig::new(1, 2, f.extended);
        let report = procs.ingest_unit(&f.import, &unit, &cfg).unwrap();
        let (cat, n) = procs
            .generate_catalog(&f.import, "flares-only", Expr::eq("event_type", "flare"))
            .unwrap();
        assert!(n > 0 && n <= report.hle_ids.len());
        let svc = Services::new(&f.io);
        assert_eq!(svc.catalog_members(&f.import, cat).unwrap().len(), n);
    }

    #[test]
    fn purge_deletes_files_and_tuples() {
        let f = fixture();
        let procs = Processes::new(&f.io);
        let unit = busy_unit();
        let cfg = IngestConfig::new(1, 2, f.extended);
        procs.ingest_unit(&f.import, &unit, &cfg).unwrap();
        // Nothing obsolete yet.
        assert_eq!(procs.purge_obsolete_raw().unwrap(), 0);
        f.io.execute(Statement::Update {
            table: "raw_unit".into(),
            sets: vec![("obsolete".into(), Expr::Literal(Value::Bool(true)))],
            filter: None,
        })
        .unwrap();
        assert_eq!(procs.purge_obsolete_raw().unwrap(), 1);
        assert!(!f.io.files.exists(1, &unit.archive_path()));
        assert!(f
            .io
            .query(&Query::table("raw_unit"))
            .unwrap()
            .rows
            .is_empty());
    }
}
