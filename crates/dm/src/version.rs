//! Versioning and recalibration (§3.1).
//!
//! "It is to be expected that the raw data will be recalibrated several
//! times. Accordingly, the raw data and all the derived data based on it
//! must be versioned. ... a significant number of the analyses performed
//! for previous versions of the data may have to be recomputed." The sweep
//! here re-derives every raw unit under a new calibration, stores the new
//! files beside the old (files are immutable), repoints the location
//! entries, bumps versions with a `version_log` trail, and marks dependent
//! analyses obsolete so the PL can schedule recomputation.

use crate::error::{DmError, DmResult};
use crate::io::DmIo;
use crate::names::{NameType, Names};
use crate::process::Processes;
use hedc_events::{recalibrate, Calibration, TelemetryUnit};
use hedc_filestore::{checksum, FitsFile};
use hedc_metadb::{Expr, Query, Statement, Value};

/// Outcome of a recalibration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RecalReport {
    /// Raw units re-derived.
    pub units_recalibrated: usize,
    /// Analyses marked obsolete (need recomputation).
    pub analyses_invalidated: usize,
    /// New calibration version.
    pub new_version: u32,
}

/// Versioning services.
pub struct Versioning<'a> {
    io: &'a DmIo,
}

impl<'a> Versioning<'a> {
    /// Wrap the I/O layer.
    pub fn new(io: &'a DmIo) -> Self {
        Versioning { io }
    }

    /// Append a `version_log` row.
    pub fn log_version(
        &self,
        entity_kind: &str,
        entity_id: i64,
        version: i64,
        calib_version: Option<u32>,
        reason: &str,
    ) -> DmResult<()> {
        let id = self.io.next_id();
        let ts = self.io.clock.now_ms() as i64;
        self.io.insert(
            "version_log",
            vec![
                Value::Int(id),
                Value::Text(entity_kind.to_string()),
                Value::Int(entity_id),
                Value::Int(version),
                calib_version
                    .map(|v| Value::Int(i64::from(v)))
                    .unwrap_or(Value::Null),
                Value::Text(reason.to_string()),
                Value::Int(ts),
            ],
        )?;
        Ok(())
    }

    /// Version history of one entity, oldest first.
    pub fn history(&self, entity_id: i64) -> DmResult<Vec<(i64, String)>> {
        let r = self.io.query(
            &Query::table("version_log")
                .filter(Expr::eq("entity_id", entity_id))
                .order_by("ts_ms", hedc_metadb::OrderDir::Asc),
        )?;
        Ok(r.rows
            .iter()
            .map(|row| {
                (
                    row[3].as_int().unwrap_or(0),
                    row[5].as_text().unwrap_or("").to_string(),
                )
            })
            .collect())
    }

    /// Apply a new calibration to every non-obsolete raw unit currently at
    /// `old.version`, and invalidate dependent analyses.
    pub fn apply_recalibration(
        &self,
        old: &Calibration,
        new: &Calibration,
    ) -> DmResult<RecalReport> {
        if new.version <= old.version {
            return Err(DmError::Integrity(format!(
                "new calibration version {} must exceed {}",
                new.version, old.version
            )));
        }
        let names = Names::new(self.io);
        let procs = Processes::new(self.io);

        let units = self.io.query(&Query::table("raw_unit").filter(
            Expr::eq("calib_version", i64::from(old.version)).and(Expr::eq("obsolete", false)),
        ))?;
        let mut recal_count = 0usize;
        for row in &units.rows {
            let raw_id = row[0].as_int().expect("id");
            let item_id = row[6].as_int().expect("item");

            // Fetch + parse + recalibrate + re-package.
            let resolved = names.resolve(item_id, NameType::File)?;
            let primary = resolved
                .iter()
                .find(|n| n.role == "data")
                .ok_or(DmError::NotFound {
                    entity: "raw file",
                    id: item_id,
                })?;
            let bytes = self
                .io
                .files
                .fetch(primary.archive_id, &primary.archive_path)?;
            let unit = TelemetryUnit::from_fits(&FitsFile::from_bytes(&bytes)?)?;
            let photons = recalibrate(&unit.photons, old, new)
                .map_err(|e| DmError::Integrity(format!("recalibration: {e}")))?;
            let new_unit = TelemetryUnit {
                calib_version: new.version,
                photons,
                ..unit
            };
            let new_bytes = new_unit.to_fits().to_bytes();
            // Physical writes use the prefix-joined archive path; the
            // location tables store the entry-relative path, or resolve()
            // would double-apply the archive prefix afterwards.
            let new_entry_path = format!("{}.v{}", primary.entry_path, new.version);
            let new_archive_path = format!("{}.v{}", primary.archive_path, new.version);
            self.io
                .files
                .store(primary.archive_id, &new_archive_path, &new_bytes)?;

            // Repoint the entry at the new file; keep the old file on disk
            // (immutable history) but no longer referenced as primary.
            self.io.execute(Statement::Update {
                table: "loc_entry".into(),
                sets: vec![
                    ("path".into(), Expr::Literal(Value::Text(new_entry_path))),
                    (
                        "size".into(),
                        Expr::Literal(Value::Int(new_bytes.len() as i64)),
                    ),
                    (
                        "checksum".into(),
                        Expr::Literal(Value::Int(i64::from(checksum(&new_bytes)))),
                    ),
                ],
                filter: Some(Expr::eq("id", primary.entry_id)),
            })?;

            // Bump the raw tuple's calibration version.
            self.io.execute(Statement::Update {
                table: "raw_unit".into(),
                sets: vec![(
                    "calib_version".into(),
                    Expr::Literal(Value::Int(i64::from(new.version))),
                )],
                filter: Some(Expr::eq("id", raw_id)),
            })?;
            self.log_version(
                "raw_unit",
                raw_id,
                i64::from(new.version),
                Some(new.version),
                "recalibration",
            )?;
            procs.lineage(
                "raw_unit",
                raw_id,
                Some(("raw_unit", raw_id)),
                "recalibrate",
                new.version,
            )?;
            recal_count += 1;
        }

        // Invalidate analyses computed under older calibrations.
        let stale = self.io.query(
            &Query::table("ana").filter(
                hedc_metadb::Expr::cmp(
                    "calib_version",
                    hedc_metadb::CmpOp::Lt,
                    i64::from(new.version),
                )
                .and(Expr::eq("obsolete", false)),
            ),
        )?;
        let mut invalidated = 0usize;
        for row in &stale.rows {
            let ana_id = row[0].as_int().expect("ana id");
            self.io.execute(Statement::Update {
                table: "ana".into(),
                sets: vec![("obsolete".into(), Expr::Literal(Value::Bool(true)))],
                filter: Some(Expr::eq("id", ana_id)),
            })?;
            self.log_version("ana", ana_id, 0, Some(new.version), "stale: recalibration")?;
            invalidated += 1;
        }

        // Advance the node's calibration lineage so in-memory result stores
        // (PL reuse/coalescing) drop entries computed under the old
        // calibration — the DB rows above are already marked obsolete, this
        // covers caches that never re-read them.
        self.io.bump_calib_lineage(new.version);

        self.io.log(
            "info",
            "recalibration",
            &format!(
                "v{} -> v{}: {recal_count} units re-derived, {invalidated} analyses invalidated",
                old.version, new.version
            ),
        )?;
        Ok(RecalReport {
            units_recalibrated: recal_count,
            analyses_invalidated: invalidated,
            new_version: new.version,
        })
    }

    /// Analyses needing recomputation (obsolete = true), oldest first —
    /// "depending on user requests and capacity, a significant number of the
    /// analyses ... may have to be recomputed" (§3.1).
    pub fn stale_analyses(&self) -> DmResult<Vec<i64>> {
        let r = self.io.query(
            &Query::table("ana")
                .filter(Expr::eq("obsolete", true))
                .order_by("created_ms", hedc_metadb::OrderDir::Asc),
        )?;
        Ok(r.rows
            .iter()
            .map(|row| row[0].as_int().expect("ana id"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Clock, IoConfig, Partitioning};
    use crate::process::IngestConfig;
    use crate::schema;
    use crate::semantic::{AnaSpec, Services};
    use crate::session::{create_user, Rights, Session, SessionKind, SessionManager};
    use hedc_events::{generate, package, GenConfig};
    use hedc_filestore::{Archive, ArchiveTier, FileStore};
    use hedc_metadb::Database;
    use std::sync::Arc;

    struct Fx {
        io: DmIo,
        import: Arc<Session>,
        extended: i64,
    }

    fn fixture() -> Fx {
        let db = Database::in_memory("version-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let files = FileStore::new();
        files.register(Archive::in_memory(
            1,
            "raw",
            ArchiveTier::OnlineDisk,
            1 << 30,
        ));
        files.register(Archive::in_memory(
            2,
            "derived",
            ArchiveTier::OnlineRaid,
            1 << 30,
        ));
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(files),
            Clock::starting_at(0),
            &IoConfig::default(),
        );
        let names = Names::new(&io);
        names.register_archive(1, "disk", "", None).unwrap();
        names.register_archive(2, "raid", "", None).unwrap();
        create_user(
            &io,
            "import",
            "pw",
            "system",
            Rights::SCIENTIST.with(Rights::ADMIN),
        )
        .unwrap();
        let mgr = SessionManager::new();
        let c = mgr.authenticate(&io, "import", "pw", "local").unwrap();
        let import = mgr.lookup("local", c, SessionKind::Hle).unwrap();
        let svc = Services::new(&io);
        let extended = svc
            .create_catalog(&import, "extended", "system", None)
            .unwrap();
        Fx {
            io,
            import,
            extended,
        }
    }

    fn ingest_one(f: &Fx) -> (i64, Vec<i64>) {
        let t = generate(&GenConfig {
            duration_ms: 20 * 60 * 1000,
            flares_per_hour: 6.0,
            background_rate: 15.0,
            seed: 77,
            ..GenConfig::default()
        });
        let unit = package(&t, usize::MAX, 1).remove(0);
        let procs = Processes::new(&f.io);
        let cfg = IngestConfig::new(1, 2, f.extended);
        let rep = procs.ingest_unit(&f.import, &unit, &cfg).unwrap();
        (rep.raw_id, rep.hle_ids)
    }

    #[test]
    fn recalibration_rederives_and_invalidates() {
        let f = fixture();
        let (raw_id, hle_ids) = ingest_one(&f);
        // Attach an analysis computed under v1.
        let svc = Services::new(&f.io);
        let (ana_id, _) = svc
            .import_analysis(
                &f.import,
                &AnaSpec {
                    hle_id: hle_ids[0],
                    kind: "imaging".into(),
                    fingerprint: "fp".into(),
                    t_start: 0,
                    t_end: 1000,
                    energy_lo: 3.0,
                    energy_hi: 100.0,
                    param_grid: None,
                    param_bins: None,
                    param_bin_ms: None,
                    duration_ms: 100,
                    cpu_ms: 90,
                    output_bytes: 10,
                    product_type: "image".into(),
                    calib_version: 1,
                },
                &[],
            )
            .unwrap();

        let v1 = Calibration::launch();
        let v2 = v1.recalibrated(0.05, 0.0);
        let vsn = Versioning::new(&f.io);
        let report = vsn.apply_recalibration(&v1, &v2).unwrap();
        assert_eq!(report.units_recalibrated, 1);
        assert_eq!(report.analyses_invalidated, 1);
        assert_eq!(report.new_version, 2);

        // Raw tuple now at v2, and the referenced file parses at v2.
        let raw =
            f.io.query(&Query::table("raw_unit").filter(Expr::eq("id", raw_id)))
                .unwrap();
        assert_eq!(raw.rows[0][5].as_int(), Some(2));
        let names = Names::new(&f.io);
        let item = raw.rows[0][6].as_int().unwrap();
        let bytes = names.fetch_data(item).unwrap();
        let unit = TelemetryUnit::from_fits(&FitsFile::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(unit.calib_version, 2);

        // The stale analysis is queued for recomputation, with history.
        assert_eq!(vsn.stale_analyses().unwrap(), vec![ana_id]);
        let hist = vsn.history(ana_id).unwrap();
        assert!(hist.iter().any(|(_, r)| r.contains("recalibration")));

        // Idempotence: running the same sweep again finds nothing at v1.
        let report2 = vsn
            .apply_recalibration(&v1, &v2.recalibrated(0.0, 0.0))
            .unwrap();
        assert_eq!(report2.units_recalibrated, 0);
    }

    #[test]
    fn recalibration_version_must_increase() {
        let f = fixture();
        let v1 = Calibration::launch();
        let vsn = Versioning::new(&f.io);
        assert!(matches!(
            vsn.apply_recalibration(&v1, &v1),
            Err(DmError::Integrity(_))
        ));
    }

    #[test]
    fn version_history_ordering() {
        let f = fixture();
        let vsn = Versioning::new(&f.io);
        vsn.log_version("hle", 42, 1, None, "created").unwrap();
        vsn.log_version("hle", 42, 2, Some(2), "recalibrated")
            .unwrap();
        vsn.log_version("hle", 42, 3, Some(2), "corrected").unwrap();
        let h = vsn.history(42).unwrap();
        assert_eq!(h.iter().map(|(v, _)| *v).collect::<Vec<_>>(), vec![1, 2, 3]);
        let _ = (&f.import, f.extended);
    }

    #[test]
    fn old_files_remain_for_history() {
        let f = fixture();
        ingest_one(&f);
        let before: Vec<String> = f.io.files.archive(1).unwrap().list();
        let v1 = Calibration::launch();
        let v2 = v1.recalibrated(0.02, 0.1);
        Versioning::new(&f.io)
            .apply_recalibration(&v1, &v2)
            .unwrap();
        let after: Vec<String> = f.io.files.archive(1).unwrap().list();
        assert_eq!(after.len(), before.len() + 1, "old file kept, new added");
        for old in &before {
            assert!(after.contains(old));
        }
    }
}
