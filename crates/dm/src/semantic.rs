//! The DM semantic layer (§5.2).
//!
//! "The intermediate semantic layer is used to implement services ... It
//! enforces access rules, ensures referential consistency, and determines
//! data dependencies." Entity operations here are transactional around the
//! HLE/ANA/file-reference group (§4.4), ownership scoping is appended to
//! every query ("the system typically appends the user id to all queries so
//! that only public tuples or tuples owned by that user are returned",
//! §5.5), and the redundant-work check of §3.5 lives here.

use crate::error::{DmError, DmResult};
use crate::io::DmIo;
use crate::names::NameType;
use crate::session::{Rights, Session};
use hedc_metadb::{CmpOp, Expr, Query, QueryResult, Statement, Value};

/// Specification of a new high-level event.
#[derive(Debug, Clone)]
pub struct HleSpec {
    /// Start, mission ms.
    pub time_start: u64,
    /// End, mission ms.
    pub time_end: u64,
    /// Lower energy bound, keV.
    pub energy_lo: f64,
    /// Upper energy bound, keV.
    pub energy_hi: f64,
    /// Event type string (`flare`, `grb`, `quiet`, ... or user-defined —
    /// §3.3: "there are only events").
    pub event_type: String,
    /// Flare class label, if classified.
    pub flare_class: Option<String>,
    /// Peak rate, photons/s.
    pub peak_rate: Option<f64>,
    /// Spectral hardness.
    pub hardness: Option<f64>,
    /// Photons attributed.
    pub n_photons: Option<i64>,
    /// Title for browsing.
    pub title: Option<String>,
    /// Origin: `import`, `detection`, `user`, `streamcorder`.
    pub source: String,
    /// Calibration version of the underlying data.
    pub calib_version: u32,
}

impl HleSpec {
    /// A minimal event spec over a window.
    pub fn window(time_start: u64, time_end: u64, event_type: &str) -> Self {
        HleSpec {
            time_start,
            time_end,
            energy_lo: 3.0,
            energy_hi: 20_000.0,
            event_type: event_type.to_string(),
            flare_class: None,
            peak_rate: None,
            hardness: None,
            n_photons: None,
            title: None,
            source: "user".to_string(),
            calib_version: 1,
        }
    }
}

/// Specification of a completed analysis to import (§4.1: importing an
/// analysis stores multiple files and creates multiple metadata tuples).
#[derive(Debug, Clone)]
pub struct AnaSpec {
    /// Owning event.
    pub hle_id: i64,
    /// Analysis kind name.
    pub kind: String,
    /// Parameter fingerprint (redundancy-detection key, §3.5).
    pub fingerprint: String,
    /// Window start.
    pub t_start: u64,
    /// Window end.
    pub t_end: u64,
    /// Energy band.
    pub energy_lo: f64,
    /// Energy band.
    pub energy_hi: f64,
    /// Optional grid parameter.
    pub param_grid: Option<f64>,
    /// Optional bins parameter.
    pub param_bins: Option<f64>,
    /// Optional bin width parameter.
    pub param_bin_ms: Option<f64>,
    /// Wall-clock duration of the run, ms.
    pub duration_ms: i64,
    /// CPU time of the run, ms.
    pub cpu_ms: i64,
    /// Output volume, bytes.
    pub output_bytes: i64,
    /// Product type label (`image`, `series`, ...).
    pub product_type: String,
    /// Calibration version of the inputs.
    pub calib_version: u32,
}

/// One file to store alongside an analysis.
#[derive(Debug, Clone)]
pub struct FilePayload {
    /// Target archive.
    pub archive_id: u32,
    /// Path within the archive.
    pub path: String,
    /// Entry role (`image`, `log`, `params`, `data`).
    pub role: String,
    /// Bytes.
    pub data: Vec<u8>,
}

/// Append ownership scoping to a domain query (§5.5). Admins see
/// everything; others see public tuples plus their own.
pub fn scope_query(session: &Session, q: Query) -> Query {
    const OWNED: [&str; 3] = ["hle", "ana", "catalog"];
    if session.is_admin() || !OWNED.iter().any(|t| t.eq_ignore_ascii_case(&q.table)) {
        return q;
    }
    q.filter(Expr::eq("public", true).or(Expr::eq("owner", session.user_id)))
}

/// Semantic-layer services over one DM node.
pub struct Services<'a> {
    io: &'a DmIo,
}

impl<'a> Services<'a> {
    /// Wrap the I/O layer.
    pub fn new(io: &'a DmIo) -> Self {
        Services { io }
    }

    /// Run a query with the session's ownership scoping applied. Results
    /// are cached (when enabled) under the session's scope tag, so one
    /// user's cached rows are never served to another.
    pub fn query(&self, session: &Session, q: Query) -> DmResult<QueryResult> {
        let _span = hedc_obs::Span::child("dm.session.query");
        session.require(Rights::BROWSE, "browse")?;
        self.io
            .query_scoped(&session.scope_tag(), &scope_query(session, q))
    }

    /// Run user-submitted SQL (§1's "their own SQL queries"): SELECT only,
    /// with the session's ownership scoping appended (§5.5 applies to every
    /// query path, including this one).
    pub fn user_sql(&self, session: &Session, sql: &str) -> DmResult<QueryResult> {
        session.require(Rights::BROWSE, "browse")?;
        let stmt = hedc_metadb::parse(sql)?;
        match stmt {
            hedc_metadb::Statement::Select(q) => self
                .io
                .query_scoped(&session.scope_tag(), &scope_query(session, q)),
            _ => Err(DmError::BadQuery(
                "only SELECT is allowed on the user SQL path".into(),
            )),
        }
    }

    /// Create an HLE owned by the session user. Requires the upload right.
    pub fn create_hle(&self, session: &Session, spec: &HleSpec) -> DmResult<i64> {
        session.require(Rights::UPLOAD, "upload")?;
        if spec.time_end <= spec.time_start {
            return Err(DmError::Integrity("HLE window is empty".into()));
        }
        let id = self.io.next_id();
        let now = self.io.clock.now_ms() as i64;
        let f = |v: &Option<f64>| v.map(Value::Float).unwrap_or(Value::Null);
        self.io.insert(
            "hle",
            vec![
                Value::Int(id),
                Value::Int(session.user_id),
                Value::Null, // item_id: attached later if files arrive
                Value::Int(spec.time_start as i64),
                Value::Int(spec.time_end as i64),
                Value::Float(spec.energy_lo),
                Value::Float(spec.energy_hi),
                Value::Text(spec.event_type.clone()),
                spec.flare_class
                    .as_ref()
                    .map(|c| Value::Text(c.clone()))
                    .unwrap_or(Value::Null),
                f(&spec.peak_rate),
                f(&spec.hardness),
                spec.n_photons.map(Value::Int).unwrap_or(Value::Null),
                Value::Int(i64::from(spec.calib_version)),
                Value::Int(1), // version
                Value::Bool(false),
                spec.title
                    .as_ref()
                    .map(|t| Value::Text(t.clone()))
                    .unwrap_or(Value::Null),
                Value::Null, // notes
                Value::Int(now),
                Value::Text(spec.source.clone()),
                Value::Null, // position_x
                Value::Null, // position_y
                Value::Null, // goes_flux
                Value::Null, // active_region
                Value::Int(0),
                Value::Bool(false),
            ],
        )?;
        Ok(id)
    }

    /// Import an analysis: store its files, register the location entries,
    /// and insert the ANA tuple — one transaction on the metadata side, with
    /// file stores compensated on failure (§4.4).
    pub fn import_analysis(
        &self,
        session: &Session,
        spec: &AnaSpec,
        files: &[FilePayload],
    ) -> DmResult<(i64, Option<i64>)> {
        session.require(Rights::UPLOAD, "upload")?;
        // Dependency check: the HLE must exist and be visible.
        let hle = self.query(
            session,
            Query::table("hle").filter(Expr::eq("id", spec.hle_id)),
        )?;
        if hle.rows.is_empty() {
            return Err(DmError::NotFound {
                entity: "hle",
                id: spec.hle_id,
            });
        }

        // Stage files first (compensable side effects). Physical stores go
        // to the prefix-joined path; location entries keep the
        // entry-relative path (§4.3: relocation rewrites prefixes only).
        let names = crate::names::Names::new(self.io);
        let mut stored: Vec<(u32, String)> = Vec::new();
        let store_result: DmResult<()> = files.iter().try_fold((), |(), f| {
            let physical = names.physical_path(f.archive_id, &f.path)?;
            self.io.files.store(f.archive_id, &physical, &f.data)?;
            stored.push((f.archive_id, physical));
            Ok(())
        });
        if let Err(e) = store_result {
            for (a, p) in &stored {
                let _ = self.io.files.delete(*a, p);
            }
            return Err(e);
        }

        // Metadata transaction: item + entries + ana tuple. Bump the cache
        // generations on both sides of the write window (see
        // `DmIo::bump_generation`): the transaction goes through a raw
        // update connection, which the io layer's auto-bumps never see.
        for table in ["ana", "loc_entry", "loc_item"] {
            self.io.bump_generation(table);
        }
        let ana_id = self.io.next_id();
        let now = self.io.clock.now_ms() as i64;
        let txn_result: DmResult<Option<i64>> = (|| {
            let mut conn = self.io.update_conn("ana");
            conn.begin()?;
            let item_id = if files.is_empty() {
                None
            } else {
                let item_id = self.io.next_id();
                conn.insert("loc_item", vec![Value::Int(item_id), Value::Int(now)])?;
                for f in files {
                    let entry_id = self.io.next_id();
                    conn.insert(
                        "loc_entry",
                        vec![
                            Value::Int(entry_id),
                            Value::Int(item_id),
                            Value::Text(NameType::File.as_str().to_string()),
                            Value::Int(i64::from(f.archive_id)),
                            Value::Text(f.path.clone()),
                            Value::Int(f.data.len() as i64),
                            Value::Int(i64::from(hedc_filestore::checksum(&f.data))),
                            Value::Text(f.role.clone()),
                        ],
                    )?;
                }
                Some(item_id)
            };
            let opt = |v: &Option<f64>| v.map(Value::Float).unwrap_or(Value::Null);
            conn.insert(
                "ana",
                vec![
                    Value::Int(ana_id),
                    Value::Int(spec.hle_id),
                    Value::Int(session.user_id),
                    item_id.map(Value::Int).unwrap_or(Value::Null),
                    Value::Text(spec.kind.clone()),
                    Value::Text(spec.fingerprint.clone()),
                    Value::Int(spec.t_start as i64),
                    Value::Int(spec.t_end as i64),
                    Value::Float(spec.energy_lo),
                    Value::Float(spec.energy_hi),
                    opt(&spec.param_grid),
                    opt(&spec.param_bins),
                    opt(&spec.param_bin_ms),
                    Value::Text("done".into()),
                    Value::Int(spec.duration_ms),
                    Value::Int(spec.cpu_ms),
                    Value::Int(spec.output_bytes),
                    Value::Text(spec.product_type.clone()),
                    Value::Int(i64::from(spec.calib_version)),
                    Value::Int(1),
                    Value::Bool(false),
                    Value::Int(now),
                    Value::Null,
                    Value::Bool(false),
                ],
            )?;
            conn.commit()?;
            Ok(item_id)
        })();

        match txn_result {
            Ok(item_id) => {
                // Closing bump, now that the commit is durable.
                for table in ["ana", "loc_entry", "loc_item"] {
                    self.io.bump_generation(table);
                }
                Ok((ana_id, item_id))
            }
            Err(e) => {
                // Compensate the file stores.
                for (a, p) in &stored {
                    let _ = self.io.files.delete(*a, p);
                }
                Err(e)
            }
        }
    }

    /// §3.5: look for an existing, visible analysis with the same
    /// parameter fingerprint. Uses the `ana_fingerprint` index.
    pub fn find_existing_analysis(
        &self,
        session: &Session,
        fingerprint: &str,
    ) -> DmResult<Option<i64>> {
        let r = self.query(
            session,
            Query::table("ana")
                .filter(Expr::eq("fingerprint", fingerprint).and(Expr::eq("obsolete", false)))
                .limit(1),
        )?;
        Ok(r.rows.first().map(|row| row[0].as_int().expect("ana id")))
    }

    /// Like [`find_existing_analysis`](Self::find_existing_analysis), but
    /// only accepts analyses computed at calibration lineage `min_calib` or
    /// later, and reports the match's `calib_version`. The PL result store
    /// uses this so a post-recalibration submit recomputes instead of
    /// serving a stale product (§3.1 invalidation feeding §3.5 reuse).
    pub fn find_existing_analysis_versioned(
        &self,
        session: &Session,
        fingerprint: &str,
        min_calib: u32,
    ) -> DmResult<Option<(i64, u32)>> {
        let r = self.query(
            session,
            Query::table("ana")
                .filter(
                    Expr::eq("fingerprint", fingerprint)
                        .and(Expr::eq("obsolete", false))
                        .and(Expr::cmp("calib_version", CmpOp::Ge, i64::from(min_calib))),
                )
                .limit(1),
        )?;
        let calib_col = r
            .columns
            .iter()
            .position(|c| c == "calib_version")
            .expect("ana has calib_version");
        Ok(r.rows.first().map(|row| {
            (
                row[0].as_int().expect("ana id"),
                row[calib_col].as_int().expect("calib") as u32,
            )
        }))
    }

    /// Publish an entity (owner only; §5.5 "for data to be visible to other
    /// users, the owner must flag that data as public").
    pub fn publish(&self, session: &Session, table: &str, id: i64) -> DmResult<()> {
        if !matches!(table, "hle" | "ana" | "catalog") {
            return Err(DmError::BadQuery(format!("`{table}` is not publishable")));
        }
        let r = self
            .io
            .query(&Query::table(table).filter(Expr::eq("id", id)))?;
        let row = r.rows.first().ok_or(DmError::NotFound {
            entity: "tuple",
            id,
        })?;
        let owner_col = r
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case("owner"))
            .ok_or_else(|| DmError::BadQuery(format!("`{table}` has no owner column")))?;
        let owner = row[owner_col].as_int().unwrap_or(-1);
        if owner != session.user_id && !session.is_admin() {
            return Err(DmError::AccessDenied {
                user: session.user_name.clone(),
                needed: "ownership",
            });
        }
        self.io.execute(Statement::Update {
            table: table.to_string(),
            sets: vec![("public".into(), Expr::Literal(Value::Bool(true)))],
            filter: Some(Expr::eq("id", id)),
        })?;
        Ok(())
    }

    /// Delete an HLE. Integrity constraint (§5.3): refused while dependent
    /// analyses exist.
    pub fn delete_hle(&self, session: &Session, hle_id: i64) -> DmResult<()> {
        let r = self
            .io
            .query(&Query::table("hle").filter(Expr::eq("id", hle_id)))?;
        let row = r.rows.first().ok_or(DmError::NotFound {
            entity: "hle",
            id: hle_id,
        })?;
        let owner = row[1].as_int().unwrap_or(-1);
        if owner != session.user_id && !session.is_admin() {
            return Err(DmError::AccessDenied {
                user: session.user_name.clone(),
                needed: "ownership",
            });
        }
        let deps = self.io.query(
            &Query::table("ana")
                .filter(Expr::eq("hle_id", hle_id))
                .aggregate(hedc_metadb::AggFunc::CountStar),
        )?;
        if deps.scalar_int().unwrap_or(0) > 0 {
            return Err(DmError::Integrity(format!(
                "HLE {hle_id} has {} dependent analyses",
                deps.scalar_int().unwrap_or(0)
            )));
        }
        // Remove catalog memberships (they depend on the HLE, not vice versa).
        self.io.execute(Statement::Delete {
            table: "catalog_member".into(),
            filter: Some(Expr::eq("hle_id", hle_id)),
        })?;
        self.io.execute(Statement::Delete {
            table: "hle".into(),
            filter: Some(Expr::eq("id", hle_id)),
        })?;
        Ok(())
    }

    /// Delete an analysis (owner only); its location entries go with it.
    pub fn delete_analysis(&self, session: &Session, ana_id: i64) -> DmResult<()> {
        let r = self
            .io
            .query(&Query::table("ana").filter(Expr::eq("id", ana_id)))?;
        let row = r.rows.first().ok_or(DmError::NotFound {
            entity: "ana",
            id: ana_id,
        })?;
        let owner = row[2].as_int().unwrap_or(-1);
        if owner != session.user_id && !session.is_admin() {
            return Err(DmError::AccessDenied {
                user: session.user_name.clone(),
                needed: "ownership",
            });
        }
        let item_id = row[3].as_int();
        // Remove the result files first (best effort — a missing file is
        // not a reason to keep the metadata), then the tuples. The reverse
        // order would orphan files behind deleted references (§4.4).
        if let Some(item) = item_id {
            let names = crate::names::Names::new(self.io);
            for file in names.resolve(item, crate::names::NameType::File)? {
                let _ = self.io.files.delete(file.archive_id, &file.archive_path);
            }
        }
        // Raw-connection transaction: invalidate the written tables
        // explicitly, on both sides of the write window (the io-layer
        // auto-bumps never see these writes; see `DmIo::bump_generation`).
        for table in ["ana", "loc_entry", "loc_item"] {
            self.io.bump_generation(table);
        }
        let mut conn = self.io.update_conn("ana");
        conn.begin()?;
        conn.delete_where("ana", Some(Expr::eq("id", ana_id)))?;
        if let Some(item) = item_id {
            conn.delete_where("loc_entry", Some(Expr::eq("item_id", item)))?;
            conn.delete_where("loc_item", Some(Expr::eq("item_id", item)))?;
        }
        conn.commit()?;
        for table in ["ana", "loc_entry", "loc_item"] {
            self.io.bump_generation(table);
        }
        Ok(())
    }

    /// Create a catalog (private workspace by default, §4.1).
    pub fn create_catalog(
        &self,
        session: &Session,
        name: &str,
        kind: &str,
        description: Option<&str>,
    ) -> DmResult<i64> {
        session.require(Rights::UPLOAD, "upload")?;
        let id = self.io.next_id();
        let now = self.io.clock.now_ms() as i64;
        self.io.insert(
            "catalog",
            vec![
                Value::Int(id),
                Value::Int(session.user_id),
                Value::Text(name.to_string()),
                description
                    .map(|d| Value::Text(d.to_string()))
                    .unwrap_or(Value::Null),
                Value::Text(kind.to_string()),
                Value::Bool(false),
                Value::Int(now),
            ],
        )?;
        Ok(id)
    }

    /// Add an HLE to a catalog (visible HLE, owned or public catalog).
    pub fn add_to_catalog(&self, session: &Session, catalog_id: i64, hle_id: i64) -> DmResult<i64> {
        let cat = self.query(
            session,
            Query::table("catalog").filter(Expr::eq("id", catalog_id)),
        )?;
        if cat.rows.is_empty() {
            return Err(DmError::NotFound {
                entity: "catalog",
                id: catalog_id,
            });
        }
        let hle = self.query(session, Query::table("hle").filter(Expr::eq("id", hle_id)))?;
        if hle.rows.is_empty() {
            return Err(DmError::NotFound {
                entity: "hle",
                id: hle_id,
            });
        }
        let id = self.io.next_id();
        self.io.insert(
            "catalog_member",
            vec![Value::Int(id), Value::Int(catalog_id), Value::Int(hle_id)],
        )?;
        Ok(id)
    }

    /// HLE ids in a catalog (browse-scoped). The catalog itself must be
    /// visible to the session — membership rows carry no owner column, so
    /// without this check a private workspace's contents would leak (§5.5).
    pub fn catalog_members(&self, session: &Session, catalog_id: i64) -> DmResult<Vec<i64>> {
        let visible = self.query(
            session,
            Query::table("catalog").filter(Expr::eq("id", catalog_id)),
        )?;
        if visible.rows.is_empty() {
            return Err(DmError::NotFound {
                entity: "catalog",
                id: catalog_id,
            });
        }
        let r = self.query(
            session,
            Query::table("catalog_member").filter(Expr::eq("catalog_id", catalog_id)),
        )?;
        Ok(r.rows
            .iter()
            .map(|row| row[2].as_int().expect("hle id"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Clock, IoConfig, Partitioning};
    use crate::names::Names;
    use crate::schema;
    use crate::session::{create_user, SessionKind, SessionManager};
    use hedc_filestore::{Archive, ArchiveTier, FileStore};
    use hedc_metadb::Database;
    use std::sync::Arc;

    struct Fixture {
        io: DmIo,
        mgr: SessionManager,
        alice: Arc<Session>,
        bob: Arc<Session>,
    }

    fn fixture() -> Fixture {
        let db = Database::in_memory("semantic-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let files = FileStore::new();
        files.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 24,
        ));
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(files),
            Clock::starting_at(0),
            &IoConfig::default(),
        );
        create_user(&io, "alice", "a", "sci", Rights::SCIENTIST).unwrap();
        create_user(&io, "bob", "b", "sci", Rights::SCIENTIST).unwrap();
        let mgr = SessionManager::new();
        let ca = mgr.authenticate(&io, "alice", "a", "ip-a").unwrap();
        let cb = mgr.authenticate(&io, "bob", "b", "ip-b").unwrap();
        let alice = mgr.lookup("ip-a", ca, SessionKind::Hle).unwrap();
        let bob = mgr.lookup("ip-b", cb, SessionKind::Hle).unwrap();
        Fixture {
            io,
            mgr,
            alice,
            bob,
        }
    }

    fn ana_spec(hle_id: i64, fp: &str) -> AnaSpec {
        AnaSpec {
            hle_id,
            kind: "imaging".into(),
            fingerprint: fp.to_string(),
            t_start: 0,
            t_end: 1000,
            energy_lo: 3.0,
            energy_hi: 100.0,
            param_grid: Some(64.0),
            param_bins: None,
            param_bin_ms: None,
            duration_ms: 60_000,
            cpu_ms: 55_000,
            output_bytes: 56_000,
            product_type: "image".into(),
            calib_version: 1,
        }
    }

    #[test]
    fn private_data_invisible_to_others() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        // Alice sees it; Bob does not.
        let mine = svc.query(&f.alice, Query::table("hle")).unwrap();
        assert_eq!(mine.rows.len(), 1);
        let theirs = svc.query(&f.bob, Query::table("hle")).unwrap();
        assert!(theirs.rows.is_empty());
        // Publication flips visibility.
        svc.publish(&f.alice, "hle", hle).unwrap();
        let theirs = svc.query(&f.bob, Query::table("hle")).unwrap();
        assert_eq!(theirs.rows.len(), 1);
    }

    #[test]
    fn only_owner_may_publish() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        assert!(matches!(
            svc.publish(&f.bob, "hle", hle),
            Err(DmError::AccessDenied { .. })
        ));
    }

    #[test]
    fn guest_cannot_create() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let guest = Session::anonymous("ip");
        assert!(matches!(
            svc.create_hle(&guest, &HleSpec::window(0, 1, "flare")),
            Err(DmError::AccessDenied { .. })
        ));
        let _ = &f.mgr;
    }

    #[test]
    fn import_analysis_stores_files_and_tuples() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let names = Names::new(&f.io);
        names.register_archive(1, "disk", "", None).unwrap();
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        let files = vec![
            FilePayload {
                archive_id: 1,
                path: "ana/1/image.fits".into(),
                role: "image".into(),
                data: vec![1; 100],
            },
            FilePayload {
                archive_id: 1,
                path: "ana/1/run.log".into(),
                role: "log".into(),
                data: b"ok".to_vec(),
            },
        ];
        let (ana_id, item_id) = svc
            .import_analysis(&f.alice, &ana_spec(hle, "fp-1"), &files)
            .unwrap();
        let item_id = item_id.expect("files attached");
        let resolved = names.resolve(item_id, NameType::File).unwrap();
        assert_eq!(resolved.len(), 2);
        assert!(f.io.files.exists(1, "ana/1/image.fits"));
        // The ANA row is visible to its owner.
        let r = svc
            .query(&f.alice, Query::table("ana").filter(Expr::eq("id", ana_id)))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn import_under_nonempty_archive_prefix_is_resolvable() {
        // Regression: writers must store at the prefix-joined physical path
        // or resolution (which joins the prefix) finds nothing.
        let f = fixture();
        let svc = Services::new(&f.io);
        let names = Names::new(&f.io);
        names
            .register_archive(1, "disk", "online/v1", None)
            .unwrap();
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        let files = vec![FilePayload {
            archive_id: 1,
            path: "ana/p/image.fits".into(),
            role: "image".into(),
            data: vec![9; 32],
        }];
        let (_, item) = svc
            .import_analysis(&f.alice, &ana_spec(hle, "fp-prefix"), &files)
            .unwrap();
        let item = item.unwrap();
        let resolved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(resolved[0].archive_path, "online/v1/ana/p/image.fits");
        assert_eq!(resolved[0].entry_path, "ana/p/image.fits");
        assert_eq!(names.fetch_data(item).unwrap(), vec![9; 32]);
    }

    #[test]
    fn import_compensates_on_file_failure() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        let files = vec![
            FilePayload {
                archive_id: 1,
                path: "a".into(),
                role: "image".into(),
                data: vec![1; 10],
            },
            FilePayload {
                archive_id: 99, // unknown archive -> second store fails
                path: "b".into(),
                role: "log".into(),
                data: vec![2; 10],
            },
        ];
        let err = svc
            .import_analysis(&f.alice, &ana_spec(hle, "fp-x"), &files)
            .unwrap_err();
        // Unknown archive now fails at prefix resolution (NotFound) before
        // the file store would reject it (Fs); either way staging aborts.
        assert!(
            matches!(err, DmError::Fs(_) | DmError::NotFound { .. }),
            "{err:?}"
        );
        // The first store was compensated.
        assert!(!f.io.files.exists(1, "a"));
        // No ANA tuple leaked.
        let r = svc.query(&f.alice, Query::table("ana")).unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn redundancy_detection_finds_public_and_own() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        svc.publish(&f.alice, "hle", hle).unwrap();
        let (ana_id, _) = svc
            .import_analysis(&f.alice, &ana_spec(hle, "fp-dup"), &[])
            .unwrap();
        // Alice finds her own.
        assert_eq!(
            svc.find_existing_analysis(&f.alice, "fp-dup").unwrap(),
            Some(ana_id)
        );
        // Bob can't see it while private...
        assert_eq!(svc.find_existing_analysis(&f.bob, "fp-dup").unwrap(), None);
        // ...until it's published (§3.5's sharing step).
        svc.publish(&f.alice, "ana", ana_id).unwrap();
        assert_eq!(
            svc.find_existing_analysis(&f.bob, "fp-dup").unwrap(),
            Some(ana_id)
        );
    }

    #[test]
    fn hle_with_analyses_cannot_be_deleted() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        svc.import_analysis(&f.alice, &ana_spec(hle, "fp"), &[])
            .unwrap();
        assert!(matches!(
            svc.delete_hle(&f.alice, hle),
            Err(DmError::Integrity(_))
        ));
    }

    #[test]
    fn delete_analysis_then_hle() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let names = Names::new(&f.io);
        names.register_archive(1, "disk", "", None).unwrap();
        let hle = svc
            .create_hle(&f.alice, &HleSpec::window(0, 1000, "flare"))
            .unwrap();
        let (ana_id, item) = svc
            .import_analysis(
                &f.alice,
                &ana_spec(hle, "fp"),
                &[FilePayload {
                    archive_id: 1,
                    path: "x".into(),
                    role: "image".into(),
                    data: vec![0; 4],
                }],
            )
            .unwrap();
        svc.delete_analysis(&f.alice, ana_id).unwrap();
        // Location entries went with it, and so did the file itself —
        // deleting only the metadata would orphan bytes (§4.4).
        assert!(names
            .resolve(item.unwrap(), NameType::File)
            .unwrap()
            .is_empty());
        assert!(
            !f.io.files.exists(1, "x"),
            "result file removed with the analysis"
        );
        svc.delete_hle(&f.alice, hle).unwrap();
        assert!(svc
            .query(&f.alice, Query::table("hle"))
            .unwrap()
            .rows
            .is_empty());
    }

    #[test]
    fn catalogs_group_events() {
        let f = fixture();
        let svc = Services::new(&f.io);
        let cat = svc
            .create_catalog(&f.alice, "my-flares", "private", Some("work in progress"))
            .unwrap();
        let h1 = svc
            .create_hle(&f.alice, &HleSpec::window(0, 10, "flare"))
            .unwrap();
        let h2 = svc
            .create_hle(&f.alice, &HleSpec::window(10, 20, "flare"))
            .unwrap();
        svc.add_to_catalog(&f.alice, cat, h1).unwrap();
        svc.add_to_catalog(&f.alice, cat, h2).unwrap();
        assert_eq!(svc.catalog_members(&f.alice, cat).unwrap(), vec![h1, h2]);
        // Bob can't add to a catalog he can't see.
        assert!(matches!(
            svc.add_to_catalog(&f.bob, cat, h1),
            Err(DmError::NotFound { .. })
        ));
    }

    #[test]
    fn empty_window_rejected() {
        let f = fixture();
        let svc = Services::new(&f.io);
        assert!(matches!(
            svc.create_hle(&f.alice, &HleSpec::window(100, 100, "flare")),
            Err(DmError::Integrity(_))
        ));
    }
}
