//! Users, rights, authentication, and session caching (§5.3, §5.5).
//!
//! "Each request to the DM contains user authentication to retrieve the
//! associated user profile"; sessions cache profile + context so that
//! "every client must authenticate itself only once (authentication
//! requires one DBMS query and one update)" (§7.2). "The DM caches up to
//! three sessions per user (one for analysis, HLEs, and catalogues each).
//! The cache lookup algorithm uses the network IP and cookies to match
//! clients with their sessions."

use crate::error::{DmError, DmResult};
use crate::io::DmIo;
use hedc_metadb::{Expr, Query, Statement, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Access rights, a bit set (§5.5: browse < download/analyze/upload < admin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rights(pub u32);

impl Rights {
    /// May browse public data.
    pub const BROWSE: Rights = Rights(1);
    /// May download data files.
    pub const DOWNLOAD: Rights = Rights(2);
    /// May run analyses on the server.
    pub const ANALYZE: Rights = Rights(4);
    /// May upload derived data.
    pub const UPLOAD: Rights = Rights(8);
    /// Sees and edits everything (the §6.1 "super-user").
    pub const ADMIN: Rights = Rights(16);

    /// The anonymous profile: browse only (§5.5: "non authorized users may
    /// only browse public data").
    pub const GUEST: Rights = Rights(1);
    /// A normal scientist account.
    pub const SCIENTIST: Rights = Rights(1 | 2 | 4 | 8);

    /// Whether all bits of `needed` are present.
    pub fn allows(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Union.
    pub fn with(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }
}

/// Session context kind — the three per-user cached sessions of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionKind {
    /// Working with analyses.
    Analysis,
    /// Working with HLEs.
    Hle,
    /// Working with catalogs.
    Catalog,
}

/// An authenticated session.
#[derive(Debug, Clone)]
pub struct Session {
    /// User id (0 = anonymous).
    pub user_id: i64,
    /// User name.
    pub user_name: String,
    /// Effective rights.
    pub rights: Rights,
    /// Client IP (cache key component).
    pub ip: String,
    /// Session cookie (cache key component).
    pub cookie: u64,
    /// Context kind.
    pub kind: SessionKind,
    /// Creation time, mission ms.
    pub created_ms: u64,
}

impl Session {
    /// An anonymous browse-only session (no DB round trip).
    pub fn anonymous(ip: &str) -> Arc<Session> {
        Arc::new(Session {
            user_id: 0,
            user_name: "anonymous".to_string(),
            rights: Rights::GUEST,
            ip: ip.to_string(),
            cookie: 0,
            kind: SessionKind::Hle,
            created_ms: 0,
        })
    }

    /// Require a right, with a typed error naming it.
    pub fn require(&self, needed: Rights, label: &'static str) -> DmResult<()> {
        if self.rights.allows(needed) {
            Ok(())
        } else {
            Err(DmError::AccessDenied {
                user: self.user_name.clone(),
                needed: label,
            })
        }
    }

    /// Whether this session sees private data of others (§6.1 super-user).
    pub fn is_admin(&self) -> bool {
        self.rights.allows(Rights::ADMIN)
    }

    /// The access-scope tag for result caching. Scoping (§5.5) rewrites a
    /// non-admin query per-user, so cache entries are keyed per user;
    /// admins all see unscoped rows and share one tag. Two tags never
    /// share a cache entry.
    pub fn scope_tag(&self) -> String {
        if self.is_admin() {
            "admin".to_string()
        } else {
            format!("u{}", self.user_id)
        }
    }
}

/// Iterated FNV-1a with salt. Deliberately simple — the evaluation depends
/// on authentication *cost structure* (one query + one update), not on
/// resisting 2026 GPUs; a real deployment would swap in argon2.
pub fn password_hash(name: &str, password: &str) -> i64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..1000 {
        for b in name
            .bytes()
            .chain(b"::".iter().copied())
            .chain(password.bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h as i64
}

/// The session cache: up to three live sessions per user, keyed by
/// (ip, cookie, kind).
pub struct SessionManager {
    cache: Mutex<HashMap<(String, u64, SessionKind), Arc<Session>>>,
    next_cookie: Mutex<u64>,
}

impl Default for SessionManager {
    fn default() -> Self {
        SessionManager {
            cache: Mutex::new(HashMap::new()),
            next_cookie: Mutex::new(1),
        }
    }
}

impl SessionManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Authenticate against `admin_users`: one SELECT on the unique name
    /// index plus one UPDATE of `last_login_ms` (the §7.2 cost), then create
    /// the user's three cached sessions. Returns the cookie.
    pub fn authenticate(&self, io: &DmIo, name: &str, password: &str, ip: &str) -> DmResult<u64> {
        let r = io.query(&Query::table("admin_users").filter(Expr::eq("name", name)))?;
        let row = r
            .rows
            .first()
            .ok_or_else(|| DmError::AuthFailed(name.to_string()))?;
        let stored = row[2].as_int().unwrap_or(0);
        if stored != password_hash(name, password) {
            return Err(DmError::AuthFailed(name.to_string()));
        }
        let status = row[5].as_text().unwrap_or("");
        if status != "active" {
            return Err(DmError::AuthFailed(format!("{name} ({status})")));
        }
        let user_id = row[0].as_int().expect("user id");
        let rights = Rights(row[4].as_int().unwrap_or(0) as u32);
        let now = io.clock.now_ms();
        io.execute(Statement::Update {
            table: "admin_users".into(),
            sets: vec![(
                "last_login_ms".into(),
                Expr::Literal(Value::Int(now as i64)),
            )],
            filter: Some(Expr::eq("id", user_id)),
        })?;

        let cookie = {
            // Unguessable token: a sequential counter would let one user
            // hijack another's session by incrementing their own cookie.
            let mut c = self.next_cookie.lock();
            *c += 1;
            // NOTE: never mix secret material (e.g. the password hash)
            // into the token — cookies are client-visible.
            let mut h: u64 = 0xcbf29ce484222325 ^ *c;
            for b in name.bytes().chain(ip.bytes()).chain(now.to_le_bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            h | 1 // never 0 (anonymous sentinel)
        };
        let mut cache = self.cache.lock();
        // Evict this user's previous sessions (the 3-per-user cap).
        cache.retain(|_, s| s.user_id != user_id);
        for kind in [
            SessionKind::Analysis,
            SessionKind::Hle,
            SessionKind::Catalog,
        ] {
            cache.insert(
                (ip.to_string(), cookie, kind),
                Arc::new(Session {
                    user_id,
                    user_name: name.to_string(),
                    rights,
                    ip: ip.to_string(),
                    cookie,
                    kind,
                    created_ms: now,
                }),
            );
        }
        Ok(cookie)
    }

    /// Cache lookup by (ip, cookie, kind) — no DB round trip (§5.3).
    pub fn lookup(&self, ip: &str, cookie: u64, kind: SessionKind) -> DmResult<Arc<Session>> {
        self.cache
            .lock()
            .get(&(ip.to_string(), cookie, kind))
            .cloned()
            .ok_or(DmError::NoSession)
    }

    /// Drop a user's sessions (logout).
    pub fn invalidate(&self, cookie: u64) {
        self.cache.lock().retain(|_, s| s.cookie != cookie);
    }

    /// Live session count (monitoring).
    pub fn live_sessions(&self) -> usize {
        self.cache.lock().len()
    }
}

/// Create a user row. Admin-side helper used by bootstrap and tests.
pub fn create_user(
    io: &DmIo,
    name: &str,
    password: &str,
    group: &str,
    rights: Rights,
) -> DmResult<i64> {
    let id = io.next_id();
    io.insert(
        "admin_users",
        vec![
            Value::Int(id),
            Value::Text(name.to_string()),
            Value::Int(password_hash(name, password)),
            Value::Text(group.to_string()),
            Value::Int(i64::from(rights.0)),
            Value::Text("active".to_string()),
            Value::Null,
        ],
    )?;
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Clock, IoConfig, Partitioning};
    use crate::schema;
    use hedc_filestore::FileStore;
    use hedc_metadb::Database;

    fn io() -> DmIo {
        let db = Database::in_memory("session-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(FileStore::new()),
            Clock::starting_at(5000),
            &IoConfig::default(),
        )
    }

    #[test]
    fn rights_algebra() {
        let r = Rights::SCIENTIST;
        assert!(r.allows(Rights::BROWSE));
        assert!(r.allows(Rights::ANALYZE));
        assert!(!r.allows(Rights::ADMIN));
        assert!(Rights::GUEST.with(Rights::ADMIN).allows(Rights::ADMIN));
    }

    #[test]
    fn password_hash_depends_on_both_inputs() {
        assert_ne!(password_hash("a", "pw"), password_hash("b", "pw"));
        assert_ne!(password_hash("a", "pw"), password_hash("a", "pw2"));
        assert_eq!(password_hash("a", "pw"), password_hash("a", "pw"));
    }

    #[test]
    fn authenticate_creates_three_sessions() {
        let io = io();
        create_user(&io, "pascal", "secret", "science", Rights::SCIENTIST).unwrap();
        let mgr = SessionManager::new();
        let before = io.db_for("admin_users").stats();
        let cookie = mgr
            .authenticate(&io, "pascal", "secret", "10.0.0.1")
            .unwrap();
        let delta = io.db_for("admin_users").stats().since(&before);
        assert_eq!(delta.queries, 1, "one SELECT");
        assert_eq!(delta.edits, 1, "one UPDATE");
        assert_eq!(mgr.live_sessions(), 3);
        for kind in [
            SessionKind::Analysis,
            SessionKind::Hle,
            SessionKind::Catalog,
        ] {
            let s = mgr.lookup("10.0.0.1", cookie, kind).unwrap();
            assert_eq!(s.user_name, "pascal");
            assert!(s.rights.allows(Rights::UPLOAD));
        }
        // Wrong ip or cookie misses the cache.
        assert!(mgr.lookup("10.0.0.2", cookie, SessionKind::Hle).is_err());
        assert!(mgr
            .lookup("10.0.0.1", cookie + 1, SessionKind::Hle)
            .is_err());
    }

    #[test]
    fn bad_password_and_unknown_user_fail() {
        let io = io();
        create_user(&io, "u", "right", "g", Rights::GUEST).unwrap();
        let mgr = SessionManager::new();
        assert!(matches!(
            mgr.authenticate(&io, "u", "wrong", "ip"),
            Err(DmError::AuthFailed(_))
        ));
        assert!(matches!(
            mgr.authenticate(&io, "ghost", "x", "ip"),
            Err(DmError::AuthFailed(_))
        ));
    }

    #[test]
    fn disabled_user_rejected() {
        let io = io();
        create_user(&io, "old", "pw", "g", Rights::GUEST).unwrap();
        io.execute(Statement::Update {
            table: "admin_users".into(),
            sets: vec![(
                "status".into(),
                Expr::Literal(Value::Text("disabled".into())),
            )],
            filter: Some(Expr::eq("name", "old")),
        })
        .unwrap();
        let mgr = SessionManager::new();
        assert!(mgr.authenticate(&io, "old", "pw", "ip").is_err());
    }

    #[test]
    fn reauthentication_evicts_old_sessions() {
        let io = io();
        create_user(&io, "u", "pw", "g", Rights::SCIENTIST).unwrap();
        let mgr = SessionManager::new();
        let c1 = mgr.authenticate(&io, "u", "pw", "ip1").unwrap();
        let c2 = mgr.authenticate(&io, "u", "pw", "ip2").unwrap();
        assert_eq!(mgr.live_sessions(), 3, "old three evicted, new three live");
        assert!(mgr.lookup("ip1", c1, SessionKind::Hle).is_err());
        assert!(mgr.lookup("ip2", c2, SessionKind::Hle).is_ok());
    }

    #[test]
    fn logout_invalidates() {
        let io = io();
        create_user(&io, "u", "pw", "g", Rights::GUEST).unwrap();
        let mgr = SessionManager::new();
        let c = mgr.authenticate(&io, "u", "pw", "ip").unwrap();
        mgr.invalidate(c);
        assert_eq!(mgr.live_sessions(), 0);
        assert!(matches!(
            mgr.lookup("ip", c, SessionKind::Hle),
            Err(DmError::NoSession)
        ));
    }

    #[test]
    fn anonymous_session_browse_only() {
        let s = Session::anonymous("1.2.3.4");
        assert!(s.require(Rights::BROWSE, "browse").is_ok());
        assert!(matches!(
            s.require(Rights::ANALYZE, "analyze"),
            Err(DmError::AccessDenied { .. })
        ));
    }
}
