//! DM call redirection (§5.4).
//!
//! "The system has been designed to run either on a single node, or
//! distributed across a cluster. ... there is the possibility of redirecting
//! calls from one DM component to another. We use this feature to increase
//! capacity in HEDC by adding more nodes to the system." Callers address a
//! [`DmRouter`]; whether a request executes locally or on another node is a
//! configuration matter, invisible to the calling code ("the calling
//! methods do not know where the code is actually executed").

use crate::error::{DmError, DmResult};
use crate::names::{NameType, ResolvedName};
use hedc_cache::{CacheConfig, DepSnapshot, QueryCache};
use hedc_metadb::{Query, QueryResult};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache scope tag for router-side entries. Queries reaching the router are
/// already scoped (ownership filters are part of the query text, hence part
/// of the fingerprint), so one shared tag is sufficient — and it can never
/// collide with the per-user tags of the semantic layer.
const ROUTER_SCOPE: &str = "net";

/// The request surface a DM node exposes to other nodes: read-side browsing
/// calls (the workload that scales out in §7.3). Writes stay on the primary.
pub trait DmNode: Send + Sync {
    /// Node identifier for logs and status.
    fn node_id(&self) -> String;
    /// Execute a (pre-scoped) query.
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult>;
    /// Execute several queries as one logical call, results in input
    /// order with per-entry error isolation. The default loops
    /// [`DmNode::execute_query`]; network-backed nodes override it to
    /// ship the whole batch in a single round trip.
    fn execute_batch(&self, qs: &[Query]) -> Vec<DmResult<QueryResult>> {
        qs.iter().map(|q| self.execute_query(q)).collect()
    }
    /// Resolve an item's dynamic names (§4.3) on this node. The default
    /// reports the capability as unsupported; nodes backed by a DM (or a
    /// wire to one) override it.
    fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        Err(DmError::RemoteFailed(format!(
            "{}: name resolution not supported (item {item_id}, {})",
            self.node_id(),
            want.as_str()
        )))
    }
    /// Resolve many items' names as one logical call, results in input
    /// order with per-entry error isolation. The default loops
    /// [`DmNode::resolve_names`]; DM-backed nodes override it with the
    /// batched `IN`-list path, network-backed nodes with one batch frame.
    fn resolve_batch(&self, item_ids: &[i64], want: NameType) -> Vec<DmResult<Vec<ResolvedName>>> {
        item_ids
            .iter()
            .map(|&id| self.resolve_names(id, want))
            .collect()
    }
    /// Liveness probe.
    fn is_available(&self) -> bool {
        true
    }
}

/// A remote DM node: wraps another node behind a simulated network hop with
/// failure injection. Latency is *accounted*, not slept, and read back by
/// the evaluation harness.
pub struct RemoteDm<N: DmNode> {
    inner: Arc<N>,
    label: String,
    hop_us: u64,
    accumulated_us: AtomicU64,
    down: AtomicBool,
    calls: AtomicU64,
}

impl<N: DmNode> RemoteDm<N> {
    /// Wrap `inner` behind a hop of `hop_us` simulated microseconds.
    pub fn new(inner: Arc<N>, label: impl Into<String>, hop_us: u64) -> Self {
        RemoteDm {
            inner,
            label: label.into(),
            hop_us,
            accumulated_us: AtomicU64::new(0),
            down: AtomicBool::new(false),
            calls: AtomicU64::new(0),
        }
    }

    /// Simulate the node going down / coming back.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Calls served.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total simulated network time, microseconds.
    pub fn network_us(&self) -> u64 {
        self.accumulated_us.load(Ordering::Relaxed)
    }
}

impl<N: DmNode> DmNode for RemoteDm<N> {
    fn node_id(&self) -> String {
        self.label.clone()
    }

    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        if self.down.load(Ordering::SeqCst) {
            return Err(DmError::RemoteUnavailable(self.label.clone()));
        }
        // Round trip: request + response.
        self.accumulated_us
            .fetch_add(self.hop_us * 2, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.execute_query(q)
    }

    fn execute_batch(&self, qs: &[Query]) -> Vec<DmResult<QueryResult>> {
        if self.down.load(Ordering::SeqCst) {
            return qs
                .iter()
                .map(|_| Err(DmError::RemoteUnavailable(self.label.clone())))
                .collect();
        }
        // The whole batch crosses the wire once — that is the point.
        self.accumulated_us
            .fetch_add(self.hop_us * 2, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.execute_batch(qs)
    }

    fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        if self.down.load(Ordering::SeqCst) {
            return Err(DmError::RemoteUnavailable(self.label.clone()));
        }
        self.accumulated_us
            .fetch_add(self.hop_us * 2, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.resolve_names(item_id, want)
    }

    fn resolve_batch(&self, item_ids: &[i64], want: NameType) -> Vec<DmResult<Vec<ResolvedName>>> {
        if self.down.load(Ordering::SeqCst) {
            return item_ids
                .iter()
                .map(|_| Err(DmError::RemoteUnavailable(self.label.clone())))
                .collect();
        }
        self.accumulated_us
            .fetch_add(self.hop_us * 2, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.resolve_batch(item_ids, want)
    }

    fn is_available(&self) -> bool {
        !self.down.load(Ordering::SeqCst) && self.inner.is_available()
    }
}

/// Round-robin router over DM nodes with failover: a request landing on an
/// unavailable node is retried on the next one ("interactions ... are
/// self-recovering and tolerate failure and restart", §5.1).
pub struct DmRouter {
    nodes: Vec<Arc<dyn DmNode>>,
    next: AtomicUsize,
    /// Per-node "last seen down" flags, so recovery (a formerly skipped or
    /// failed node serving again) is observable, not just the outage.
    seen_down: Vec<AtomicBool>,
    /// Router-side result cache. The router cannot observe writes behind
    /// the nodes, so freshness is TTL-only — and when *every* node is
    /// unavailable, expired entries are still served (degraded read-only
    /// mode) rather than failing the browse request.
    cache: Option<QueryCache>,
}

impl DmRouter {
    /// Build a router. At least one node is required.
    pub fn new(nodes: Vec<Arc<dyn DmNode>>) -> Self {
        assert!(!nodes.is_empty(), "router needs at least one node");
        let seen_down = nodes.iter().map(|_| AtomicBool::new(false)).collect();
        DmRouter {
            nodes,
            next: AtomicUsize::new(0),
            seen_down,
            cache: None,
        }
    }

    /// Build a router with a result cache in front of the wire. Because no
    /// generation counters ever bump on this side, set
    /// [`CacheConfig::ttl`]; with `ttl: None` entries only leave by
    /// eviction (acceptable for immutable archives, wrong for live ones).
    pub fn with_cache(nodes: Vec<Arc<dyn DmNode>>, config: &CacheConfig) -> Self {
        let gens = Arc::new(hedc_cache::GenerationMap::new());
        let mut router = DmRouter::new(nodes);
        router.cache = Some(QueryCache::new(config, gens));
        router
    }

    /// The router-side cache, when enabled.
    pub fn cache(&self) -> Option<&QueryCache> {
        self.cache.as_ref()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Mark node `i` down once, emitting the skip/failure event only on the
    /// up→down edge so a flapping node does not flood the event log.
    fn note_down(&self, i: usize, detail: String) {
        if !self.seen_down[i].swap(true, Ordering::Relaxed) {
            hedc_obs::emit(hedc_obs::events::kind::DM_REDIRECT, detail);
        }
    }

    /// Execute on the next node in rotation, failing over past down nodes.
    /// With a cache, fresh entries are served without touching any node,
    /// and when every node is unavailable the request is answered from
    /// stale cache (degraded read-only mode) before erroring.
    pub fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(ROUTER_SCOPE, q) {
                return Ok(hit);
            }
        }
        // Snapshot before the remote read so a TTL clock started now covers
        // the whole round trip.
        let deps: Option<DepSnapshot> = self.cache.as_ref().map(|c| c.snapshot(q));
        match self.execute_uncached(q) {
            Ok(r) => {
                if let (Some(cache), Some(deps)) = (&self.cache, deps) {
                    cache.fill(ROUTER_SCOPE, q, &r, deps);
                }
                Ok(r)
            }
            Err(e @ (DmError::RemoteUnavailable(_) | DmError::Overloaded(_))) => {
                // A cluster-wide outage *or* cluster-wide overload degrades
                // the same way: a stale answer beats no answer.
                if let Some(cache) = &self.cache {
                    if let Some(stale) = cache.get_stale(ROUTER_SCOPE, q) {
                        hedc_obs::emit(
                            hedc_obs::events::kind::CACHE_DEGRADED,
                            format!("all nodes unavailable, serving stale result ({e})"),
                        );
                        return Ok(stale);
                    }
                }
                Err(e)
            }
            Err(other) => Err(other),
        }
    }

    /// Resolve a batch of item names across the cluster: the items are
    /// split into contiguous chunks, one per *healthy* node, the chunks
    /// fan out in parallel, and the per-item results are stitched back in
    /// input order. A chunk whose node dies mid-batch fails over
    /// wholesale to the next node in rotation — no item is lost and none
    /// is resolved twice in the output (exactly one result per input,
    /// positionally).
    pub fn resolve_batch(
        &self,
        item_ids: &[i64],
        want: NameType,
    ) -> Vec<DmResult<Vec<ResolvedName>>> {
        if item_ids.is_empty() {
            return Vec::new();
        }
        let n = self.nodes.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let healthy: Vec<usize> = (0..n)
            .map(|k| start.wrapping_add(k) % n)
            .filter(|&i| self.nodes[i].is_available())
            .collect();
        let fan = healthy.len().min(item_ids.len()).max(1);
        if fan <= 1 {
            let at = healthy.first().copied().unwrap_or(start % n);
            return self.resolve_chunk(at, item_ids, want);
        }
        let per_chunk = item_ids.len().div_ceil(fan);
        let mut out = Vec::with_capacity(item_ids.len());
        std::thread::scope(|scope| {
            let workers: Vec<_> = item_ids
                .chunks(per_chunk)
                .enumerate()
                .map(|(ci, ids)| {
                    let at = healthy[ci % healthy.len()];
                    scope.spawn(move || self.resolve_chunk(at, ids, want))
                })
                .collect();
            for w in workers {
                out.extend(w.join().expect("batch resolve worker panicked"));
            }
        });
        out
    }

    /// Resolve one contiguous chunk, starting at node `at` and failing
    /// over past unavailable nodes. Entries that come back
    /// [`DmError::RemoteUnavailable`] or [`DmError::Overloaded`] are
    /// retried on the next node; every other outcome (success or a real
    /// per-item error) is final.
    fn resolve_chunk(
        &self,
        at: usize,
        items: &[i64],
        want: NameType,
    ) -> Vec<DmResult<Vec<ResolvedName>>> {
        let n = self.nodes.len();
        let mut out: Vec<Option<DmResult<Vec<ResolvedName>>>> = vec![None; items.len()];
        let mut pending: Vec<usize> = (0..items.len()).collect();
        for k in 0..n {
            if pending.is_empty() {
                break;
            }
            let i = at.wrapping_add(k) % n;
            let node = &self.nodes[i];
            if !node.is_available() {
                self.note_down(i, format!("skipped unavailable node {}", node.node_id()));
                continue;
            }
            let ids: Vec<i64> = pending.iter().map(|&p| items[p]).collect();
            let results = node.resolve_batch(&ids, want);
            let mut still = Vec::new();
            let mut settled = 0usize;
            let mut shed = 0usize;
            for (&p, r) in pending.iter().zip(results) {
                match r {
                    Err(DmError::RemoteUnavailable(_)) => still.push(p),
                    Err(DmError::Overloaded(_)) => {
                        // The node is up but shedding: retry the entry on
                        // the next replica without marking this one down.
                        shed += 1;
                        still.push(p);
                    }
                    other => {
                        settled += 1;
                        out[p] = Some(other);
                    }
                }
            }
            if shed > 0 {
                hedc_obs::global()
                    .counter("dm.router.overload_redirects")
                    .add(shed as u64);
            }
            if settled > 0 && self.seen_down[i].swap(false, Ordering::Relaxed) {
                hedc_obs::emit(
                    hedc_obs::events::kind::DM_REDIRECT,
                    format!("node {} recovered, back in rotation", node.node_id()),
                );
            }
            if settled == 0 && !still.is_empty() && shed < still.len() {
                // Nothing got through: a node-level outage, not per-item
                // faults. Redirect the remainder of the chunk.
                self.note_down(i, format!("redirected past failed node {}", node.node_id()));
            }
            pending = still;
        }
        for p in pending {
            out[p] = Some(Err(DmError::RemoteUnavailable(format!(
                "no node could resolve item {}",
                items[p]
            ))));
        }
        out.into_iter()
            .map(|slot| slot.expect("every chunk slot settled"))
            .collect()
    }

    fn execute_uncached(&self, q: &Query) -> DmResult<QueryResult> {
        // The counter is a free-running rotation cursor: it is *expected* to
        // overflow on a long-lived router, so wrap explicitly everywhere.
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let n = self.nodes.len();
        let mut last_err = None;
        for k in 0..n {
            let i = start.wrapping_add(k) % n;
            let node = &self.nodes[i];
            if !node.is_available() {
                self.note_down(i, format!("skipped unavailable node {}", node.node_id()));
                last_err = Some(DmError::RemoteUnavailable(node.node_id()));
                continue;
            }
            match node.execute_query(q) {
                Ok(r) => {
                    if self.seen_down[i].swap(false, Ordering::Relaxed) {
                        hedc_obs::emit(
                            hedc_obs::events::kind::DM_REDIRECT,
                            format!("node {} recovered, back in rotation", node.node_id()),
                        );
                    }
                    return Ok(r);
                }
                Err(DmError::RemoteUnavailable(id)) => {
                    self.note_down(i, format!("redirected past failed node {id}"));
                    last_err = Some(DmError::RemoteUnavailable(id));
                    continue;
                }
                Err(DmError::Overloaded(m)) => {
                    // The node answered — it is *up*, just shedding — so
                    // its health stays green and no down edge is logged;
                    // the request simply redirects to the next replica.
                    hedc_obs::global()
                        .counter("dm.router.overload_redirects")
                        .inc();
                    last_err = Some(DmError::Overloaded(m));
                    continue;
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err.unwrap_or(DmError::RemoteUnavailable("no nodes".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Clock, DmIo, IoConfig, Partitioning};
    use crate::schema;
    use hedc_filestore::FileStore;
    use hedc_metadb::{Database, Value};

    /// Minimal local node for routing tests.
    struct LocalNode {
        io: DmIo,
        label: String,
    }

    impl DmNode for LocalNode {
        fn node_id(&self) -> String {
            self.label.clone()
        }
        fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
            self.io.query(q)
        }
    }

    fn node(label: &str, rows: i64) -> Arc<LocalNode> {
        let db = Database::in_memory(label);
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(FileStore::new()),
            Clock::starting_at(0),
            &IoConfig::default(),
        );
        for i in 0..rows {
            io.insert(
                "catalog",
                vec![
                    Value::Int(i + 1),
                    Value::Int(0),
                    Value::Text(format!("c{i}")),
                    Value::Null,
                    Value::Text("system".into()),
                    Value::Bool(true),
                    Value::Int(0),
                ],
            )
            .unwrap();
        }
        Arc::new(LocalNode {
            io,
            label: label.to_string(),
        })
    }

    #[test]
    fn round_robin_spreads_calls() {
        let a = Arc::new(RemoteDm::new(node("a", 1), "node-a", 100));
        let b = Arc::new(RemoteDm::new(node("b", 1), "node-b", 100));
        let router = DmRouter::new(vec![a.clone(), b.clone()]);
        for _ in 0..10 {
            router.execute_query(&Query::table("catalog")).unwrap();
        }
        assert_eq!(a.calls(), 5);
        assert_eq!(b.calls(), 5);
        assert_eq!(a.network_us(), 5 * 200);
    }

    #[test]
    fn failover_skips_down_nodes() {
        let a = Arc::new(RemoteDm::new(node("a", 1), "node-a", 50));
        let b = Arc::new(RemoteDm::new(node("b", 1), "node-b", 50));
        let router = DmRouter::new(vec![a.clone(), b.clone()]);
        a.set_down(true);
        for _ in 0..6 {
            router.execute_query(&Query::table("catalog")).unwrap();
        }
        assert_eq!(a.calls(), 0);
        assert_eq!(b.calls(), 6);
        // Recovery.
        a.set_down(false);
        for _ in 0..2 {
            router.execute_query(&Query::table("catalog")).unwrap();
        }
        assert!(a.calls() > 0);
    }

    #[test]
    fn recovery_emits_redirect_event() {
        let a = Arc::new(RemoteDm::new(node("a", 1), "node-recov-a", 50));
        let b = Arc::new(RemoteDm::new(node("b", 1), "node-recov-b", 50));
        let router = DmRouter::new(vec![a.clone(), b]);
        a.set_down(true);
        for _ in 0..4 {
            router.execute_query(&Query::table("catalog")).unwrap();
        }
        a.set_down(false);
        for _ in 0..4 {
            router.execute_query(&Query::table("catalog")).unwrap();
        }
        let events = hedc_obs::event_log().events_of_kind(hedc_obs::events::kind::DM_REDIRECT);
        let skips = events
            .iter()
            .filter(|e| e.detail.contains("node-recov-a") && e.detail.contains("skipped"))
            .count();
        let recoveries = events
            .iter()
            .filter(|e| e.detail.contains("node-recov-a") && e.detail.contains("recovered"))
            .count();
        // Down edge logged once (not once per skipped request), up edge once.
        assert_eq!(skips, 1, "{events:?}");
        assert_eq!(recoveries, 1, "{events:?}");
    }

    #[test]
    fn all_nodes_down_errors() {
        let a = Arc::new(RemoteDm::new(node("a", 1), "node-a", 50));
        let router = DmRouter::new(vec![a.clone() as Arc<dyn DmNode>]);
        a.set_down(true);
        assert!(matches!(
            router.execute_query(&Query::table("catalog")),
            Err(DmError::RemoteUnavailable(_))
        ));
    }

    #[test]
    fn warm_router_cache_survives_total_outage() {
        let a = Arc::new(RemoteDm::new(node("a", 3), "node-cache-a", 50));
        let config = hedc_cache::CacheConfig {
            ttl: Some(std::time::Duration::from_secs(3600)),
            ..hedc_cache::CacheConfig::default()
        };
        let router = DmRouter::with_cache(vec![a.clone() as Arc<dyn DmNode>], &config);
        let q = Query::table("catalog");
        let cold = router.execute_query(&q).unwrap();
        assert_eq!(a.calls(), 1);
        // Warm: served from cache, the node sees no second call.
        let warm = router.execute_query(&q).unwrap();
        assert_eq!(a.calls(), 1, "warm request must not reach the node");
        assert_eq!(cold.rows, warm.rows);
        // Total outage: the warm entry still answers (degraded read-only).
        a.set_down(true);
        let degraded = router.execute_query(&q).unwrap();
        assert_eq!(degraded.rows, cold.rows);
        // An uncached query during the outage still fails.
        assert!(matches!(
            router.execute_query(&Query::table("hle")),
            Err(DmError::RemoteUnavailable(_))
        ));
    }

    #[test]
    fn expired_entries_are_stale_served_only_during_outage() {
        let a = Arc::new(RemoteDm::new(node("a", 2), "node-ttl-a", 50));
        let config = hedc_cache::CacheConfig {
            ttl: Some(std::time::Duration::ZERO), // everything expires at once
            ..hedc_cache::CacheConfig::default()
        };
        let router = DmRouter::with_cache(vec![a.clone() as Arc<dyn DmNode>], &config);
        let q = Query::table("catalog");
        router.execute_query(&q).unwrap();
        router.execute_query(&q).unwrap();
        // TTL zero: both requests hit the node.
        assert_eq!(a.calls(), 2);
        // But an outage falls back to the expired entry, with an event.
        a.set_down(true);
        assert!(router.execute_query(&q).is_ok());
        let events = hedc_obs::event_log().events_of_kind(hedc_obs::events::kind::CACHE_DEGRADED);
        assert!(
            events.iter().any(|e| e.detail.contains("stale")),
            "{events:?}"
        );
        assert_eq!(router.cache().unwrap().stats().stale_serves, 1);
    }

    /// A node that answers name resolutions synthetically (no database),
    /// tagging each result with its own label so tests can tell which
    /// node served which item.
    struct ResolvingNode {
        label: String,
    }

    impl DmNode for ResolvingNode {
        fn node_id(&self) -> String {
            self.label.clone()
        }
        fn execute_query(&self, _q: &Query) -> DmResult<QueryResult> {
            Err(DmError::RemoteFailed("queries unsupported".into()))
        }
        fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
            Ok(vec![ResolvedName {
                entry_id: item_id,
                name_type: want,
                archive_id: 1,
                archive_path: format!("p/{item_id}"),
                entry_path: format!("{item_id}"),
                full_name: format!("{}:{}#{item_id}", want.as_str(), self.label),
                url: None,
                size: 0,
                role: "data".into(),
                transforms: Vec::new(),
            }])
        }
    }

    #[test]
    fn batch_fans_out_across_healthy_nodes_and_stitches_in_order() {
        let a = Arc::new(RemoteDm::new(
            Arc::new(ResolvingNode {
                label: "fan-a".into(),
            }),
            "fan-a",
            50,
        ));
        let b = Arc::new(RemoteDm::new(
            Arc::new(ResolvingNode {
                label: "fan-b".into(),
            }),
            "fan-b",
            50,
        ));
        let router = DmRouter::new(vec![
            a.clone() as Arc<dyn DmNode>,
            b.clone() as Arc<dyn DmNode>,
        ]);
        let items: Vec<i64> = (100..110).collect();
        let out = router.resolve_batch(&items, NameType::File);
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            let names = r.as_ref().expect("healthy cluster resolves everything");
            assert_eq!(names[0].entry_id, items[i], "stitched back in input order");
        }
        // One wire call per chunk, one chunk per healthy node — not one
        // call per item.
        assert_eq!(a.calls(), 1);
        assert_eq!(b.calls(), 1);
        // Both directions of the split actually went out in parallel.
        let served: std::collections::HashSet<String> = out
            .iter()
            .flat_map(|r| r.as_ref().unwrap())
            .map(|n| n.full_name.split('#').next().unwrap().to_string())
            .collect();
        assert_eq!(served.len(), 2, "both nodes served a chunk: {served:?}");
    }

    #[test]
    fn batch_chunk_fails_over_to_the_surviving_node() {
        let a = Arc::new(RemoteDm::new(
            Arc::new(ResolvingNode {
                label: "surv-a".into(),
            }),
            "surv-a",
            50,
        ));
        let b = Arc::new(RemoteDm::new(
            Arc::new(ResolvingNode {
                label: "surv-b".into(),
            }),
            "surv-b",
            50,
        ));
        let router = DmRouter::new(vec![
            a.clone() as Arc<dyn DmNode>,
            b.clone() as Arc<dyn DmNode>,
        ]);
        a.set_down(true);
        let items: Vec<i64> = (0..16).collect();
        let out = router.resolve_batch(&items, NameType::Url);
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            let names = r.as_ref().expect("survivor must absorb the batch");
            assert_eq!(names[0].entry_id, items[i]);
            assert!(names[0].full_name.contains("surv-b"));
        }
        assert_eq!(a.calls(), 0, "a down node serves nothing");

        // Total outage: one positional error per input, none dropped.
        b.set_down(true);
        let dead = router.resolve_batch(&items, NameType::Url);
        assert_eq!(dead.len(), items.len());
        assert!(dead
            .iter()
            .all(|r| matches!(r, Err(DmError::RemoteUnavailable(_)))));
    }

    #[test]
    fn batch_on_nodes_without_resolution_surfaces_per_entry_errors() {
        // LocalNode keeps the trait default: resolution unsupported. The
        // error is final (the node is up), so the router must not spin
        // through the rotation — every entry reports it positionally.
        let router = DmRouter::new(vec![node("plain", 1) as Arc<dyn DmNode>]);
        let out = router.resolve_batch(&[1, 2, 3], NameType::File);
        assert_eq!(out.len(), 3);
        assert!(out
            .iter()
            .all(|r| matches!(r, Err(DmError::RemoteFailed(_)))));
    }

    #[test]
    fn non_availability_errors_pass_through() {
        // A real query error (unknown table) must not trigger failover.
        let a = Arc::new(RemoteDm::new(node("a", 1), "node-a", 50));
        let b = Arc::new(RemoteDm::new(node("b", 1), "node-b", 50));
        let router = DmRouter::new(vec![a, b.clone()]);
        let err = router.execute_query(&Query::table("nope")).unwrap_err();
        assert!(matches!(err, DmError::BadQuery(_)));
        assert_eq!(b.calls(), 0, "no failover on query errors");
    }
}
