//! # hedc-dm — the Data Management component
//!
//! The heart of HEDC's middle tier (paper §4–§5): everything between the
//! presentation tier and the storage substrates goes through the DM.
//!
//! Layering follows §5.2 exactly:
//!
//! * **I/O layer** ([`DmIo`]) — storage abstraction: metadata databases with
//!   split connection pools, table→database load partitioning, the file
//!   store, id allocation and the logical clock. Query objects compile to
//!   SQL text and back (§5.4).
//! * **Semantic layer** ([`Services`]) — entity services over HLEs,
//!   analyses and catalogs with access control (§5.5), referential
//!   integrity (§5.3) and redundant-work detection (§3.5); plus the dynamic
//!   name mapping ([`Names`], §4.3).
//! * **Process layer** ([`Processes`], [`Versioning`]) — multi-step
//!   workflows: data loading with event detection and load-time wavelet
//!   views, physical archive relocation with compensation, catalog
//!   generation, purging, and the recalibration sweep (§3.1).
//!
//! [`Dm`] bundles one node of all three layers; [`DmRouter`] spreads
//! browse load over several nodes (§5.4), which is experiment Fig. 5.
//!
//! ```
//! use hedc_dm::{Dm, DmConfig, Rights, SessionKind};
//! use hedc_filestore::{Archive, ArchiveTier, FileStore};
//! use std::sync::Arc;
//!
//! let files = Arc::new(FileStore::new());
//! files.register(Archive::in_memory(1, "raw", ArchiveTier::OnlineDisk, 1 << 30));
//! files.register(Archive::in_memory(2, "derived", ArchiveTier::OnlineRaid, 1 << 30));
//! let dm = Dm::bootstrap(files, DmConfig::default()).unwrap();
//!
//! dm.create_user("etzard", "pw", "science", Rights::SCIENTIST).unwrap();
//! let cookie = dm.login("etzard", "pw", "10.0.0.7").unwrap();
//! let session = dm.session("10.0.0.7", cookie, SessionKind::Hle).unwrap();
//! assert!(session.rights.allows(Rights::ANALYZE));
//! ```

#![warn(missing_docs)]

mod error;
mod fault;
mod io;
mod names;
pub mod pipeline;
mod process;
mod redirect;
pub mod schema;
mod semantic;
mod session;
pub mod shard;
mod version;

pub use error::{DmError, DmResult};
pub use fault::{splitmix64, FaultCounts, FaultPlan, FaultyDmNode};
pub use io::{Clock, DmCaches, DmIo, IoConfig, Partitioning};
pub use names::{NameType, Names, ResolvedName};
pub use pipeline::{
    CrashPlan, CrashSite, IngestOptions, JournalStep, PipelineReport, UnitResult, UnitStatus,
};
pub use process::{IngestConfig, IngestReport, Processes};
pub use redirect::{DmNode, DmRouter, RemoteDm};
pub use semantic::{scope_query, AnaSpec, FilePayload, HleSpec, Services};
pub use session::{create_user, password_hash, Rights, Session, SessionKind, SessionManager};
pub use shard::{
    FanoutPlan, MoveCrash, MoveOutcome, MoveSpec, MoveStep, Route, ShardMap, ShardMapHandle,
    ShardMover, ShardScheme, ShardedDm, TableSharding,
};
pub use version::{RecalReport, Versioning};

use hedc_filestore::FileStore;
use hedc_metadb::{Database, MatViewManager, Query, QueryResult};
use std::sync::Arc;

/// Configuration for bootstrapping a DM node.
#[derive(Debug, Clone)]
pub struct DmConfig {
    /// Number of metadata database instances (≥ 1).
    pub databases: usize,
    /// Table→database routing.
    pub partitioning: Partitioning,
    /// Pool sizing and name root.
    pub io: IoConfig,
    /// Mission clock start.
    pub start_ms: u64,
    /// Storage engine for the metadata databases (memory or paged).
    pub storage: hedc_metadb::StorageConfig,
}

impl Default for DmConfig {
    fn default() -> Self {
        DmConfig {
            databases: 1,
            partitioning: Partitioning::single(),
            io: IoConfig::default(),
            start_ms: 0,
            storage: hedc_metadb::StorageConfig::default(),
        }
    }
}

/// One fully assembled DM node.
pub struct Dm {
    /// The I/O layer.
    pub io: DmIo,
    /// Session cache and authentication.
    pub sessions: SessionManager,
    /// Materialized views over the browse database (§6.3: "we use
    /// materialized views to improve response time").
    pub matviews: MatViewManager,
    /// Id of the system "standard" catalog.
    pub standard_catalog: i64,
    /// Id of the system "extended" catalog.
    pub extended_catalog: i64,
    import_session: Arc<Session>,
}

impl Dm {
    /// Stand up a node: create databases and schemas, register the file
    /// store's archives in the location/operational tables, create the
    /// system import user, and the standard + extended catalogs.
    pub fn bootstrap(files: Arc<FileStore>, config: DmConfig) -> DmResult<Arc<Dm>> {
        assert!(config.databases >= 1);
        let mut dbs = Vec::with_capacity(config.databases);
        for i in 0..config.databases {
            // Each instance gets its own store file when one is configured;
            // `None` keeps anonymous per-store scratch files.
            let mut storage = config.storage.clone();
            if let Some(p) = &storage.store_path {
                if config.databases > 1 {
                    storage.store_path = Some(p.with_extension(format!("{i}.pages")));
                }
            }
            let db = Database::open(
                format!("hedc-db-{i}"),
                hedc_metadb::DbOptions {
                    storage,
                    ..hedc_metadb::DbOptions::default()
                },
            )?;
            let mut conn = db.connect();
            schema::create_generic(&mut conn)?;
            schema::create_domain(&mut conn)?;
            dbs.push(db);
        }
        let clock = Clock::starting_at(config.start_ms);
        let io = DmIo::new(dbs, config.partitioning, files, clock, &config.io);

        // Archives into the location + operational tables.
        let names = Names::new(&io);
        for status in io.files.statuses() {
            names.register_archive(status.id, &format!("{:?}", status.tier), "", None)?;
            io.insert(
                "op_archives",
                vec![
                    hedc_metadb::Value::Int(i64::from(status.id)),
                    hedc_metadb::Value::Text(status.name.clone()),
                    hedc_metadb::Value::Text(format!("{:?}", status.tier)),
                    hedc_metadb::Value::Text(format!("{:?}", status.state)),
                    hedc_metadb::Value::Int(status.capacity as i64),
                    hedc_metadb::Value::Int(status.used as i64),
                ],
            )?;
        }

        // System import user + session.
        create_user(
            &io,
            "import",
            "import-internal",
            "system",
            Rights::SCIENTIST.with(Rights::ADMIN),
        )?;
        let sessions = SessionManager::new();
        let cookie = sessions.authenticate(&io, "import", "import-internal", "localhost")?;
        let import_session = sessions.lookup("localhost", cookie, SessionKind::Hle)?;

        // System catalogs (§2.2: standard catalog from the mission pipeline,
        // extended catalog built at HEDC).
        let svc = Services::new(&io);
        let standard_catalog = svc.create_catalog(
            &import_session,
            "standard",
            "system",
            Some("Mission-pipeline event catalog"),
        )?;
        svc.publish(&import_session, "catalog", standard_catalog)?;
        let extended_catalog = svc.create_catalog(
            &import_session,
            "extended",
            "system",
            Some("HEDC extended catalog: flares, GRBs, quiet periods"),
        )?;
        svc.publish(&import_session, "catalog", extended_catalog)?;

        // Standard summary views (§6.3): refreshed during data loading.
        let matviews = MatViewManager::new(Arc::clone(&io.databases()[0]));
        matviews.define(
            "events_by_type",
            Query::table("hle")
                .filter(hedc_metadb::Expr::eq("public", true))
                .group_by("event_type")
                .aggregate(hedc_metadb::AggFunc::CountStar),
        )?;
        matviews.define(
            "analyses_by_kind",
            Query::table("ana")
                .group_by("kind")
                .aggregate(hedc_metadb::AggFunc::CountStar)
                .aggregate(hedc_metadb::AggFunc::Avg("duration_ms".into())),
        )?;

        Ok(Arc::new(Dm {
            io,
            sessions,
            matviews,
            standard_catalog,
            extended_catalog,
            import_session,
        }))
    }

    /// The semantic-layer services.
    pub fn services(&self) -> Services<'_> {
        Services::new(&self.io)
    }

    /// The name-mapping services.
    pub fn names(&self) -> Names<'_> {
        Names::new(&self.io)
    }

    /// The process-layer workflows.
    pub fn processes(&self) -> Processes<'_> {
        Processes::new(&self.io)
    }

    /// The versioning services.
    pub fn versioning(&self) -> Versioning<'_> {
        Versioning::new(&self.io)
    }

    /// Post-load maintenance (the paper's load-time refresh pass): refresh
    /// stale materialized views (§6.3) and synchronize the operational
    /// archive-status table (§4.1).
    pub fn after_load_maintenance(&self) -> DmResult<()> {
        self.matviews.refresh_stale(0)?;
        self.processes().refresh_archive_status()?;
        Ok(())
    }

    /// The system import session (data-loading identity).
    pub fn import_session(&self) -> Arc<Session> {
        Arc::clone(&self.import_session)
    }

    /// Create a user account.
    pub fn create_user(
        &self,
        name: &str,
        password: &str,
        group: &str,
        rights: Rights,
    ) -> DmResult<i64> {
        create_user(&self.io, name, password, group, rights)
    }

    /// Authenticate; returns the session cookie.
    pub fn login(&self, name: &str, password: &str, ip: &str) -> DmResult<u64> {
        self.sessions.authenticate(&self.io, name, password, ip)
    }

    /// Look up a cached session.
    pub fn session(&self, ip: &str, cookie: u64, kind: SessionKind) -> DmResult<Arc<Session>> {
        self.sessions.lookup(ip, cookie, kind)
    }
}

impl DmNode for Dm {
    fn node_id(&self) -> String {
        "dm-local".to_string()
    }

    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.io.query(q)
    }

    fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        self.names().resolve(item_id, want)
    }

    fn resolve_batch(&self, item_ids: &[i64], want: NameType) -> Vec<DmResult<Vec<ResolvedName>>> {
        self.names().resolve_batch(item_ids, want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_filestore::{Archive, ArchiveTier};

    fn files() -> Arc<FileStore> {
        let fs = FileStore::new();
        fs.register(Archive::in_memory(
            1,
            "raw",
            ArchiveTier::OnlineDisk,
            1 << 30,
        ));
        fs.register(Archive::in_memory(
            2,
            "derived",
            ArchiveTier::OnlineRaid,
            1 << 30,
        ));
        Arc::new(fs)
    }

    #[test]
    fn bootstrap_creates_system_state() {
        let dm = Dm::bootstrap(files(), DmConfig::default()).unwrap();
        // Catalogs exist and are public.
        let guest = Session::anonymous("ip");
        let r = dm
            .services()
            .query(&guest, Query::table("catalog"))
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        // Archives are registered.
        let archives = dm.io.query(&Query::table("op_archives")).unwrap();
        assert_eq!(archives.rows.len(), 2);
        let locs = dm.io.query(&Query::table("loc_archive")).unwrap();
        assert_eq!(locs.rows.len(), 2);
    }

    #[test]
    fn login_and_rights_flow() {
        let dm = Dm::bootstrap(files(), DmConfig::default()).unwrap();
        dm.create_user("sci", "pw", "science", Rights::SCIENTIST)
            .unwrap();
        let cookie = dm.login("sci", "pw", "10.1.1.1").unwrap();
        let s = dm
            .session("10.1.1.1", cookie, SessionKind::Analysis)
            .unwrap();
        assert!(s.rights.allows(Rights::ANALYZE));
        assert!(dm
            .session("10.1.1.1", cookie + 1, SessionKind::Analysis)
            .is_err());
    }

    #[test]
    fn matviews_serve_summaries_and_refresh() {
        let dm = Dm::bootstrap(files(), DmConfig::default()).unwrap();
        assert_eq!(
            dm.matviews.names(),
            vec!["analyses_by_kind".to_string(), "events_by_type".to_string()]
        );
        // Initially empty.
        let v = dm.matviews.read("events_by_type").unwrap();
        assert!(v.rows.is_empty());
        // Load events, refresh, and the summary appears without touching
        // the base table on reads.
        let session = dm.import_session();
        let svc = dm.services();
        for i in 0..5u64 {
            let id = svc
                .create_hle(&session, &HleSpec::window(i * 10, i * 10 + 5, "flare"))
                .unwrap();
            svc.publish(&session, "hle", id).unwrap();
        }
        assert!(dm.matviews.staleness("events_by_type").unwrap() > 0);
        dm.matviews.refresh_stale(0).unwrap();
        let v = dm.matviews.read("events_by_type").unwrap();
        assert_eq!(v.rows.len(), 1);
        assert_eq!(v.rows[0][1].as_int(), Some(5));
    }

    #[test]
    fn archive_status_refresh_tracks_usage() {
        let dm = Dm::bootstrap(files(), DmConfig::default()).unwrap();
        dm.io.files.store(1, "some/file", &[0u8; 4096]).unwrap();
        let updated = dm.processes().refresh_archive_status().unwrap();
        assert_eq!(updated, 2);
        let r = dm
            .io
            .query(&Query::table("op_archives").filter(hedc_metadb::Expr::eq("archive_id", 1)))
            .unwrap();
        assert_eq!(r.rows[0][5].as_int(), Some(4096));
    }

    #[test]
    fn multi_database_bootstrap() {
        let config = DmConfig {
            databases: 2,
            partitioning: Partitioning::single().route("raw_unit", 1),
            ..DmConfig::default()
        };
        let dm = Dm::bootstrap(files(), config).unwrap();
        assert_eq!(dm.io.databases().len(), 2);
        // raw_unit goes to db 1; catalog stayed on db 0.
        assert_eq!(dm.io.databases()[0].row_count("catalog").unwrap(), 2);
        assert_eq!(dm.io.databases()[1].row_count("catalog").unwrap(), 0);
    }
}
