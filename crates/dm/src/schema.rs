//! The HEDC database schema.
//!
//! §4.1: "The database schema is therefore divided into two parts, a generic
//! and a domain specific (RHESSI related) part." The generic part has three
//! sections — administrative (3 tables), operational (4 tables), location
//! (4 tables) — and is deliberately ignorant of solar physics. The domain
//! part (7 tables) carries the HLE/ANA/catalog model and can be replaced
//! wholesale when the instrument changes, which is the point of the split.

use hedc_metadb::{ColumnDef, Connection, DataType, DbResult, Schema};

// ---------------------------------------------------------------------------
// Generic part — administrative section (3 tables)
// ---------------------------------------------------------------------------

/// `admin_config`: configuration parameters, schema lineage descriptions,
/// predefined queries, refresh/purging rules — keyed free-form text.
pub fn admin_config() -> Schema {
    Schema::new(
        "admin_config",
        vec![
            ColumnDef::new("key", DataType::Text).not_null(),
            ColumnDef::new("value", DataType::Text).not_null(),
            ColumnDef::new("section", DataType::Text).not_null(),
            ColumnDef::new("description", DataType::Text),
        ],
    )
}

/// `admin_services`: available services (analysis algorithms, IDL servers,
/// web frontends) with type, location, prerequisites, and status.
pub fn admin_services() -> Schema {
    Schema::new(
        "admin_services",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("kind", DataType::Text).not_null(),
            ColumnDef::new("location", DataType::Text).not_null(),
            ColumnDef::new("prerequisites", DataType::Text),
            ColumnDef::new("status", DataType::Text)
                .not_null()
                .default("up"),
        ],
    )
    .primary_key(&["id"])
}

/// `admin_users`: user and group profiles — access rights, session limits,
/// status. Passwords are stored as salted hashes.
pub fn admin_users() -> Schema {
    Schema::new(
        "admin_users",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("name", DataType::Text).not_null(),
            ColumnDef::new("pw_hash", DataType::Int).not_null(),
            ColumnDef::new("grp", DataType::Text)
                .not_null()
                .default("guest"),
            ColumnDef::new("rights", DataType::Int)
                .not_null()
                .default(0),
            ColumnDef::new("status", DataType::Text)
                .not_null()
                .default("active"),
            ColumnDef::new("last_login_ms", DataType::Timestamp),
        ],
    )
    .primary_key(&["id"])
}

// ---------------------------------------------------------------------------
// Generic part — operational section (4 tables)
// ---------------------------------------------------------------------------

/// `op_log`: logs and messages generated during operation.
pub fn op_log() -> Schema {
    Schema::new(
        "op_log",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("ts_ms", DataType::Timestamp).not_null(),
            ColumnDef::new("level", DataType::Text).not_null(),
            ColumnDef::new("component", DataType::Text).not_null(),
            ColumnDef::new("message", DataType::Text).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// `op_lineage`: lineage of migrated or transformed data — which entity
/// came from which, by what operation, under which calibration.
pub fn op_lineage() -> Schema {
    Schema::new(
        "op_lineage",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("entity_kind", DataType::Text).not_null(),
            ColumnDef::new("entity_id", DataType::Int).not_null(),
            ColumnDef::new("source_kind", DataType::Text),
            ColumnDef::new("source_id", DataType::Int),
            ColumnDef::new("operation", DataType::Text).not_null(),
            ColumnDef::new("calib_version", DataType::Int),
            ColumnDef::new("ts_ms", DataType::Timestamp).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// `op_archives`: status of archives — online, capacity left, type (§4.1).
pub fn op_archives() -> Schema {
    Schema::new(
        "op_archives",
        vec![
            ColumnDef::new("archive_id", DataType::Int).not_null(),
            ColumnDef::new("name", DataType::Text).not_null(),
            ColumnDef::new("tier", DataType::Text).not_null(),
            ColumnDef::new("state", DataType::Text).not_null(),
            ColumnDef::new("capacity", DataType::Int).not_null(),
            ColumnDef::new("used", DataType::Int).not_null().default(0),
        ],
    )
    .primary_key(&["archive_id"])
}

/// `op_ingest_journal`: the ingest workflow journal (§5.2). One row per
/// completed workflow step of one telemetry unit, appended *after* the
/// step's effects so a recovered journal never claims work that did not
/// happen. `unit_key` is the unit's archive path (stable across retries),
/// `payload` the cumulative JSON state the resume path needs (allocated
/// ids, byte counts). Rows ride the metadb WAL like any other insert, which
/// is what makes the journal crash-persistent.
pub fn op_ingest_journal() -> Schema {
    Schema::new(
        "op_ingest_journal",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("unit_key", DataType::Text).not_null(),
            ColumnDef::new("unit_seq", DataType::Int).not_null(),
            ColumnDef::new("step", DataType::Text).not_null(),
            ColumnDef::new("payload", DataType::Text),
            ColumnDef::new("ts_ms", DataType::Timestamp).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// `op_shard_journal`: the shard-rebalance workflow journal. Same
/// discipline as [`op_ingest_journal`]: one row per completed move step,
/// appended *after* the step's effects, riding the WAL. `move_key`
/// identifies the move (`table:partN->sM`, stable across resumes), `part`
/// the hash slot or range interval being moved, `payload` the JSON
/// [`crate::shard::MoveSpec`] state (source shard, target epoch) the
/// resume path needs so it never re-derives placement from an
/// already-cut-over map.
pub fn op_shard_journal() -> Schema {
    Schema::new(
        "op_shard_journal",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("move_key", DataType::Text).not_null(),
            ColumnDef::new("part", DataType::Int).not_null(),
            ColumnDef::new("step", DataType::Text).not_null(),
            ColumnDef::new("payload", DataType::Text),
            ColumnDef::new("ts_ms", DataType::Timestamp).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// `op_usage`: usage statistics and audit trail.
pub fn op_usage() -> Schema {
    Schema::new(
        "op_usage",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("ts_ms", DataType::Timestamp).not_null(),
            ColumnDef::new("user_id", DataType::Int).not_null(),
            ColumnDef::new("action", DataType::Text).not_null(),
            ColumnDef::new("duration_ms", DataType::Int),
        ],
    )
    .primary_key(&["id"])
}

// ---------------------------------------------------------------------------
// Generic part — location section (4 tables), §4.3
// ---------------------------------------------------------------------------

/// `loc_item`: the item registry. Every tuple in the domain schema that has
/// files attached carries an `item_id` pointing here.
pub fn loc_item() -> Schema {
    Schema::new(
        "loc_item",
        vec![
            ColumnDef::new("item_id", DataType::Int).not_null(),
            ColumnDef::new("created_ms", DataType::Timestamp).not_null(),
        ],
    )
    .primary_key(&["item_id"])
}

/// `loc_entry`: one named resource of an item — name type (`file`, `tuple`,
/// `url`), the archive holding it, the path within that archive, size and
/// checksum. Querying this table by `item_id` is the first of the "two
/// extra database queries" of dynamic name construction.
pub fn loc_entry() -> Schema {
    Schema::new(
        "loc_entry",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("item_id", DataType::Int).not_null(),
            ColumnDef::new("name_type", DataType::Text).not_null(),
            ColumnDef::new("archive_id", DataType::Int).not_null(),
            ColumnDef::new("path", DataType::Text).not_null(),
            ColumnDef::new("size", DataType::Int).not_null().default(0),
            ColumnDef::new("checksum", DataType::Int),
            ColumnDef::new("role", DataType::Text)
                .not_null()
                .default("data"),
        ],
    )
    .primary_key(&["id"])
}

/// `loc_archive`: archive id → archive type and current path prefix; the
/// second indexed query of name construction. Relocating data means
/// updating rows here — never touching domain tuples (§4.3).
pub fn loc_archive() -> Schema {
    Schema::new(
        "loc_archive",
        vec![
            ColumnDef::new("archive_id", DataType::Int).not_null(),
            ColumnDef::new("archive_type", DataType::Text).not_null(),
            ColumnDef::new("path_prefix", DataType::Text)
                .not_null()
                .default(""),
            ColumnDef::new("url_base", DataType::Text),
            ColumnDef::new("online", DataType::Bool)
                .not_null()
                .default(true),
        ],
    )
    .primary_key(&["archive_id"])
}

/// `loc_transform`: optional access transformations per entry (e.g.
/// "download as compressed"); consulted when building URLs.
pub fn loc_transform() -> Schema {
    Schema::new(
        "loc_transform",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("entry_id", DataType::Int).not_null(),
            ColumnDef::new("transform", DataType::Text).not_null(),
        ],
    )
    .primary_key(&["id"])
}

// ---------------------------------------------------------------------------
// Domain-specific part (7 tables), §4.1
// ---------------------------------------------------------------------------

/// `hle`: high-level events — "a period of time and range of energy that
/// has been determined to be relevant by a specific user". The paper quotes
/// ~25 attributes; the scientifically meaningful ones are modeled.
pub fn hle() -> Schema {
    Schema::new(
        "hle",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("owner", DataType::Int).not_null(),
            ColumnDef::new("item_id", DataType::Int),
            ColumnDef::new("time_start", DataType::Timestamp).not_null(),
            ColumnDef::new("time_end", DataType::Timestamp).not_null(),
            ColumnDef::new("energy_lo", DataType::Float)
                .not_null()
                .default(3.0),
            ColumnDef::new("energy_hi", DataType::Float)
                .not_null()
                .default(20000.0),
            ColumnDef::new("event_type", DataType::Text).not_null(),
            ColumnDef::new("flare_class", DataType::Text),
            ColumnDef::new("peak_rate", DataType::Float),
            ColumnDef::new("hardness", DataType::Float),
            ColumnDef::new("n_photons", DataType::Int),
            ColumnDef::new("calib_version", DataType::Int)
                .not_null()
                .default(1),
            ColumnDef::new("version", DataType::Int)
                .not_null()
                .default(1),
            ColumnDef::new("public", DataType::Bool)
                .not_null()
                .default(false),
            ColumnDef::new("title", DataType::Text),
            ColumnDef::new("notes", DataType::Text),
            ColumnDef::new("created_ms", DataType::Timestamp).not_null(),
            ColumnDef::new("source", DataType::Text)
                .not_null()
                .default("user"),
            ColumnDef::new("position_x", DataType::Float),
            ColumnDef::new("position_y", DataType::Float),
            ColumnDef::new("goes_flux", DataType::Float),
            ColumnDef::new("active_region", DataType::Int),
            ColumnDef::new("quality", DataType::Int)
                .not_null()
                .default(0),
            ColumnDef::new("obsolete", DataType::Bool)
                .not_null()
                .default(false),
        ],
    )
    .primary_key(&["id"])
}

/// `ana`: analysis results attached to an HLE. The paper quotes ~45
/// attributes (algorithm parameters, log pointers, timing); modeled here
/// with the load-bearing subset plus the parameter fingerprint used for
/// redundancy detection (§3.5).
pub fn ana() -> Schema {
    Schema::new(
        "ana",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("hle_id", DataType::Int).not_null(),
            ColumnDef::new("owner", DataType::Int).not_null(),
            ColumnDef::new("item_id", DataType::Int),
            ColumnDef::new("kind", DataType::Text).not_null(),
            ColumnDef::new("fingerprint", DataType::Text).not_null(),
            ColumnDef::new("t_start", DataType::Timestamp).not_null(),
            ColumnDef::new("t_end", DataType::Timestamp).not_null(),
            ColumnDef::new("energy_lo", DataType::Float).not_null(),
            ColumnDef::new("energy_hi", DataType::Float).not_null(),
            ColumnDef::new("param_grid", DataType::Float),
            ColumnDef::new("param_bins", DataType::Float),
            ColumnDef::new("param_bin_ms", DataType::Float),
            ColumnDef::new("status", DataType::Text)
                .not_null()
                .default("done"),
            ColumnDef::new("duration_ms", DataType::Int),
            ColumnDef::new("cpu_ms", DataType::Int),
            ColumnDef::new("output_bytes", DataType::Int),
            ColumnDef::new("product_type", DataType::Text),
            ColumnDef::new("calib_version", DataType::Int)
                .not_null()
                .default(1),
            ColumnDef::new("version", DataType::Int)
                .not_null()
                .default(1),
            ColumnDef::new("public", DataType::Bool)
                .not_null()
                .default(false),
            ColumnDef::new("created_ms", DataType::Timestamp).not_null(),
            ColumnDef::new("error", DataType::Text),
            ColumnDef::new("obsolete", DataType::Bool)
                .not_null()
                .default(false),
        ],
    )
    .primary_key(&["id"])
}

/// `catalog`: named groupings of HLEs — the standard catalog, the extended
/// catalog, and private user workspaces (§3.3/§4.1).
pub fn catalog() -> Schema {
    Schema::new(
        "catalog",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("owner", DataType::Int).not_null(),
            ColumnDef::new("name", DataType::Text).not_null(),
            ColumnDef::new("description", DataType::Text),
            ColumnDef::new("kind", DataType::Text)
                .not_null()
                .default("private"),
            ColumnDef::new("public", DataType::Bool)
                .not_null()
                .default(false),
            ColumnDef::new("created_ms", DataType::Timestamp).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// `catalog_member`: HLE ↔ catalog membership (an HLE can appear in many
/// catalogs).
pub fn catalog_member() -> Schema {
    Schema::new(
        "catalog_member",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("catalog_id", DataType::Int).not_null(),
            ColumnDef::new("hle_id", DataType::Int).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// `raw_unit`: the registry of raw telemetry units on disk.
pub fn raw_unit() -> Schema {
    Schema::new(
        "raw_unit",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("seq", DataType::Int).not_null(),
            ColumnDef::new("t_start", DataType::Timestamp).not_null(),
            ColumnDef::new("t_end", DataType::Timestamp).not_null(),
            ColumnDef::new("n_photons", DataType::Int).not_null(),
            ColumnDef::new("calib_version", DataType::Int).not_null(),
            ColumnDef::new("item_id", DataType::Int).not_null(),
            ColumnDef::new("size_bytes", DataType::Int).not_null(),
            ColumnDef::new("obsolete", DataType::Bool)
                .not_null()
                .default(false),
        ],
    )
    .primary_key(&["id"])
}

/// `view_meta`: wavelet view registry — which partitioned approximated view
/// covers which time range at which quantization (§3.4/§6.3).
pub fn view_meta() -> Schema {
    Schema::new(
        "view_meta",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("t_start", DataType::Timestamp).not_null(),
            ColumnDef::new("t_end", DataType::Timestamp).not_null(),
            ColumnDef::new("bin_ms", DataType::Int).not_null(),
            ColumnDef::new("partition_len", DataType::Int).not_null(),
            ColumnDef::new("quant_step", DataType::Float).not_null(),
            ColumnDef::new("item_id", DataType::Int).not_null(),
            ColumnDef::new("calib_version", DataType::Int).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// `version_log`: version history of raw and derived data (§3.1) — which
/// entity moved to which version when, and why (recalibration, correction).
pub fn version_log() -> Schema {
    Schema::new(
        "version_log",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("entity_kind", DataType::Text).not_null(),
            ColumnDef::new("entity_id", DataType::Int).not_null(),
            ColumnDef::new("version", DataType::Int).not_null(),
            ColumnDef::new("calib_version", DataType::Int),
            ColumnDef::new("reason", DataType::Text).not_null(),
            ColumnDef::new("ts_ms", DataType::Timestamp).not_null(),
        ],
    )
    .primary_key(&["id"])
}

/// Names of the generic tables (administrative + operational + location).
pub const GENERIC_TABLES: [&str; 13] = [
    "admin_config",
    "admin_services",
    "admin_users",
    "op_log",
    "op_lineage",
    "op_archives",
    "op_ingest_journal",
    "op_shard_journal",
    "op_usage",
    "loc_item",
    "loc_entry",
    "loc_archive",
    "loc_transform",
];

/// Names of the domain-specific tables.
pub const DOMAIN_TABLES: [&str; 7] = [
    "hle",
    "ana",
    "catalog",
    "catalog_member",
    "raw_unit",
    "view_meta",
    "version_log",
];

/// Create the generic schema plus its indexes on one database.
pub fn create_generic(conn: &mut Connection) -> DbResult<()> {
    conn.create_table(admin_config())?;
    conn.create_table(admin_services())?;
    conn.create_table(admin_users())?;
    conn.create_table(op_log())?;
    conn.create_table(op_lineage())?;
    conn.create_table(op_archives())?;
    conn.create_table(op_ingest_journal())?;
    conn.create_table(op_shard_journal())?;
    conn.create_table(op_usage())?;
    conn.create_table(loc_item())?;
    conn.create_table(loc_entry())?;
    conn.create_table(loc_archive())?;
    conn.create_table(loc_transform())?;
    conn.create_index("admin_users", "users_name", &["name"], true)?;
    conn.create_index("loc_entry", "entry_item", &["item_id"], false)?;
    conn.create_index("loc_transform", "transform_entry", &["entry_id"], false)?;
    conn.create_index("op_lineage", "lineage_entity", &["entity_id"], false)?;
    conn.create_index("op_ingest_journal", "ingest_unit_key", &["unit_key"], false)?;
    conn.create_index("op_shard_journal", "shard_move_key", &["move_key"], false)?;
    conn.create_index("op_usage", "usage_user", &["user_id"], false)?;
    Ok(())
}

/// Create the RHESSI domain schema plus its indexes on one database.
pub fn create_domain(conn: &mut Connection) -> DbResult<()> {
    conn.create_table(hle())?;
    conn.create_table(ana())?;
    conn.create_table(catalog())?;
    conn.create_table(catalog_member())?;
    conn.create_table(raw_unit())?;
    conn.create_table(view_meta())?;
    conn.create_table(version_log())?;
    conn.create_index("hle", "hle_time", &["time_start"], false)?;
    conn.create_index("hle", "hle_owner", &["owner"], false)?;
    conn.create_index("ana", "ana_hle", &["hle_id"], false)?;
    conn.create_index("ana", "ana_fingerprint", &["fingerprint"], false)?;
    conn.create_index("ana", "ana_owner", &["owner"], false)?;
    conn.create_index("catalog_member", "member_catalog", &["catalog_id"], false)?;
    conn.create_index("catalog_member", "member_hle", &["hle_id"], false)?;
    conn.create_index("raw_unit", "raw_time", &["t_start"], false)?;
    conn.create_index("view_meta", "view_time", &["t_start"], false)?;
    conn.create_index("version_log", "version_entity", &["entity_id"], false)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_metadb::Database;

    #[test]
    fn generic_and_domain_create_cleanly() {
        let db = Database::in_memory("schema-test");
        let mut conn = db.connect();
        create_generic(&mut conn).unwrap();
        create_domain(&mut conn).unwrap();
        let names = db.table_names();
        assert_eq!(names.len(), GENERIC_TABLES.len() + DOMAIN_TABLES.len());
        for t in GENERIC_TABLES.iter().chain(DOMAIN_TABLES.iter()) {
            assert!(names.contains(&t.to_string()), "missing {t}");
        }
    }

    #[test]
    fn domain_schema_is_independent_of_generic() {
        // The split's point: the domain part can be created alone on a
        // separate database (the StreamCorder's local clone does this).
        let db = Database::in_memory("domain-only");
        let mut conn = db.connect();
        create_domain(&mut conn).unwrap();
        assert_eq!(db.table_names().len(), DOMAIN_TABLES.len());
    }

    #[test]
    fn hle_has_paper_scale_attribute_count() {
        // ~25 attributes per HLE tuple (§4.1).
        assert!(hle().arity() >= 20, "hle arity {}", hle().arity());
        assert!(ana().arity() >= 20, "ana arity {}", ana().arity());
    }

    #[test]
    fn unique_user_names_enforced() {
        let db = Database::in_memory("users");
        let mut conn = db.connect();
        create_generic(&mut conn).unwrap();
        conn.execute_sql("INSERT INTO admin_users (id, name, pw_hash) VALUES (1, 'etzard', 42)")
            .unwrap();
        let err = conn
            .execute_sql("INSERT INTO admin_users (id, name, pw_hash) VALUES (2, 'etzard', 43)")
            .unwrap_err();
        assert!(matches!(err, hedc_metadb::DbError::UniqueViolation { .. }));
    }
}
