//! Horizontal partitioning: the sharded DM cluster (ROADMAP item 1).
//!
//! The paper's §5.4 call redirection and the [`crate::DmRouter`] failover
//! built on it load-balance over *replicas of everything*: every node holds
//! the full catalog, so adding nodes buys availability but not capacity.
//! This module partitions the metadata itself — the distributed-warehouse
//! move of the astroparticle and SDSS archive migrations — while keeping
//! replica failover *per shard*:
//!
//! * [`ShardMap`] — a versioned (epoch-stamped) description of which shard
//!   owns which rows of which table, by hash over an integer key column
//!   (item ids) or by time-range cuts (observation windows). Serde-
//!   serializable so it crosses the wire; see `hedc-net` for the epoch
//!   handshake and the wrong-shard redirect frame.
//! * [`ShardedDm`] — a router layer *above* [`crate::DmRouter`]: one router
//!   (replica set) per shard. Point lookups and `resolve_batch` chunks go
//!   to exactly one shard's replicas; range/catalog queries fan out
//!   scatter-gather with partial-result merge. The PR 4 top-k pushdown
//!   composes: `LIMIT offset+limit` is pushed to every shard and a merge
//!   heap at the router recombines; the PR 8 `Overloaded` policy composes
//!   untouched because each shard *is* a `DmRouter`.
//! * [`ShardMover`] — rebalancing on node add/remove as §5.2 archive
//!   relocation at cluster scale: a staged, crash-resumable workflow
//!   journaled through `op_shard_journal` (the PR 5 `op_ingest_journal`
//!   pattern — a step's row is appended *after* its effects, done ⇒ skip,
//!   interrupted copies are compensated by idempotent redo). The old shard
//!   serves reads until the cutover step bumps the map epoch and the moved
//!   shards' cache generations.
//!
//! # Merge semantics
//!
//! [`FanoutPlan::merge`] reproduces the single-node executor's observable
//! output (`columns` + `rows`) exactly, with two documented carve-outs:
//! rows tied under the requested `ORDER BY` (or rows of an un-ordered
//! query) come back in shard-concatenation order rather than single-node
//! scan order, and `SUM`/`AVG` over *float* columns recombine partial
//! sums, so they match up to f64 addition order. Queries whose sort keys
//! are a total order (e.g. a unique id as the final key) and integer
//! aggregates are byte-identical — which is what the seeded oracle suite
//! (`tests/shard_prop.rs`) pins.
//!
//! Execution statistics are synthesized (scans sum across shards); only
//! `columns` and `rows` carry identity guarantees.

use crate::error::{DmError, DmResult};
use crate::fault::splitmix64;
use crate::io::DmIo;
use crate::redirect::{DmNode, DmRouter};
use crate::{NameType, ResolvedName};
use hedc_cache::{CacheConfig, DepSnapshot, GenerationMap, QueryCache};
use hedc_metadb::{
    AccessPath, AggFunc, CmpOp, ExecStats, Expr, OrderDir, Projection, Query, QueryResult,
    Statement, Value,
};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, RwLock};

/// Cache scope tag for results assembled by [`ShardedDm`]. Structural
/// isolation from the router/net scopes: merged results are never
/// interchangeable with single-node results.
pub const SHARD_SCOPE: &str = "shard";

/// The table whose sharding spec routes item-id based name resolution
/// (`resolve_batch`). Items, their entries and transforms co-locate.
pub const ITEM_TABLE: &str = "loc_item";

// ---------------------------------------------------------------------------
// Shard map
// ---------------------------------------------------------------------------

/// How one table's rows map to shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardScheme {
    /// Hash partitioning: `slot = splitmix64(key) % slots.len()`, and
    /// `slots[slot]` names the owning shard. Rebalancing moves slots.
    Hash {
        /// Slot → shard assignment. Length is the (fixed) slot count.
        slots: Vec<u32>,
    },
    /// Range partitioning over an integer (time) column: `cuts` are the
    /// ascending interval boundaries; keys `< cuts[0]` fall in interval 0,
    /// keys `>= cuts[last]` in the last. `assign[i]` names the shard owning
    /// interval `i`; `assign.len() == cuts.len() + 1`.
    Range {
        /// Ascending interval boundaries.
        cuts: Vec<i64>,
        /// Interval → shard assignment.
        assign: Vec<u32>,
    },
}

/// One table's sharding spec: the key column plus the scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSharding {
    /// The integer key column rows are placed by.
    pub column: String,
    /// Hash or range placement.
    pub scheme: ShardScheme,
}

/// The versioned cluster partitioning description. Tables not listed are
/// *replicated*: present on every shard, served by any one of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Monotone version. Every rebalance cutover installs a higher epoch;
    /// clients holding an older epoch are redirected (see `hedc-net`).
    pub epoch: u64,
    /// Number of shards in the cluster.
    pub shards: u32,
    /// Per-table sharding specs, keyed by lowercased table name.
    pub tables: BTreeMap<String, TableSharding>,
}

/// Where a query must run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// The filter pins the shard key: exactly one shard can hold matches.
    Single(u32),
    /// Scatter-gather over these shards (all of them, or a pruned subset
    /// for range predicates under range sharding).
    Fanout(Vec<u32>),
    /// The table is replicated; any one shard answers.
    Replicated,
}

fn hash_key(key: i64) -> u64 {
    let mut s = key as u64;
    splitmix64(&mut s)
}

/// The shard-key value of a literal, when it is an integer-like value.
fn key_of(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Timestamp(t) => Some(*t),
        _ => None,
    }
}

impl ShardMap {
    /// An empty map (everything replicated) over `shards` shards, epoch 1.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1);
        ShardMap {
            epoch: 1,
            shards,
            tables: BTreeMap::new(),
        }
    }

    /// Hash-shard `table` by `column` over `slot_count` slots assigned
    /// round-robin across the shards.
    pub fn with_hash(mut self, table: &str, column: &str, slot_count: usize) -> Self {
        assert!(slot_count >= 1);
        let slots = (0..slot_count as u32).map(|i| i % self.shards).collect();
        self.tables.insert(
            table.to_ascii_lowercase(),
            TableSharding {
                column: column.to_string(),
                scheme: ShardScheme::Hash { slots },
            },
        );
        self
    }

    /// Range-shard `table` by `column` with explicit interval boundaries
    /// and per-interval shard assignment (`assign.len() == cuts.len()+1`).
    pub fn with_range(mut self, table: &str, column: &str, cuts: Vec<i64>, assign: Vec<u32>) -> Self {
        assert_eq!(assign.len(), cuts.len() + 1);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(assign.iter().all(|&s| s < self.shards));
        self.tables.insert(
            table.to_ascii_lowercase(),
            TableSharding {
                column: column.to_string(),
                scheme: ShardScheme::Range { cuts, assign },
            },
        );
        self
    }

    /// Range-shard `table` by `column` into `self.shards` equal intervals
    /// of `[lo, hi)`, interval `i` owned by shard `i`.
    pub fn with_even_range(self, table: &str, column: &str, lo: i64, hi: i64) -> Self {
        let n = self.shards as i64;
        assert!(hi > lo);
        let width = ((hi - lo) / n).max(1);
        let cuts: Vec<i64> = (1..n).map(|i| lo + i * width).collect();
        let assign: Vec<u32> = (0..self.shards).collect();
        self.with_range(table, column, cuts, assign)
    }

    /// This table's sharding spec, if it is partitioned.
    pub fn sharding(&self, table: &str) -> Option<&TableSharding> {
        self.tables.get(&table.to_ascii_lowercase())
    }

    /// The partition index (hash slot or range interval) owning `key`.
    pub fn part_for(&self, table: &str, key: i64) -> Option<u32> {
        let spec = self.sharding(table)?;
        Some(match &spec.scheme {
            ShardScheme::Hash { slots } => (hash_key(key) % slots.len() as u64) as u32,
            ShardScheme::Range { cuts, .. } => cuts.partition_point(|&c| c <= key) as u32,
        })
    }

    /// The shard owning `key` in `table`; `None` when the table is
    /// replicated.
    pub fn shard_for(&self, table: &str, key: i64) -> Option<u32> {
        let spec = self.sharding(table)?;
        let part = self.part_for(table, key)?;
        Some(match &spec.scheme {
            ShardScheme::Hash { slots } => slots[part as usize],
            ShardScheme::Range { assign, .. } => assign[part as usize],
        })
    }

    /// The shard currently assigned to partition `part` of `table`.
    pub fn assignment(&self, table: &str, part: u32) -> Option<u32> {
        let spec = self.sharding(table)?;
        match &spec.scheme {
            ShardScheme::Hash { slots } => slots.get(part as usize).copied(),
            ShardScheme::Range { assign, .. } => assign.get(part as usize).copied(),
        }
    }

    /// A successor map with partition `part` of `table` reassigned to
    /// shard `to` and the epoch bumped. The rebalance cutover installs
    /// this.
    pub fn reassign(&self, table: &str, part: u32, to: u32) -> ShardMap {
        let mut next = self.clone();
        next.epoch += 1;
        if let Some(spec) = next.tables.get_mut(&table.to_ascii_lowercase()) {
            match &mut spec.scheme {
                ShardScheme::Hash { slots } => slots[part as usize] = to,
                ShardScheme::Range { assign, .. } => assign[part as usize] = to,
            }
        }
        next
    }

    /// Shards whose key space intersects `[lo, hi]` (inclusive; `None` is
    /// unbounded). Hash sharding cannot prune ranges, so it returns every
    /// shard the table touches.
    fn shards_for_range(&self, spec: &TableSharding, lo: Option<i64>, hi: Option<i64>) -> Vec<u32> {
        match &spec.scheme {
            ShardScheme::Hash { slots } => {
                let mut all: Vec<u32> = slots.clone();
                all.sort_unstable();
                all.dedup();
                all
            }
            ShardScheme::Range { cuts, assign } => {
                let first = lo.map_or(0, |l| cuts.partition_point(|&c| c <= l));
                let last = hi.map_or(assign.len() - 1, |h| cuts.partition_point(|&c| c <= h));
                let mut out: Vec<u32> = assign[first..=last].to_vec();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// All shards a partitioned table's rows may live on.
    fn all_shards(&self, spec: &TableSharding) -> Vec<u32> {
        self.shards_for_range(spec, None, None)
    }

    /// Decide where `q` must run under this map. The filter's conjuncts
    /// (AND-connected top-level terms) are inspected for sargable
    /// constraints on the shard-key column — equality and `IN` pin shards
    /// under either scheme; `BETWEEN` and inequality ranges prune under
    /// range sharding. Conjunct constraints intersect; a contradiction
    /// (e.g. `item_id = 5 AND item_id = 7` landing on different shards)
    /// degenerates to one of the named shards, which then proves the
    /// result empty.
    pub fn route(&self, q: &Query) -> Route {
        let Some(spec) = self.sharding(&q.table) else {
            return Route::Replicated;
        };
        let mut targets = self.all_shards(spec);
        if let Some(filter) = &q.filter {
            for conj in filter.conjuncts() {
                if let Some(set) = self.conjunct_shards(spec, conj) {
                    targets.retain(|s| set.contains(s));
                    if targets.is_empty() {
                        // Provably-empty intersection: still execute
                        // somewhere so the caller gets the right columns.
                        return Route::Single(set.first().copied().unwrap_or(0));
                    }
                }
            }
        }
        if targets.len() == 1 {
            Route::Single(targets[0])
        } else {
            Route::Fanout(targets)
        }
    }

    /// The shard set one conjunct constrains the key column to, or `None`
    /// when the conjunct says nothing about shard placement.
    fn conjunct_shards(&self, spec: &TableSharding, conj: &Expr) -> Option<Vec<u32>> {
        let col_matches = |e: &Expr| matches!(e, Expr::Name(n) if n.eq_ignore_ascii_case(&spec.column));
        match conj {
            Expr::Cmp(op, a, b) => {
                let (op, lit) = match (&**a, &**b) {
                    (l, Expr::Literal(v)) if col_matches(l) => (*op, v),
                    (Expr::Literal(v), r) if col_matches(r) => (flip_cmp(*op), v),
                    _ => return None,
                };
                let key = key_of(lit)?;
                match op {
                    CmpOp::Eq => Some(vec![self.shard_for_spec(spec, key)]),
                    CmpOp::Lt | CmpOp::Le => Some(self.shards_for_range(spec, None, Some(key))),
                    CmpOp::Gt | CmpOp::Ge => Some(self.shards_for_range(spec, Some(key), None)),
                    CmpOp::Ne => None,
                }
            }
            Expr::Between { expr, lo, hi } => {
                if !col_matches(expr) {
                    return None;
                }
                let (Expr::Literal(l), Expr::Literal(h)) = (&**lo, &**hi) else {
                    return None;
                };
                let (l, h) = (key_of(l)?, key_of(h)?);
                Some(self.shards_for_range(spec, Some(l), Some(h)))
            }
            Expr::InList { expr, list } => {
                if !col_matches(expr) {
                    return None;
                }
                let mut out = Vec::new();
                for item in list {
                    let Expr::Literal(v) = item else { return None };
                    if v.is_null() {
                        continue;
                    }
                    out.push(self.shard_for_spec(spec, key_of(v)?));
                }
                out.sort_unstable();
                out.dedup();
                Some(out)
            }
            _ => None,
        }
    }

    fn shard_for_spec(&self, spec: &TableSharding, key: i64) -> u32 {
        match &spec.scheme {
            ShardScheme::Hash { slots } => slots[(hash_key(key) % slots.len() as u64) as usize],
            ShardScheme::Range { cuts, assign } => assign[cuts.partition_point(|&c| c <= key)],
        }
    }
}

fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Shared, swappable map handle (the epoch protocol's server-side state)
// ---------------------------------------------------------------------------

/// A shared, atomically swappable [`ShardMap`]: the router, the rebalance
/// workflow and the net-tier servers all read the same handle, so a
/// cutover is one `install` and every reader sees the new epoch on its
/// next routing decision.
pub struct ShardMapHandle {
    inner: RwLock<Arc<ShardMap>>,
}

impl ShardMapHandle {
    /// Wrap an initial map.
    pub fn new(map: ShardMap) -> Arc<Self> {
        hedc_obs::global().gauge("dm.shard.epoch").set(map.epoch as i64);
        hedc_obs::global()
            .gauge("dm.shard.count")
            .set(i64::from(map.shards));
        Arc::new(ShardMapHandle {
            inner: RwLock::new(Arc::new(map)),
        })
    }

    /// The current map.
    pub fn current(&self) -> Arc<ShardMap> {
        Arc::clone(&self.inner.read().expect("shard map poisoned"))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.current().epoch
    }

    /// Install `map` if it is newer than the current one. Returns whether
    /// it was installed; an equal-or-older epoch is ignored, which makes
    /// cutover re-runs after a crash idempotent.
    pub fn install(&self, map: ShardMap) -> bool {
        let mut cur = self.inner.write().expect("shard map poisoned");
        if map.epoch <= cur.epoch {
            return false;
        }
        hedc_obs::global().gauge("dm.shard.epoch").set(map.epoch as i64);
        *cur = Arc::new(map);
        true
    }
}

// ---------------------------------------------------------------------------
// Scatter-gather pushdown + merge
// ---------------------------------------------------------------------------

/// How one requested aggregate recombines from the pushed partial
/// aggregates. Indices are offsets into the partial aggregate list (the
/// partial row layout is `group_by ++ partials`).
#[derive(Debug, Clone)]
enum AggMerge {
    /// COUNT(*) / COUNT(col): sum the partial counts.
    CountSum(usize),
    /// SUM(col): recombine partial sums with the executor's
    /// int-iff-all-int rule.
    Sum(usize),
    /// AVG(col): final = merged SUM / merged COUNT.
    Avg {
        /// Partial `SUM(col)` index.
        sum: usize,
        /// Partial `COUNT(col)` index.
        count: usize,
    },
    /// MIN(col): minimum of the non-null partials.
    Min(usize),
    /// MAX(col): maximum of the non-null partials.
    Max(usize),
}

/// Merged SUM accumulator mirroring the executor's `Acc` sum fields.
#[derive(Debug, Clone, Copy, Default)]
struct SumAcc {
    seen: bool,
    is_int: bool,
    isum: i64,
    fsum: f64,
}

impl SumAcc {
    fn new() -> Self {
        SumAcc {
            seen: false,
            is_int: true,
            isum: 0,
            fsum: 0.0,
        }
    }

    fn push(&mut self, partial: &Value) {
        match partial {
            Value::Null => {}
            Value::Int(i) => {
                self.seen = true;
                self.fsum += *i as f64;
                if self.is_int {
                    self.isum = self.isum.wrapping_add(*i);
                }
            }
            Value::Float(f) => {
                self.seen = true;
                self.is_int = false;
                self.fsum += f;
            }
            other => panic!("non-numeric SUM partial: {other:?}"),
        }
    }

    fn sum_value(&self) -> Value {
        if !self.seen {
            Value::Null
        } else if self.is_int {
            Value::Int(self.isum)
        } else {
            Value::Float(self.fsum)
        }
    }

    fn sum_f64(&self) -> f64 {
        if self.is_int {
            self.isum as f64
        } else {
            self.fsum
        }
    }
}

/// The pushed-down per-shard query plus the recipe to recombine the
/// partial results into the answer of the original query. Built by
/// [`FanoutPlan::new`]; pure data + pure merge, so the oracle suite can
/// exercise it against shuffled shard reply orders directly.
pub struct FanoutPlan {
    original: Query,
    pushed: Query,
    /// Aggregate recombination recipe; empty for row queries.
    agg_merge: Vec<AggMerge>,
    /// Row queries: number of trailing pushed projection columns that were
    /// added only to carry ORDER BY keys and are stripped after the merge.
    widened_by: usize,
}

impl FanoutPlan {
    /// Plan the scatter for `q`.
    pub fn new(q: &Query) -> FanoutPlan {
        if !q.aggregates.is_empty() {
            return Self::plan_aggregate(q);
        }
        Self::plan_rows(q)
    }

    /// The per-shard query to execute.
    pub fn pushed(&self) -> &Query {
        &self.pushed
    }

    fn plan_rows(q: &Query) -> FanoutPlan {
        let mut pushed = q.clone();
        // The shards sort; the merge preserves order, then applies the
        // global window. Only `offset + limit` rows per shard can survive
        // the window, so that is all each shard returns (top-k pushdown).
        pushed.offset = None;
        pushed.limit = q
            .limit
            .map(|l| q.offset.unwrap_or(0).saturating_add(l));
        let mut widened_by = 0;
        if !q.order_by.is_empty() {
            if let Projection::Columns(cols) = &q.projection {
                let mut wide = cols.clone();
                for (oc, _) in &q.order_by {
                    if !wide.iter().any(|c| c.eq_ignore_ascii_case(oc)) {
                        wide.push(oc.clone());
                        widened_by += 1;
                    }
                }
                if widened_by > 0 {
                    pushed.projection = Projection::Columns(wide);
                }
            }
        }
        FanoutPlan {
            original: q.clone(),
            pushed,
            agg_merge: Vec::new(),
            widened_by,
        }
    }

    fn plan_aggregate(q: &Query) -> FanoutPlan {
        // Partial aggregate list, deduplicated: AVG decomposes into
        // SUM + COUNT partials; everything else pushes as itself.
        let mut partials: Vec<AggFunc> = Vec::new();
        let index_of = |p: AggFunc, partials: &mut Vec<AggFunc>| -> usize {
            if let Some(i) = partials.iter().position(|x| *x == p) {
                i
            } else {
                partials.push(p);
                partials.len() - 1
            }
        };
        let mut agg_merge = Vec::with_capacity(q.aggregates.len());
        for agg in &q.aggregates {
            let m = match agg {
                AggFunc::CountStar => AggMerge::CountSum(index_of(AggFunc::CountStar, &mut partials)),
                AggFunc::Count(c) => {
                    AggMerge::CountSum(index_of(AggFunc::Count(c.clone()), &mut partials))
                }
                AggFunc::Sum(c) => AggMerge::Sum(index_of(AggFunc::Sum(c.clone()), &mut partials)),
                AggFunc::Avg(c) => AggMerge::Avg {
                    sum: index_of(AggFunc::Sum(c.clone()), &mut partials),
                    count: index_of(AggFunc::Count(c.clone()), &mut partials),
                },
                AggFunc::Min(c) => AggMerge::Min(index_of(AggFunc::Min(c.clone()), &mut partials)),
                AggFunc::Max(c) => AggMerge::Max(index_of(AggFunc::Max(c.clone()), &mut partials)),
            };
            agg_merge.push(m);
        }
        let mut pushed = q.clone();
        pushed.aggregates = partials;
        pushed.order_by = Vec::new();
        pushed.limit = None;
        pushed.offset = None;
        FanoutPlan {
            original: q.clone(),
            pushed,
            agg_merge,
            widened_by: 0,
        }
    }

    /// Recombine per-shard partial results (one entry per scattered shard;
    /// any positional order) into the original query's answer.
    pub fn merge(&self, parts: Vec<QueryResult>) -> DmResult<QueryResult> {
        if self.agg_merge.is_empty() {
            self.merge_rows(parts)
        } else {
            self.merge_aggregates(parts)
        }
    }

    fn merge_rows(&self, parts: Vec<QueryResult>) -> DmResult<QueryResult> {
        let q = &self.original;
        let mut stats = sum_stats(&parts);
        // Column labels of the merged (possibly widened) row set.
        let columns: Vec<String> = parts
            .first()
            .map(|p| p.columns.clone())
            .unwrap_or_default();
        let mut rows: Vec<Vec<Value>>;
        if q.order_by.is_empty() {
            rows = parts.into_iter().flat_map(|p| p.rows).collect();
        } else {
            let keys: Vec<(usize, OrderDir)> = q
                .order_by
                .iter()
                .map(|(c, d)| {
                    columns
                        .iter()
                        .position(|l| l.eq_ignore_ascii_case(c))
                        .map(|i| (i, *d))
                        .ok_or_else(|| {
                            DmError::BadQuery(format!("ORDER BY column `{c}` not in shard results"))
                        })
                })
                .collect::<DmResult<_>>()?;
            rows = merge_sorted(parts, &keys);
            stats.rows_sorted += rows.len();
        }
        // Global window.
        let offset = q.offset.unwrap_or(0);
        if offset > 0 {
            rows.drain(..offset.min(rows.len()));
        }
        if let Some(limit) = q.limit {
            rows.truncate(limit);
        }
        // Strip ORDER BY carrier columns the plan widened the projection by.
        let mut columns = columns;
        if self.widened_by > 0 {
            let keep = columns.len() - self.widened_by;
            columns.truncate(keep);
            for r in &mut rows {
                r.truncate(keep);
            }
        }
        stats.rows_returned = rows.len();
        Ok(QueryResult {
            columns,
            rows,
            stats,
        })
    }

    fn merge_aggregates(&self, parts: Vec<QueryResult>) -> DmResult<QueryResult> {
        let q = &self.original;
        let mut stats = sum_stats(&parts);
        let n_groups = q.group_by.len();
        let n_partials = self.pushed.aggregates.len();

        // Accumulate per group key. BTreeMap over Vec<Value> sorts groups
        // exactly like the executor's default group-key order.
        struct GroupAcc {
            counts: Vec<i64>,
            sums: Vec<SumAcc>,
            mins: Vec<Option<Value>>,
            maxs: Vec<Option<Value>>,
        }
        let mut groups: BTreeMap<Vec<Value>, GroupAcc> = BTreeMap::new();
        for part in &parts {
            for row in &part.rows {
                let key = row[..n_groups].to_vec();
                let acc = groups.entry(key).or_insert_with(|| GroupAcc {
                    counts: vec![0; n_partials],
                    sums: vec![SumAcc::new(); n_partials],
                    mins: vec![None; n_partials],
                    maxs: vec![None; n_partials],
                });
                for (i, partial) in self.pushed.aggregates.iter().enumerate() {
                    let v = &row[n_groups + i];
                    match partial {
                        AggFunc::CountStar | AggFunc::Count(_) => {
                            acc.counts[i] += v.as_int().unwrap_or(0);
                        }
                        AggFunc::Sum(_) => acc.sums[i].push(v),
                        AggFunc::Min(_) => {
                            if !v.is_null()
                                && acc.mins[i].as_ref().is_none_or(|m| v < m)
                            {
                                acc.mins[i] = Some(v.clone());
                            }
                        }
                        AggFunc::Max(_) => {
                            if !v.is_null()
                                && acc.maxs[i].as_ref().is_none_or(|m| v > m)
                            {
                                acc.maxs[i] = Some(v.clone());
                            }
                        }
                        AggFunc::Avg(_) => unreachable!("AVG never pushes as a partial"),
                    }
                }
            }
        }
        // An empty, ungrouped scatter still yields the executor's one row
        // of zeroes — every shard returned it; the merge keeps one.
        if groups.is_empty() && n_groups == 0 {
            groups.insert(
                Vec::new(),
                GroupAcc {
                    counts: vec![0; n_partials],
                    sums: vec![SumAcc::new(); n_partials],
                    mins: vec![None; n_partials],
                    maxs: vec![None; n_partials],
                },
            );
        }

        let mut labels: Vec<String> = q.group_by.clone();
        labels.extend(q.aggregates.iter().map(AggFunc::label));

        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(groups.len());
        for (key, acc) in groups {
            let mut row = key;
            for merge in &self.agg_merge {
                let v = match merge {
                    AggMerge::CountSum(i) => Value::Int(acc.counts[*i]),
                    AggMerge::Sum(i) => acc.sums[*i].sum_value(),
                    AggMerge::Avg { sum, count } => {
                        let n = acc.counts[*count];
                        if n == 0 {
                            Value::Null
                        } else {
                            Value::Float(acc.sums[*sum].sum_f64() / n as f64)
                        }
                    }
                    AggMerge::Min(i) => acc.mins[*i].clone().unwrap_or(Value::Null),
                    AggMerge::Max(i) => acc.maxs[*i].clone().unwrap_or(Value::Null),
                };
                row.push(v);
            }
            rows.push(row);
        }

        // Output order: explicit ORDER BY over output labels (exact match,
        // like the executor), else the BTreeMap already delivered default
        // group-key order.
        if !q.order_by.is_empty() {
            let keys: Vec<(usize, OrderDir)> = q
                .order_by
                .iter()
                .map(|(c, d)| {
                    labels
                        .iter()
                        .position(|l| l == c)
                        .map(|i| (i, *d))
                        .ok_or_else(|| {
                            DmError::BadQuery(format!(
                                "ORDER BY column `{c}` is not in the aggregate output"
                            ))
                        })
                })
                .collect::<DmResult<_>>()?;
            rows.sort_by(|a, b| cmp_by_keys(a, b, &keys));
            stats.rows_sorted += rows.len();
        } else if n_groups > 0 {
            stats.rows_sorted += rows.len();
        }
        let offset = q.offset.unwrap_or(0);
        if offset > 0 {
            rows.drain(..offset.min(rows.len()));
        }
        if let Some(limit) = q.limit {
            rows.truncate(limit);
        }
        stats.rows_returned = rows.len();
        Ok(QueryResult {
            columns: labels,
            rows,
            stats,
        })
    }
}

fn cmp_by_keys(a: &[Value], b: &[Value], keys: &[(usize, OrderDir)]) -> Ordering {
    for &(col, dir) in keys {
        let ord = a[col].cmp(&b[col]);
        let ord = if dir == OrderDir::Desc {
            ord.reverse()
        } else {
            ord
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn sum_stats(parts: &[QueryResult]) -> ExecStats {
    ExecStats {
        rows_scanned: parts.iter().map(|p| p.stats.rows_scanned).sum(),
        rows_returned: 0,
        rows_sorted: parts.iter().map(|p| p.stats.rows_sorted).sum(),
        access: parts
            .first()
            .map(|p| p.stats.access.clone())
            .unwrap_or(AccessPath::FullScan),
    }
}

/// K-way merge of per-shard sorted row sets by the resolved ORDER BY keys
/// — the merge heap the top-k pushdown composes with. Ties break by
/// (input position, row position), so the output is deterministic for a
/// given part order and identical to a stable sort of the concatenation.
fn merge_sorted(parts: Vec<QueryResult>, keys: &[(usize, OrderDir)]) -> Vec<Vec<Value>> {
    struct HeapItem {
        row: Vec<Value>,
        part: usize,
        pos: usize,
        keys: *const [(usize, OrderDir)],
    }
    // SAFETY-free ordering: we only compare within one merge call, where
    // `keys` outlives every item; store a raw pointer to avoid a lifetime
    // parameter on the heap item. Kept simple by comparing through a
    // helper that re-borrows.
    impl HeapItem {
        fn key_cmp(&self, other: &Self) -> Ordering {
            let keys = unsafe { &*self.keys };
            cmp_by_keys(&self.row, &other.row, keys)
                .then(self.part.cmp(&other.part))
                .then(self.pos.cmp(&other.pos))
        }
    }
    impl PartialEq for HeapItem {
        fn eq(&self, other: &Self) -> bool {
            self.key_cmp(other) == Ordering::Equal
        }
    }
    impl Eq for HeapItem {}
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapItem {
        // BinaryHeap is a max-heap; reverse for ascending pop order.
        fn cmp(&self, other: &Self) -> Ordering {
            self.key_cmp(other).reverse()
        }
    }

    let total: usize = parts.iter().map(|p| p.rows.len()).sum();
    let mut iters: Vec<std::vec::IntoIter<Vec<Value>>> =
        parts.into_iter().map(|p| p.rows.into_iter()).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    let keys_ptr: *const [(usize, OrderDir)] = keys;
    for (part, it) in iters.iter_mut().enumerate() {
        if let Some(row) = it.next() {
            heap.push(HeapItem {
                row,
                part,
                pos: 0,
                keys: keys_ptr,
            });
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(item) = heap.pop() {
        let HeapItem { row, part, pos, .. } = item;
        out.push(row);
        if let Some(next) = iters[part].next() {
            heap.push(HeapItem {
                row: next,
                part,
                pos: pos + 1,
                keys: keys_ptr,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The sharded router
// ---------------------------------------------------------------------------

/// The router layer above per-shard [`DmRouter`] replica sets. See the
/// module docs for routing and merge semantics.
pub struct ShardedDm {
    shards: Vec<DmRouter>,
    map: Arc<ShardMapHandle>,
    gens: Arc<GenerationMap>,
    cache: Option<QueryCache>,
    rotate: AtomicUsize,
}

impl ShardedDm {
    /// Assemble from one replica set per shard (outer index = shard id)
    /// and the initial map. Panics unless `replica_sets.len() ==
    /// map.shards`.
    pub fn new(replica_sets: Vec<Vec<Arc<dyn DmNode>>>, map: ShardMap) -> ShardedDm {
        assert_eq!(
            replica_sets.len(),
            map.shards as usize,
            "one replica set per shard"
        );
        let shards = replica_sets.into_iter().map(DmRouter::new).collect();
        ShardedDm {
            shards,
            map: ShardMapHandle::new(map),
            gens: Arc::new(GenerationMap::new()),
            cache: None,
            rotate: AtomicUsize::new(0),
        }
    }

    /// Same, with a merged-result cache scoped per shard: cached entries
    /// depend on the *shard-scoped* generation counters of every shard
    /// they were assembled from, so a rebalance cutover invalidates
    /// exactly the moved shards' entries.
    pub fn with_cache(
        replica_sets: Vec<Vec<Arc<dyn DmNode>>>,
        map: ShardMap,
        config: &CacheConfig,
    ) -> ShardedDm {
        let mut dm = Self::new(replica_sets, map);
        dm.cache = Some(QueryCache::new(config, Arc::clone(&dm.gens)));
        dm
    }

    /// The shared map handle (rebalance installs through it; net servers
    /// read it).
    pub fn map_handle(&self) -> &Arc<ShardMapHandle> {
        &self.map
    }

    /// The current map.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.current()
    }

    /// The shard-scoped generation counters backing the cache.
    pub fn generations(&self) -> &Arc<GenerationMap> {
        &self.gens
    }

    /// The merged-result cache, when configured.
    pub fn cache(&self) -> Option<&QueryCache> {
        self.cache.as_ref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replica router of one shard (tests and the rebalancer reach
    /// through it).
    pub fn shard_router(&self, shard: u32) -> &DmRouter {
        &self.shards[shard as usize]
    }

    /// Record a write to `table` on shard `shard`: cached results that
    /// read that shard go stale.
    pub fn bump_shard(&self, shard: u32, table: &str) {
        self.gens.bump_shard(shard, table);
    }

    /// Record a write to `table` on every shard (replicated-table writes,
    /// bulk loads).
    pub fn invalidate(&self, table: &str) {
        for s in 0..self.shards.len() as u32 {
            self.gens.bump_shard(s, table);
        }
    }

    fn rotate_shard(&self) -> u32 {
        (self.rotate.fetch_add(1, AtomicOrdering::Relaxed) % self.shards.len()) as u32
    }

    /// Map a shard's replica-set failure to the typed whole-shard error:
    /// a scatter that lost a shard must not silently drop that shard's
    /// rows.
    fn shard_err(shard: u32, e: DmError) -> DmError {
        match e {
            DmError::RemoteUnavailable(detail) => DmError::ShardUnavailable { shard, detail },
            other => other,
        }
    }

    /// Route and execute `q`: one shard for pinned keys and replicated
    /// tables, scatter-gather with partial-result merge otherwise.
    pub fn query(&self, q: &Query) -> DmResult<QueryResult> {
        let map = self.map.current();
        let route = map.route(q);
        let targets: Vec<u32> = match &route {
            Route::Single(s) => vec![*s],
            Route::Fanout(set) => set.clone(),
            Route::Replicated => vec![self.rotate_shard()],
        };
        // Cache lookup + pre-read dependency snapshot over the shard-scoped
        // generations of every shard this answer will be assembled from.
        let deps: Option<DepSnapshot> = self.cache.as_ref().map(|c| {
            let shard_list: Vec<u32> = targets.clone();
            let _ = &shard_list;
            c.generations().snapshot_shards(&targets, &q.table)
        });
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(SHARD_SCOPE, q) {
                return Ok(hit);
            }
        }
        let metrics = hedc_obs::global();
        let result = match route {
            Route::Single(s) => {
                metrics.counter("dm.shard.route.point").inc();
                self.shards[s as usize]
                    .execute_query(q)
                    .map_err(|e| Self::shard_err(s, e))?
            }
            Route::Replicated => {
                metrics.counter("dm.shard.route.replicated").inc();
                let s = targets[0];
                self.shards[s as usize]
                    .execute_query(q)
                    .map_err(|e| Self::shard_err(s, e))?
            }
            Route::Fanout(set) => {
                metrics.counter("dm.shard.fanout.queries").inc();
                metrics
                    .counter("dm.shard.fanout.targets")
                    .add(set.len() as u64);
                let plan = FanoutPlan::new(q);
                let pushed = plan.pushed();
                let replies: Vec<(u32, DmResult<QueryResult>)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = set
                        .iter()
                        .map(|&s| {
                            let router = &self.shards[s as usize];
                            scope.spawn(move || (s, router.execute_query(pushed)))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                let mut parts = Vec::with_capacity(replies.len());
                for (s, r) in replies {
                    match r {
                        Ok(part) => parts.push(part),
                        Err(e) => {
                            if matches!(e, DmError::RemoteUnavailable(_)) {
                                metrics.counter("dm.shard.fanout.shard_loss").inc();
                            }
                            return Err(Self::shard_err(s, e));
                        }
                    }
                }
                plan.merge(parts)?
            }
        };
        if let (Some(cache), Some(deps)) = (&self.cache, deps) {
            cache.fill(SHARD_SCOPE, q, &result, deps);
        }
        Ok(result)
    }

    /// The shard owning `item_id` for name resolution, per the
    /// [`ITEM_TABLE`] spec; replicated item tables rotate.
    fn item_shard(&self, map: &ShardMap, item_id: i64) -> u32 {
        map.shard_for(ITEM_TABLE, item_id)
            .unwrap_or_else(|| self.rotate_shard())
    }
}

impl DmNode for ShardedDm {
    fn node_id(&self) -> String {
        format!("sharded-dm({})", self.shards.len())
    }

    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.query(q)
    }

    fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        let map = self.map.current();
        let s = self.item_shard(&map, item_id);
        hedc_obs::global().counter("dm.shard.route.point").inc();
        self.shards[s as usize]
            .resolve_batch(&[item_id], want)
            .pop()
            .unwrap_or_else(|| Err(DmError::RemoteFailed("empty resolve batch".into())))
            .map_err(|e| Self::shard_err(s, e))
    }

    fn resolve_batch(&self, item_ids: &[i64], want: NameType) -> Vec<DmResult<Vec<ResolvedName>>> {
        let map = self.map.current();
        // Group ids by owning shard, resolve each group against that
        // shard's replica set (which chunks + fails over internally), and
        // reassemble in input order.
        let mut by_shard: BTreeMap<u32, Vec<(usize, i64)>> = BTreeMap::new();
        for (pos, &id) in item_ids.iter().enumerate() {
            by_shard
                .entry(self.item_shard(&map, id))
                .or_default()
                .push((pos, id));
        }
        if by_shard.len() > 1 {
            let metrics = hedc_obs::global();
            metrics.counter("dm.shard.fanout.batches").inc();
            metrics
                .counter("dm.shard.fanout.targets")
                .add(by_shard.len() as u64);
        } else {
            hedc_obs::global().counter("dm.shard.route.point").inc();
        }
        let mut out: Vec<Option<DmResult<Vec<ResolvedName>>>> = Vec::new();
        out.resize_with(item_ids.len(), || None);
        let groups: Vec<(u32, Vec<(usize, i64)>)> = by_shard.into_iter().collect();
        let replies: Vec<(u32, &Vec<(usize, i64)>, Vec<DmResult<Vec<ResolvedName>>>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(s, entries)| {
                        let router = &self.shards[*s as usize];
                        scope.spawn(move || {
                            let ids: Vec<i64> = entries.iter().map(|(_, id)| *id).collect();
                            (*s, entries, router.resolve_batch(&ids, want))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        for (s, entries, results) in replies {
            for ((pos, _), r) in entries.iter().zip(results) {
                out[*pos] = Some(r.map_err(|e| Self::shard_err(s, e)));
            }
        }
        out.into_iter()
            .map(|r| r.unwrap_or_else(|| Err(DmError::RemoteFailed("unrouted batch entry".into()))))
            .collect()
    }

    fn is_available(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Rebalance: the journaled shard-move workflow
// ---------------------------------------------------------------------------

/// Steps of one shard move, in execution order. A step's journal row is
/// appended *after* its effects (the `op_ingest_journal` discipline), so
/// a recovered journal never claims work that did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MoveStep {
    /// The move spec is journaled; nothing has happened yet.
    Planned,
    /// Every owned row is copied to the destination shard. Readers still
    /// hit the source: the map has not changed.
    Copied,
    /// The new map (epoch+1) is installed and the moved shards' cache
    /// generations are bumped. Readers now hit the destination.
    Cutover,
    /// The source shard's copies are deleted.
    Cleaned,
    /// Terminal marker: re-running the move is a no-op.
    Done,
}

impl MoveStep {
    /// All steps in order.
    pub const ALL: [MoveStep; 5] = [
        MoveStep::Planned,
        MoveStep::Copied,
        MoveStep::Cutover,
        MoveStep::Cleaned,
        MoveStep::Done,
    ];

    /// Journal text for this step.
    pub fn as_str(self) -> &'static str {
        match self {
            MoveStep::Planned => "planned",
            MoveStep::Copied => "copied",
            MoveStep::Cutover => "cutover",
            MoveStep::Cleaned => "cleaned",
            MoveStep::Done => "done",
        }
    }

    /// Parse journal text.
    pub fn parse(s: &str) -> Option<MoveStep> {
        MoveStep::ALL.into_iter().find(|x| x.as_str() == s)
    }

    /// Position in [`MoveStep::ALL`].
    pub fn index(self) -> usize {
        MoveStep::ALL.iter().position(|x| *x == self).unwrap()
    }
}

/// Where to kill the mover, for the crash-matrix suite. Mirrors
/// [`crate::CrashSite`]: a `Boundary` crash fires after the step's journal
/// row is durable; `MidStep` fires after some of the step's effects but
/// before its journal row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveCrash {
    /// After `step`'s effects and journal row.
    Boundary(MoveStep),
    /// Mid-effects of `step`, journal row not written.
    MidStep(MoveStep),
}

/// One shard move: partition `part` of `table` goes to shard `to`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoveSpec {
    /// The partitioned table.
    pub table: String,
    /// Hash slot or range interval to move.
    pub part: u32,
    /// Destination shard.
    pub to: u32,
}

impl MoveSpec {
    /// Journal key: stable across retries of the same move.
    pub fn key(&self) -> String {
        format!("{}:part{}->s{}", self.table.to_ascii_lowercase(), self.part, self.to)
    }
}

/// Durable per-move state, carried in the journal payload so a resumed
/// mover re-derives nothing from the (possibly already cut-over) map.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MoveState {
    from: u32,
    target_epoch: u64,
    rows_planned: usize,
}

/// What one [`ShardMover::run`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveOutcome {
    /// Source shard.
    pub from: u32,
    /// Destination shard.
    pub to: u32,
    /// Rows copied in this run (0 when resuming past the copy).
    pub rows_moved: usize,
    /// Rows the original plan counted in the moved partition (recovered
    /// from the journal payload on resume).
    pub rows_planned: usize,
    /// `Some(step)` when this run resumed an interrupted move whose
    /// journal ended at `step`.
    pub resumed_from: Option<MoveStep>,
    /// Destination rows deleted by compensation before re-copying.
    pub compensated_rows: usize,
}

/// The journaled rebalance workflow. Holds direct store handles (moves
/// write rows; the read-path [`DmNode`] surface cannot) plus the
/// [`ShardedDm`] whose map and cache generations the cutover flips.
pub struct ShardMover<'a> {
    journal_io: &'a DmIo,
    stores: Vec<&'a DmIo>,
    sharded: &'a ShardedDm,
    crash: Option<MoveCrash>,
}

impl<'a> ShardMover<'a> {
    /// A mover journaling into `journal_io` (any store with the generic
    /// schema; conventionally shard 0's), moving rows between `stores`
    /// (index = shard id), cutting over `sharded`'s map.
    pub fn new(journal_io: &'a DmIo, stores: Vec<&'a DmIo>, sharded: &'a ShardedDm) -> Self {
        assert_eq!(stores.len(), sharded.shard_count());
        ShardMover {
            journal_io,
            stores,
            sharded,
            crash: None,
        }
    }

    /// Inject a crash for the matrix suite.
    pub fn with_crash(mut self, crash: MoveCrash) -> Self {
        self.crash = Some(crash);
        self
    }

    fn crash_gate(&self, at: MoveCrash) -> DmResult<()> {
        if self.crash == Some(at) {
            return Err(DmError::Crashed(format!("{at:?}")));
        }
        Ok(())
    }

    fn journal(&self, spec: &MoveSpec, step: MoveStep, state: &MoveState) -> DmResult<()> {
        let payload = serde_json::to_string(state)
            .map_err(|e| DmError::Integrity(format!("shard journal payload: {e}")))?;
        let id = self.journal_io.next_id();
        let ts = self.journal_io.clock.now_ms();
        self.journal_io.insert(
            "op_shard_journal",
            vec![
                Value::Int(id),
                Value::Text(spec.key()),
                Value::Int(i64::from(spec.part)),
                Value::Text(step.as_str().to_string()),
                Value::Text(payload),
                Value::Int(ts as i64),
            ],
        )?;
        Ok(())
    }

    /// The furthest journaled step (and its payload) for this move.
    fn journal_last(&self, spec: &MoveSpec) -> DmResult<Option<(MoveStep, MoveState)>> {
        let r = self.journal_io.query(
            &Query::table("op_shard_journal")
                .select(&["step", "payload"])
                .filter(Expr::eq("move_key", spec.key())),
        )?;
        let mut best: Option<(MoveStep, MoveState)> = None;
        for row in &r.rows {
            let Some(step) = row[0].as_text().and_then(MoveStep::parse) else {
                continue;
            };
            let state: MoveState = match row[1].as_text() {
                Some(s) => serde_json::from_str(s)
                    .map_err(|e| DmError::Integrity(format!("shard journal payload: {e}")))?,
                None => continue,
            };
            if best.as_ref().is_none_or(|(b, _)| step.index() > b.index()) {
                best = Some((step, state));
            }
        }
        Ok(best)
    }

    /// Rows of `spec.table` on shard `from` that belong to the moved
    /// partition, as full rows plus their primary ids (column 0 of the
    /// table — every partitioned table keys on a leading integer id).
    fn owned_rows(&self, spec: &MoveSpec, map: &ShardMap, shard: u32) -> DmResult<Vec<Vec<Value>>> {
        let sharding = map.sharding(&spec.table).ok_or_else(|| {
            DmError::BadQuery(format!("table `{}` is not sharded", spec.table))
        })?;
        let all = self.stores[shard as usize].query(&Query::table(&spec.table))?;
        let key_col = all
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(&sharding.column))
            .ok_or_else(|| {
                DmError::BadQuery(format!(
                    "shard key `{}` missing from `{}`",
                    sharding.column, spec.table
                ))
            })?;
        let mut rows = Vec::new();
        for row in all.rows {
            let Some(key) = key_of(&row[key_col]) else {
                continue;
            };
            if map.part_for(&spec.table, key) == Some(spec.part) {
                rows.push(row);
            }
        }
        Ok(rows)
    }

    fn row_ids(rows: &[Vec<Value>]) -> Vec<Expr> {
        rows.iter().map(|r| Expr::Literal(r[0].clone())).collect()
    }

    fn delete_ids(&self, shard: u32, table: &str, ids: Vec<Expr>) -> DmResult<usize> {
        if ids.is_empty() {
            return Ok(0);
        }
        self.stores[shard as usize].execute(Statement::Delete {
            table: table.to_string(),
            filter: Some(Expr::InList {
                expr: Box::new(Expr::Name("id".into())),
                list: ids,
            }),
        })
    }

    /// Run (or resume) the move. Crash-resumable: re-running after any
    /// injected or real death continues from the journal — completed
    /// steps skip, an interrupted copy is compensated (destination copies
    /// deleted, then re-copied), cutover and cleanup redo idempotently.
    pub fn run(&self, spec: &MoveSpec) -> DmResult<MoveOutcome> {
        let metrics = hedc_obs::global();
        let last = self.journal_last(spec)?;
        let resumed_from = last.as_ref().map(|(s, _)| *s);
        if resumed_from.is_some() {
            metrics.counter("dm.shard.rebalance.resumes").inc();
        }

        // --- plan (or recover the plan) -----------------------------------
        let state = match &last {
            Some((_, state)) => state.clone(),
            None => {
                let map = self.sharded.map();
                let from = map.assignment(&spec.table, spec.part).ok_or_else(|| {
                    DmError::BadQuery(format!(
                        "no partition {} in `{}`",
                        spec.part, spec.table
                    ))
                })?;
                if from == spec.to {
                    // Nothing to move; journal a complete trivial move.
                    let state = MoveState {
                        from,
                        target_epoch: map.epoch,
                        rows_planned: 0,
                    };
                    self.journal(spec, MoveStep::Done, &state)?;
                    return Ok(MoveOutcome {
                        from,
                        to: spec.to,
                        rows_moved: 0,
                        rows_planned: 0,
                        resumed_from,
                        compensated_rows: 0,
                    });
                }
                let rows_planned = self.owned_rows(spec, &map, from)?.len();
                let state = MoveState {
                    from,
                    target_epoch: map.epoch + 1,
                    rows_planned,
                };
                self.journal(spec, MoveStep::Planned, &state)?;
                state
            }
        };
        let done_through = resumed_from.map_or(-1, |s| s.index() as i64);
        if done_through >= MoveStep::Done.index() as i64 {
            return Ok(MoveOutcome {
                from: state.from,
                to: spec.to,
                rows_moved: 0,
                rows_planned: state.rows_planned,
                resumed_from,
                compensated_rows: 0,
            });
        }
        self.crash_gate(MoveCrash::Boundary(MoveStep::Planned))?;

        // The *pre-move* map drives row ownership throughout: after a
        // crash between cutover and done the live map already points at
        // the destination, but copy/clean must still see the original
        // partition contents.
        let placement = {
            let live = self.sharded.map();
            if live.assignment(&spec.table, spec.part) == Some(spec.to) {
                Arc::new(live.reassign(&spec.table, spec.part, state.from))
            } else {
                live
            }
        };

        let mut rows_moved = 0usize;
        let mut compensated_rows = 0usize;

        // --- copy ---------------------------------------------------------
        if done_through < MoveStep::Copied.index() as i64 {
            // Compensate an interrupted copy: whatever partial rows the
            // dead mover left on the destination are deleted, then the
            // copy redoes from scratch — byte-identical to a clean run.
            let stale = self.owned_rows(spec, &placement, spec.to)?;
            compensated_rows = stale.len();
            if compensated_rows > 0 {
                metrics
                    .counter("dm.shard.rebalance.compensations")
                    .add(compensated_rows as u64);
                self.delete_ids(spec.to, &spec.table, Self::row_ids(&stale))?;
            }
            let rows = self.owned_rows(spec, &placement, state.from)?;
            let crash_mid = self.crash == Some(MoveCrash::MidStep(MoveStep::Copied));
            let cutoff = if crash_mid { rows.len() / 2 } else { rows.len() };
            for (i, row) in rows.iter().enumerate() {
                if i >= cutoff {
                    break;
                }
                self.stores[spec.to as usize].insert(&spec.table, row.clone())?;
                rows_moved += 1;
            }
            if crash_mid {
                return Err(DmError::Crashed(format!(
                    "{:?}",
                    MoveCrash::MidStep(MoveStep::Copied)
                )));
            }
            metrics
                .counter("dm.shard.rebalance.rows_moved")
                .add(rows_moved as u64);
            self.journal(spec, MoveStep::Copied, &state)?;
        }
        self.crash_gate(MoveCrash::Boundary(MoveStep::Copied))?;

        // --- cutover ------------------------------------------------------
        if done_through < MoveStep::Cutover.index() as i64 {
            let live = self.sharded.map();
            if live.assignment(&spec.table, spec.part) != Some(spec.to) {
                let mut next = live.reassign(&spec.table, spec.part, spec.to);
                next.epoch = next.epoch.max(state.target_epoch);
                self.sharded.map_handle().install(next);
            }
            self.crash_gate(MoveCrash::MidStep(MoveStep::Cutover))?;
            // Generation bumps make every cached result assembled from
            // either moved shard stale — re-run after a mid-cutover crash
            // re-bumps, which is harmless.
            self.sharded.bump_shard(state.from, &spec.table);
            self.sharded.bump_shard(spec.to, &spec.table);
            self.journal(spec, MoveStep::Cutover, &state)?;
        }
        self.crash_gate(MoveCrash::Boundary(MoveStep::Cutover))?;

        // --- clean --------------------------------------------------------
        if done_through < MoveStep::Cleaned.index() as i64 {
            let leftovers = self.owned_rows(spec, &placement, state.from)?;
            let ids = Self::row_ids(&leftovers);
            let crash_mid = self.crash == Some(MoveCrash::MidStep(MoveStep::Cleaned));
            if crash_mid {
                let half: Vec<Expr> = ids.iter().take(ids.len() / 2).cloned().collect();
                self.delete_ids(state.from, &spec.table, half)?;
                return Err(DmError::Crashed(format!(
                    "{:?}",
                    MoveCrash::MidStep(MoveStep::Cleaned)
                )));
            }
            self.delete_ids(state.from, &spec.table, ids)?;
            self.journal(spec, MoveStep::Cleaned, &state)?;
        }
        self.crash_gate(MoveCrash::Boundary(MoveStep::Cleaned))?;

        self.journal(spec, MoveStep::Done, &state)?;
        metrics.counter("dm.shard.rebalance.moves").inc();
        Ok(MoveOutcome {
            from: state.from,
            to: spec.to,
            rows_moved,
            rows_planned: state.rows_planned,
            resumed_from,
            compensated_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map2() -> ShardMap {
        ShardMap::new(2)
            .with_hash("loc_item", "item_id", 8)
            .with_range("hle", "time_end", vec![1000], vec![0, 1])
    }

    #[test]
    fn hash_routing_is_stable_and_covers_all_slots() {
        let m = ShardMap::new(4).with_hash("loc_item", "item_id", 64);
        let a = m.shard_for("loc_item", 12345).unwrap();
        assert_eq!(m.shard_for("loc_item", 12345).unwrap(), a);
        let mut seen = [false; 4];
        for id in 0..1000 {
            seen[m.shard_for("loc_item", id).unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards should own some keys");
    }

    #[test]
    fn range_routing_respects_cuts() {
        let m = map2();
        assert_eq!(m.shard_for("hle", 0), Some(0));
        assert_eq!(m.shard_for("hle", 999), Some(0));
        assert_eq!(m.shard_for("hle", 1000), Some(1));
        assert_eq!(m.shard_for("HLE", 5000), Some(1), "table names fold case");
        assert_eq!(m.shard_for("catalog", 1), None, "unlisted ⇒ replicated");
    }

    #[test]
    fn query_routing_prunes_by_predicate() {
        let m = map2();
        // Pinned range key → single shard.
        let q = Query::table("hle").filter(Expr::between("time_end", 0, 500));
        assert_eq!(m.route(&q), Route::Single(0));
        // Range spanning the cut → both.
        let q = Query::table("hle").filter(Expr::between("time_end", 500, 1500));
        assert_eq!(m.route(&q), Route::Fanout(vec![0, 1]));
        // Inequality prunes.
        let q = Query::table("hle").filter(Expr::cmp("time_end", CmpOp::Ge, 2000));
        assert_eq!(m.route(&q), Route::Single(1));
        // Unrelated predicate → full fanout.
        let q = Query::table("hle").filter(Expr::eq("owner", "sci"));
        assert_eq!(m.route(&q), Route::Fanout(vec![0, 1]));
        // Replicated table.
        assert_eq!(m.route(&Query::table("catalog")), Route::Replicated);
        // Hash equality pins.
        let id = 77;
        let q = Query::table("loc_item").filter(Expr::eq("item_id", id));
        assert_eq!(m.route(&q), Route::Single(m.shard_for("loc_item", id).unwrap()));
    }

    #[test]
    fn contradictory_pins_degenerate_to_one_shard() {
        let m = map2();
        let q = Query::table("hle").filter(
            Expr::cmp("time_end", CmpOp::Le, 10).and(Expr::cmp("time_end", CmpOp::Ge, 5000)),
        );
        assert!(matches!(m.route(&q), Route::Single(_)));
    }

    #[test]
    fn reassign_bumps_epoch_and_moves_the_part() {
        let m = map2();
        let part = m.part_for("hle", 5000).unwrap();
        assert_eq!(m.assignment("hle", part), Some(1));
        let next = m.reassign("hle", part, 0);
        assert_eq!(next.epoch, m.epoch + 1);
        assert_eq!(next.assignment("hle", part), Some(0));
        assert_eq!(next.shard_for("hle", 5000), Some(0));
    }

    #[test]
    fn handle_install_is_monotone() {
        let h = ShardMapHandle::new(map2());
        assert_eq!(h.epoch(), 1);
        assert!(!h.install(map2()), "equal epoch must not install");
        let newer = map2().reassign("hle", 0, 1);
        assert!(h.install(newer));
        assert_eq!(h.epoch(), 2);
        assert!(!h.install(map2()), "older epoch must not install");
    }

    #[test]
    fn aggregate_plan_decomposes_avg_and_dedups_partials() {
        let q = Query::table("hle")
            .group_by("event_type")
            .aggregate(AggFunc::Avg("peak_rate".into()))
            .aggregate(AggFunc::Sum("peak_rate".into()))
            .aggregate(AggFunc::CountStar);
        let plan = FanoutPlan::new(&q);
        // AVG → SUM+COUNT; the explicit SUM reuses the same partial.
        assert_eq!(
            plan.pushed().aggregates,
            vec![
                AggFunc::Sum("peak_rate".into()),
                AggFunc::Count("peak_rate".into()),
                AggFunc::CountStar,
            ]
        );
        assert!(plan.pushed().order_by.is_empty());
        assert!(plan.pushed().limit.is_none());
    }

    #[test]
    fn row_plan_pushes_window_and_widens_projection() {
        let q = Query::table("hle")
            .select(&["id", "owner"])
            .order_by("time_start", OrderDir::Desc)
            .limit(10)
            .offset(5);
        let plan = FanoutPlan::new(&q);
        assert_eq!(plan.pushed().limit, Some(15), "offset+limit pushes");
        assert_eq!(plan.pushed().offset, None);
        assert_eq!(
            plan.pushed().projection,
            Projection::Columns(vec!["id".into(), "owner".into(), "time_start".into()]),
        );
        // Merge strips the carrier column again.
        let part = QueryResult {
            columns: vec!["id".into(), "owner".into(), "time_start".into()],
            rows: vec![
                vec![Value::Int(1), Value::Text("a".into()), Value::Int(900)],
                vec![Value::Int(2), Value::Text("b".into()), Value::Int(300)],
            ],
            stats: ExecStats {
                rows_scanned: 2,
                rows_returned: 2,
                rows_sorted: 2,
                access: AccessPath::FullScan,
            },
        };
        let merged = plan.merge(vec![part]).unwrap();
        assert_eq!(merged.columns, vec!["id".to_string(), "owner".to_string()]);
    }

    #[test]
    fn merge_heap_interleaves_sorted_parts() {
        let q = Query::table("hle").order_by("id", OrderDir::Asc);
        let plan = FanoutPlan::new(&q);
        let mk = |ids: &[i64]| QueryResult {
            columns: vec!["id".into()],
            rows: ids.iter().map(|&i| vec![Value::Int(i)]).collect(),
            stats: ExecStats {
                rows_scanned: ids.len(),
                rows_returned: ids.len(),
                rows_sorted: 0,
                access: AccessPath::FullScan,
            },
        };
        let merged = plan.merge(vec![mk(&[1, 4, 9]), mk(&[2, 3, 10]), mk(&[5])]).unwrap();
        let got: Vec<i64> = merged.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 9, 10]);
        assert_eq!(merged.stats.rows_scanned, 7);
    }

    #[test]
    fn empty_ungrouped_aggregate_merges_to_one_zero_row() {
        let q = Query::table("hle")
            .aggregate(AggFunc::CountStar)
            .aggregate(AggFunc::Sum("n_photons".into()))
            .aggregate(AggFunc::Avg("n_photons".into()));
        let plan = FanoutPlan::new(&q);
        let empty_part = QueryResult {
            columns: vec![
                "COUNT(*)".into(),
                "SUM(n_photons)".into(),
                "COUNT(n_photons)".into(),
            ],
            rows: vec![vec![Value::Int(0), Value::Null, Value::Int(0)]],
            stats: ExecStats {
                rows_scanned: 0,
                rows_returned: 1,
                rows_sorted: 0,
                access: AccessPath::FullScan,
            },
        };
        let merged = plan.merge(vec![empty_part.clone(), empty_part]).unwrap();
        assert_eq!(merged.rows.len(), 1);
        assert_eq!(
            merged.rows[0],
            vec![Value::Int(0), Value::Null, Value::Null]
        );
        assert_eq!(
            merged.columns,
            vec![
                "COUNT(*)".to_string(),
                "SUM(n_photons)".to_string(),
                "AVG(n_photons)".to_string()
            ]
        );
    }
}
