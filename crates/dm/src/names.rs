//! Dynamic name mapping (§4.3).
//!
//! "Information is located by constructing a name that refers to the data
//! ... Each name has the form: `[type] [root] [path] [item id]`, each one of
//! these elements being determined dynamically for every request." The cost
//! is "two extra database queries on an indexed field" — `loc_entry` by
//! `item_id`, then `loc_archive` by `archive_id` — and the payoff is that
//! administrators "can install or repair disks, reorganize the data, or
//! move data from disk to tapes by simply changing tuples in the location
//! table", at run time, without touching domain tuples.

use crate::error::{DmError, DmResult};
use crate::io::DmIo;
use hedc_metadb::{Expr, Query, Value};
use std::collections::HashMap;

/// The three name types of §4.3. Serializable so batched resolutions can
/// cross the `hedc-net` wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NameType {
    /// Local storage location (archive + path).
    File,
    /// A tuple identifier (DBMS-location independent).
    Tuple,
    /// A download URL.
    Url,
}

impl NameType {
    /// Stored representation.
    pub fn as_str(self) -> &'static str {
        match self {
            NameType::File => "file",
            NameType::Tuple => "tuple",
            NameType::Url => "url",
        }
    }

    /// Parse the stored representation back.
    pub fn parse(s: &str) -> Option<NameType> {
        match s {
            "file" => Some(NameType::File),
            "tuple" => Some(NameType::Tuple),
            "url" => Some(NameType::Url),
            _ => None,
        }
    }
}

/// A fully constructed name.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResolvedName {
    /// Location-table entry id.
    pub entry_id: i64,
    /// Name type.
    pub name_type: NameType,
    /// Archive holding the bytes.
    pub archive_id: u32,
    /// Path *within* the archive (what `FileStore::fetch` takes): the
    /// archive's current prefix joined with `entry_path`.
    pub archive_path: String,
    /// The entry-relative path as stored in `loc_entry.path` (what UPDATEs
    /// of the location tables must use).
    pub entry_path: String,
    /// The constructed `[type]:[root]/[prefix]/[path]#[item]` name.
    pub full_name: String,
    /// Download URL, when the archive publishes one.
    pub url: Option<String>,
    /// Stored size in bytes.
    pub size: u64,
    /// Entry role (`data`, `image`, `log`, `params`, ...).
    pub role: String,
    /// Access transformations registered for the entry (e.g. `gunzip`).
    pub transforms: Vec<String>,
}

/// A cached resolution result. Newtype over the `Vec` because
/// `CacheValue` and `Vec` are both foreign to this crate, so the
/// orphan rule (E0117) forbids implementing the trait directly on
/// `Vec<ResolvedName>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedSet(pub Vec<ResolvedName>);

impl hedc_cache::CacheValue for ResolvedSet {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .0
                .iter()
                .map(|n| {
                    std::mem::size_of::<ResolvedName>()
                        + n.archive_path.capacity()
                        + n.entry_path.capacity()
                        + n.full_name.capacity()
                        + n.url.as_ref().map_or(0, String::capacity)
                        + n.role.capacity()
                        + n.transforms
                            .iter()
                            .map(|t| std::mem::size_of::<String>() + t.capacity())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Name-mapping services over the I/O layer.
pub struct Names<'a> {
    io: &'a DmIo,
}

impl<'a> Names<'a> {
    /// Wrap the I/O layer.
    pub fn new(io: &'a DmIo) -> Self {
        Names { io }
    }

    /// Register an item (the anchor domain tuples reference).
    pub fn new_item(&self) -> DmResult<i64> {
        let item_id = self.io.next_id();
        let ts = self.io.clock.now_ms();
        self.io
            .insert("loc_item", vec![Value::Int(item_id), Value::Int(ts as i64)])?;
        Ok(item_id)
    }

    /// Ensure an archive row exists in `loc_archive`.
    pub fn register_archive(
        &self,
        archive_id: u32,
        archive_type: &str,
        path_prefix: &str,
        url_base: Option<&str>,
    ) -> DmResult<()> {
        self.io.insert(
            "loc_archive",
            vec![
                Value::Int(i64::from(archive_id)),
                Value::Text(archive_type.to_string()),
                Value::Text(path_prefix.to_string()),
                url_base
                    .map(|u| Value::Text(u.to_string()))
                    .unwrap_or(Value::Null),
                Value::Bool(true),
            ],
        )?;
        Ok(())
    }

    /// Attach a named resource to an item.
    #[allow(clippy::too_many_arguments)] // mirrors the loc_entry row
    pub fn attach(
        &self,
        item_id: i64,
        name_type: NameType,
        archive_id: u32,
        path: &str,
        size: u64,
        checksum: Option<u32>,
        role: &str,
    ) -> DmResult<i64> {
        let entry_id = self.io.next_id();
        self.io.insert(
            "loc_entry",
            vec![
                Value::Int(entry_id),
                Value::Int(item_id),
                Value::Text(name_type.as_str().to_string()),
                Value::Int(i64::from(archive_id)),
                Value::Text(path.to_string()),
                Value::Int(size as i64),
                checksum
                    .map(|c| Value::Int(i64::from(c)))
                    .unwrap_or(Value::Null),
                Value::Text(role.to_string()),
            ],
        )?;
        Ok(entry_id)
    }

    /// Register an access transformation for an entry.
    pub fn add_transform(&self, entry_id: i64, transform: &str) -> DmResult<()> {
        let id = self.io.next_id();
        self.io.insert(
            "loc_transform",
            vec![
                Value::Int(id),
                Value::Int(entry_id),
                Value::Text(transform.to_string()),
            ],
        )?;
        Ok(())
    }

    /// The archive's current path prefix (for writers: physical stores must
    /// happen at [`Names::physical_path`] so that later resolution — which
    /// joins the prefix — finds the bytes).
    pub fn archive_prefix(&self, archive_id: u32) -> DmResult<String> {
        let arch = self.io.query(
            &Query::table("loc_archive").filter(Expr::eq("archive_id", i64::from(archive_id))),
        )?;
        let row = arch.rows.first().ok_or(DmError::NotFound {
            entity: "archive",
            id: i64::from(archive_id),
        })?;
        Ok(row[2].as_text().unwrap_or("").to_string())
    }

    /// Join an entry-relative path with the archive's current prefix.
    pub fn physical_path(&self, archive_id: u32, entry_path: &str) -> DmResult<String> {
        let prefix = self.archive_prefix(archive_id)?;
        Ok(if prefix.is_empty() {
            entry_path.to_string()
        } else {
            format!("{prefix}/{entry_path}")
        })
    }

    /// Construct all names of one type for an item: the two indexed queries
    /// of §4.3 (plus one per entry for transforms, only when present). The
    /// end-to-end cost of the mapping — the price §4.3 pays for run-time
    /// relocatability — feeds the `dm.name_map` histogram.
    ///
    /// When the result cache is enabled, successful resolutions are cached
    /// against the generation counters of the three location tables, so a
    /// relocation (one location-table UPDATE) invalidates every affected
    /// name on its next lookup.
    pub fn resolve(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        let _span = hedc_obs::Span::child("dm.name_map");
        let started = std::time::Instant::now();
        let out = self.resolve_cached(item_id, want);
        hedc_obs::global()
            .histogram("dm.name_map")
            .record(started.elapsed());
        out
    }

    fn resolve_cached(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        let Some(caches) = self.io.caches() else {
            return self.resolve_inner(item_id, want);
        };
        let key = format!("names:{}:{item_id}", want.as_str());
        if let Some(hit) = caches.names.get(&key) {
            return Ok(hit.0);
        }
        // Snapshot before the read so a racing relocation leaves the
        // entry born-stale rather than silently live.
        let deps = caches
            .gens
            .snapshot(&["loc_entry", "loc_archive", "loc_transform"]);
        let out = self.resolve_inner(item_id, want);
        if let Ok(names) = &out {
            caches.names.put(&key, ResolvedSet(names.clone()), deps);
        }
        out
    }

    fn resolve_inner(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        // Query 1: entries by item id (indexed on item_id).
        let entries = self
            .io
            .query(&Query::table("loc_entry").filter(Expr::eq("item_id", item_id)))?;
        let mut out = Vec::new();
        for row in &entries.rows {
            let entry_id = row[0].as_int().expect("entry id");
            let name_type = NameType::parse(row[2].as_text().unwrap_or(""))
                .ok_or_else(|| DmError::Integrity(format!("bad name_type in entry {entry_id}")))?;
            if name_type != want {
                continue;
            }
            let archive_id = row[3].as_int().expect("archive id") as u32;
            let path = row[4].as_text().unwrap_or("").to_string();
            let size = row[5].as_int().unwrap_or(0) as u64;
            let role = row[7].as_text().unwrap_or("data").to_string();

            // Query 2: archive type + current path prefix (indexed pk).
            let arch = self.io.query(
                &Query::table("loc_archive").filter(Expr::eq("archive_id", i64::from(archive_id))),
            )?;
            let arch_row = arch.rows.first().ok_or(DmError::NotFound {
                entity: "archive",
                id: i64::from(archive_id),
            })?;
            let prefix = arch_row[2].as_text().unwrap_or("").to_string();
            let url_base = arch_row[3].as_text().map(str::to_string);
            let online = arch_row[4].as_bool().unwrap_or(false);
            if !online {
                return Err(DmError::Fs(hedc_filestore::FsError::Offline(archive_id)));
            }

            let archive_path = if prefix.is_empty() {
                path.clone()
            } else {
                format!("{prefix}/{path}")
            };
            let full_name = format!(
                "{}:{}/{}#{}",
                want.as_str(),
                self.io.name_root(),
                archive_path,
                item_id
            );
            let url = url_base.map(|b| format!("{b}/{archive_path}"));

            let transforms = {
                let t = self
                    .io
                    .query(&Query::table("loc_transform").filter(Expr::eq("entry_id", entry_id)))?;
                t.rows
                    .iter()
                    .map(|r| r[2].as_text().unwrap_or("").to_string())
                    .collect()
            };

            out.push(ResolvedName {
                entry_id,
                name_type,
                archive_id,
                entry_path: path,
                archive_path,
                full_name,
                url,
                size,
                role,
                transforms,
            });
        }
        Ok(out)
    }

    /// Construct names for *many* items in one pass — the batched hot
    /// path. A browse page of N items pays §4.3's "two extra database
    /// queries" **per batch** instead of per item: one `IN`-list probe
    /// over the `loc_entry` item index, one over the `loc_archive`
    /// primary key (plus one over `loc_transform` for access
    /// transformations), then a per-item stitch. Results come back in
    /// `item_ids` order, one per input, with per-item error isolation:
    /// an item whose entries reference a missing or offline archive
    /// fails alone; its neighbours still resolve.
    ///
    /// Cache interaction is multi-get/multi-fill: warm items are served
    /// without touching the database, only the misses go into the batched
    /// queries, and all fills validate against one generation snapshot
    /// taken before the batched read (per-batch generation check — a
    /// racing relocation leaves the whole batch born-stale).
    pub fn resolve_batch(
        &self,
        item_ids: &[i64],
        want: NameType,
    ) -> Vec<DmResult<Vec<ResolvedName>>> {
        let _span = hedc_obs::Span::child("dm.name_map.batch");
        let started = std::time::Instant::now();
        let out = self.resolve_batch_cached(item_ids, want);
        hedc_obs::global()
            .histogram("dm.name_map.batch")
            .record(started.elapsed());
        out
    }

    fn resolve_batch_cached(
        &self,
        item_ids: &[i64],
        want: NameType,
    ) -> Vec<DmResult<Vec<ResolvedName>>> {
        let Some(caches) = self.io.caches() else {
            return self.resolve_batch_inner(item_ids, want);
        };
        let keys: Vec<String> = item_ids
            .iter()
            .map(|id| format!("names:{}:{id}", want.as_str()))
            .collect();
        let mut out: Vec<Option<DmResult<Vec<ResolvedName>>>> = caches
            .names
            .get_many(&keys)
            .into_iter()
            .map(|hit| hit.map(|set| Ok(set.0)))
            .collect();
        let miss_idx: Vec<usize> = (0..out.len()).filter(|&i| out[i].is_none()).collect();
        if !miss_idx.is_empty() {
            let miss_ids: Vec<i64> = miss_idx.iter().map(|&i| item_ids[i]).collect();
            // Snapshot before the batched read so a racing relocation
            // leaves every fill of this batch born-stale, never live.
            let deps = caches
                .gens
                .snapshot(&["loc_entry", "loc_archive", "loc_transform"]);
            let resolved = self.resolve_batch_inner(&miss_ids, want);
            let fills: Vec<(String, ResolvedSet)> = miss_idx
                .iter()
                .zip(&resolved)
                .filter_map(|(&i, r)| {
                    r.as_ref()
                        .ok()
                        .map(|names| (keys[i].clone(), ResolvedSet(names.clone())))
                })
                .collect();
            caches.names.put_many(fills, &deps);
            for (&i, r) in miss_idx.iter().zip(resolved) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every batch slot resolved"))
            .collect()
    }

    fn resolve_batch_inner(
        &self,
        item_ids: &[i64],
        want: NameType,
    ) -> Vec<DmResult<Vec<ResolvedName>>> {
        if item_ids.is_empty() {
            return Vec::new();
        }
        // Batched query 1: every location entry for the whole item set —
        // one multi-point probe over the loc_entry item_id index.
        let entries = match self.io.query(
            &Query::table("loc_entry").filter(Expr::in_list("item_id", item_ids.iter().copied())),
        ) {
            Ok(r) => r,
            Err(e) => return item_ids.iter().map(|_| Err(e.clone())).collect(),
        };
        let mut rows_by_item: HashMap<i64, Vec<&Vec<Value>>> = HashMap::new();
        let mut archive_ids: Vec<i64> = Vec::new();
        let mut entry_ids: Vec<i64> = Vec::new();
        for row in &entries.rows {
            let item = row[1].as_int().expect("item id");
            if NameType::parse(row[2].as_text().unwrap_or("")) == Some(want) {
                archive_ids.push(row[3].as_int().expect("archive id"));
                entry_ids.push(row[0].as_int().expect("entry id"));
            }
            rows_by_item.entry(item).or_default().push(row);
        }
        archive_ids.sort_unstable();
        archive_ids.dedup();

        // Batched query 2: every referenced archive, one multi-point probe
        // on the loc_archive primary key.
        let archive_rows = if archive_ids.is_empty() {
            Vec::new()
        } else {
            match self.io.query(
                &Query::table("loc_archive").filter(Expr::in_list("archive_id", archive_ids)),
            ) {
                Ok(r) => r.rows,
                Err(e) => return item_ids.iter().map(|_| Err(e.clone())).collect(),
            }
        };
        let archive_by_id: HashMap<i64, &Vec<Value>> = archive_rows
            .iter()
            .map(|row| (row[0].as_int().expect("archive id"), row))
            .collect();

        // Batched query 3 (the per-entry transform lookups of the single-item
        // path, collapsed): all transforms for the wanted entries.
        let mut transforms_by_entry: HashMap<i64, Vec<String>> = HashMap::new();
        if !entry_ids.is_empty() {
            let t = match self
                .io
                .query(&Query::table("loc_transform").filter(Expr::in_list("entry_id", entry_ids)))
            {
                Ok(r) => r,
                Err(e) => return item_ids.iter().map(|_| Err(e.clone())).collect(),
            };
            for row in &t.rows {
                transforms_by_entry
                    .entry(row[1].as_int().expect("entry id"))
                    .or_default()
                    .push(row[2].as_text().unwrap_or("").to_string());
            }
        }

        // Stitch: per item, the same construction (and the same error
        // semantics) as the single-item `resolve_inner`, from the maps.
        let build = |item_id: i64| -> DmResult<Vec<ResolvedName>> {
            let Some(rows) = rows_by_item.get(&item_id) else {
                return Ok(Vec::new());
            };
            let mut names = Vec::new();
            for row in rows {
                let entry_id = row[0].as_int().expect("entry id");
                let name_type =
                    NameType::parse(row[2].as_text().unwrap_or("")).ok_or_else(|| {
                        DmError::Integrity(format!("bad name_type in entry {entry_id}"))
                    })?;
                if name_type != want {
                    continue;
                }
                let archive_id = row[3].as_int().expect("archive id") as u32;
                let path = row[4].as_text().unwrap_or("").to_string();
                let size = row[5].as_int().unwrap_or(0) as u64;
                let role = row[7].as_text().unwrap_or("data").to_string();

                let arch_row =
                    archive_by_id
                        .get(&i64::from(archive_id))
                        .ok_or(DmError::NotFound {
                            entity: "archive",
                            id: i64::from(archive_id),
                        })?;
                let prefix = arch_row[2].as_text().unwrap_or("").to_string();
                let url_base = arch_row[3].as_text().map(str::to_string);
                let online = arch_row[4].as_bool().unwrap_or(false);
                if !online {
                    return Err(DmError::Fs(hedc_filestore::FsError::Offline(archive_id)));
                }

                let archive_path = if prefix.is_empty() {
                    path.clone()
                } else {
                    format!("{prefix}/{path}")
                };
                let full_name = format!(
                    "{}:{}/{}#{}",
                    want.as_str(),
                    self.io.name_root(),
                    archive_path,
                    item_id
                );
                let url = url_base.map(|b| format!("{b}/{archive_path}"));

                names.push(ResolvedName {
                    entry_id,
                    name_type,
                    archive_id,
                    entry_path: path,
                    archive_path,
                    full_name,
                    url,
                    size,
                    role,
                    transforms: transforms_by_entry
                        .get(&entry_id)
                        .cloned()
                        .unwrap_or_default(),
                });
            }
            Ok(names)
        };
        item_ids.iter().map(|&id| build(id)).collect()
    }

    /// Fetch an item's primary data file through the name mapping — the only
    /// sanctioned way from metadata to bytes (§4.1: data "is only accessible
    /// through the meta data").
    pub fn fetch_data(&self, item_id: i64) -> DmResult<Vec<u8>> {
        let names = self.resolve(item_id, NameType::File)?;
        let primary = names
            .iter()
            .find(|n| n.role == "data")
            .or_else(|| names.first())
            .ok_or(DmError::NotFound {
                entity: "file for item",
                id: item_id,
            })?;
        Ok(self
            .io
            .files
            .fetch(primary.archive_id, &primary.archive_path)?)
    }

    /// Run-time relocation, variant A (§4.3): change an archive's path
    /// prefix. One UPDATE on the location tables; no domain tuples touched.
    pub fn set_archive_prefix(&self, archive_id: u32, new_prefix: &str) -> DmResult<usize> {
        self.io.execute(hedc_metadb::Statement::Update {
            table: "loc_archive".into(),
            sets: vec![(
                "path_prefix".into(),
                Expr::Literal(Value::Text(new_prefix.to_string())),
            )],
            filter: Some(Expr::eq("archive_id", i64::from(archive_id))),
        })
    }

    /// Run-time relocation, variant B: point entries at a different archive
    /// after their files were migrated (`hedc_filestore::migrate_batch`).
    pub fn repoint_entries(
        &self,
        from_archive: u32,
        to_archive: u32,
        paths: &[String],
    ) -> DmResult<usize> {
        let mut moved = 0usize;
        for path in paths {
            moved += self.io.execute(hedc_metadb::Statement::Update {
                table: "loc_entry".into(),
                sets: vec![(
                    "archive_id".into(),
                    Expr::Literal(Value::Int(i64::from(to_archive))),
                )],
                filter: Some(
                    Expr::eq("archive_id", i64::from(from_archive))
                        .and(Expr::eq("path", path.as_str())),
                ),
            })?;
        }
        Ok(moved)
    }

    /// Mark an archive offline/online in the location tables.
    pub fn set_archive_online(&self, archive_id: u32, online: bool) -> DmResult<usize> {
        self.io.execute(hedc_metadb::Statement::Update {
            table: "loc_archive".into(),
            sets: vec![("online".into(), Expr::Literal(Value::Bool(online)))],
            filter: Some(Expr::eq("archive_id", i64::from(archive_id))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Clock, IoConfig, Partitioning};
    use crate::schema;
    use hedc_filestore::{Archive, ArchiveTier, FileStore};
    use hedc_metadb::Database;
    use std::sync::Arc;

    fn io() -> DmIo {
        let db = Database::in_memory("names-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let files = FileStore::new();
        files.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 20,
        ));
        files.register(Archive::in_memory(
            2,
            "tape",
            ArchiveTier::TapeVault,
            1 << 20,
        ));
        DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(files),
            Clock::starting_at(0),
            &IoConfig::default(),
        )
    }

    #[test]
    fn attach_and_resolve_file_name() {
        let io = io();
        let names = Names::new(&io);
        names
            .register_archive(1, "disk", "online", Some("http://hedc.ethz.ch/data"))
            .unwrap();
        let item = names.new_item().unwrap();
        io.files.store(1, "online/raw/u1.fits", b"bytes").unwrap();
        names
            .attach(item, NameType::File, 1, "raw/u1.fits", 5, Some(7), "data")
            .unwrap();
        let resolved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(resolved.len(), 1);
        let n = &resolved[0];
        assert_eq!(n.archive_path, "online/raw/u1.fits");
        assert_eq!(n.full_name, format!("file:hedc/online/raw/u1.fits#{item}"));
        assert_eq!(
            n.url.as_deref(),
            Some("http://hedc.ethz.ch/data/online/raw/u1.fits")
        );
        // And the bytes are reachable only through this mapping.
        assert_eq!(names.fetch_data(item).unwrap(), b"bytes");
    }

    #[test]
    fn relocation_changes_only_location_tables() {
        let io = io();
        let names = Names::new(&io);
        names.register_archive(1, "disk", "v1", None).unwrap();
        let item = names.new_item().unwrap();
        io.files.store(1, "v1/raw/u1.fits", b"x").unwrap();
        names
            .attach(item, NameType::File, 1, "raw/u1.fits", 1, None, "data")
            .unwrap();
        // Administrator moves the archive root: one location-table update.
        io.files.store(1, "v2/raw/u1.fits", b"x").unwrap();
        assert_eq!(names.set_archive_prefix(1, "v2").unwrap(), 1);
        let resolved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(resolved[0].archive_path, "v2/raw/u1.fits");
        assert_eq!(names.fetch_data(item).unwrap(), b"x");
    }

    #[test]
    fn repointing_entries_after_migration() {
        let io = io();
        let names = Names::new(&io);
        names.register_archive(1, "disk", "", None).unwrap();
        names.register_archive(2, "tape", "", None).unwrap();
        let item = names.new_item().unwrap();
        io.files.store(1, "raw/u1.fits", b"payload").unwrap();
        names
            .attach(item, NameType::File, 1, "raw/u1.fits", 7, None, "data")
            .unwrap();
        // Migrate the file, then repoint.
        hedc_filestore::migrate_file(&io.files, 1, 2, "raw/u1.fits").unwrap();
        let n = names
            .repoint_entries(1, 2, &["raw/u1.fits".to_string()])
            .unwrap();
        assert_eq!(n, 1);
        let resolved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(resolved[0].archive_id, 2);
        assert_eq!(names.fetch_data(item).unwrap(), b"payload");
    }

    #[test]
    fn offline_archive_blocks_resolution() {
        let io = io();
        let names = Names::new(&io);
        names.register_archive(1, "disk", "", None).unwrap();
        let item = names.new_item().unwrap();
        names
            .attach(item, NameType::File, 1, "f", 0, None, "data")
            .unwrap();
        names.set_archive_online(1, false).unwrap();
        assert!(matches!(
            names.resolve(item, NameType::File),
            Err(DmError::Fs(hedc_filestore::FsError::Offline(1)))
        ));
        names.set_archive_online(1, true).unwrap();
        assert!(names.resolve(item, NameType::File).is_ok());
    }

    #[test]
    fn transforms_and_roles() {
        let io = io();
        let names = Names::new(&io);
        names.register_archive(1, "disk", "", None).unwrap();
        let item = names.new_item().unwrap();
        let entry = names
            .attach(item, NameType::File, 1, "u1.fits.gz", 10, None, "data")
            .unwrap();
        names.add_transform(entry, "gunzip").unwrap();
        names
            .attach(item, NameType::File, 1, "u1.log", 2, None, "log")
            .unwrap();
        let resolved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(resolved.len(), 2);
        let data = resolved.iter().find(|n| n.role == "data").unwrap();
        assert_eq!(data.transforms, vec!["gunzip"]);
        // Url resolution returns nothing: no url entries attached.
        assert!(names.resolve(item, NameType::Url).unwrap().is_empty());
    }

    #[test]
    fn cached_resolution_skips_database_until_relocation() {
        let db = Database::in_memory("names-cache-test");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let files = FileStore::new();
        files.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 20,
        ));
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(files),
            Clock::starting_at(0),
            &IoConfig {
                cache: Some(hedc_cache::CacheConfig::default()),
                ..IoConfig::default()
            },
        );
        let names = Names::new(&io);
        names.register_archive(1, "disk", "v1", None).unwrap();
        let item = names.new_item().unwrap();
        names
            .attach(item, NameType::File, 1, "raw/u1.fits", 1, None, "data")
            .unwrap();

        let first = names.resolve(item, NameType::File).unwrap();
        let before = io.db_for("loc_entry").stats();
        let second = names.resolve(item, NameType::File).unwrap();
        let delta = io.db_for("loc_entry").stats().since(&before);
        assert_eq!(first, second);
        assert_eq!(
            delta.queries, 0,
            "warm name resolution must not touch the database"
        );

        // A run-time relocation is one location-table UPDATE; the very next
        // resolve must observe it (no stale name served).
        names.set_archive_prefix(1, "v2").unwrap();
        let moved = names.resolve(item, NameType::File).unwrap();
        assert_eq!(moved[0].archive_path, "v2/raw/u1.fits");
    }

    #[test]
    fn batch_matches_per_item_resolution() {
        let io = io();
        let names = Names::new(&io);
        names
            .register_archive(1, "disk", "online", Some("http://hedc.ethz.ch/data"))
            .unwrap();
        let mut items = Vec::new();
        for i in 0..5 {
            let item = names.new_item().unwrap();
            let entry = names
                .attach(
                    item,
                    NameType::File,
                    1,
                    &format!("raw/u{i}.fits"),
                    10 + i,
                    None,
                    "data",
                )
                .unwrap();
            if i == 2 {
                names.add_transform(entry, "gunzip").unwrap();
            }
            items.push(item);
        }
        let no_entries = names.new_item().unwrap();
        items.push(no_entries);

        let batch = names.resolve_batch(&items, NameType::File);
        assert_eq!(batch.len(), items.len());
        for (item, got) in items.iter().zip(&batch) {
            let single = names.resolve(*item, NameType::File).unwrap();
            assert_eq!(got.as_ref().unwrap(), &single, "item {item}");
        }
        assert!(batch.last().unwrap().as_ref().unwrap().is_empty());
        assert_eq!(batch[2].as_ref().unwrap()[0].transforms, vec!["gunzip"]);
    }

    #[test]
    fn batch_costs_constant_queries_regardless_of_width() {
        let io = io();
        let names = Names::new(&io);
        names.register_archive(1, "disk", "", None).unwrap();
        let items: Vec<i64> = (0..8)
            .map(|i| {
                let item = names.new_item().unwrap();
                names
                    .attach(item, NameType::File, 1, &format!("u{i}"), 1, None, "data")
                    .unwrap();
                item
            })
            .collect();
        let before = io.db_for("loc_entry").stats();
        let batch = names.resolve_batch(&items, NameType::File);
        let delta = io.db_for("loc_entry").stats().since(&before);
        assert!(batch.iter().all(Result::is_ok));
        assert_eq!(
            delta.queries, 3,
            "8-item batch must cost the entry + archive + transform queries, not 8×3"
        );
    }

    #[test]
    fn batch_isolates_per_item_failures() {
        let io = io();
        let names = Names::new(&io);
        names.register_archive(1, "disk", "", None).unwrap();
        names.register_archive(2, "tape", "", None).unwrap();
        let ok_item = names.new_item().unwrap();
        names
            .attach(ok_item, NameType::File, 1, "a", 1, None, "data")
            .unwrap();
        let offline_item = names.new_item().unwrap();
        names
            .attach(offline_item, NameType::File, 2, "b", 1, None, "data")
            .unwrap();
        let orphan_item = names.new_item().unwrap();
        names
            .attach(orphan_item, NameType::File, 42, "c", 1, None, "data")
            .unwrap();
        names.set_archive_online(2, false).unwrap();

        let batch = names.resolve_batch(&[ok_item, offline_item, orphan_item], NameType::File);
        assert_eq!(batch[0].as_ref().unwrap().len(), 1, "healthy item resolves");
        assert!(matches!(
            batch[1],
            Err(DmError::Fs(hedc_filestore::FsError::Offline(2)))
        ));
        assert!(matches!(batch[2], Err(DmError::NotFound { .. })));
    }

    #[test]
    fn batch_serves_warm_items_from_cache_and_queries_only_misses() {
        let db = Database::in_memory("names-batch-cache");
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
        let files = FileStore::new();
        files.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 20,
        ));
        let io = DmIo::new(
            vec![db],
            Partitioning::single(),
            Arc::new(files),
            Clock::starting_at(0),
            &IoConfig {
                cache: Some(hedc_cache::CacheConfig::default()),
                ..IoConfig::default()
            },
        );
        let names = Names::new(&io);
        names.register_archive(1, "disk", "v1", None).unwrap();
        let items: Vec<i64> = (0..4)
            .map(|i| {
                let item = names.new_item().unwrap();
                names
                    .attach(item, NameType::File, 1, &format!("u{i}"), 1, None, "data")
                    .unwrap();
                item
            })
            .collect();

        // Partial warmth: warm half the set first, then batch all of it —
        // the warm half is served by cache multi-get, the cold half by one
        // batched miss pass (3 queries), never one query set per item.
        let head = names.resolve_batch(&items[..2], NameType::File);
        let before = io.db_for("loc_entry").stats();
        let full = names.resolve_batch(&items, NameType::File);
        let delta = io.db_for("loc_entry").stats().since(&before);
        assert_eq!(delta.queries, 3, "misses resolve in one batched pass");
        for (c, w) in head.iter().zip(&full) {
            assert_eq!(c.as_ref().unwrap(), w.as_ref().unwrap());
        }

        // Fully warm: zero database work.
        let before = io.db_for("loc_entry").stats();
        let warm = names.resolve_batch(&items, NameType::File);
        let delta = io.db_for("loc_entry").stats().since(&before);
        assert_eq!(delta.queries, 0, "fully warm batch must not touch the db");
        for (c, w) in full.iter().zip(&warm) {
            assert_eq!(c.as_ref().unwrap(), w.as_ref().unwrap());
        }

        // A relocation invalidates every cached fill of the batch at once.
        names.set_archive_prefix(1, "v2").unwrap();
        let moved = names.resolve_batch(&items, NameType::File);
        for r in &moved {
            assert!(r.as_ref().unwrap()[0].archive_path.starts_with("v2/"));
        }
    }

    #[test]
    fn missing_archive_row_is_integrity_error() {
        let io = io();
        let names = Names::new(&io);
        let item = names.new_item().unwrap();
        names
            .attach(item, NameType::File, 42, "f", 0, None, "data")
            .unwrap();
        assert!(matches!(
            names.resolve(item, NameType::File),
            Err(DmError::NotFound { .. })
        ));
    }
}
