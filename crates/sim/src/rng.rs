//! Crate-private deterministic RNG: SplitMix64, the same generator the DM
//! test seeds use, so every simulated stream replays from a single `u64`.

/// Advance `state` and return the next SplitMix64 draw.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unit-interval sample from a SplitMix64 draw.
pub(crate) fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}
