//! Calibration constants for the testbed simulator.
//!
//! Every constant below is traceable to a number in the paper's §7–§8 (or
//! fitted to one and documented as such). The experiments reproduce the
//! *shape* of the published results — who saturates, where degradation
//! starts, which configuration wins by what factor — not the absolute
//! timings of 2002 hardware.

// ---------------------------------------------------------------------------
// Browse workload (§7)
// ---------------------------------------------------------------------------

/// DB queries issued per browse request (§7.2: "a request generates seven
/// DM queries").
pub const QUERIES_PER_REQUEST: f64 = 7.0;

/// DB queries per browse request once name mapping is batched. The §7.2
/// request's seven queries decompose as one content query plus three
/// browsed items × the "two extra indexed queries" of §4.3 name mapping;
/// a multi-item `IN`-list resolve collapses the per-item pairs into one
/// pair per request: 1 + 2 = 3.
pub const BATCHED_QUERIES_PER_REQUEST: f64 = 3.0;

/// Peak database throughput, queries/second (§7.3: "these 18 requests
/// result in around 120 HEDC database queries, the peak performance of the
/// database setup"; 18 × 7 = 126).
pub const DB_PEAK_QPS: f64 = 126.0;

/// DB service demand per browse request, seconds (7 queries at peak rate).
pub const DB_DEMAND_S: f64 = QUERIES_PER_REQUEST / DB_PEAK_QPS;

/// Middle-tier CPU cores per node (§7.1: "dual Pentium III" web servers).
pub const MT_CORES: f64 = 2.0;

/// Base middle-tier CPU demand per request, cpu-seconds. Fitted so a single
/// uncontended node saturates at ≈ 17 rps (§7.3: "at 16 test clients ...
/// roughly one complex Web request per second per client", i.e. ≈ 16 rps
/// at the observed peak): 2 cores / 0.118 s ≈ 16.9 rps.
pub const MT_DEMAND_S: f64 = 0.118;

/// Contention model for the middle tier: beyond `MT_COMFORT_CLIENTS`
/// simultaneous clients per node, the per-request CPU demand inflates by a
/// saturating factor
/// `m(c) = 1 + MT_CONTENTION_A·x/(MT_CONTENTION_B + x)`, `x = c − comfort`.
///
/// §7.3 observes that the single-node slowdown from 16 rps (16 clients) to
/// ≈ 3 rps (96 clients) "is caused by the increased processing load of the
/// application logic", not the database. The two fitted constants pin
/// m(96 clients) ≈ 5.65 (throughput 3 rps) and keep 3 nodes × 32 clients
/// below the DB ceiling so Fig. 5 keeps rising through 5 nodes.
pub const MT_COMFORT_CLIENTS: f64 = 16.0;
/// Contention amplitude (fitted, see above).
pub const MT_CONTENTION_A: f64 = 6.11;
/// Contention half-saturation point in clients (fitted, see above).
pub const MT_CONTENTION_B: f64 = 25.06;

/// Middle-tier demand multiplier at `clients_per_node` concurrent clients.
pub fn mt_contention(clients_per_node: f64) -> f64 {
    let x = (clients_per_node - MT_COMFORT_CLIENTS).max(0.0);
    1.0 + MT_CONTENTION_A * x / (MT_CONTENTION_B + x)
}

/// Average HTML response size, bytes (§7.2).
pub const RESPONSE_HTML_BYTES: u64 = 12 * 1024;
/// Average embedded dynamic image payload, bytes (§7.2).
pub const RESPONSE_IMAGE_BYTES: u64 = 35 * 1024;
/// Tuples parsed per request (§7.2).
pub const TUPLES_PER_REQUEST: u64 = 80;

// ---------------------------------------------------------------------------
// Processing workload (§8)
// ---------------------------------------------------------------------------

/// Server CPU count (§8.1: "2×177 MHz SUN SPARC").
pub const SERVER_CPUS: f64 = 2.0;
/// Client CPU count (§8.1: "one 400 MHz Linux PC").
pub const CLIENT_CPUS: f64 = 1.0;
/// Client↔server HTTP bandwidth, bytes/second (§8.1: "2 MB/s").
pub const LINK_BPS: f64 = 2.0 * 1024.0 * 1024.0;

/// Imaging compute time on the server, s/request (§8.2: "about ... 60 s on
/// the server" per 800 KB input).
pub const IMG_SERVER_S: f64 = 60.0;
/// Imaging compute on the client (§8.2 "about 20 s"; 17 s fits the
/// measured C-configuration makespan of 2059 s once transfer and
/// coordination are charged separately).
pub const IMG_CLIENT_S: f64 = 17.0;
/// Imaging input bytes per request (§8.2: 800 KB).
pub const IMG_INPUT_BYTES: f64 = 800.0 * 1024.0;
/// Imaging request count (§8.2 / Table 2).
pub const IMG_REQUESTS: usize = 100;

/// Histogram compute on the server, s/request (§8.3: "5–7 s", midpoint).
pub const HIST_SERVER_S: f64 = 6.0;
/// Histogram compute on the client (§8.3: "2–3 s per 300 KB"; 2.2 s fits
/// the measured C makespans with coordination charged separately).
pub const HIST_CLIENT_S: f64 = 2.2;
/// Histogram input bytes per request (⅓ of a 1 MB file, §8.3 / Table 3).
pub const HIST_INPUT_BYTES: f64 = 341.0 * 1024.0;
/// Histogram request count (§8.3 / Table 3).
pub const HIST_REQUESTS: usize = 150;

/// DM interaction time per analysis, seconds: 3 queries + 2 edits (§8.2),
/// "the duration of query and edit operations is almost constant and equal
/// in all scenarios" (§8.4).
pub const DM_PER_JOB_S: f64 = 0.35;

/// Base per-job dispatch cost on a local (server) executor, seconds.
pub const DISPATCH_BASE_S: f64 = 0.05;

/// Extra per-cycle scheduling latency when more than one executor slot is
/// active, seconds. §8.4: "in scenarios with parallel computations of
/// analyses shorter than 5 s, the central scheduling in combination with
/// the fault tolerant protocol among the services becomes critical: jobs
/// are not scheduled timely to available resources". Fitted to the S(2)
/// histogram makespan (655 s ⇒ ≈ 2.3 s per slot cycle).
pub const DISPATCH_PARALLEL_S: f64 = 2.3;

/// Per-job coordination overhead for a *remote* (client) executor, seconds:
/// HTTP polling, staging negotiation, result upload handshake. Fitted to
/// the measured client histogram makespan (841 s) and consistent with the
/// client imaging makespan (2059 s).
pub const REMOTE_COORD_S: f64 = 3.2;

/// Fraction of remote coordination spent on the *server* CPU (the rest is
/// client-side waiting); drives the small server utilisation the paper
/// reports during client-only runs.
pub const REMOTE_COORD_SERVER_SHARE: f64 = 0.45;

/// Maximum requests simultaneously in the system (§8.1: "no more than 20
/// requests are in the system at any given time").
pub const MAX_IN_SYSTEM: usize = 20;

/// Total input volume per test series, bytes (§8.1: "50 MB of raw data").
pub const TOTAL_INPUT_BYTES: f64 = 50.0 * 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_ceiling_is_18_requests() {
        assert!((DB_PEAK_QPS / QUERIES_PER_REQUEST - 18.0).abs() < 0.01);
    }

    #[test]
    fn contention_shape() {
        assert_eq!(mt_contention(8.0), 1.0);
        assert_eq!(mt_contention(16.0), 1.0);
        // Fitted anchor: 96 clients on one node ⇒ ≈ 5.65.
        let m96 = mt_contention(96.0);
        assert!((m96 - 5.65).abs() < 0.1, "{m96}");
        // Monotone increasing.
        assert!(mt_contention(32.0) < mt_contention(48.0));
        assert!(mt_contention(48.0) < mt_contention(96.0));
        // Saturating: never exceeds 1 + A.
        assert!(mt_contention(1e9) < 1.0 + MT_CONTENTION_A + 1e-6);
    }

    #[test]
    fn single_node_peak_near_17_rps() {
        let peak = MT_CORES / MT_DEMAND_S;
        assert!((16.0..18.0).contains(&peak), "{peak}");
    }

    #[test]
    fn degraded_single_node_near_3_rps() {
        let t = MT_CORES / (MT_DEMAND_S * mt_contention(96.0));
        assert!((2.7..3.3).contains(&t), "{t}");
    }
}
