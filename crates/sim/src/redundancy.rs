//! The duplicate-heavy analysis request mix (§3.5 "avoid redundant
//! computation").
//!
//! HEDC's processing workload is not uniform over parameter space: a flare
//! makes the rounds, and many scientists ask for *the same* image or
//! histogram of it — same event, same window, same parameters. The paper's
//! answer is to recognize the repeat and serve the stored result instead of
//! recomputing. This module generates that request shape: a zipf-skewed
//! stream over a catalog of distinct analysis requests, where a handful of
//! hot requests dominate and a long tail appears once.
//!
//! Determinism: the stream derives from `seed` via SplitMix64, so a
//! workload replays exactly — the PL redundancy bench depends on this to
//! compare coalesce-on and coalesce-off runs over the *same* request
//! sequence.

use crate::rng::unit;

/// Configuration of a zipf-skewed request stream.
#[derive(Debug, Clone)]
pub struct ZipfConfig {
    /// Number of distinct requests in the catalog (zipf support size).
    pub keys: usize,
    /// Skew exponent `s`: rank-`k` probability ∝ `1 / k^s`. 0 is uniform;
    /// ~1 is the classic web-request skew.
    pub exponent: f64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            keys: 64,
            exponent: 1.1,
            seed: 0x51C0_FFEE,
        }
    }
}

/// A seeded zipf sampler over `0..keys`, by inverse-CDF lookup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    /// Build the sampler; `O(keys)` setup, `O(log keys)` per sample.
    pub fn new(cfg: &ZipfConfig) -> Zipf {
        assert!(cfg.keys > 0, "zipf needs a non-empty catalog");
        let mut cdf = Vec::with_capacity(cfg.keys);
        let mut total = 0.0;
        for k in 1..=cfg.keys {
            total += 1.0 / (k as f64).powf(cfg.exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf {
            cdf,
            state: cfg.seed ^ 0x21BF_5EED, // domain-separate from other users
        }
    }

    /// Draw the next key (0 is the hottest rank).
    pub fn sample(&mut self) -> usize {
        let u = unit(&mut self.state);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draw a whole stream of `n` keys.
    pub fn stream(&mut self, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// `requests / distinct`: how many submits each distinct analysis receives
/// on average — the redundancy a single-flight PL can eliminate.
pub fn duplication_factor(stream: &[usize]) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    let mut seen = stream.to_vec();
    seen.sort_unstable();
    seen.dedup();
    stream.len() as f64 / seen.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_the_seed() {
        let cfg = ZipfConfig::default();
        let a = Zipf::new(&cfg).stream(512);
        let b = Zipf::new(&cfg).stream(512);
        assert_eq!(a, b);
        let c = Zipf::new(&ZipfConfig { seed: 7, ..cfg }).stream(512);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_concentrates_on_hot_keys() {
        let stream = Zipf::new(&ZipfConfig::default()).stream(4096);
        let hot = stream.iter().filter(|&&k| k < 4).count();
        // At s=1.1 over 64 keys, the top 4 ranks carry well over a third of
        // the mass; uniform would give 1/16.
        assert!(
            hot as f64 > 0.35 * stream.len() as f64,
            "hot ranks carried only {hot}/{}",
            stream.len()
        );
        assert!(
            duplication_factor(&stream) > 10.0,
            "stream not duplicate-heavy"
        );
    }

    #[test]
    fn uniform_exponent_spreads_out() {
        let stream = Zipf::new(&ZipfConfig {
            exponent: 0.0,
            ..ZipfConfig::default()
        })
        .stream(4096);
        let hot = stream.iter().filter(|&&k| k < 4).count();
        // Uniform over 64 keys: top 4 carry ~1/16 of the mass.
        assert!((hot as f64) < 0.15 * stream.len() as f64);
    }
}
