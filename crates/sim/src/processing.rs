//! The processing experiments: Table 1 (§8).
//!
//! Requests flow through executor *slots* (concurrent analysis capacity on
//! the server and/or the processing client). Each job's slot cycle is
//! assembled from calibrated components: dispatch latency (inflated under
//! parallelism, §8.4), input transfer over the 2 MB/s link (client slots,
//! §8.1), the compute time itself (§8.2/§8.3), and the constant DM
//! interaction (§8.4). Admission keeps a bounded number of requests in the
//! system; the occupancy levels are taken from the paper's own sojourn
//! numbers via Little's law (see [`crate::calib`]).

use crate::calib;

/// Which §8 test series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// §8.2: CPU-bound imaging, 100 requests.
    Imaging,
    /// §8.3: I/O-bound histograms, 150 requests.
    Histogram,
}

impl Workload {
    /// Request count (Tables 2–3).
    pub fn requests(self) -> usize {
        match self {
            Workload::Imaging => calib::IMG_REQUESTS,
            Workload::Histogram => calib::HIST_REQUESTS,
        }
    }

    /// Compute seconds on a server slot.
    pub fn server_compute_s(self) -> f64 {
        match self {
            Workload::Imaging => calib::IMG_SERVER_S,
            Workload::Histogram => calib::HIST_SERVER_S,
        }
    }

    /// Compute seconds on the client.
    pub fn client_compute_s(self) -> f64 {
        match self {
            Workload::Imaging => calib::IMG_CLIENT_S,
            Workload::Histogram => calib::HIST_CLIENT_S,
        }
    }

    /// Input bytes per request.
    pub fn input_bytes(self) -> f64 {
        match self {
            Workload::Imaging => calib::IMG_INPUT_BYTES,
            Workload::Histogram => calib::HIST_INPUT_BYTES,
        }
    }

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Imaging => "imaging",
            Workload::Histogram => "histogram",
        }
    }
}

/// Where the analyses execute (the Table 1 column headings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcConfig {
    /// `S` with n concurrent analyses on the server.
    Server {
        /// Concurrent analyses.
        slots: usize,
    },
    /// `C`: one concurrent analysis on the processing client.
    Client {
        /// Input data pre-staged on the client's scratch space
        /// (the `C/Cached` column).
        cached: bool,
    },
    /// `S+C`: 2 concurrent on the server plus 1 on the client.
    ServerPlusClient,
}

impl ProcConfig {
    /// Column label as printed in Table 1.
    pub fn label(self) -> String {
        match self {
            ProcConfig::Server { slots } => format!("S({slots})"),
            ProcConfig::Client { cached: false } => "C".to_string(),
            ProcConfig::Client { cached: true } => "C/Cached".to_string(),
            ProcConfig::ServerPlusClient => "S+C".to_string(),
        }
    }

    /// Concurrency description ("2+1" style).
    pub fn concurrency(self) -> String {
        match self {
            ProcConfig::Server { slots } => slots.to_string(),
            ProcConfig::Client { .. } => "1".to_string(),
            ProcConfig::ServerPlusClient => "2+1".to_string(),
        }
    }

    fn slots(self) -> Vec<SlotKind> {
        match self {
            ProcConfig::Server { slots } => vec![SlotKind::Server; slots],
            ProcConfig::Client { cached } => vec![SlotKind::Client { cached }],
            ProcConfig::ServerPlusClient => vec![
                SlotKind::Server,
                SlotKind::Server,
                SlotKind::Client { cached: false },
            ],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotKind {
    Server,
    Client { cached: bool },
}

/// Result row of one Table 1 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingResult {
    /// The workload.
    pub workload: &'static str,
    /// Column label.
    pub config: String,
    /// Concurrency description.
    pub concurrent: String,
    /// Overall test duration, seconds.
    pub duration_s: f64,
    /// Data turnover extrapolated to GB/day (Table 1's metric:
    /// input volume / duration × 86400).
    pub turnover_gb_day: f64,
    /// Mean sojourn time, seconds.
    pub avg_sojourn_s: f64,
    /// Median sojourn time, seconds.
    pub p50_sojourn_s: f64,
    /// 95th-percentile sojourn time, seconds.
    pub p95_sojourn_s: f64,
    /// 99th-percentile sojourn time, seconds.
    pub p99_sojourn_s: f64,
    /// Server CPU, system share, percent of both CPUs.
    pub server_sys_pct: f64,
    /// Server CPU, user share, percent.
    pub server_usr_pct: f64,
    /// Client CPU, system share, percent (0 when no client participates).
    pub client_sys_pct: f64,
    /// Client CPU, user share, percent.
    pub client_usr_pct: f64,
    /// DM interactions: queries issued.
    pub queries: u64,
    /// DM interactions: edits issued.
    pub edits: u64,
    /// Total output bytes (GIF-equivalent products).
    pub output_bytes: u64,
}

/// OS overhead charged as system CPU, as a fraction of user CPU (process
/// accounting on the 2002 testbed showed a small constant sys component).
const SYS_FRACTION_OF_USR: f64 = 0.03;

/// Output product size per request, bytes (Tables 2–3: 100 GIFs = 5.5 MB
/// for imaging, 150 GIFs = 1.2 MB for histograms).
fn output_bytes_per_request(w: Workload) -> u64 {
    match w {
        Workload::Imaging => (5.5 * 1024.0 * 1024.0 / 100.0) as u64,
        Workload::Histogram => (1.2 * 1024.0 * 1024.0 / 150.0) as u64,
    }
}

/// Run one cell of Table 1.
pub fn run_processing(workload: Workload, config: ProcConfig) -> ProcessingResult {
    let slots = config.slots();
    let n_jobs = workload.requests();
    let parallel = slots.len() > 1;
    // §8.1: "no more than 20 requests are in the system at any given time".
    let window = calib::MAX_IN_SYSTEM;

    // Per-slot-kind cycle time and CPU attribution.
    let cycle = |kind: SlotKind| -> (f64, f64, f64, f64, f64) {
        // (cycle_s, server_usr, server_sys, client_usr, client_sys)
        let dm = calib::DM_PER_JOB_S;
        match kind {
            SlotKind::Server => {
                let dispatch = calib::DISPATCH_BASE_S
                    + if parallel {
                        calib::DISPATCH_PARALLEL_S
                    } else {
                        0.0
                    };
                let compute = workload.server_compute_s();
                (
                    dispatch + compute + dm,
                    compute,
                    dm + dispatch * 0.5,
                    0.0,
                    0.0,
                )
            }
            SlotKind::Client { cached } => {
                let transfer = if cached {
                    0.0
                } else {
                    workload.input_bytes() / calib::LINK_BPS
                };
                let dispatch = if parallel {
                    calib::DISPATCH_PARALLEL_S
                } else {
                    0.0
                };
                let compute = workload.client_compute_s();
                let coord = calib::REMOTE_COORD_S;
                (
                    dispatch + coord + transfer + compute + dm,
                    0.0,
                    dm + coord * calib::REMOTE_COORD_SERVER_SHARE,
                    compute,
                    coord * 0.1 + transfer * 0.1,
                )
            }
        }
    };

    // Greedy FIFO list scheduling with admission control: job j is admitted
    // once fewer than `window` admitted jobs remain incomplete, i.e. at the
    // (j − window + 1)-th earliest completion so far.
    let mut slot_free = vec![0.0f64; slots.len()];
    let mut completions: Vec<f64> = Vec::with_capacity(n_jobs);
    let mut sojourn_sum = 0.0f64;
    // Simulated sojourn distribution, seconds recorded as µs (same
    // convention as the browse simulator's response histogram).
    let sojourn_hist = hedc_obs::Histogram::new();
    let (mut susr, mut ssys, mut cusr, mut csys) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);

    for j in 0..n_jobs {
        let admitted = if j >= window {
            let mut sorted = completions.clone();
            sorted.sort_by(f64::total_cmp);
            sorted[j - window]
        } else {
            0.0
        };
        // Earliest-available slot (the paper's scheduler is equally naive
        // about heterogeneous executor speeds).
        let (slot_idx, &free) = slot_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one slot");
        let (dur, u_s, y_s, u_c, y_c) = cycle(slots[slot_idx]);
        let start = free.max(admitted);
        let done = start + dur;
        slot_free[slot_idx] = done;
        completions.push(done);
        sojourn_sum += done - admitted;
        sojourn_hist.record_us(((done - admitted) * 1e6) as u64);
        susr += u_s;
        ssys += y_s;
        cusr += u_c;
        csys += y_c;
    }
    let duration_s = completions.iter().fold(0.0f64, |a, &b| a.max(b));

    let has_client = slots.iter().any(|s| matches!(s, SlotKind::Client { .. }));
    let server_cpu_s = duration_s * calib::SERVER_CPUS;
    let client_cpu_s = duration_s * calib::CLIENT_CPUS;
    let server_usr_pct = susr / server_cpu_s * 100.0;
    let server_sys_pct = (ssys + susr * SYS_FRACTION_OF_USR) / server_cpu_s * 100.0;
    let (client_usr_pct, client_sys_pct) = if has_client {
        (
            cusr / client_cpu_s * 100.0,
            (csys + cusr * SYS_FRACTION_OF_USR) / client_cpu_s * 100.0,
        )
    } else {
        (0.0, 0.0)
    };

    let ssnap = sojourn_hist.snapshot();
    ProcessingResult {
        workload: workload.name(),
        config: config.label(),
        concurrent: config.concurrency(),
        duration_s,
        turnover_gb_day: calib::TOTAL_INPUT_BYTES / 1e9 * 86_400.0 / duration_s,
        avg_sojourn_s: sojourn_sum / n_jobs as f64,
        p50_sojourn_s: ssnap.p50_us as f64 / 1e6,
        p95_sojourn_s: ssnap.p95_us as f64 / 1e6,
        p99_sojourn_s: ssnap.p99_us as f64 / 1e6,
        server_sys_pct,
        server_usr_pct,
        client_sys_pct,
        client_usr_pct,
        queries: (n_jobs * 3) as u64,
        edits: (n_jobs * 2) as u64,
        output_bytes: output_bytes_per_request(workload) * n_jobs as u64,
    }
}

/// All Table 1 columns for a workload, in the paper's order.
pub fn table1(workload: Workload) -> Vec<ProcessingResult> {
    let mut configs = vec![
        ProcConfig::Server { slots: 1 },
        ProcConfig::Server { slots: 2 },
        ProcConfig::Client { cached: false },
    ];
    if workload == Workload::Histogram {
        configs.push(ProcConfig::Client { cached: true });
    }
    configs.push(ProcConfig::ServerPlusClient);
    configs
        .into_iter()
        .map(|c| run_processing(workload, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(value: f64, target: f64, tol_frac: f64) -> bool {
        (value - target).abs() <= target * tol_frac
    }

    #[test]
    fn imaging_durations_match_paper_shape() {
        // Paper Table 1 (left): 6027, 3117, 2059, 1380 s.
        let rows = table1(Workload::Imaging);
        let d: Vec<f64> = rows.iter().map(|r| r.duration_s).collect();
        assert!(within(d[0], 6027.0, 0.10), "S(1) {:.0}", d[0]);
        assert!(within(d[1], 3117.0, 0.10), "S(2) {:.0}", d[1]);
        assert!(within(d[2], 2059.0, 0.10), "C {:.0}", d[2]);
        assert!(within(d[3], 1380.0, 0.10), "S+C {:.0}", d[3]);
        // Strict ordering: each configuration beats the previous.
        assert!(d[0] > d[1] && d[1] > d[2] && d[2] > d[3]);
    }

    #[test]
    fn histogram_durations_match_paper_shape() {
        // Paper Table 1 (right): 960, 655, 841, 821, 438 s.
        let rows = table1(Workload::Histogram);
        let d: Vec<f64> = rows.iter().map(|r| r.duration_s).collect();
        assert!(within(d[0], 960.0, 0.10), "S(1) {:.0}", d[0]);
        assert!(within(d[1], 655.0, 0.12), "S(2) {:.0}", d[1]);
        assert!(within(d[2], 841.0, 0.10), "C {:.0}", d[2]);
        assert!(within(d[3], 821.0, 0.10), "C/Cached {:.0}", d[3]);
        assert!(within(d[4], 438.0, 0.12), "S+C {:.0}", d[4]);
        // The paper's ordering: S(1) > C > C/Cached > S(2) > S+C.
        assert!(d[0] > d[2] && d[2] > d[3] && d[3] > d[1] && d[1] > d[4]);
    }

    #[test]
    fn caching_saves_only_data_movement() {
        // §8.3: "even for the data intensive histogram test, the cost of
        // data movement are relatively small".
        let rows = table1(Workload::Histogram);
        let c = rows[2].duration_s;
        let cached = rows[3].duration_s;
        let saving = (c - cached) / c;
        assert!(saving > 0.0 && saving < 0.06, "saving {saving:.3}");
    }

    #[test]
    fn turnover_matches_paper() {
        // Imaging: 0.8 → 3.5 GB/day; histogram: 4.6 → 10.0 GB/day.
        let img = table1(Workload::Imaging);
        assert!(
            within(img[0].turnover_gb_day, 0.8, 0.15),
            "{}",
            img[0].turnover_gb_day
        );
        assert!(
            within(img[3].turnover_gb_day, 3.5, 0.15),
            "{}",
            img[3].turnover_gb_day
        );
        let hist = table1(Workload::Histogram);
        assert!(
            within(hist[0].turnover_gb_day, 4.6, 0.15),
            "{}",
            hist[0].turnover_gb_day
        );
        assert!(
            within(hist[4].turnover_gb_day, 10.0, 0.15),
            "{}",
            hist[4].turnover_gb_day
        );
    }

    #[test]
    fn cpu_utilizations_match_paper_shape() {
        let img = table1(Workload::Imaging);
        // S(1): ~50% usr (one of two CPUs crunching).
        assert!(
            within(img[0].server_usr_pct, 50.0, 0.15),
            "{}",
            img[0].server_usr_pct
        );
        // S(2): ~96% usr (both CPUs crunching).
        assert!(img[1].server_usr_pct > 85.0, "{}", img[1].server_usr_pct);
        // C: client busy, server nearly idle.
        assert!(img[2].client_usr_pct > 75.0, "{}", img[2].client_usr_pct);
        assert!(img[2].server_usr_pct < 10.0, "{}", img[2].server_usr_pct);
    }

    #[test]
    fn client_not_saturated_for_short_analyses() {
        // §8.4: for sub-5s analyses "the client CPU is not saturated".
        let hist = table1(Workload::Histogram);
        let c = &hist[2];
        assert!(
            c.client_usr_pct < 60.0,
            "client usr {:.0}% should be far from saturation",
            c.client_usr_pct
        );
    }

    #[test]
    fn sojourn_ordering_matches_paper() {
        // The paper's sojourn metric is not fully specified (its absolute
        // values are inconsistent with completion-minus-submission under
        // any fixed occupancy); ours is completion − admission under the
        // 20-deep admission window. The *ordering* across configurations —
        // faster configurations drain the window faster — is the
        // reproducible shape.
        let img = table1(Workload::Imaging);
        let si: Vec<f64> = img.iter().map(|r| r.avg_sojourn_s).collect();
        assert!(si[0] > si[1] && si[1] > si[2] && si[2] > si[3], "{si:?}");
        let hist = table1(Workload::Histogram);
        let sh: Vec<f64> = hist.iter().map(|r| r.avg_sojourn_s).collect();
        assert!(*sh.last().unwrap() < sh[0], "{sh:?}");
        // Little's law consistency on the steady part: sojourn ≈ window /
        // throughput (the window never fully fills during ramp-up, so the
        // average sits a bit below the steady-state value).
        let x = 100.0 / img[0].duration_s;
        let expected = calib::MAX_IN_SYSTEM as f64 / x;
        assert!(
            si[0] > expected * 0.7 && si[0] < expected * 1.05,
            "{} vs {}",
            si[0],
            expected
        );
    }

    #[test]
    fn sojourn_percentiles_are_ordered() {
        let r = run_processing(Workload::Imaging, ProcConfig::Server { slots: 2 });
        assert!(r.p50_sojourn_s > 0.0, "{r:?}");
        assert!(r.p50_sojourn_s <= r.p95_sojourn_s, "{r:?}");
        assert!(r.p95_sojourn_s <= r.p99_sojourn_s, "{r:?}");
    }

    #[test]
    fn workload_characteristics_tables_2_and_3() {
        let img = run_processing(Workload::Imaging, ProcConfig::Server { slots: 1 });
        assert_eq!(img.queries, 300);
        assert_eq!(img.edits, 200);
        assert!(within(img.output_bytes as f64, 5.5 * 1024.0 * 1024.0, 0.01));
        let hist = run_processing(Workload::Histogram, ProcConfig::Server { slots: 1 });
        assert_eq!(hist.queries, 450);
        assert_eq!(hist.edits, 300);
        assert!(within(
            hist.output_bytes as f64,
            1.2 * 1024.0 * 1024.0,
            0.01
        ));
    }
}
