//! The browse experiments: Figures 4 and 5 (§7).
//!
//! Closed system: N test clients with zero think time ("the delay between
//! requests is set to zero", §7.2) spread round-robin over K middle-tier
//! nodes, each request costing middle-tier CPU (inflated by the §7.3
//! application-logic contention) plus seven database queries on a shared
//! DBMS whose ceiling is ≈ 126 queries/s.
//!
//! This is the *modeled* Figure 5; `hedc_bench::cluster` measures the same
//! workload over real sockets (loopback `hedc-net` servers behind a
//! `DmRouter`) — `fig5_browse_nodes --net` reports both, tagged by mode.

use crate::calib;
use crate::engine::{ClosedLoopPs, PsReport, Resource, StageSpec};

/// Configuration of one browse run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrowseConfig {
    /// Simultaneous test clients.
    pub clients: usize,
    /// Middle-tier nodes.
    pub nodes: usize,
    /// Warmup seconds (excluded from stats).
    pub warmup_s: f64,
    /// Measurement seconds.
    pub measure_s: f64,
    /// Fraction of the per-request database work absorbed by the DM result
    /// cache (`0.0` = cache off, the paper's measured configuration). A hit
    /// skips the wire and the DBMS but still pays the middle-tier CPU, so
    /// only the DB stage demand scales by `1 - rate`. Must be `< 1.0`.
    pub cache_hit_rate: f64,
    /// DB queries per browse request. The paper's request costs seven
    /// (§7.2); the batched name-mapping path collapses the per-item query
    /// pairs to [`calib::BATCHED_QUERIES_PER_REQUEST`].
    pub queries_per_request: f64,
}

impl BrowseConfig {
    /// Standard run lengths.
    pub fn new(clients: usize, nodes: usize) -> Self {
        BrowseConfig {
            clients,
            nodes,
            warmup_s: 200.0,
            measure_s: 2_000.0,
            cache_hit_rate: 0.0,
            queries_per_request: calib::QUERIES_PER_REQUEST,
        }
    }

    /// Model a warm result cache absorbing `rate` of the DB demand.
    pub fn with_cache_hit_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "hit rate must be in [0, 1)");
        self.cache_hit_rate = rate;
        self
    }

    /// Model a different per-request DB query count (e.g. the batched
    /// name-mapping hot path). Middle-tier CPU demand is left unchanged:
    /// batching saves DB round trips, not page rendering.
    pub fn with_queries_per_request(mut self, queries: f64) -> Self {
        assert!(queries > 0.0);
        self.queries_per_request = queries;
        self
    }
}

/// Result of a browse run.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseResult {
    /// The configuration.
    pub config: BrowseConfig,
    /// Web requests per second (the Figures' y-axis).
    pub requests_per_second: f64,
    /// Database queries per second implied.
    pub db_queries_per_second: f64,
    /// Mean request response time, seconds.
    pub avg_response_s: f64,
    /// Median request response time, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile request response time, seconds.
    pub p95_response_s: f64,
    /// 99th-percentile request response time, seconds.
    pub p99_response_s: f64,
    /// Middle-tier utilization per node.
    pub mt_utilization: Vec<f64>,
    /// Database utilization.
    pub db_utilization: f64,
}

/// Run one browse configuration.
pub fn run_browse(config: BrowseConfig) -> BrowseResult {
    assert!(config.clients > 0 && config.nodes > 0);
    let clients_per_node = config.clients as f64 / config.nodes as f64;
    let mt_demand = calib::MT_DEMAND_S * calib::mt_contention(clients_per_node);
    let db_demand = config.queries_per_request / calib::DB_PEAK_QPS * (1.0 - config.cache_hit_rate);

    // Resources: nodes 0..K are middle-tier, node K is the DB.
    let mut resources: Vec<Resource> = (0..config.nodes)
        .map(|i| Resource::new(format!("mt-{i}"), calib::MT_CORES))
        .collect();
    let db_index = resources.len();
    resources.push(Resource::new("db", 1.0));

    let routes: Vec<Vec<StageSpec>> = (0..config.clients)
        .map(|c| {
            vec![
                StageSpec {
                    resource: c % config.nodes,
                    demand: mt_demand,
                },
                StageSpec {
                    resource: db_index,
                    demand: db_demand,
                },
            ]
        })
        .collect();

    let mut sim = ClosedLoopPs::new(resources, routes);
    let report: PsReport = sim.run(config.warmup_s, config.measure_s);

    BrowseResult {
        config,
        requests_per_second: report.throughput,
        db_queries_per_second: report.throughput
            * config.queries_per_request
            * (1.0 - config.cache_hit_rate),
        avg_response_s: report.avg_response_s,
        p50_response_s: report.p50_response_s,
        p95_response_s: report.p95_response_s,
        p99_response_s: report.p99_response_s,
        mt_utilization: report.utilization[..config.nodes].to_vec(),
        db_utilization: report.utilization[db_index],
    }
}

/// Figure 4: throughput vs client count on a single middle-tier node.
pub fn figure4(client_counts: &[usize]) -> Vec<BrowseResult> {
    client_counts
        .iter()
        .map(|&c| run_browse(BrowseConfig::new(c, 1)))
        .collect()
}

/// Figure 4 with the batched name-mapping hot path: same sweep, but each
/// request costs [`calib::BATCHED_QUERIES_PER_REQUEST`] DB queries instead
/// of seven.
pub fn figure4_batched(client_counts: &[usize]) -> Vec<BrowseResult> {
    client_counts
        .iter()
        .map(|&c| {
            run_browse(
                BrowseConfig::new(c, 1)
                    .with_queries_per_request(calib::BATCHED_QUERIES_PER_REQUEST),
            )
        })
        .collect()
}

/// Figure 5: throughput vs middle-tier node count at a fixed client count
/// (96 in the paper).
pub fn figure5(node_counts: &[usize], clients: usize) -> Vec<BrowseResult> {
    node_counts
        .iter()
        .map(|&n| run_browse(BrowseConfig::new(clients, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_peak_then_degrade() {
        let results = figure4(&[16, 32, 48, 64, 80, 96]);
        let tput: Vec<f64> = results.iter().map(|r| r.requests_per_second).collect();
        // Peak near 16 clients at ≈ 16 rps (paper Fig. 4).
        assert!(
            (14.0..18.5).contains(&tput[0]),
            "peak {:.1} rps at 16 clients",
            tput[0]
        );
        // Monotone degradation afterwards.
        for w in tput.windows(2) {
            assert!(w[1] <= w[0] + 0.2, "should degrade: {tput:?}");
        }
        // ≈ 3 rps at 96 clients (paper: "drops to around 3").
        let last = *tput.last().unwrap();
        assert!((2.5..3.6).contains(&last), "{last} rps at 96 clients");
    }

    #[test]
    fn fig4_degradation_is_middle_tier_not_db() {
        // §7.3: "the database is not the reason for the slowdown".
        let r = run_browse(BrowseConfig::new(96, 1));
        assert!(r.mt_utilization[0] > 0.95, "{:?}", r.mt_utilization);
        assert!(r.db_utilization < 0.3, "db {:.2}", r.db_utilization);
        assert!(r.db_queries_per_second < 30.0);
    }

    #[test]
    fn fig5_scales_to_db_ceiling() {
        let results = figure5(&[1, 2, 3, 5], 96);
        let tput: Vec<f64> = results.iter().map(|r| r.requests_per_second).collect();
        // Rises from ≈3 to ≈18 (paper §7.3).
        assert!((2.5..3.6).contains(&tput[0]), "{tput:?}");
        let last = *tput.last().unwrap();
        assert!((16.5..18.5).contains(&last), "{tput:?}");
        // Strictly rising.
        for w in tput.windows(2) {
            assert!(w[1] > w[0], "{tput:?}");
        }
        // At 5 nodes the DB is the bottleneck at ≈120 queries/s.
        let five = results.last().unwrap();
        assert!(
            (110.0..130.0).contains(&five.db_queries_per_second),
            "{:.1} q/s",
            five.db_queries_per_second
        );
        assert!(five.db_utilization > 0.9);
    }

    #[test]
    fn sixteen_clients_single_node_db_near_peak() {
        // §7.3: "at 16 test clients, the database is running close to its
        // maximum performance ... about 100 database queries per second".
        let r = run_browse(BrowseConfig::new(16, 1));
        assert!(
            (90.0..126.0).contains(&r.db_queries_per_second),
            "{:.1} q/s",
            r.db_queries_per_second
        );
    }

    #[test]
    fn warm_cache_lifts_the_db_ceiling() {
        // Fig. 5 saturates at 5 nodes because the shared DBMS hits its
        // ≈126 q/s ceiling. A warm result cache absorbs most DB work, so
        // the same hardware pushes more requests and the DB runs cooler.
        let cold = run_browse(BrowseConfig::new(96, 5));
        let warm = run_browse(BrowseConfig::new(96, 5).with_cache_hit_rate(0.8));
        assert!(
            warm.requests_per_second > cold.requests_per_second * 1.2,
            "cold {:.1} rps vs warm {:.1} rps",
            cold.requests_per_second,
            warm.requests_per_second
        );
        assert!(
            warm.db_utilization < cold.db_utilization,
            "cold db {:.2} vs warm db {:.2}",
            cold.db_utilization,
            warm.db_utilization
        );
    }

    #[test]
    fn batched_name_mapping_cuts_db_demand_without_touching_the_mt() {
        // The batched request costs 3 DB queries instead of 7: throughput
        // never drops (the middle tier still binds near the peak), and the
        // database runs markedly cooler at every client count.
        for clients in [16, 48, 96] {
            let std = run_browse(BrowseConfig::new(clients, 1));
            let batched = run_browse(
                BrowseConfig::new(clients, 1)
                    .with_queries_per_request(calib::BATCHED_QUERIES_PER_REQUEST),
            );
            assert!(
                batched.requests_per_second >= std.requests_per_second - 0.2,
                "{clients} clients: batched {:.1} vs standard {:.1} rps",
                batched.requests_per_second,
                std.requests_per_second
            );
            assert!(
                batched.db_utilization < std.db_utilization,
                "{clients} clients: db {:.2} vs {:.2}",
                batched.db_utilization,
                std.db_utilization
            );
        }
    }

    #[test]
    fn response_time_grows_with_clients() {
        let a = run_browse(BrowseConfig::new(16, 1));
        let b = run_browse(BrowseConfig::new(96, 1));
        assert!(b.avg_response_s > a.avg_response_s * 5.0);
    }
}
