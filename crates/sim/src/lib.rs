//! # hedc-sim — the testbed simulator
//!
//! The substitution for the paper's physical evaluation environment (§7.1:
//! a SUN E3000 database server, five dual-P3 web servers, and up to 96
//! client workstations on switched 100 Mb/s Ethernet; §8.1: a 2×177 MHz
//! SPARC server, a 400 MHz Linux client, and a 2 MB/s link). The evaluation
//! measures *capacity and contention shapes*; a calibrated queueing
//! simulation reproduces exactly those shapes on one machine.
//!
//! * [`engine`] — a processor-sharing closed-queueing-network simulator,
//!   event-driven over stage completions.
//! * [`browse`] — Figures 4 and 5: browse throughput vs clients and vs
//!   middle-tier nodes.
//! * [`processing`] — Table 1: the imaging and histogram test series over
//!   the S(1)/S(2)/C/C-cached/S+C configurations, with turnover, sojourn
//!   and CPU-split metrics.
//! * [`calib`] — every constant, each traceable to a number in §7–§8.
//! * [`downlink`] — the "downlink day" ingest workload: one orbit segment
//!   per ground-station contact, with seeded per-orbit activity (§2.2, §6).
//! * [`redundancy`] — the duplicate-heavy analysis mix: a seeded
//!   zipf-skewed stream over a catalog of distinct requests, the workload
//!   shape under which redundant-computation elimination pays (§3.5).
//!
//! ```
//! use hedc_sim::browse::{run_browse, BrowseConfig};
//!
//! let r = run_browse(BrowseConfig::new(96, 5));
//! assert!(r.requests_per_second > 15.0); // DB-ceiling bound (§7.3)
//! ```

#![warn(missing_docs)]

pub mod browse;
pub mod calib;
pub mod downlink;
pub mod engine;
pub mod processing;
pub mod redundancy;
mod rng;

pub use browse::{figure4, figure5, run_browse, BrowseConfig, BrowseResult};
pub use downlink::{downlink_day, DownlinkConfig, OrbitSegment};
pub use engine::{ClosedLoopPs, PsReport, Resource, StageSpec};
pub use processing::{run_processing, table1, ProcConfig, ProcessingResult, Workload};
pub use redundancy::{duplication_factor, Zipf, ZipfConfig};
