//! A processor-sharing closed-queueing-network simulator.
//!
//! The browse evaluation (§7) is a closed system: N clients with zero think
//! time cycle requests through middle-tier nodes and a database. Each
//! station is modeled as a processor-sharing multi-server: with `n` active
//! jobs and capacity `c` (servers), every job progresses at rate
//! `min(1, c/n)` service-units per second — the standard fluid model of a
//! CPU under many threads.
//!
//! The engine is event-driven over *stage completions*: rates only change
//! when a job arrives at or leaves a station, so between such events the
//! next completion time is exact, not time-stepped.

/// One visit to a resource with a fixed service demand (seconds of service).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpec {
    /// Index into the resource table.
    pub resource: usize,
    /// Service demand, in seconds-of-one-server.
    pub demand: f64,
}

/// A service station.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Display name.
    pub name: String,
    /// Number of servers (fractional allowed). `f64::INFINITY` makes it a
    /// pure delay station (think time, fixed-latency network hop).
    pub capacity: f64,
}

impl Resource {
    /// A named multi-server PS station.
    pub fn new(name: impl Into<String>, capacity: f64) -> Self {
        Resource {
            name: name.into(),
            capacity,
        }
    }

    /// An infinite-server delay station.
    pub fn delay(name: impl Into<String>) -> Self {
        Self::new(name, f64::INFINITY)
    }
}

#[derive(Debug)]
struct JobState {
    route: Vec<StageSpec>,
    stage: usize,
    remaining: f64,
    cycle_start: f64,
}

/// Measurement output of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PsReport {
    /// Completed cycles during the measurement window.
    pub completions: u64,
    /// Cycles per second.
    pub throughput: f64,
    /// Mean cycle response time, seconds.
    pub avg_response_s: f64,
    /// Median cycle response time, seconds (from a latency histogram over
    /// simulated time; 0 when no cycles completed).
    pub p50_response_s: f64,
    /// 95th-percentile cycle response time, seconds.
    pub p95_response_s: f64,
    /// 99th-percentile cycle response time, seconds.
    pub p99_response_s: f64,
    /// Per-resource utilization in [0, 1] (busy servers / capacity);
    /// 0 for delay stations.
    pub utilization: Vec<f64>,
    /// Measurement window length, seconds.
    pub window_s: f64,
}

/// The closed-network simulator.
pub struct ClosedLoopPs {
    resources: Vec<Resource>,
    jobs: Vec<JobState>,
    now: f64,
}

impl ClosedLoopPs {
    /// Build with a resource table and one route per closed-loop job
    /// (client). Routes must be non-empty and reference valid resources.
    pub fn new(resources: Vec<Resource>, routes: Vec<Vec<StageSpec>>) -> Self {
        assert!(!resources.is_empty());
        for route in &routes {
            assert!(!route.is_empty(), "empty route");
            for s in route {
                assert!(s.resource < resources.len(), "bad resource index");
                assert!(s.demand > 0.0, "non-positive demand");
            }
        }
        let n = routes.len().max(1);
        let jobs = routes
            .into_iter()
            .enumerate()
            .map(|(i, route)| {
                let first = route[0].demand;
                // Stagger initial progress: with identical deterministic
                // demands, unstaggered jobs march in lockstep through the
                // network (all at the same station simultaneously), which
                // underestimates pipeline throughput. Real clients start at
                // different times; a deterministic spread reproduces that.
                let remaining = first * (i as f64 + 1.0) / (n as f64);
                JobState {
                    route,
                    stage: 0,
                    remaining,
                    cycle_start: 0.0,
                }
            })
            .collect();
        ClosedLoopPs {
            resources,
            jobs,
            now: 0.0,
        }
    }

    /// Per-job service rate at each resource given current occupancy.
    fn rates(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.resources.len()];
        for j in &self.jobs {
            counts[j.route[j.stage].resource] += 1;
        }
        self.resources
            .iter()
            .zip(&counts)
            .map(|(r, &n)| {
                if n == 0 {
                    0.0
                } else if r.capacity.is_infinite() {
                    1.0
                } else {
                    (r.capacity / n as f64).min(1.0)
                }
            })
            .collect()
    }

    /// Run for `warmup_s + measure_s` simulated seconds; statistics cover
    /// only the measurement window.
    pub fn run(&mut self, warmup_s: f64, measure_s: f64) -> PsReport {
        let t_end = self.now + warmup_s + measure_s;
        let t_measure = self.now + warmup_s;
        let mut completions = 0u64;
        let mut response_sum = 0.0f64;
        // Simulated-time response distribution: seconds recorded as µs so
        // the same fixed-bucket histogram serves wall-clock and sim time.
        let response_hist = hedc_obs::Histogram::new();
        let mut busy = vec![0.0f64; self.resources.len()];

        while self.now < t_end {
            let rates = self.rates();
            // Time to the next stage completion.
            let mut dt = t_end - self.now;
            for j in &self.jobs {
                let rate = rates[j.route[j.stage].resource];
                if rate > 0.0 {
                    dt = dt.min(j.remaining / rate);
                }
            }
            // Advance.
            let mut counts = vec![0usize; self.resources.len()];
            for j in &self.jobs {
                counts[j.route[j.stage].resource] += 1;
            }
            if self.now + dt > t_measure {
                let effective = (self.now + dt).min(t_end) - self.now.max(t_measure);
                if effective > 0.0 {
                    for (i, r) in self.resources.iter().enumerate() {
                        if !r.capacity.is_infinite() && counts[i] > 0 {
                            busy[i] += (counts[i] as f64).min(r.capacity) * effective;
                        }
                    }
                }
            }
            self.now += dt;
            // Progress every job; collect completions.
            for j in &mut self.jobs {
                let rate = rates[j.route[j.stage].resource];
                j.remaining -= rate * dt;
                if j.remaining <= 1e-12 && rate > 0.0 {
                    j.stage += 1;
                    if j.stage >= j.route.len() {
                        // Cycle complete.
                        if self.now > t_measure {
                            completions += 1;
                            let response = self.now - j.cycle_start;
                            response_sum += response;
                            response_hist.record_us((response * 1e6) as u64);
                        }
                        j.stage = 0;
                        j.cycle_start = self.now;
                    }
                    j.remaining = j.route[j.stage].demand;
                }
            }
        }

        let utilization = self
            .resources
            .iter()
            .zip(&busy)
            .map(|(r, &b)| {
                if r.capacity.is_infinite() {
                    0.0
                } else {
                    b / (r.capacity * measure_s)
                }
            })
            .collect();
        let rsnap = response_hist.snapshot();
        PsReport {
            completions,
            throughput: completions as f64 / measure_s,
            avg_response_s: if completions == 0 {
                0.0
            } else {
                response_sum / completions as f64
            },
            p50_response_s: rsnap.p50_us as f64 / 1e6,
            p95_response_s: rsnap.p95_us as f64 / 1e6,
            p99_response_s: rsnap.p99_us as f64 / 1e6,
            utilization,
            window_s: measure_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One client, one single-server resource, demand 0.5 s → 2 cycles/s.
    #[test]
    fn single_client_throughput() {
        let mut sim = ClosedLoopPs::new(
            vec![Resource::new("cpu", 1.0)],
            vec![vec![StageSpec {
                resource: 0,
                demand: 0.5,
            }]],
        );
        let r = sim.run(10.0, 100.0);
        assert!((r.throughput - 2.0).abs() < 0.05, "{r:?}");
        assert!((r.avg_response_s - 0.5).abs() < 0.01);
        assert!((r.utilization[0] - 1.0).abs() < 0.01);
    }

    /// Ten clients sharing one server: throughput stays at capacity
    /// (1/demand), response time stretches 10×.
    #[test]
    fn ps_sharing_stretches_response() {
        let routes = vec![
            vec![StageSpec {
                resource: 0,
                demand: 0.5
            }];
            10
        ];
        let mut sim = ClosedLoopPs::new(vec![Resource::new("cpu", 1.0)], routes);
        let r = sim.run(50.0, 200.0);
        assert!((r.throughput - 2.0).abs() < 0.1, "{r:?}");
        assert!((r.avg_response_s - 5.0).abs() < 0.3, "{r:?}");
    }

    /// Percentiles come from the per-run response histogram and must be
    /// ordered and in the neighborhood of the mean.
    #[test]
    fn report_percentiles_are_ordered_and_plausible() {
        let routes = vec![
            vec![StageSpec {
                resource: 0,
                demand: 0.5
            }];
            10
        ];
        let mut sim = ClosedLoopPs::new(vec![Resource::new("cpu", 1.0)], routes);
        let r = sim.run(50.0, 200.0);
        assert!(r.p50_response_s > 0.0);
        assert!(r.p50_response_s <= r.p95_response_s);
        assert!(r.p95_response_s <= r.p99_response_s);
        assert!(
            (r.p50_response_s - r.avg_response_s).abs() / r.avg_response_s < 0.5,
            "{r:?}"
        );
    }

    /// Multi-server: 4 clients on a 2-server station, demand 1 s →
    /// each pair shares a server: throughput 2/s.
    #[test]
    fn multi_server_capacity() {
        let routes = vec![
            vec![StageSpec {
                resource: 0,
                demand: 1.0
            }];
            4
        ];
        let mut sim = ClosedLoopPs::new(vec![Resource::new("cpu", 2.0)], routes);
        let r = sim.run(20.0, 100.0);
        assert!((r.throughput - 2.0).abs() < 0.1, "{r:?}");
        assert!((r.utilization[0] - 1.0).abs() < 0.02);
    }

    /// A two-stage tandem: the slower station is the bottleneck.
    #[test]
    fn tandem_bottleneck() {
        let route = vec![
            StageSpec {
                resource: 0,
                demand: 0.1,
            },
            StageSpec {
                resource: 1,
                demand: 0.4,
            },
        ];
        let mut sim = ClosedLoopPs::new(
            vec![Resource::new("fast", 1.0), Resource::new("slow", 1.0)],
            vec![route; 8],
        );
        let r = sim.run(20.0, 100.0);
        assert!((r.throughput - 2.5).abs() < 0.1, "{r:?}");
        assert!(r.utilization[1] > 0.97, "{r:?}");
        assert!(r.utilization[0] < 0.35, "{r:?}");
    }

    /// Delay stations don't limit throughput and report zero utilization.
    #[test]
    fn delay_station_is_infinite_server() {
        let route = vec![
            StageSpec {
                resource: 0,
                demand: 1.0,
            },
            StageSpec {
                resource: 1,
                demand: 0.25,
            },
        ];
        let mut sim = ClosedLoopPs::new(
            vec![Resource::delay("think"), Resource::new("cpu", 1.0)],
            vec![route; 20],
        );
        let r = sim.run(20.0, 100.0);
        // CPU-bound: 1/0.25 = 4 cycles/s despite 20 clients thinking 1 s.
        assert!((r.throughput - 4.0).abs() < 0.2, "{r:?}");
        assert_eq!(r.utilization[0], 0.0);
    }

    /// Underloaded system: throughput equals clients / total demand.
    #[test]
    fn underloaded_no_queueing() {
        let route = vec![
            StageSpec {
                resource: 0,
                demand: 0.2,
            },
            StageSpec {
                resource: 1,
                demand: 0.3,
            },
        ];
        let mut sim = ClosedLoopPs::new(
            vec![Resource::new("a", 4.0), Resource::new("b", 4.0)],
            vec![route; 2],
        );
        let r = sim.run(10.0, 100.0);
        assert!((r.throughput - 4.0).abs() < 0.1, "{r:?}"); // 2 clients / 0.5 s
        assert!((r.avg_response_s - 0.5).abs() < 0.02);
    }
}
