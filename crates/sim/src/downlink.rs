//! The "downlink day" ingest workload (§2.2, §6).
//!
//! RHESSI telemetry arrives in bursts: the spacecraft's ≈ 96-minute orbit
//! yields a ground-station contact per orbit, each dumping the orbit's
//! stored photon stream. §6 requires loading to keep pace with this
//! continuous downlink. This module generates the *shape* of one such day —
//! a list of orbit segments with per-orbit activity levels — without
//! depending on the event-generation crate: the bench harness maps each
//! segment onto a telemetry generator config and packages it into units.
//!
//! Determinism: the per-orbit parameters derive from `seed` via the same
//! SplitMix64 scramble the fault harness uses, so a downlink day is fully
//! reproducible from its config.

use crate::rng::{splitmix64, unit};
/// Configuration of a simulated downlink day.
#[derive(Debug, Clone)]
pub struct DownlinkConfig {
    /// Number of orbit contacts to generate.
    pub orbits: usize,
    /// Orbital period in milliseconds (§2.2: ≈ 96 minutes).
    pub orbit_ms: u64,
    /// Mission time of the first orbit's start, ms.
    pub start_ms: u64,
    /// Mean solar flare rate, flares/hour (varied ±50% per orbit).
    pub flares_per_hour: f64,
    /// Mean background photon rate, photons/s (varied ±25% per orbit).
    pub background_rate: f64,
    /// Master seed; every orbit derives its own sub-seed from it.
    pub seed: u64,
}

impl Default for DownlinkConfig {
    fn default() -> Self {
        DownlinkConfig {
            orbits: 15, // one day at ~96 min/orbit
            orbit_ms: 96 * 60 * 1000,
            start_ms: 0,
            flares_per_hour: 2.0,
            background_rate: 40.0,
            seed: 0x0D1E_55A1,
        }
    }
}

/// One orbit's telemetry dump: a contiguous time window plus the activity
/// parameters the generator should use for it.
#[derive(Debug, Clone, PartialEq)]
pub struct OrbitSegment {
    /// Orbit index within the day (0-based).
    pub index: usize,
    /// Segment start, mission ms.
    pub start_ms: u64,
    /// Segment duration, ms.
    pub duration_ms: u64,
    /// Sub-seed for this orbit's photon stream.
    pub seed: u64,
    /// Flare rate during this orbit, flares/hour.
    pub flares_per_hour: f64,
    /// Background photon rate during this orbit, photons/s.
    pub background_rate: f64,
}

/// Generate the orbit segments of one downlink day. Deterministic in the
/// config; segments tile `[start_ms, start_ms + orbits·orbit_ms)` without
/// gaps so downstream unit packaging produces disjoint time windows.
pub fn downlink_day(cfg: &DownlinkConfig) -> Vec<OrbitSegment> {
    let mut state = cfg.seed ^ 0xD0_9E57; // domain-separate from other users
    (0..cfg.orbits)
        .map(|index| {
            let seed = splitmix64(&mut state);
            // Solar activity varies orbit to orbit: flares ±50%, background ±25%.
            let flares = cfg.flares_per_hour * (0.5 + unit(&mut state));
            let background = cfg.background_rate * (0.75 + 0.5 * unit(&mut state));
            OrbitSegment {
                index,
                start_ms: cfg.start_ms + index as u64 * cfg.orbit_ms,
                duration_ms: cfg.orbit_ms,
                seed,
                flares_per_hour: flares,
                background_rate: background,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_tiling() {
        let cfg = DownlinkConfig::default();
        let a = downlink_day(&cfg);
        let b = downlink_day(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.orbits);
        for (i, seg) in a.iter().enumerate() {
            assert_eq!(seg.index, i);
            assert_eq!(seg.start_ms, cfg.start_ms + i as u64 * cfg.orbit_ms);
            assert_eq!(seg.duration_ms, cfg.orbit_ms);
            assert!(seg.flares_per_hour >= cfg.flares_per_hour * 0.5);
            assert!(seg.flares_per_hour <= cfg.flares_per_hour * 1.5);
            assert!(seg.background_rate >= cfg.background_rate * 0.75);
            assert!(seg.background_rate <= cfg.background_rate * 1.25);
        }
    }

    #[test]
    fn seed_changes_activity() {
        let a = downlink_day(&DownlinkConfig::default());
        let b = downlink_day(&DownlinkConfig {
            seed: 99,
            ..DownlinkConfig::default()
        });
        assert_ne!(a, b);
    }
}
