//! Property-based tests for the queueing simulator: conservation laws that
//! must hold for any workload, or the evaluation numbers mean nothing.

use hedc_sim::{BrowseConfig, ClosedLoopPs, Resource, StageSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Utilization law: at every station, utilization = throughput ×
    /// service demand / capacity (within discretization tolerance), and
    /// never exceeds 1.
    #[test]
    fn utilization_law(
        clients in 1usize..20,
        d1 in 1u32..50,
        d2 in 1u32..50,
        cap in 1u32..4,
    ) {
        let d1 = f64::from(d1) / 100.0;
        let d2 = f64::from(d2) / 100.0;
        let route = vec![
            StageSpec { resource: 0, demand: d1 },
            StageSpec { resource: 1, demand: d2 },
        ];
        let mut sim = ClosedLoopPs::new(
            vec![
                Resource::new("a", f64::from(cap)),
                Resource::new("b", 1.0),
            ],
            vec![route; clients],
        );
        let r = sim.run(50.0, 300.0);
        let x = r.throughput;
        prop_assert!(r.utilization.iter().all(|&u| u <= 1.0 + 1e-6), "{:?}", r.utilization);
        let ua = x * d1 / f64::from(cap);
        let ub = x * d2;
        prop_assert!((r.utilization[0] - ua).abs() < 0.08, "{} vs {}", r.utilization[0], ua);
        prop_assert!((r.utilization[1] - ub).abs() < 0.08, "{} vs {}", r.utilization[1], ub);
    }

    /// Throughput bounds: X ≤ min over stations of capacity/demand, and
    /// X ≤ N / total_demand (no queueing can beat the demand itself).
    #[test]
    fn throughput_bounds(
        clients in 1usize..24,
        d1 in 1u32..60,
        d2 in 1u32..60,
    ) {
        let d1 = f64::from(d1) / 100.0;
        let d2 = f64::from(d2) / 100.0;
        let route = vec![
            StageSpec { resource: 0, demand: d1 },
            StageSpec { resource: 1, demand: d2 },
        ];
        let mut sim = ClosedLoopPs::new(
            vec![Resource::new("a", 1.0), Resource::new("b", 2.0)],
            vec![route; clients],
        );
        let r = sim.run(50.0, 400.0);
        let bound_station = (1.0 / d1).min(2.0 / d2);
        let bound_clients = clients as f64 / (d1 + d2);
        prop_assert!(r.throughput <= bound_station * 1.02, "{} > {}", r.throughput, bound_station);
        prop_assert!(r.throughput <= bound_clients * 1.02, "{} > {}", r.throughput, bound_clients);
        // And with a comfortable client surplus, the bottleneck saturates.
        if bound_clients > bound_station * 3.0 {
            prop_assert!(r.throughput > bound_station * 0.85, "{} < {}", r.throughput, bound_station);
        }
    }

    /// Little's law on the closed loop: N = X × R exactly (all clients are
    /// always in the system).
    #[test]
    fn littles_law(clients in 1usize..16, d in 1u32..80) {
        let d = f64::from(d) / 100.0;
        let route = vec![StageSpec { resource: 0, demand: d }];
        let mut sim = ClosedLoopPs::new(
            vec![Resource::new("cpu", 1.0)],
            vec![route; clients],
        );
        let r = sim.run(100.0, 500.0);
        let n = r.throughput * r.avg_response_s;
        prop_assert!((n - clients as f64).abs() < clients as f64 * 0.1 + 0.2,
            "N={n} clients={clients}");
    }

    /// Browse model sanity across the whole parameter plane: throughput is
    /// positive, DB never exceeds its ceiling, utilizations are valid.
    #[test]
    fn browse_model_sane(clients in 1usize..120, nodes in 1usize..8) {
        let r = hedc_sim::run_browse(BrowseConfig::new(clients, nodes));
        prop_assert!(r.requests_per_second > 0.0);
        prop_assert!(r.db_queries_per_second <= hedc_sim::calib::DB_PEAK_QPS * 1.02,
            "{}", r.db_queries_per_second);
        prop_assert!(r.db_utilization <= 1.0 + 1e-6);
        for &u in &r.mt_utilization {
            prop_assert!(u <= 1.0 + 1e-6);
        }
    }
}
