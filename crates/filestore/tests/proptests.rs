//! Property-based tests for the file layer's codecs and archives.

use hedc_filestore::{
    codec, Archive, ArchiveTier, FileStore, FitsFile, Header, ImageData, PhotonList,
};
use proptest::prelude::*;

proptest! {
    /// LZSS compression is lossless for arbitrary bytes.
    #[test]
    fn compress_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = codec::compress(&data);
        prop_assert_eq!(codec::decompress(&c).unwrap(), data);
    }

    /// Compression never grows input by more than the header.
    #[test]
    fn compress_bounded_overhead(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let c = codec::compress(&data);
        prop_assert!(c.len() <= data.len() + 12);
    }

    /// Decompression never panics on arbitrary (often invalid) streams.
    #[test]
    fn decompress_total(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decompress(&noise); // must return, never panic
    }

    /// Delta coding round-trips arbitrary u64 sequences.
    #[test]
    fn delta_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..512)) {
        let enc = codec::delta_encode(&values);
        prop_assert_eq!(codec::delta_decode(&enc).unwrap(), values);
    }

    /// FITS containers round-trip arbitrary payloads and header values.
    #[test]
    fn fits_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        ival in any::<i64>(),
        text in "[ -~]{0,40}", // printable ASCII; FITS cards are ASCII
    ) {
        let mut h = Header::new();
        h.set("OBSID", hedc_filestore::CardValue::Int(ival));
        h.set("COMMENT", hedc_filestore::CardValue::Text(text.clone()));
        let f = FitsFile::new(h, data.clone());
        let parsed = FitsFile::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(parsed.data, data);
        prop_assert_eq!(parsed.header.require_int("OBSID").unwrap(), ival);
        prop_assert_eq!(parsed.header.require_text("COMMENT").unwrap(), text.as_str());
    }

    /// Photon lists round-trip through their FITS encoding.
    #[test]
    fn photons_roundtrip(
        n in 0usize..300,
        t0 in 0u64..1_000_000,
        seed in any::<u32>(),
    ) {
        let mut p = PhotonList::default();
        let mut x = u64::from(seed) | 1;
        let mut t = t0;
        for _ in 0..n {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            t += x % 50;
            p.times_ms.push(t);
            p.energies_kev.push(3.0 + (x % 10_000) as f32 / 10.0);
            p.detectors.push((x % 9) as u8);
        }
        let f = p.to_fits(Header::new());
        let q = PhotonList::from_fits(&f).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Images round-trip exactly (bit-level f32 preservation).
    #[test]
    fn image_roundtrip(w in 1u32..40, h in 1u32..40, seed in any::<u64>()) {
        let mut img = ImageData::zeroed(w, h);
        let mut x = seed | 1;
        for px in img.pixels.iter_mut() {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            *px = f32::from_bits((x as u32) & 0x7f7f_ffff); // finite floats
        }
        let f = img.to_fits(Header::new());
        let back = ImageData::from_fits(&f).unwrap();
        prop_assert_eq!(img, back);
    }

    /// Archive store/fetch/delete keeps the byte accounting exact, whatever
    /// interleaving of operations runs.
    #[test]
    fn archive_accounting(ops in proptest::collection::vec(
        (0u8..3, 0usize..16, proptest::collection::vec(any::<u8>(), 0..64)), 1..60)
    ) {
        let fs = FileStore::new();
        fs.register(Archive::in_memory(1, "a", ArchiveTier::OnlineDisk, 1 << 20));
        let mut shadow: std::collections::HashMap<String, Vec<u8>> =
            std::collections::HashMap::new();
        for (op, key, data) in ops {
            let path = format!("f{key}");
            match op {
                0 => {
                    let res = fs.store(1, &path, &data);
                    if shadow.contains_key(&path) {
                        prop_assert!(res.is_err(), "files are immutable");
                    } else {
                        prop_assert!(res.is_ok());
                        shadow.insert(path, data);
                    }
                }
                1 => {
                    let res = fs.fetch(1, &path);
                    match shadow.get(&path) {
                        Some(d) => prop_assert_eq!(&res.unwrap(), d),
                        None => prop_assert!(res.is_err()),
                    }
                }
                _ => {
                    let res = fs.delete(1, &path);
                    prop_assert_eq!(res.is_ok(), shadow.remove(&path).is_some());
                }
            }
        }
        let expected: u64 = shadow.values().map(|d| d.len() as u64).sum();
        prop_assert_eq!(fs.archive(1).unwrap().status().used, expected);
        prop_assert_eq!(fs.archive(1).unwrap().status().files, shadow.len());
    }
}
