//! Tiered file archives.
//!
//! HEDC's resource tier (paper §2.3) spreads files across very different
//! devices: the A1000 RAID with tape backup for critical data, no-backup
//! RAID5 for secondary data, plain disks + CD archival for raw data, NFS
//! links to remote archives, and a tape robot for cold files. What the
//! middle tier sees is uniform: an archive id, a path, and bytes.
//!
//! This module gives each tier a real backend (in-memory or directory-backed)
//! plus a *cost model* — per-operation latency and bandwidth charged to an
//! I/O meter instead of wall-clock sleeps, so tests stay fast while the
//! relative costs between tiers stay measurable and the simulator can reuse
//! the same constants.

use crate::error::{FsError, FsResult};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one archive within a [`FileStore`].
pub type ArchiveId = u32;

/// Storage tier of an archive, with paper-era cost characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ArchiveTier {
    /// Backed-up RAID for critical data (fast, expensive).
    OnlineRaid,
    /// No-backup RAID5 / plain disks for bulk data.
    OnlineDisk,
    /// Remote archive linked by NFS (bandwidth-limited).
    RemoteNfs,
    /// Tape robot: huge, slow, requires a mount before access.
    TapeVault,
}

/// Simulated device characteristics, charged to the [`IoMeter`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Fixed per-operation latency in milliseconds (seek/rpc).
    pub seek_ms: f64,
    /// Read bandwidth, MB/s.
    pub read_mbps: f64,
    /// Write bandwidth, MB/s.
    pub write_mbps: f64,
    /// Mount cost in milliseconds charged when the device must be brought
    /// online for an access (tape robot arm; 0 for disks).
    pub mount_ms: f64,
}

impl ArchiveTier {
    /// Default cost model for the tier, scaled to the paper's 2002 hardware
    /// (e.g. the client/server HTTP link runs at 2 MB/s in §8.1).
    pub fn default_costs(self) -> CostModel {
        match self {
            ArchiveTier::OnlineRaid => CostModel {
                seek_ms: 8.0,
                read_mbps: 60.0,
                write_mbps: 45.0,
                mount_ms: 0.0,
            },
            ArchiveTier::OnlineDisk => CostModel {
                seek_ms: 12.0,
                read_mbps: 30.0,
                write_mbps: 25.0,
                mount_ms: 0.0,
            },
            ArchiveTier::RemoteNfs => CostModel {
                seek_ms: 25.0,
                read_mbps: 8.0,
                write_mbps: 6.0,
                mount_ms: 0.0,
            },
            ArchiveTier::TapeVault => CostModel {
                seek_ms: 4_000.0,
                read_mbps: 10.0,
                write_mbps: 10.0,
                mount_ms: 45_000.0,
            },
        }
    }
}

/// Accumulated simulated I/O cost and volume for one archive.
#[derive(Debug, Default)]
pub struct IoMeter {
    /// Simulated microseconds spent in I/O.
    pub sim_us: AtomicU64,
    /// Bytes read.
    pub bytes_read: AtomicU64,
    /// Bytes written.
    pub bytes_written: AtomicU64,
    /// Read operations.
    pub reads: AtomicU64,
    /// Write operations.
    pub writes: AtomicU64,
    /// Mount events (tape).
    pub mounts: AtomicU64,
}

/// Snapshot of an [`IoMeter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IoSnapshot {
    /// Simulated microseconds of I/O time.
    pub sim_us: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Read ops.
    pub reads: u64,
    /// Write ops.
    pub writes: u64,
    /// Mounts.
    pub mounts: u64,
}

impl IoMeter {
    fn charge(&self, costs: &CostModel, bytes: u64, write: bool, mounted: bool) {
        let mut ms = costs.seek_ms;
        if !mounted {
            ms += costs.mount_ms;
            if costs.mount_ms > 0.0 {
                self.mounts.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mbps = if write {
            costs.write_mbps
        } else {
            costs.read_mbps
        };
        if mbps > 0.0 {
            ms += (bytes as f64) / (mbps * 1_048_576.0) * 1000.0;
        }
        self.sim_us
            .fetch_add((ms * 1000.0) as u64, Ordering::Relaxed);
        if write {
            self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            sim_us: self.sim_us.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            mounts: self.mounts.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// Physical byte storage behind an archive.
pub trait ArchiveBackend: Send + Sync + std::fmt::Debug {
    /// Store a new file (immutable once stored).
    fn store(&self, path: &str, data: &[u8]) -> FsResult<()>;
    /// Read a whole file.
    fn fetch(&self, path: &str) -> FsResult<Vec<u8>>;
    /// Remove a file (administrative relocation/purge only).
    fn delete(&self, path: &str) -> FsResult<()>;
    /// Whether a file exists.
    fn exists(&self, path: &str) -> bool;
    /// All stored paths, sorted.
    fn list(&self) -> Vec<String>;
    /// Total payload bytes.
    fn used_bytes(&self) -> u64;
}

/// In-memory backend (tests, simulations, tape/NFS models).
#[derive(Debug, Default)]
pub struct MemBackend {
    files: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    used: AtomicU64,
}

impl ArchiveBackend for MemBackend {
    fn store(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        self.used.fetch_add(data.len() as u64, Ordering::Relaxed);
        files.insert(path.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn fetch(&self, path: &str) -> FsResult<Vec<u8>> {
        self.files
            .read()
            .get(path)
            .map(|d| d.as_ref().clone())
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn delete(&self, path: &str) -> FsResult<()> {
        match self.files.write().remove(path) {
            Some(d) => {
                self.used.fetch_sub(d.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

/// Directory-backed backend: real files under a root directory. Archive
/// paths use `/` separators and are sanitized against traversal.
#[derive(Debug)]
pub struct DirBackend {
    root: PathBuf,
}

impl DirBackend {
    /// Create (and mkdir) a directory-backed archive.
    pub fn new(root: impl Into<PathBuf>) -> FsResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirBackend { root })
    }

    fn resolve(&self, path: &str) -> FsResult<PathBuf> {
        if path.is_empty()
            || path
                .split('/')
                .any(|seg| seg.is_empty() || seg == "." || seg == ".." || seg.contains('\\'))
        {
            return Err(FsError::Io(format!("invalid archive path `{path}`")));
        }
        Ok(self.root.join(path))
    }
}

impl ArchiveBackend for DirBackend {
    fn store(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let full = self.resolve(path)?;
        if full.exists() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename so a crash never leaves a half-written file
        // visible under its final name.
        let tmp = full.with_extension("tmp-writing");
        std::fs::write(&tmp, data)?;
        std::fs::rename(&tmp, &full)?;
        Ok(())
    }

    fn fetch(&self, path: &str) -> FsResult<Vec<u8>> {
        let full = self.resolve(path)?;
        std::fs::read(&full).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                FsError::NotFound(path.to_string())
            } else {
                FsError::Io(e.to_string())
            }
        })
    }

    fn delete(&self, path: &str) -> FsResult<()> {
        let full = self.resolve(path)?;
        std::fs::remove_file(&full).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                FsError::NotFound(path.to_string())
            } else {
                FsError::Io(e.to_string())
            }
        })
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|p| p.exists()).unwrap_or(false)
    }

    fn list(&self) -> Vec<String> {
        fn walk(dir: &std::path::Path, prefix: &str, out: &mut Vec<String>) {
            let Ok(entries) = std::fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                let rel = if prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{prefix}/{name}")
                };
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, &rel, out);
                } else {
                    out.push(rel);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out);
        out.sort();
        out
    }

    fn used_bytes(&self) -> u64 {
        fn size(dir: &std::path::Path) -> u64 {
            let Ok(entries) = std::fs::read_dir(dir) else {
                return 0;
            };
            entries
                .flatten()
                .map(|e| {
                    let p = e.path();
                    if p.is_dir() {
                        size(&p)
                    } else {
                        e.metadata().map(|m| m.len()).unwrap_or(0)
                    }
                })
                .sum()
        }
        size(&self.root)
    }
}

// ---------------------------------------------------------------------------
// Archive
// ---------------------------------------------------------------------------

/// Online/offline state; offline archives reject reads and writes (a
/// dismounted tape, a down NFS host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ArchiveState {
    /// Serving requests.
    Online,
    /// Unreachable; operations return [`FsError::Offline`].
    Offline,
}

/// The operational-status row HEDC keeps for every archive (§4.1: "status of
/// archives (online, capacity left, type)").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArchiveStatus {
    /// Archive id.
    pub id: ArchiveId,
    /// Human name (e.g. "raid-a1000").
    pub name: String,
    /// Tier.
    pub tier: ArchiveTier,
    /// Current state.
    pub state: ArchiveState,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Bytes used.
    pub used: u64,
    /// Number of files.
    pub files: usize,
}

/// One archive: a backend plus tier metadata, capacity limit, and I/O meter.
#[derive(Debug)]
pub struct Archive {
    id: ArchiveId,
    name: String,
    tier: ArchiveTier,
    costs: CostModel,
    capacity: u64,
    backend: Box<dyn ArchiveBackend>,
    state: RwLock<ArchiveState>,
    meter: IoMeter,
}

impl Archive {
    /// Create an archive over a backend.
    pub fn new(
        id: ArchiveId,
        name: impl Into<String>,
        tier: ArchiveTier,
        capacity: u64,
        backend: Box<dyn ArchiveBackend>,
    ) -> Self {
        Archive {
            id,
            name: name.into(),
            tier,
            costs: tier.default_costs(),
            capacity,
            backend,
            state: RwLock::new(ArchiveState::Online),
            meter: IoMeter::default(),
        }
    }

    /// In-memory archive (convenience).
    pub fn in_memory(
        id: ArchiveId,
        name: impl Into<String>,
        tier: ArchiveTier,
        capacity: u64,
    ) -> Self {
        Self::new(id, name, tier, capacity, Box::new(MemBackend::default()))
    }

    /// Archive id.
    pub fn id(&self) -> ArchiveId {
        self.id
    }

    /// Tier.
    pub fn tier(&self) -> ArchiveTier {
        self.tier
    }

    /// Override the cost model (calibration hooks).
    pub fn set_costs(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    /// Take the archive offline / bring it back.
    pub fn set_state(&self, state: ArchiveState) {
        *self.state.write() = state;
    }

    /// Current state.
    pub fn state(&self) -> ArchiveState {
        *self.state.read()
    }

    /// I/O meter snapshot.
    pub fn io(&self) -> IoSnapshot {
        self.meter.snapshot()
    }

    /// Status row for the operational tables.
    pub fn status(&self) -> ArchiveStatus {
        ArchiveStatus {
            id: self.id,
            name: self.name.clone(),
            tier: self.tier,
            state: self.state(),
            capacity: self.capacity,
            used: self.backend.used_bytes(),
            files: self.backend.list().len(),
        }
    }

    fn check_online(&self) -> FsResult<()> {
        match self.state() {
            ArchiveState::Online => Ok(()),
            ArchiveState::Offline => Err(FsError::Offline(self.id)),
        }
    }

    /// Store an immutable file.
    pub fn store(&self, path: &str, data: &[u8]) -> FsResult<()> {
        self.check_online()?;
        let used = self.backend.used_bytes();
        let needed = data.len() as u64;
        if used + needed > self.capacity {
            return Err(FsError::CapacityExceeded {
                archive: self.id,
                needed,
                free: self.capacity.saturating_sub(used),
            });
        }
        self.backend.store(path, data)?;
        self.meter.charge(&self.costs, needed, true, false);
        Ok(())
    }

    /// Fetch a whole file.
    pub fn fetch(&self, path: &str) -> FsResult<Vec<u8>> {
        self.check_online()?;
        let data = self.backend.fetch(path)?;
        self.meter
            .charge(&self.costs, data.len() as u64, false, false);
        Ok(data)
    }

    /// Delete a file (administrative).
    pub fn delete(&self, path: &str) -> FsResult<()> {
        self.check_online()?;
        self.backend.delete(path)
    }

    /// Whether a file exists (no state check: existence is metadata).
    pub fn exists(&self, path: &str) -> bool {
        self.backend.exists(path)
    }

    /// List all paths.
    pub fn list(&self) -> Vec<String> {
        self.backend.list()
    }
}

// ---------------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------------

/// The collection of archives a HEDC node mounts.
#[derive(Debug, Default)]
pub struct FileStore {
    archives: RwLock<HashMap<ArchiveId, Arc<Archive>>>,
}

impl FileStore {
    /// Empty store.
    pub fn new() -> Self {
        FileStore::default()
    }

    /// Register an archive; replaces nothing (ids must be fresh).
    pub fn register(&self, archive: Archive) -> Arc<Archive> {
        let arc = Arc::new(archive);
        let prev = self.archives.write().insert(arc.id(), Arc::clone(&arc));
        assert!(prev.is_none(), "archive id {} already registered", arc.id());
        arc
    }

    /// Look up an archive.
    pub fn archive(&self, id: ArchiveId) -> FsResult<Arc<Archive>> {
        self.archives
            .read()
            .get(&id)
            .cloned()
            .ok_or(FsError::NoSuchArchive(id))
    }

    /// Store into a specific archive.
    pub fn store(&self, id: ArchiveId, path: &str, data: &[u8]) -> FsResult<()> {
        self.archive(id)?.store(path, data)
    }

    /// Fetch from a specific archive. Read latency feeds the `fs.read`
    /// histogram and bytes the `fs.read_bytes` counter, under the ambient
    /// trace.
    pub fn fetch(&self, id: ArchiveId, path: &str) -> FsResult<Vec<u8>> {
        let _span = hedc_obs::Span::child("fs.read");
        let started = std::time::Instant::now();
        let out = self.archive(id)?.fetch(path);
        let obs = hedc_obs::global();
        obs.histogram("fs.read").record(started.elapsed());
        if let Ok(data) = &out {
            obs.counter("fs.read_bytes").add(data.len() as u64);
        }
        out
    }

    /// Delete from a specific archive.
    pub fn delete(&self, id: ArchiveId, path: &str) -> FsResult<()> {
        self.archive(id)?.delete(path)
    }

    /// Whether a path exists in an archive.
    pub fn exists(&self, id: ArchiveId, path: &str) -> bool {
        self.archive(id).map(|a| a.exists(path)).unwrap_or(false)
    }

    /// Status of every archive, ordered by id (the "status of archives"
    /// operational view).
    pub fn statuses(&self) -> Vec<ArchiveStatus> {
        let mut v: Vec<ArchiveStatus> = self.archives.read().values().map(|a| a.status()).collect();
        v.sort_by_key(|s| s.id);
        v
    }

    /// Ids of all registered archives.
    pub fn archive_ids(&self) -> Vec<ArchiveId> {
        let mut v: Vec<ArchiveId> = self.archives.read().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_archive(id: ArchiveId, tier: ArchiveTier, cap: u64) -> Archive {
        Archive::in_memory(id, format!("a{id}"), tier, cap)
    }

    #[test]
    fn store_fetch_immutability() {
        let a = mem_archive(1, ArchiveTier::OnlineDisk, 1 << 20);
        a.store("raw/unit1.fits", b"hello").unwrap();
        assert_eq!(a.fetch("raw/unit1.fits").unwrap(), b"hello");
        assert!(matches!(
            a.store("raw/unit1.fits", b"other"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn capacity_enforced() {
        let a = mem_archive(1, ArchiveTier::OnlineDisk, 10);
        a.store("f1", b"12345").unwrap();
        assert!(matches!(
            a.store("f2", b"123456"),
            Err(FsError::CapacityExceeded { .. })
        ));
        a.store("f2", b"12345").unwrap();
    }

    #[test]
    fn offline_archive_rejects_io() {
        let a = mem_archive(1, ArchiveTier::TapeVault, 1 << 20);
        a.store("f", b"x").unwrap();
        a.set_state(ArchiveState::Offline);
        assert!(matches!(a.fetch("f"), Err(FsError::Offline(1))));
        assert!(matches!(a.store("g", b"y"), Err(FsError::Offline(1))));
        a.set_state(ArchiveState::Online);
        assert_eq!(a.fetch("f").unwrap(), b"x");
    }

    #[test]
    fn io_meter_reflects_tier_costs() {
        let disk = mem_archive(1, ArchiveTier::OnlineDisk, 1 << 30);
        let tape = mem_archive(2, ArchiveTier::TapeVault, 1 << 30);
        let payload = vec![0u8; 1 << 20];
        disk.store("f", &payload).unwrap();
        tape.store("f", &payload).unwrap();
        disk.fetch("f").unwrap();
        tape.fetch("f").unwrap();
        let d = disk.io();
        let t = tape.io();
        assert!(
            t.sim_us > d.sim_us * 100,
            "tape {} vs disk {}",
            t.sim_us,
            d.sim_us
        );
        assert_eq!(t.mounts, 2);
        assert_eq!(d.mounts, 0);
        assert_eq!(d.bytes_read, 1 << 20);
    }

    #[test]
    fn dir_backend_roundtrip() {
        let root = std::env::temp_dir().join(format!("hedc-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let b = DirBackend::new(&root).unwrap();
        b.store("raw/2002/unit1.fits", b"data1").unwrap();
        b.store("raw/2002/unit2.fits", b"data22").unwrap();
        assert_eq!(b.fetch("raw/2002/unit1.fits").unwrap(), b"data1");
        assert!(b.exists("raw/2002/unit2.fits"));
        assert_eq!(b.list(), vec!["raw/2002/unit1.fits", "raw/2002/unit2.fits"]);
        assert_eq!(b.used_bytes(), 11);
        b.delete("raw/2002/unit1.fits").unwrap();
        assert!(!b.exists("raw/2002/unit1.fits"));
        assert!(matches!(
            b.fetch("raw/2002/unit1.fits"),
            Err(FsError::NotFound(_))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dir_backend_rejects_traversal() {
        let root = std::env::temp_dir().join(format!("hedc-fs-trav-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let b = DirBackend::new(&root).unwrap();
        assert!(b.store("../escape", b"x").is_err());
        assert!(b.store("a/../../b", b"x").is_err());
        assert!(b.store("", b"x").is_err());
        assert!(b.store("a//b", b"x").is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn file_store_routing_and_status() {
        let fs = FileStore::new();
        fs.register(mem_archive(1, ArchiveTier::OnlineRaid, 1000));
        fs.register(mem_archive(7, ArchiveTier::TapeVault, 1 << 40));
        fs.store(1, "critical/log", b"redo").unwrap();
        fs.store(7, "cold/old.fits", b"archived").unwrap();
        assert_eq!(fs.fetch(7, "cold/old.fits").unwrap(), b"archived");
        assert!(matches!(fs.fetch(3, "x"), Err(FsError::NoSuchArchive(3))));
        let statuses = fs.statuses();
        assert_eq!(statuses.len(), 2);
        assert_eq!(statuses[0].id, 1);
        assert_eq!(statuses[0].used, 4);
        assert_eq!(statuses[1].files, 1);
        assert_eq!(fs.archive_ids(), vec![1, 7]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_archive_id_panics() {
        let fs = FileStore::new();
        fs.register(mem_archive(1, ArchiveTier::OnlineDisk, 10));
        fs.register(mem_archive(1, ArchiveTier::OnlineDisk, 10));
    }
}
