//! A FITS-like container format.
//!
//! RHESSI telemetry is "formatted as Flexible Image Transport System (FITS)
//! files" (§2.1). This module implements the structural essentials of FITS —
//! 80-byte header cards, 2880-byte block alignment, an END card, a single
//! data unit — plus a content checksum, and typed payload encodings for the
//! two science payloads HEDC handles: photon event lists (raw telemetry) and
//! 2-D images (derived data products).
//!
//! It is intentionally *not* a general FITS reader; it is the subset the
//! repository writes and reads back, with strict validation, so that format
//! changes (a recurring event in the paper, §3.1) surface as typed errors at
//! the adapter layer instead of silent corruption downstream.

use crate::codec;
use crate::error::{FsError, FsResult};

/// FITS block size: headers and data are padded to multiples of this.
pub const BLOCK: usize = 2880;
/// Card size: each header card is exactly this many bytes.
pub const CARD: usize = 80;

/// A header card value.
#[derive(Debug, Clone, PartialEq)]
pub enum CardValue {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Text value (rendered quoted).
    Text(String),
    /// Boolean (`T`/`F` in FITS).
    Bool(bool),
}

impl CardValue {
    fn render(&self) -> String {
        match self {
            CardValue::Int(i) => i.to_string(),
            CardValue::Float(f) => format!("{f:?}"),
            CardValue::Text(s) => format!("'{}'", s.replace('\'', "''")),
            CardValue::Bool(b) => if *b { "T" } else { "F" }.to_string(),
        }
    }

    fn parse(s: &str) -> FsResult<CardValue> {
        let s = s.trim();
        if s == "T" {
            return Ok(CardValue::Bool(true));
        }
        if s == "F" {
            return Ok(CardValue::Bool(false));
        }
        if let Some(stripped) = s.strip_prefix('\'') {
            let inner = stripped
                .strip_suffix('\'')
                .ok_or_else(|| FsError::BadFormat(format!("unterminated string card: {s}")))?;
            return Ok(CardValue::Text(inner.replace("''", "'")));
        }
        if let Ok(i) = s.parse::<i64>() {
            return Ok(CardValue::Int(i));
        }
        if let Ok(f) = s.parse::<f64>() {
            return Ok(CardValue::Float(f));
        }
        Err(FsError::BadFormat(format!("unparseable card value: {s}")))
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CardValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            CardValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Float accessor (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            CardValue::Float(f) => Some(*f),
            CardValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// An ordered list of header cards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Header {
    cards: Vec<(String, CardValue)>,
}

impl Header {
    /// Empty header.
    pub fn new() -> Self {
        Header::default()
    }

    /// Append a card. Keys are uppercased and must be ≤ 8 ASCII chars,
    /// matching the FITS keyword rule.
    pub fn set(&mut self, key: &str, value: CardValue) -> &mut Self {
        let key = key.to_ascii_uppercase();
        assert!(
            key.len() <= 8
                && key
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-'),
            "invalid FITS keyword `{key}`"
        );
        if let Some(slot) = self.cards.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.cards.push((key, value));
        }
        self
    }

    /// Look up a card by key (case-insensitive).
    pub fn get(&self, key: &str) -> Option<&CardValue> {
        let key = key.to_ascii_uppercase();
        self.cards.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Required integer card.
    pub fn require_int(&self, key: &str) -> FsResult<i64> {
        self.get(key)
            .and_then(CardValue::as_int)
            .ok_or_else(|| FsError::BadFormat(format!("missing integer card {key}")))
    }

    /// Required text card.
    pub fn require_text(&self, key: &str) -> FsResult<&str> {
        self.get(key)
            .and_then(CardValue::as_text)
            .ok_or_else(|| FsError::BadFormat(format!("missing text card {key}")))
    }

    /// All cards in order.
    pub fn cards(&self) -> &[(String, CardValue)] {
        &self.cards
    }
}

/// A FITS-like file: header plus one data unit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitsFile {
    /// Header cards.
    pub header: Header,
    /// Data unit bytes.
    pub data: Vec<u8>,
}

/// FNV-1a, used as the content checksum (FITS' own CHECKSUM algorithm is
/// ASCII-encoded 1's-complement; FNV keeps the same tamper-evidence with
/// less ceremony).
pub fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(16777619);
    }
    h
}

impl FitsFile {
    /// Build a file, computing SIMPLE/DATALEN/CHKSUM cards.
    pub fn new(mut header: Header, data: Vec<u8>) -> Self {
        header.set("SIMPLE", CardValue::Bool(true));
        header.set("DATALEN", CardValue::Int(data.len() as i64));
        header.set("CHKSUM", CardValue::Int(i64::from(checksum(&data))));
        FitsFile { header, data }
    }

    /// Serialize to block-aligned bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BLOCK + self.data.len() + BLOCK);
        for (k, v) in self.header.cards() {
            let mut card = format!("{k:<8}= {}", v.render());
            // A value too long for one card is a programming error in this
            // subset (we never write >70-char values).
            assert!(card.len() <= CARD, "card overflow: {card}");
            card.push_str(&" ".repeat(CARD - card.len()));
            out.extend_from_slice(card.as_bytes());
        }
        let mut end = "END".to_string();
        end.push_str(&" ".repeat(CARD - 3));
        out.extend_from_slice(end.as_bytes());
        // Pad header to block boundary with spaces.
        while out.len() % BLOCK != 0 {
            out.push(b' ');
        }
        out.extend_from_slice(&self.data);
        // Pad data to block boundary with zeros.
        while out.len() % BLOCK != 0 {
            out.push(0);
        }
        out
    }

    /// Parse and validate (structure, length, checksum).
    pub fn from_bytes(bytes: &[u8]) -> FsResult<FitsFile> {
        if !bytes.len().is_multiple_of(BLOCK) {
            return Err(FsError::BadFormat(format!(
                "file length {} not block-aligned",
                bytes.len()
            )));
        }
        let mut header = Header::new();
        let mut pos = 0usize;
        let mut found_end = false;
        'blocks: while pos < bytes.len() {
            for _ in 0..(BLOCK / CARD) {
                let card = &bytes[pos..pos + CARD];
                pos += CARD;
                let text = std::str::from_utf8(card)
                    .map_err(|_| FsError::BadFormat("non-ASCII header card".into()))?;
                let trimmed = text.trim_end();
                if trimmed == "END" {
                    found_end = true;
                    // Skip the rest of this header block.
                    pos = pos.div_ceil(BLOCK) * BLOCK;
                    break 'blocks;
                }
                if trimmed.is_empty() {
                    continue;
                }
                let (key, rest) = trimmed.split_at(8.min(trimmed.len()));
                let rest = rest
                    .strip_prefix("= ")
                    .ok_or_else(|| FsError::BadFormat(format!("malformed card: {trimmed}")))?;
                header.set(key.trim(), CardValue::parse(rest)?);
            }
        }
        if !found_end {
            return Err(FsError::BadFormat("missing END card".into()));
        }
        let datalen = header.require_int("DATALEN")? as usize;
        if pos + datalen > bytes.len() {
            return Err(FsError::BadFormat("data unit truncated".into()));
        }
        let data = bytes[pos..pos + datalen].to_vec();
        let stored = header.require_int("CHKSUM")? as u32;
        if checksum(&data) != stored {
            return Err(FsError::ChecksumMismatch {
                path: header
                    .get("FILENAME")
                    .and_then(CardValue::as_text)
                    .unwrap_or("<unnamed>")
                    .to_string(),
            });
        }
        Ok(FitsFile { header, data })
    }
}

// ---------------------------------------------------------------------------
// Typed payloads
// ---------------------------------------------------------------------------

/// A photon event list: the raw science payload. Parallel arrays, one entry
/// per detected photon.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhotonList {
    /// Arrival time tags, mission-epoch milliseconds (binned to ms here;
    /// RHESSI's binary microsecond clock is below metadata resolution).
    pub times_ms: Vec<u64>,
    /// Photon energies in keV.
    pub energies_kev: Vec<f32>,
    /// Detector index 0-8 (RHESSI has 9 germanium detectors).
    pub detectors: Vec<u8>,
}

impl PhotonList {
    /// Number of photons.
    pub fn len(&self) -> usize {
        self.times_ms.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.times_ms.is_empty()
    }

    /// Encode as a FITS file. Time tags are delta+varint coded; energies and
    /// detector ids are raw little-endian; the whole data unit is then LZSS
    /// compressed (the "gnu-zip" step of §2.1).
    pub fn to_fits(&self, extra: Header) -> FitsFile {
        assert_eq!(self.times_ms.len(), self.energies_kev.len());
        assert_eq!(self.times_ms.len(), self.detectors.len());
        let mut body = codec::delta_encode(&self.times_ms);
        for e in &self.energies_kev {
            body.extend_from_slice(&e.to_le_bytes());
        }
        body.extend_from_slice(&self.detectors);
        let compressed = codec::compress(&body);
        let mut header = extra;
        header.set("EXTTYPE", CardValue::Text("PHOTONS".into()));
        header.set("NPHOTON", CardValue::Int(self.len() as i64));
        FitsFile::new(header, compressed)
    }

    /// Decode a [`PhotonList::to_fits`] file.
    pub fn from_fits(file: &FitsFile) -> FsResult<PhotonList> {
        let ext = file.header.require_text("EXTTYPE")?;
        if ext != "PHOTONS" {
            return Err(FsError::BadFormat(format!(
                "expected PHOTONS extension, got {ext}"
            )));
        }
        let n = file.header.require_int("NPHOTON")? as usize;
        let body = codec::decompress(&file.data)?;
        let mut pos = 0usize;
        // delta_decode needs its own slice; find its end by decoding count.
        let times_ms = {
            // Re-decode from the start of the body.
            let count = codec::get_varint(&body, &mut pos)? as usize;
            if count != n {
                return Err(FsError::BadFormat(format!(
                    "photon count mismatch: card {n}, stream {count}"
                )));
            }
            let mut out = Vec::with_capacity(n);
            let mut prevv = 0u64;
            for _ in 0..n {
                let zz = codec::get_varint(&body, &mut pos)?;
                let delta = ((zz >> 1) as i64) ^ -((zz & 1) as i64);
                prevv = prevv.wrapping_add(delta as u64);
                out.push(prevv);
            }
            out
        };
        let need = n * 4 + n;
        if body.len() < pos + need {
            return Err(FsError::BadFormat("photon payload truncated".into()));
        }
        let mut energies_kev = Vec::with_capacity(n);
        for _ in 0..n {
            let mut b = [0u8; 4];
            b.copy_from_slice(&body[pos..pos + 4]);
            energies_kev.push(f32::from_le_bytes(b));
            pos += 4;
        }
        let detectors = body[pos..pos + n].to_vec();
        Ok(PhotonList {
            times_ms,
            energies_kev,
            detectors,
        })
    }
}

/// A 2-D image data product (what imaging analyses emit).
#[derive(Debug, Clone, PartialEq)]
pub struct ImageData {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major pixel intensities.
    pub pixels: Vec<f32>,
}

impl ImageData {
    /// Allocate a zeroed image.
    pub fn zeroed(width: u32, height: u32) -> Self {
        ImageData {
            width,
            height,
            pixels: vec![0.0; (width as usize) * (height as usize)],
        }
    }

    /// Pixel accessor.
    pub fn get(&self, x: u32, y: u32) -> f32 {
        self.pixels[(y as usize) * (self.width as usize) + x as usize]
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: u32, y: u32, v: f32) {
        self.pixels[(y as usize) * (self.width as usize) + x as usize] = v;
    }

    /// Total intensity.
    pub fn total(&self) -> f64 {
        self.pixels.iter().map(|&p| f64::from(p)).sum()
    }

    /// Encode as a compressed FITS file.
    pub fn to_fits(&self, extra: Header) -> FitsFile {
        assert_eq!(
            self.pixels.len(),
            (self.width as usize) * (self.height as usize)
        );
        let mut body = Vec::with_capacity(self.pixels.len() * 4);
        for p in &self.pixels {
            body.extend_from_slice(&p.to_le_bytes());
        }
        let compressed = codec::compress(&body);
        let mut header = extra;
        header.set("EXTTYPE", CardValue::Text("IMAGE".into()));
        header.set("NAXIS1", CardValue::Int(i64::from(self.width)));
        header.set("NAXIS2", CardValue::Int(i64::from(self.height)));
        FitsFile::new(header, compressed)
    }

    /// Decode an [`ImageData::to_fits`] file.
    pub fn from_fits(file: &FitsFile) -> FsResult<ImageData> {
        let ext = file.header.require_text("EXTTYPE")?;
        if ext != "IMAGE" {
            return Err(FsError::BadFormat(format!(
                "expected IMAGE extension, got {ext}"
            )));
        }
        let width = file.header.require_int("NAXIS1")? as u32;
        let height = file.header.require_int("NAXIS2")? as u32;
        let body = codec::decompress(&file.data)?;
        let n = (width as usize) * (height as usize);
        if body.len() != n * 4 {
            return Err(FsError::BadFormat(format!(
                "image payload is {} bytes, expected {}",
                body.len(),
                n * 4
            )));
        }
        let pixels = body
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(ImageData {
            width,
            height,
            pixels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_set_get_replace() {
        let mut h = Header::new();
        h.set("origin", CardValue::Text("HEDC".into()));
        h.set("ORIGIN", CardValue::Text("ETHZ".into()));
        assert_eq!(h.get("Origin").unwrap().as_text(), Some("ETHZ"));
        assert_eq!(h.cards().len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid FITS keyword")]
    fn long_keyword_panics() {
        Header::new().set("WAYTOOLONGKEY", CardValue::Int(1));
    }

    #[test]
    fn fits_roundtrip_with_blocks() {
        let mut h = Header::new();
        h.set("ORIGIN", CardValue::Text("HEDC".into()));
        h.set("OBSTIME", CardValue::Int(123456789));
        h.set("EXPOSURE", CardValue::Float(12.5));
        h.set("CALIB", CardValue::Bool(false));
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let f = FitsFile::new(h, data.clone());
        let bytes = f.to_bytes();
        assert_eq!(bytes.len() % BLOCK, 0);
        let parsed = FitsFile::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.data, data);
        assert_eq!(parsed.header.get("ORIGIN").unwrap().as_text(), Some("HEDC"));
        assert_eq!(
            parsed.header.get("EXPOSURE").unwrap().as_float(),
            Some(12.5)
        );
        assert_eq!(parsed.header.get("CALIB"), Some(&CardValue::Bool(false)));
    }

    #[test]
    fn fits_detects_corruption() {
        let f = FitsFile::new(Header::new(), vec![1, 2, 3, 4, 5]);
        let mut bytes = f.to_bytes();
        // Flip a data byte (data starts at the first block boundary).
        let data_start = BLOCK;
        bytes[data_start + 2] ^= 0xff;
        assert!(matches!(
            FitsFile::from_bytes(&bytes),
            Err(FsError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fits_rejects_unaligned_and_endless() {
        assert!(FitsFile::from_bytes(&[0u8; 100]).is_err());
        // A block of spaces has no END card.
        assert!(matches!(
            FitsFile::from_bytes(&[b' '; BLOCK]),
            Err(FsError::BadFormat(_))
        ));
    }

    #[test]
    fn fits_empty_data_unit() {
        let f = FitsFile::new(Header::new(), Vec::new());
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), BLOCK); // header only, no data blocks
        let parsed = FitsFile::from_bytes(&bytes).unwrap();
        assert!(parsed.data.is_empty());
    }

    #[test]
    fn large_header_spans_blocks() {
        let mut h = Header::new();
        for i in 0..40 {
            h.set(&format!("KEY{i}"), CardValue::Int(i));
        }
        let f = FitsFile::new(h, vec![7; 10]);
        let parsed = FitsFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed.header.get("KEY39").unwrap().as_int(), Some(39));
        assert_eq!(parsed.data, vec![7; 10]);
    }

    fn sample_photons(n: usize) -> PhotonList {
        let mut p = PhotonList::default();
        for i in 0..n {
            p.times_ms.push(1_000_000 + (i as u64) * 3);
            p.energies_kev.push(3.0 + (i % 100) as f32 * 0.2);
            p.detectors.push((i % 9) as u8);
        }
        p
    }

    #[test]
    fn photon_list_roundtrip() {
        let p = sample_photons(5000);
        let f = p.to_fits(Header::new());
        assert_eq!(f.header.require_int("NPHOTON").unwrap(), 5000);
        let q = PhotonList::from_fits(&f).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn photon_list_empty_roundtrip() {
        let p = PhotonList::default();
        let q = PhotonList::from_fits(&p.to_fits(Header::new())).unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn photon_fits_compresses_time_series() {
        let p = sample_photons(20_000);
        let f = p.to_fits(Header::new());
        let raw_size = 20_000 * (8 + 4 + 1);
        assert!(
            f.data.len() < raw_size / 2,
            "compressed {} vs raw {raw_size}",
            f.data.len()
        );
    }

    #[test]
    fn wrong_exttype_rejected() {
        let p = sample_photons(3);
        let f = p.to_fits(Header::new());
        assert!(ImageData::from_fits(&f).is_err());
        let img = ImageData::zeroed(4, 4);
        let f = img.to_fits(Header::new());
        assert!(PhotonList::from_fits(&f).is_err());
    }

    #[test]
    fn image_roundtrip_and_accessors() {
        let mut img = ImageData::zeroed(64, 32);
        img.set(10, 20, 3.5);
        img.set(63, 31, -1.25);
        let f = img.to_fits(Header::new());
        let back = ImageData::from_fits(&f).unwrap();
        assert_eq!(back.get(10, 20), 3.5);
        assert_eq!(back.get(63, 31), -1.25);
        assert_eq!(back.width, 64);
        assert_eq!(back.height, 32);
        assert!((back.total() - img.total()).abs() < 1e-9);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
